#!/usr/bin/env python
"""Run the paper-scale (Fig 4) scenario in both modes and summarize.

Writes the summary used by EXPERIMENTS.md. Horizon defaults to 100
simulated hours; pass a number of hours as the first argument to shorten.
"""

import sys
import time

import numpy as np

from repro.api import open_run
from repro.experiments.config import paper_scenario
from repro.experiments.figures import fig7_bandwidth_vs_channel_size


def main() -> None:
    horizon = float(sys.argv[1]) if len(sys.argv) > 1 else 100.0
    results = {}
    for mode in ("client-server", "p2p"):
        t0 = time.time()
        with open_run(paper_scenario(mode, horizon_hours=horizon)) as run:
            res = run.result()
        results[mode] = res
        times, quality = res.simulation.quality.quality_series()
        hours = times / 3600
        cov = np.mean(
            np.array(res.provisioned_series) >= np.array(res.used_series)
        )
        print(f"{mode} paper {horizon:.0f}h: {time.time() - t0:.0f}s wall")
        print(
            f"  quality: all={res.average_quality:.3f} "
            f"after6h={quality[hours > 6].mean():.3f}"
        )
        print(
            f"  vm $/h={res.mean_vm_cost_per_hour:.2f} "
            f"storage $/day={res.cost_report.hourly_storage_cost * 24:.4f}"
        )
        print(
            f"  reserved={np.mean(res.provisioned_mbps()):.0f} Mbps "
            f"used={np.mean(res.used_mbps()):.0f} Mbps "
            f"peer={np.mean(res.peer_series) * 8 / 1e6:.0f} Mbps "
            f"pop_final={res.simulation.final_population}"
        )
        print(f"  reserved>=used in {100 * cov:.0f}% of intervals")

    cs, p2p = results["client-server"], results["p2p"]
    print(
        "cost ratio p2p/cs = "
        f"{p2p.mean_vm_cost_per_hour / cs.mean_vm_cost_per_hour:.2f}"
    )
    for name, res in results.items():
        data = fig7_bandwidth_vs_channel_size(res)
        sizes, bw = data["channel_size"], data["bandwidth_mbps"]
        big = sizes >= np.quantile(sizes, 0.8)
        small = sizes <= np.quantile(sizes, 0.2)
        print(
            f"fig7 {name}: small-channel bw={bw[small].mean():.0f} "
            f"big-channel bw={bw[big].mean():.0f} "
            f"(growth x{bw[big].mean() / max(bw[small].mean(), 1e-9):.1f})"
        )


if __name__ == "__main__":
    main()
