#!/usr/bin/env python
"""CI gate: validate an ``ablation-controllers`` summary artifact.

Run after ``repro sweep ablation-controllers`` and point it at the
sweep's output directory (or the summary file itself).  Fails (exit 1)
unless the artifact

* carries the expected format tag and schema version,
* lists exactly the registered summary metrics,
* has a row for every registered controller policy, and
* every row carries every metric.

This is what keeps a new policy honest: registering a controller without
it surviving the head-to-head bench turns this gate red.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.core.controller import controller_names
from repro.experiments.controllers import (
    CONTROLLER_SUMMARY_SCHEMA,
    SUMMARY_METRICS,
)


def check(path: Path) -> int:
    if path.is_dir():
        path = path / "ablation-controllers" / "summary.json"
    try:
        payload = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"cannot read summary artifact {path}: {exc}", file=sys.stderr)
        return 1

    problems = []
    if payload.get("format") != "repro-controller-summary":
        problems.append(f"bad format tag: {payload.get('format')!r}")
    if payload.get("schema") != CONTROLLER_SUMMARY_SCHEMA:
        problems.append(
            f"schema {payload.get('schema')!r} != {CONTROLLER_SUMMARY_SCHEMA}"
        )
    if payload.get("metrics") != list(SUMMARY_METRICS):
        problems.append(f"metrics drifted: {payload.get('metrics')!r}")

    rows = payload.get("rows", [])
    seen = {row.get("controller") for row in rows}
    missing = set(controller_names()) - seen
    if missing:
        problems.append(f"no rows for policies: {sorted(missing)}")
    for row in rows:
        for metric in SUMMARY_METRICS:
            if metric not in row:
                problems.append(
                    f"row {row.get('catalog')}/{row.get('controller')} "
                    f"lacks {metric}"
                )

    if problems:
        for problem in problems:
            print(f"summary artifact invalid: {problem}", file=sys.stderr)
        return 1
    print(
        f"controller summary OK: {len(rows)} rows, "
        f"{len(seen)} policies, schema {CONTROLLER_SUMMARY_SCHEMA}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "path",
        type=Path,
        help="sweep output directory (or the summary.json itself)",
    )
    args = parser.parse_args(argv)
    return check(args.path)


if __name__ == "__main__":
    sys.exit(main())
