"""Record golden kernel trajectories for the parity tests.

The step-kernel refactor contract (docs/performance.md) is that the
vectorized kernel reproduces the scalar kernel's fixed-seed trajectories
*byte for byte*: same per-channel RNG stream consumption order, same
float accumulation order, hence identical quality series, bandwidth
series and arrival/departure counts.

This script runs the small fixed-capacity kernel scenarios plus two
closed-loop runs and writes their trajectories to ``tests/golden/``.
JSON float serialization uses ``repr`` round-tripping, so the recorded
values are binary-exact.

Regenerating the fixtures is only legitimate from a commit whose kernel
is already known to be trajectory-preserving (e.g. the pre-refactor
scalar kernel, or a later commit that intentionally changes trajectories
and says so in its changelog):

    PYTHONPATH=src python scripts/record_golden.py

CI's golden-guard job re-records into a scratch directory
(``--out DIR``) and diffs it against ``tests/golden/``, so *any* silent
trajectory drift fails the build — not just drift the parity tests'
summary statistics happen to notice.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import numpy as np

from repro.api import open_run
from repro.experiments.config import small_scenario
from repro.vod.simulator import VoDSimulator, VoDSystemConfig
from repro.workload.trace import generate_trace

GOLDEN_DIR = Path(__file__).resolve().parent.parent / "tests" / "golden"


def kernel_trajectory(mode: str, *, steps: int = 360,
                      capacity_per_chunk: float = 400_000.0) -> dict:
    """Run the raw step kernel (no controller) and dump its trajectory.

    The capacity is deliberately scarce so the run exercises every kernel
    path: smooth and unsmooth completions, playback holds, departures and
    (in p2p mode) rarest-first peer allocation with cloud top-up.
    """
    scenario = small_scenario(
        mode,
        num_channels=3,
        chunks_per_channel=6,
        target_population=180,
        horizon_hours=4.0,
        seed=2011,
    )
    trace = generate_trace(scenario.trace_config())
    config = VoDSystemConfig(
        mode=mode,
        dt=10.0,
        user_rate_cap=scenario.constants.vm_bandwidth,
        sojourn_slack=1.0,
        seed=scenario.seed,
    )
    sim = VoDSimulator(scenario.channels(), trace, config)
    for spec in sim.channels:
        sim.set_cloud_capacity(
            spec.channel_id, np.full(spec.num_chunks, capacity_per_chunk)
        )
    for _ in range(steps):
        sim.step()
    result = sim.result()
    t, cloud, peer = result.bandwidth_series()
    qt, qv = result.quality.quality_series()
    return {
        "scenario": {"mode": mode, "steps": steps,
                     "capacity_per_chunk": capacity_per_chunk},
        "arrivals": int(result.arrivals),
        "departures": int(result.departures),
        "final_population": int(result.final_population),
        "total_retrievals": int(result.quality.total_retrievals),
        "unsmooth_retrievals": int(result.quality.unsmooth_retrievals),
        "mean_sojourn": float(result.quality.mean_sojourn),
        "bandwidth_times": [float(x) for x in t],
        "cloud_used": [float(x) for x in cloud],
        "peer_used": [float(x) for x in peer],
        "shortfall": [float(s.shortfall) for s in result.bandwidth],
        "quality_times": [float(x) for x in qt],
        "quality": [float(x) for x in qv],
    }


def closed_loop_trajectory(mode: str) -> dict:
    """Run the full closed loop (controller in the loop) and dump it."""
    scenario = small_scenario(mode, horizon_hours=3.0, seed=2011)
    with open_run(scenario) as run:
        result = run.result()
    sim = result.simulation
    qt, qv = sim.quality.quality_series()
    return {
        "scenario": {"mode": mode, "horizon_hours": 3.0},
        "arrivals": int(sim.arrivals),
        "departures": int(sim.departures),
        "final_population": int(sim.final_population),
        "total_retrievals": int(sim.quality.total_retrievals),
        "average_quality": float(sim.quality.average_quality),
        "mean_sojourn": float(sim.quality.mean_sojourn),
        "used_series": [float(x) for x in result.used_series],
        "peer_series": [float(x) for x in result.peer_series],
        "provisioned_series": [float(x) for x in result.provisioned_series],
        "population_series": [int(x) for x in result.population_series],
        "quality_times": [float(x) for x in qt],
        "quality": [float(x) for x in qv],
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", type=Path, default=GOLDEN_DIR,
                        help=f"output directory (default {GOLDEN_DIR}); "
                             "CI records into a scratch dir and diffs")
    args = parser.parse_args(argv)
    out_dir = args.out
    out_dir.mkdir(parents=True, exist_ok=True)
    fixtures = {
        "kernel_client_server.json": kernel_trajectory("client-server"),
        "kernel_p2p.json": kernel_trajectory("p2p"),
        "closed_loop_client_server.json": closed_loop_trajectory(
            "client-server"
        ),
        "closed_loop_p2p.json": closed_loop_trajectory("p2p"),
    }
    for name, payload in fixtures.items():
        path = out_dir / name
        path.write_text(json.dumps(payload, indent=1) + "\n")
        print(
            f"wrote {path} (arrivals={payload['arrivals']}, "
            f"departures={payload['departures']}, "
            f"retrievals={payload['total_retrievals']})"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
