"""Perf-smoke harness: time the step kernels and record a trajectory.

Times ``N`` steps of two raw kernels (no controller in the loop) --
``fig04`` (client-server at the small-scale population) and
``flash-crowd`` (p2p at the paper's 2500 concurrent users) -- plus the
``catalog`` headline (the sharded engine: 200 channels under one
provisioning loop, >500k aggregate concurrent users), the
``catalog-geo`` headline (the same catalog across 3 regions = 600
engine slots under the multi-region geo control plane) and one ``repro
sweep`` cell through the registry execution path, and writes the numbers
to ``BENCH_kernel.json``.  The catalog headlines (and the sweep cell,
via the registry) execute through ``repro.api`` -- the session surface
every production caller uses -- so the ``--check`` gate also catches
regressions introduced by that indirection:

* ``steps_per_sec`` -- timed kernel steps per wall-clock second;
* ``user_steps_per_sec`` -- steps/sec x mean concurrent population, the
  scale-independent throughput number;
* ``wall_seconds`` and the mean/max population over the timed window.

The file keeps two measurement blocks: ``baseline`` (recorded once, from
the pre-refactor scalar kernel; re-record only with ``--rebaseline``)
and ``current`` (overwritten on every run), plus the derived
``speedup`` ratios.

``--check`` turns the run into a regression gate: after measuring, each
kernel's fresh ``steps_per_sec`` is compared against the *committed*
``current`` block, and the process exits nonzero when any kernel dropped
by more than ``--check-threshold`` (default 30%).  CI runs this gating
and uploads the JSON; see docs/ci.md for how to refresh the committed
numbers legitimately.

Usage::

    PYTHONPATH=src python scripts/perf_smoke.py            # update current
    PYTHONPATH=src python scripts/perf_smoke.py --check    # CI gate
    PYTHONPATH=src python scripts/perf_smoke.py --rebaseline
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_OUT = REPO_ROOT / "BENCH_kernel.json"

#: Schema 2 adds a ``phases`` dict to each catalog headline record —
#: the engine's cumulative per-phase breakdown (``kernel`` / ``merge`` /
#: ``controller`` / ``ipc`` seconds, see ``Run.phase_seconds``).  The
#: addition is backward compatible: schema-1 files are still accepted as
#: the committed reference (every gated field is unchanged).
BENCH_SCHEMA = 2

#: The timed kernels. ``fig04`` is the short-run client-server kernel at
#: the small-scale default population. ``flash-crowd`` is the sustained-
#: service stress: ONE surging channel (the paper's Section VI-A flash
#: crowd), a five-day trace with two daily crowds, timed during day
#: five's crowd at ~2500 concurrent users — long enough that any cost
#: that grows with *total arrivals* rather than live population (the
#: pre-refactor kernel's monotonic slot growth) shows up in the number.
#: The diurnal trace's *mean* population sits well below its target
#: parameter, so the trace target is set above 2500 and the recorded
#: ``mean_population`` over the timed window is the number the
#: "2500 concurrent users" acceptance criterion refers to.
KERNELS = (
    {"label": "fig04", "mode": "client-server", "channels": None,
     "population": 240, "hours": 12.0, "warmup": 360},
    {"label": "flash-crowd", "mode": "p2p", "channels": 1,
     "population": 3650, "hours": 120.0, "warmup": 23220},
)

#: The ``catalog`` headline: the sharded engine's acceptance-scale run —
#: 200 channels, a correlated flash crowd, the whole provisioning loop in
#: the measurement (this is the end-to-end number, not a raw kernel).
#: At these parameters the run admits ~840k sessions and peaks above
#: 500k aggregate concurrent users.  Timed over the full horizon, no
#: warmup (the ramp IS the workload).
CATALOG = {
    "num_channels": 200,
    "chunks_per_channel": 12,
    "horizon_hours": 1.0,
    "arrival_rate": 170.0,
    "num_shards": 8,
    "dt": 30.0,
    "interval_minutes": 15.0,
    "mode": "client-server",
}

#: The ``catalog-geo`` headline: the same acceptance-scale catalog under
#: the multi-region control plane — 3 regions x 200 channels = 600
#: engine slots, every epoch provisioned by the greedy geo allocator
#: (latency-discounted utility, per-GB egress pricing).  This is the
#: geo acceptance configuration: jobs-1-vs-4 sweep artifacts at these
#: parameters are byte-identical.
GEO_CATALOG = {
    **CATALOG,
    "topology": "us-eu-ap",
}


def build_kernel(mode: str, target_population: int, seed: int,
                 *, channels=None, hours: float = 12.0):
    """A raw ``VoDSimulator`` under a generous fixed capacity plan."""
    from repro.experiments.registry import closed_loop_config
    from repro.vod.simulator import VoDSimulator, VoDSystemConfig
    from repro.workload.trace import generate_trace

    config = closed_loop_config(
        mode=mode,
        scale="small",
        num_channels=channels,
        target_population=int(target_population),
        horizon_hours=float(hours),
        seed=seed,
    )
    trace = generate_trace(config.trace_config())
    sim = VoDSimulator(
        config.channels(),
        trace,
        VoDSystemConfig(
            mode=mode,
            dt=config.dt,
            user_rate_cap=config.constants.vm_bandwidth,
            seed=config.seed,
        ),
    )
    # Fixed capacity ~1.5x the equilibrium per-chunk streaming demand, so
    # downloads progress and the completion/transition path stays hot.
    per_chunk = (
        1.5
        * target_population
        / (config.num_channels * config.chunks_per_channel)
        * config.constants.streaming_rate
    )
    for spec in sim.channels:
        sim.set_cloud_capacity(
            spec.channel_id, np.full(spec.num_chunks, per_chunk)
        )
    return sim


def time_kernel(mode: str, target_population: int, *, warmup_steps: int,
                timed_steps: int, seed: int = 2011, channels=None,
                hours: float = 12.0) -> dict:
    """Warm the kernel to its working population, then time it."""
    sim = build_kernel(mode, target_population, seed, channels=channels,
                       hours=hours)
    for _ in range(warmup_steps):
        sim.step()
    populations = np.empty(timed_steps, dtype=float)
    started = time.perf_counter()
    for i in range(timed_steps):
        sim.step()
        populations[i] = sim.population()
    wall = time.perf_counter() - started
    steps_per_sec = timed_steps / wall if wall > 0 else float("inf")
    mean_pop = float(populations.mean()) if timed_steps else 0.0
    return {
        "mode": mode,
        "target_population": int(target_population),
        "num_channels": channels,
        "horizon_hours": float(hours),
        "warmup_steps": int(warmup_steps),
        "timed_steps": int(timed_steps),
        "wall_seconds": wall,
        "steps_per_sec": steps_per_sec,
        "mean_population": mean_pop,
        "max_population": float(populations.max()) if timed_steps else 0.0,
        "user_steps_per_sec": steps_per_sec * mean_pop,
        "store_slots": int(sum(len(s) for s in sim.stores.values())),
        "total_arrivals": int(sim.arrivals),
    }


def time_catalog(jobs: int, seed: int = 2011, *, geo: bool = False) -> dict:
    """Time the sharded catalog engine end to end (controller included).

    ``geo=True`` times the multi-region engine instead: same shard
    mechanics, the geo control plane in the loop.  Both headlines run
    through :mod:`repro.api` — the production surface — so the gate
    also guards the api indirection's overhead.
    """
    from repro.api import EngineConfig, open_run
    from repro.sim.shard import summarize_catalog
    from repro.workload.catalog import CATALOG_VARIANTS, catalog_config, \
        geo_catalog_config

    if geo:
        config = geo_catalog_config(
            seed=seed, name="catalog-geo-flash",
            **GEO_CATALOG, **CATALOG_VARIANTS["flash"],
        )
    else:
        config = catalog_config(
            seed=seed, name="catalog-flash",
            **CATALOG, **CATALOG_VARIANTS["flash"],
        )
    started = time.perf_counter()
    with open_run(EngineConfig(spec=config, workers=jobs)) as run:
        result = run.result()
        phases = run.phase_seconds()
    wall = time.perf_counter() - started
    metrics = summarize_catalog(result)
    steps = result.steps
    steps_per_sec = steps / wall if wall > 0 else float("inf")
    mean_pop = (
        float(result.populations.mean()) if result.populations.size else 0.0
    )
    record = {
        "mode": config.mode,
        "target_population": None,
        "num_channels": config.num_channels,
        "num_shards": config.effective_shards,
        "jobs": int(jobs),
        "horizon_hours": CATALOG["horizon_hours"],
        "warmup_steps": 0,
        "timed_steps": int(steps),
        "wall_seconds": wall,
        "steps_per_sec": steps_per_sec,
        "mean_population": mean_pop,
        "max_population": float(metrics["peak_population"]),
        "user_steps_per_sec": steps_per_sec * mean_pop,
        "total_arrivals": int(metrics["arrivals"]),
        "average_quality": float(metrics["average_quality"]),
        # Where the wall clock went: shard-kernel CPU, parent-side epoch
        # merge, controller (bootstrap + replans), and the worker
        # round-trip remainder (serialization, acks, scheduling).
        "phases": {k: float(v) for k, v in phases.items()},
    }
    if geo:
        record.update({
            "topology": GEO_CATALOG["topology"],
            "num_regions": int(metrics["num_regions"]),
            "channel_slots": int(config.channel_slots),
            "mean_remote_fraction": float(metrics["mean_remote_fraction"]),
            "egress_cost_per_hour": float(metrics["egress_cost_per_hour"]),
            "latency_adjusted_quality": float(
                metrics["latency_adjusted_quality"]
            ),
        })
    return record


def time_sweep_cell(seed: int = 2011) -> dict:
    """One registry cell end to end (the `repro sweep` execution path)."""
    from repro.experiments import registry

    spec = registry.get("fig04")
    params = {"mode": "client-server", "horizon_hours": 2.0}
    started = time.perf_counter()
    metrics = spec.run_cell(params, seed=seed)
    wall = time.perf_counter() - started
    return {
        "scenario": "fig04",
        "params": params,
        "seed": seed,
        "wall_seconds": wall,
        "arrivals": metrics.get("arrivals"),
        "average_quality": metrics.get("average_quality"),
    }


def measure(warmup_scale: float, timed_steps: int, *,
            catalog_jobs: int = 4, skip_catalog: bool = False) -> dict:
    kernels = {}
    for spec in KERNELS:
        label = spec["label"]
        print(f"timing kernel {label!r} ({spec['mode']}, trace target "
              f"{spec['population']}) ...", flush=True)
        kernels[label] = time_kernel(
            spec["mode"], spec["population"],
            warmup_steps=max(1, int(round(spec["warmup"] * warmup_scale))),
            timed_steps=timed_steps,
            channels=spec["channels"],
            hours=spec["hours"],
        )
        k = kernels[label]
        print(f"  {k['steps_per_sec']:8.1f} steps/s  "
              f"{k['user_steps_per_sec']:12.0f} user-steps/s  "
              f"(mean population {k['mean_population']:.0f}, "
              f"{k['store_slots']} slots after "
              f"{k['total_arrivals']} arrivals)")
    if not skip_catalog:
        print(f"timing the sharded catalog ({CATALOG['num_channels']} "
              f"channels, {CATALOG['num_shards']} shards, "
              f"{catalog_jobs} worker(s)) ...", flush=True)
        kernels["catalog"] = time_catalog(catalog_jobs)
        k = kernels["catalog"]
        print(f"  {k['steps_per_sec']:8.1f} steps/s  "
              f"{k['user_steps_per_sec']:12.0f} user-steps/s  "
              f"(peak population {k['max_population']:.0f} over "
              f"{k['total_arrivals']} arrivals, "
              f"quality {k['average_quality']:.3f})")
        ph = k["phases"]
        print("  phases: " + "  ".join(
            f"{name}={ph.get(name, 0.0):.2f}s"
            for name in ("kernel", "merge", "controller", "ipc")))
        print(f"timing the geo catalog ({GEO_CATALOG['topology']} x "
              f"{GEO_CATALOG['num_channels']} channels, "
              f"{GEO_CATALOG['num_shards']} shards, "
              f"{catalog_jobs} worker(s)) ...", flush=True)
        kernels["catalog-geo"] = time_catalog(catalog_jobs, geo=True)
        k = kernels["catalog-geo"]
        print(f"  {k['steps_per_sec']:8.1f} steps/s  "
              f"{k['user_steps_per_sec']:12.0f} user-steps/s  "
              f"(peak population {k['max_population']:.0f}, remote "
              f"fraction {k['mean_remote_fraction']:.3f}, egress "
              f"${k['egress_cost_per_hour']:.2f}/h)")
        ph = k["phases"]
        print("  phases: " + "  ".join(
            f"{name}={ph.get(name, 0.0):.2f}s"
            for name in ("kernel", "merge", "controller", "ipc")))
    print("timing one sweep cell (fig04, client-server, 2h) ...", flush=True)
    cell = time_sweep_cell()
    print(f"  {cell['wall_seconds']:.2f} s")
    return {
        "recorded_unix": time.time(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "kernels": kernels,
        "sweep_cell": cell,
    }


def check_regressions(committed: dict, measured: dict,
                      threshold: float) -> list:
    """Kernel labels whose fresh steps/s fell > threshold below committed.

    Compares only labels present in both measurement blocks, so adding a
    new kernel never fails the gate retroactively.
    """
    failures = []
    committed_kernels = (committed or {}).get("kernels", {})
    for label, fresh in measured.get("kernels", {}).items():
        reference = committed_kernels.get(label)
        if not reference:
            continue
        floor = (1.0 - threshold) * reference["steps_per_sec"]
        if fresh["steps_per_sec"] < floor:
            failures.append(
                (label, fresh["steps_per_sec"], reference["steps_per_sec"])
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--warmup-scale", type=float, default=1.0,
                        help="multiplier on each kernel's warm-up steps")
    parser.add_argument("--steps", type=int, default=200,
                        help="timed steps per kernel (default 200)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"output JSON (default {DEFAULT_OUT.name})")
    parser.add_argument("--rebaseline", action="store_true",
                        help="record this run as the committed baseline")
    parser.add_argument("--catalog-jobs", type=int, default=4,
                        help="worker processes for the catalog headline "
                             "(default 4; results are jobs-invariant, "
                             "only the wall clock moves)")
    parser.add_argument("--skip-catalog", action="store_true",
                        help="skip the catalog headline (quick local runs)")
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) when any kernel's steps/s "
                             "drops more than --check-threshold below "
                             "the committed numbers")
    parser.add_argument("--check-threshold", type=float, default=0.30,
                        help="allowed fractional steps/s drop for --check "
                             "(default 0.30)")
    args = parser.parse_args(argv)

    payload = {"schema": BENCH_SCHEMA, "baseline": None, "current": None,
               "speedup": {}}
    committed_current = None
    if args.out.is_file():
        try:
            previous = json.loads(args.out.read_text())
            # Schema 2 only *adds* fields (the catalog ``phases``
            # breakdown), so schema-1 files remain valid references.
            if previous.get("schema") in (1, BENCH_SCHEMA):
                payload["baseline"] = previous.get("baseline")
                committed_current = previous.get("current")
        except ValueError:
            pass

    measured = measure(args.warmup_scale, args.steps,
                       catalog_jobs=args.catalog_jobs,
                       skip_catalog=args.skip_catalog)
    if args.skip_catalog and committed_current is not None:
        # A quick run must not erase the committed gate reference for
        # the kernels it skipped: carry the old entries forward, marked.
        for label in ("catalog", "catalog-geo"):
            skipped = committed_current.get("kernels", {}).get(label)
            if skipped is not None:
                measured["kernels"][label] = {
                    **skipped, "carried_forward": True,
                }
    if args.rebaseline or payload["baseline"] is None:
        payload["baseline"] = measured
    payload["current"] = measured
    payload["speedup"] = {
        label: (
            payload["current"]["kernels"][label]["steps_per_sec"]
            / payload["baseline"]["kernels"][label]["steps_per_sec"]
        )
        for label in (spec["label"] for spec in KERNELS)
        if label in payload["baseline"].get("kernels", {})
    }

    # In --check mode the reference file is left untouched and the fresh
    # measurement goes to a side file: a gate must not replace the very
    # reference it compares against (repeated local --check runs would
    # otherwise ratchet regressions through 30% at a time). CI uploads
    # the side file; committing it as BENCH_kernel.json is the refresh
    # procedure (docs/ci.md).
    out_path = (
        args.out.with_name(args.out.stem + ".check.json")
        if args.check else args.out
    )
    out_path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    for label, ratio in payload["speedup"].items():
        print(f"speedup vs baseline [{label}]: {ratio:.2f}x")
    print(f"wrote {out_path}")

    if args.check:
        if committed_current is None:
            print("--check: no committed measurement to compare against; "
                  "treating this run as the reference", flush=True)
            return 0
        failures = check_regressions(
            committed_current, measured, args.check_threshold
        )
        for label, fresh, reference in failures:
            print(f"PERF REGRESSION [{label}]: {fresh:.1f} steps/s is "
                  f"{100 * (1 - fresh / reference):.0f}% below the "
                  f"committed {reference:.1f} steps/s "
                  f"(allowed: {100 * args.check_threshold:.0f}%)")
        if failures:
            print("see docs/ci.md for how to refresh BENCH_kernel.json "
                  "legitimately")
            return 1
        print(f"--check: all kernels within "
              f"{100 * args.check_threshold:.0f}% of committed steps/s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
