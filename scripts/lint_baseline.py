#!/usr/bin/env python
"""Refresh (or inspect) the committed determinism-lint baseline.

This is the sanctioned path for changing ``lint_baseline.json`` —
exactly like ``scripts/record_golden.py`` for the golden fixtures
(docs/ci.md).  The gating CI job never writes the baseline; a human
runs::

    python scripts/lint_baseline.py --update

after deciding a finding is acceptable debt (new entry) or after fixing
one (the entry burns down and ``repro lint --check`` fails until this
refresh removes it).  ``--show`` prints the current entries with their
remaining counts without touching the file.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import Baseline, run_lint, update_baseline  # noqa: E402
from repro.analysis.baseline import BASELINE_NAME  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--update", action="store_true",
                        help="re-record the baseline from current findings")
    parser.add_argument("--show", action="store_true",
                        help="print the committed entries and their status")
    parser.add_argument("--baseline", default=REPO_ROOT / BASELINE_NAME,
                        type=Path, help="baseline file location")
    args = parser.parse_args(argv)
    if not (args.update or args.show):
        parser.error("pick --update or --show")

    if args.show:
        baseline = (
            Baseline.load(args.baseline)
            if args.baseline.exists()
            else Baseline()
        )
        result = run_lint(baseline=baseline)
        spent = {f.fingerprint for f in result.baselined}
        if not baseline.entries:
            print("baseline is empty (the linter is clean)")
        for key in sorted(baseline.entries):
            state = "live" if key in spent else "STALE (fixed - run --update)"
            print(f"  [{state}] {key} (x{baseline.entries[key]})")
        if result.new:
            print(f"{len(result.new)} NEW finding(s) not in the baseline:")
            for finding in result.new:
                print(f"  {finding.location()}: {finding.rule} "
                      f"{finding.message}")
        return 0

    refreshed, result = update_baseline(baseline_path=args.baseline)
    print(f"recorded {sum(refreshed.entries.values())} finding(s) across "
          f"{len(refreshed.entries)} fingerprint(s) to {args.baseline}")
    for key in sorted(refreshed.entries):
        print(f"  {key} (x{refreshed.entries[key]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
