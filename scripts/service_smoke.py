"""Service smoke: the crash-recovery acceptance gate, end to end.

Exercises the full ``repro serve`` lifecycle the way an operator (and
an unlucky kernel OOM-killer) would:

1. start a service subprocess with a state dir and per-epoch
   auto-checkpointing;
2. ``repro submit`` equivalent over the client: POST a sharded catalog
   run (worker processes + a ``/dev/shm`` epoch plane in play);
3. follow the SSE epoch stream and request an explicit checkpoint;
4. SIGKILL the server mid-run — no teardown code gets to execute;
5. start a fresh server on the same state dir: it must reclaim the
   dead server's shared-memory segments, re-adopt the run from its
   checkpoint and finish it;
6. compare the served artifact's sha256 against running the identical
   :class:`repro.api.EngineConfig` through ``open_run`` in this
   process — the bytes must match exactly;
7. fail on any ``psm_*`` segment left in ``/dev/shm``.

Non-zero exit on any violated step.  CI runs this as the gating
``service`` job (docs/ci.md); locally::

    PYTHONPATH=src python scripts/service_smoke.py
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api import EngineConfig, open_run  # noqa: E402
from repro.service import ServiceClient  # noqa: E402
from repro.service.artifact import (  # noqa: E402
    artifact_bytes,
    result_payload,
    sha256_hex,
)
from repro.workload.catalog import catalog_config  # noqa: E402


def build_config() -> EngineConfig:
    spec = catalog_config(
        name="service-smoke",
        num_channels=8,
        chunks_per_channel=4,
        horizon_hours=2.0,
        arrival_rate=0.8,
        num_shards=4,
        dt=60.0,
        interval_minutes=10.0,  # 12 epochs: plenty of room for the kill
        seed=2011,
    )
    return EngineConfig(spec=spec, workers=2)


def spawn_serve(state_dir: Path) -> "tuple[subprocess.Popen, str]":
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--state-dir", str(state_dir),
            "--checkpoint-every", "1",
            "--max-runs", "2",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src")),
    )
    line = process.stdout.readline()
    if "repro-service listening on" not in line:
        process.kill()
        raise SystemExit(f"serve did not come up: {line!r}")
    url = line.split("listening on ", 1)[1].split()[0]
    return process, url


def shm_segments() -> "list[str]":
    try:
        return sorted(
            name for name in os.listdir("/dev/shm") if name.startswith("psm_")
        )
    except FileNotFoundError:  # pragma: no cover - non-Linux dev boxes
        return []


def main() -> int:
    config = build_config()
    print("reference: running the same config through open_run ...")
    with open_run(config) as run:
        expected = sha256_hex(
            artifact_bytes(result_payload(config.kind, run.result()))
        )
    print(f"reference sha256 {expected}")

    pre_existing = shm_segments()

    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as td:
        state_dir = Path(td)

        print("phase 1: serve, submit, stream, checkpoint, SIGKILL")
        process, url = spawn_serve(state_dir)
        try:
            client = ServiceClient(url)
            client.wait_healthy()
            run_id = client.submit(config)
            print(f"  submitted {run_id} to {url}")
            for event in client.events(run_id):
                if event["event"] != "epoch":
                    continue
                index = event["data"]["index"]
                print(f"  epoch {index} streamed")
                if index == 2:
                    path = client.checkpoint(run_id)
                    print(f"  explicit checkpoint -> {path}")
                if index >= 3:
                    break
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=60)
            print("  server SIGKILLed mid-run")
        finally:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=60)

        meta_path = state_dir / "runs" / run_id / "meta.json"
        meta = json.loads(meta_path.read_text())
        if meta["state"] != "running":
            raise SystemExit(
                f"expected the crashed run recorded as running, "
                f"got {meta['state']!r}"
            )

        print("phase 2: restart on the same state dir, resume, compare")
        process, url = spawn_serve(state_dir)
        try:
            client = ServiceClient(url)
            client.wait_healthy()
            info = client.wait(run_id, attempts=3000)
            if info["state"] != "done":
                raise SystemExit(
                    f"resumed run ended {info['state']!r}: "
                    f"{info.get('error')}"
                )
            data = client.result_bytes(run_id)
            actual = sha256_hex(data)
            print(f"  resumed artifact sha256 {actual}")
            if actual != expected:
                raise SystemExit(
                    "ARTIFACT MISMATCH after SIGKILL + resume: "
                    f"{actual} != {expected}"
                )
            if info["artifact_sha256"] != expected:
                raise SystemExit("status document carries a different sha256")
        finally:
            process.send_signal(signal.SIGTERM)
            try:
                process.wait(timeout=120)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=60)

    time.sleep(0.5)  # give the kernel a beat after process exit
    leaked = sorted(set(shm_segments()) - set(pre_existing))
    if leaked:
        raise SystemExit(f"leaked /dev/shm segments: {leaked}")

    print("service smoke OK: SIGKILL + restart resumed to byte-identical "
          "artifact, no shm leaks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
