"""Fig 7: provisioned cloud bandwidth vs channel size.

Paper: client-server bandwidth grows linearly with the number of users in
a channel, while P2P bandwidth "scales very well" (stays nearly flat) —
the peer swarm absorbs the growth.

Timed kernel: the P2P peer-contribution computation (Eqn (5)), which is
the extra per-channel work the P2P controller does each interval.

Registry scenario: ``fig07`` (``repro sweep fig07``).
"""

import numpy as np

from repro.experiments.figures import fig7_bandwidth_vs_channel_size
from repro.experiments.reporting import format_table
from repro.p2p.contribution import peer_contribution


def test_fig07_bandwidth_vs_channel_size(benchmark, cs_result, p2p_result, emit):
    cs = fig7_bandwidth_vs_channel_size(cs_result)
    p2p = fig7_bandwidth_vs_channel_size(p2p_result)

    def buckets(data):
        sizes, bw = data["channel_size"], data["bandwidth_mbps"]
        edges = np.quantile(sizes, [0.0, 0.34, 0.67, 1.0])
        out = []
        for lo, hi in zip(edges[:-1], edges[1:]):
            mask = (sizes >= lo) & (sizes <= hi)
            if mask.any():
                out.append((f"{lo:.0f}-{hi:.0f}", float(bw[mask].mean())))
        return out

    rows = []
    for (label, cs_bw), (_, p2p_bw) in zip(buckets(cs), buckets(p2p)):
        rows.append([label, f"{cs_bw:.0f}", f"{p2p_bw:.0f}"])
    table = format_table(
        ["channel size", "C/S bandwidth (Mbps)", "P2P bandwidth (Mbps)"],
        rows,
        title="Fig 7 — provisioned bandwidth vs channel size",
    )
    emit("fig07_bandwidth_vs_size", table)

    # Paper shape: C/S grows with size; P2P stays below C/S and grows
    # more slowly (flat-ish).
    cs_b = buckets(cs)
    p2p_b = buckets(p2p)
    assert cs_b[-1][1] >= cs_b[0][1]  # C/S monotone-ish growth
    assert p2p_b[-1][1] <= cs_b[-1][1]  # P2P under C/S at the big end
    # Relative growth from the small to the big bucket is milder for P2P.
    cs_growth = cs_b[-1][1] - cs_b[0][1]
    p2p_growth = p2p_b[-1][1] - p2p_b[0][1]
    assert p2p_growth <= cs_growth + 1e-9

    servers = np.arange(1.0, 21.0)
    owners = np.linspace(5.0, 200.0, 20)
    in_system = np.linspace(2.0, 40.0, 20)
    benchmark(
        lambda: peer_contribution(
            servers, owners, 400.0, peer_upload=45_000.0,
            streaming_rate=50_000.0, in_system=in_system,
        )
    )
