"""Fig 10: evolution of the overall VM rental cost.

Paper: client-server averages ~$48/h and swings with the user population;
P2P averages ~$4.27/h — roughly an order of magnitude cheaper. The text
adds that NFS storage costs ~$0.018/day, i.e. negligible next to VMs.

Timed kernel: the billing meter's accrue-and-report path over a day of
level changes.

Registry scenario: ``fig10`` (``repro sweep fig10``).
"""

import numpy as np

from repro.cloud.billing import BillingMeter
from repro.experiments.figures import fig10_vm_cost
from repro.experiments.reporting import format_table


def test_fig10_vm_cost(benchmark, cs_result, p2p_result, emit):
    data = fig10_vm_cost(cs_result, p2p_result)

    rows = []
    idx = [int(i) for i in np.linspace(0, data["cs_hours"].size - 1, 10)]
    for i in idx:
        rows.append(
            [
                f"{data['cs_hours'][i]:.0f}",
                f"{data['cs_cost_per_hour'][i]:.2f}",
                f"{data['p2p_cost_per_hour'][i]:.2f}",
            ]
        )
    table = format_table(
        ["hour", "C/S cost ($/h)", "P2P cost ($/h)"],
        rows,
        title="Fig 10 — overall VM rental cost",
    )
    ratio = data["p2p_average"] / max(data["cs_average"], 1e-9)
    summary = (
        f"averages: C/S ${data['cs_average']:.2f}/h, "
        f"P2P ${data['p2p_average']:.2f}/h (P2P/CS = {ratio:.2f}; "
        "paper: $48 vs $4.27, ratio 0.09)\n"
        f"storage: C/S ${data['cs_storage_cost_per_day']:.4f}/day, "
        f"P2P ${data['p2p_storage_cost_per_day']:.4f}/day "
        "(paper: ~$0.018/day, negligible)"
    )
    emit("fig10_vm_cost", table + "\n\n" + summary)

    # Paper shape: P2P strictly cheaper; storage negligible vs VM cost.
    assert data["p2p_average"] < data["cs_average"]
    assert data["cs_storage_cost_per_day"] < 0.01 * 24 * data["cs_average"]

    # Timed kernel: a day of hourly billing-level changes + final report.
    specs = {s.name: s for s in cs_result.scenario.vm_clusters()}
    nfs = {s.name: s for s in cs_result.scenario.nfs_clusters()}

    def billing_day():
        meter = BillingMeter(specs, nfs)
        for hour in range(24):
            meter.record_vm_usage(
                hour * 3600.0, {name: (hour % 7) for name in specs}
            )
        return meter.report(24 * 3600.0).total_cost

    benchmark(billing_day)
