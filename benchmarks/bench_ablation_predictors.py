"""Ablation: demand predictors (paper Section V-B's future-work knob).

The paper provisions from last-interval statistics and notes that "more
accurate prediction methods based on historical data ... can be applied
for better performance". This bench runs the same diurnal flash-crowd day
under the last-interval rule, a 3-interval moving average, and an EWMA,
and compares quality and cost.

Timed kernel: a predictor sweep over a day of observations.
"""

import os

import numpy as np
import pytest

from conftest import registry_scenario
from repro.api import EngineConfig, open_run
from repro.experiments.registry import get, make_predictor
from repro.experiments.reporting import format_table

# The ``ablation-predictors`` registry entry's grid (one cell per
# predictor; ``repro sweep ablation-predictors`` runs the same matrix).
PREDICTOR_KEYS = tuple(get("ablation-predictors").grid["predictor"])


@pytest.fixture(scope="module")
def predictor_results():
    horizon = 48.0 if os.environ.get("REPRO_FULL") else 12.0
    results = {}
    for key in PREDICTOR_KEYS:
        scenario = registry_scenario(
            "fig04", mode="client-server", horizon_hours=horizon
        )
        with open_run(EngineConfig(spec=scenario, predictor=key)) as run:
            results[key] = run.result()
    return results


def test_predictor_ablation(benchmark, predictor_results, emit):
    rows = []
    for name, result in predictor_results.items():
        shortfalls = [s.shortfall for s in result.simulation.bandwidth]
        rows.append(
            [
                name,
                f"{result.average_quality:.3f}",
                f"{result.mean_vm_cost_per_hour:.2f}",
                f"{np.mean(result.provisioned_mbps()):.0f}",
                f"{np.mean(shortfalls) * 8 / 1e6:.1f}",
            ]
        )
    table = format_table(
        ["predictor", "quality", "VM $/h", "reserved Mbps", "shortfall Mbps"],
        rows,
        title="Ablation — arrival-rate predictors on the diurnal workload",
    )
    emit("ablation_predictors", table)

    qualities = [r.average_quality for r in predictor_results.values()]
    assert all(q >= 0.85 for q in qualities)

    # Timed kernel: a predictor update/predict sweep.
    observations = np.abs(np.sin(np.linspace(0, 6.28, 24))) + 0.1

    def sweep():
        predictor = make_predictor("ewma")
        total = 0.0
        for channel in range(20):
            for rate in observations:
                predictor.observe(channel, float(rate))
                total += predictor.predict(channel)
        return total

    benchmark(sweep)
