"""Fig 5: average streaming quality in the VoD system over time.

Paper: client-server averages 0.97; P2P averages 0.95 — a minor quality
tradeoff for the large cost saving.

Timed kernel: the per-sample quality computation over the user stores
(the metric the system evaluates every five minutes).

Registry scenario: ``fig05`` (``repro sweep fig05``).
"""

import numpy as np

from repro.experiments.figures import fig5_streaming_quality
from repro.experiments.reporting import downsample, format_table
from repro.vod.user import UserStore


def test_fig05_streaming_quality(benchmark, cs_result, p2p_result, emit):
    data = fig5_streaming_quality(cs_result, p2p_result)

    cs_q = downsample(list(data["cs_quality"]), 12)
    p2p_q = downsample(list(data["p2p_quality"]), 12)
    hours = downsample(list(data["cs_hours"]), 12)
    rows = [
        [f"{h:.1f}", f"{a:.3f}", f"{b:.3f}"]
        for h, a, b in zip(hours, cs_q, p2p_q)
    ]
    table = format_table(
        ["hour", "C/S quality", "P2P quality"],
        rows,
        title="Fig 5 — average streaming quality",
    )
    summary = (
        f"averages: C/S {float(data['cs_average']):.3f} (paper: 0.97), "
        f"P2P {float(data['p2p_average']):.3f} (paper: 0.95)"
    )
    emit("fig05_streaming_quality", table + "\n\n" + summary)

    # Paper shape: both averages high and close to each other. (At paper
    # scale our ordering reverses — C/S dips on flash-crowd ramps from the
    # last-interval predictor's lag while the P2P swarm's supply scales
    # instantly — see EXPERIMENTS.md; we assert closeness, not order.)
    assert float(data["cs_average"]) >= 0.88
    assert float(data["p2p_average"]) >= 0.88
    assert abs(float(data["p2p_average"]) - float(data["cs_average"])) <= 0.1

    # Timed kernel: the 5-minute smooth-user sweep on a busy store.
    store = UserStore(20)
    rng = np.random.default_rng(0)
    for i in range(2000):
        uid = store.add_user(float(i), int(rng.integers(0, 20)), 50_000.0)
        if rng.random() < 0.1:
            store.complete_chunk(uid, float(i), smooth=False)

    benchmark(lambda: store.smooth_users(2000.0, 300.0, overdue_after=300.0))
