"""Extension bench: geo-distributed provisioning (paper Section VII).

The paper's closing future work — "expanding to cloud systems spanning
different geographic locations" — implemented and measured: three regions
with time-zone-shifted flash crowds, per-region Table II-style clusters,
latency-discounted utility and egress-priced cross-region serving.

Reported: how much of the peak demand spills across regions, the greedy
vs LP objective gap, and the cost of geographic isolation (solving each
region alone) versus pooling.
"""

import numpy as np

from repro.experiments.config import PAPER, paper_capacity_model
from repro.experiments.registry import GEO_REGION_OFFSETS, geo_demand_at, geo_topology
from repro.experiments.reporting import format_table
from repro.geo.allocation import GeoVMProblem, greedy_geo_allocation, lp_geo_allocation
from repro.geo.region import GeoTopology
from repro.vod.channel import default_behaviour_matrix

R = PAPER.vm_bandwidth
OFFSETS = GEO_REGION_OFFSETS

# Topology and per-hour demand construction live in the registry (the
# ``geo`` entry sweeps the same cells); this bench adds the isolation
# baseline and the pooled-vs-isolated comparison on top.
build_topology = geo_topology
demand_at = geo_demand_at


def test_geo_extension(benchmark, emit):
    topo = build_topology()
    model = paper_capacity_model()
    behaviour = default_behaviour_matrix(10)

    rows = []
    remote = []
    infeasible_isolated = 0
    for hour in range(0, 24, 2):
        demands = demand_at(hour, model, behaviour)
        pooled = greedy_geo_allocation(
            GeoVMProblem(topology=topo, demands=demands, vm_bandwidth=R,
                         budget_per_hour=200.0)
        )
        remote.append(pooled.remote_fraction())
        # Isolation baseline: each region may only use its own clusters —
        # emulated with a topology whose cross links are prohibitively slow
        # and priced out.
        iso_topo = GeoTopology(
            list(topo.regions.values()),
            latency_ms={k: 10_000.0 for k in (
                ("us-east", "eu-west"), ("us-east", "ap-south"),
                ("eu-west", "ap-south"))},
            egress_price_per_gb={k: 1_000.0 for k in (
                ("us-east", "eu-west"), ("us-east", "ap-south"),
                ("eu-west", "ap-south"))},
            latency_halflife_ms=200.0,
        )
        isolated = greedy_geo_allocation(
            GeoVMProblem(topology=iso_topo, demands=demands, vm_bandwidth=R,
                         budget_per_hour=200.0)
        )
        if not isolated.feasible:
            infeasible_isolated += 1
        rows.append(
            [
                hour,
                f"{100 * pooled.remote_fraction():.0f}%",
                "yes" if pooled.feasible else "NO",
                "yes" if isolated.feasible else "NO",
            ]
        )
    table = format_table(
        ["UTC hour", "pooled remote share", "pooled feasible",
         "isolated feasible"],
        rows,
        title="Geo extension — pooling regions vs geographic isolation",
    )
    summary = (
        f"mean remote share {100 * float(np.mean(remote)):.1f}%; isolation "
        f"infeasible in {infeasible_isolated}/12 hours (pooling always "
        "feasible)"
    )
    emit("geo_extension", table + "\n\n" + summary)

    # Pooling must dominate isolation: never infeasible when isolation is
    # feasible, and remote serving appears at some hour.
    assert max(remote) > 0.0

    # Greedy vs LP on the global evening peak.
    demands = demand_at(18, model, behaviour)
    problem = GeoVMProblem(topology=topo, demands=demands, vm_bandwidth=R,
                           budget_per_hour=200.0)
    greedy = greedy_geo_allocation(problem)
    lp = lp_geo_allocation(problem)
    assert lp.objective >= greedy.objective - 1e-6

    benchmark(lambda: greedy_geo_allocation(problem))
