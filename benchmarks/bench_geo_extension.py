"""Extension bench: geo-distributed provisioning (paper Section VII).

The paper's closing future work — "expanding to cloud systems spanning
different geographic locations" — implemented and measured: three regions
with time-zone-shifted flash crowds, per-region Table II-style clusters,
latency-discounted utility and egress-priced cross-region serving.

Reported: how much of the peak demand spills across regions, the greedy
vs LP objective gap, and the cost of geographic isolation (solving each
region alone) versus pooling.
"""

import numpy as np

from repro.cloud.cluster import VirtualClusterSpec
from repro.experiments.config import PAPER, paper_capacity_model
from repro.experiments.reporting import format_table
from repro.geo.allocation import GeoVMProblem, greedy_geo_allocation, \
    lp_geo_allocation
from repro.geo.region import GeoTopology, RegionSpec
from repro.queueing.capacity import solve_channel_capacity
from repro.vod.channel import default_behaviour_matrix
from repro.workload.diurnal import DiurnalPattern

R = PAPER.vm_bandwidth
OFFSETS = {"us-east": -5.0, "eu-west": 1.0, "ap-south": 5.5}


def build_topology(vms_per_cluster=10):
    def clusters(price_factor):
        rows = [("standard", 0.6, 0.45), ("medium", 0.8, 0.70),
                ("advanced", 1.0, 0.80)]
        return tuple(
            VirtualClusterSpec(n, u, p * price_factor, vms_per_cluster, R)
            for n, u, p in rows
        )

    regions = [
        RegionSpec("us-east", clusters(1.00)),
        RegionSpec("eu-west", clusters(1.10)),
        RegionSpec("ap-south", clusters(0.85)),
    ]
    return GeoTopology(
        regions,
        latency_ms={
            ("us-east", "eu-west"): 80.0,
            ("us-east", "ap-south"): 220.0,
            ("eu-west", "ap-south"): 150.0,
        },
        egress_price_per_gb={
            ("us-east", "eu-west"): 0.02,
            ("us-east", "ap-south"): 0.05,
            ("eu-west", "ap-south"): 0.04,
        },
        latency_halflife_ms=200.0,
    )


def demand_at(hour_utc, model, behaviour, base_rate=0.18):
    pattern = DiurnalPattern()
    demands = {}
    for region, offset in OFFSETS.items():
        factor = pattern.factor(((hour_utc + offset) % 24) * 3600.0)
        result = solve_channel_capacity(
            model, behaviour, base_rate * factor, alpha=0.8
        )
        demands[region] = {i: float(d) for i, d in enumerate(result.cloud_demand)}
    return demands


def test_geo_extension(benchmark, emit):
    topo = build_topology()
    model = paper_capacity_model()
    behaviour = default_behaviour_matrix(10)

    rows = []
    remote = []
    infeasible_isolated = 0
    for hour in range(0, 24, 2):
        demands = demand_at(hour, model, behaviour)
        pooled = greedy_geo_allocation(
            GeoVMProblem(topology=topo, demands=demands, vm_bandwidth=R,
                         budget_per_hour=200.0)
        )
        remote.append(pooled.remote_fraction())
        # Isolation baseline: each region may only use its own clusters —
        # emulated with a topology whose cross links are prohibitively slow
        # and priced out.
        iso_topo = GeoTopology(
            list(topo.regions.values()),
            latency_ms={k: 10_000.0 for k in (
                ("us-east", "eu-west"), ("us-east", "ap-south"),
                ("eu-west", "ap-south"))},
            egress_price_per_gb={k: 1_000.0 for k in (
                ("us-east", "eu-west"), ("us-east", "ap-south"),
                ("eu-west", "ap-south"))},
            latency_halflife_ms=200.0,
        )
        isolated = greedy_geo_allocation(
            GeoVMProblem(topology=iso_topo, demands=demands, vm_bandwidth=R,
                         budget_per_hour=200.0)
        )
        if not isolated.feasible:
            infeasible_isolated += 1
        rows.append(
            [
                hour,
                f"{100 * pooled.remote_fraction():.0f}%",
                "yes" if pooled.feasible else "NO",
                "yes" if isolated.feasible else "NO",
            ]
        )
    table = format_table(
        ["UTC hour", "pooled remote share", "pooled feasible",
         "isolated feasible"],
        rows,
        title="Geo extension — pooling regions vs geographic isolation",
    )
    summary = (
        f"mean remote share {100 * float(np.mean(remote)):.1f}%; isolation "
        f"infeasible in {infeasible_isolated}/12 hours (pooling always "
        "feasible)"
    )
    emit("geo_extension", table + "\n\n" + summary)

    # Pooling must dominate isolation: never infeasible when isolation is
    # feasible, and remote serving appears at some hour.
    assert max(remote) > 0.0

    # Greedy vs LP on the global evening peak.
    demands = demand_at(18, model, behaviour)
    problem = GeoVMProblem(topology=topo, demands=demands, vm_bandwidth=R,
                           budget_per_hour=200.0)
    greedy = greedy_geo_allocation(problem)
    lp = lp_geo_allocation(problem)
    assert lp.objective >= greedy.objective - 1e-6

    benchmark(lambda: greedy_geo_allocation(problem))
