"""Ablation: the paper's greedy heuristics vs exact/LP optima.

The paper solves Eqns (6) and (7) with utility-per-dollar greedy
heuristics but never quantifies their optimality gap. This bench does,
on the paper's own cluster configurations, through the registry's
``micro-heuristics`` scenario (``repro sweep micro-heuristics`` runs the
same cells):

* VM configuration is an LP (z is continuous), so ``lp_vm_allocation`` is
  the true optimum;
* storage rental is integral; we report the LP-relaxation bound, and the
  exact enumeration oracle on a small instance.

Notable genuine finding: with Table II/III prices and slack budgets the
u/p ordering is *not* utility-optimal — e.g. every chunk fits on the NFS
cluster with the best u/p while the objective only rewards u, leaving
~20% of storage utility on the table.
"""

import numpy as np
import pytest

from repro.core.storage_rental import (
    StorageProblem,
    exhaustive_storage_rental,
    greedy_storage_rental,
)
from repro.core.vm_allocation import VMProblem, greedy_vm_allocation
from repro.experiments.config import paper_nfs_clusters, paper_vm_clusters
from repro.experiments.registry import get as registry_scenario, heuristic_demands
from repro.experiments.reporting import format_table

R = 10e6 / 8.0
CHUNK = 15e6


def test_vm_heuristic_vs_lp(benchmark, emit):
    spec = registry_scenario("micro-heuristics")
    rows = []
    gaps = []
    for seed in range(5):
        metrics = spec.run_cell({}, seed=seed)
        gaps.append(metrics["vm_gap"])
        rows.append(
            [
                seed,
                f"{metrics['vm_greedy_objective']:.1f}",
                f"{metrics['vm_lp_objective']:.1f}",
                f"{100 * metrics['vm_gap']:.1f}%",
                f"{metrics['vm_greedy_cost_per_hour']:.1f}",
                f"{metrics['vm_lp_cost_per_hour']:.1f}",
            ]
        )
    table = format_table(
        ["seed", "greedy obj", "LP obj", "gap", "greedy $", "LP $"],
        rows,
        title="Ablation — VM configuration: greedy heuristic vs LP optimum "
        "(80 chunks, Table II clusters, B_M=$100/h)",
    )
    note = (
        "The greedy u~/p~ ordering fills the cheap 'standard' cluster first; "
        "the LP buys utility with the slack budget instead. Both always "
        "cover the demand; the gap is pure objective value."
    )
    emit("ablation_vm_heuristic", table + "\n\n" + note)

    # The heuristic must never beat the LP, and must stay within a sane gap.
    assert all(g >= -1e-9 for g in gaps)
    assert np.mean(gaps) < 0.5

    problem = VMProblem(
        demands=heuristic_demands(80, 0),
        vm_bandwidth=R,
        clusters=paper_vm_clusters(),
        budget_per_hour=100.0,
    )
    benchmark(lambda: greedy_vm_allocation(problem))


def test_storage_heuristic_vs_bounds(benchmark, emit):
    spec = registry_scenario("micro-heuristics")
    rows = []
    for seed in range(5):
        metrics = spec.run_cell({}, seed=100 + seed)
        rows.append(
            [
                100 + seed,
                f"{metrics['storage_greedy_objective']:.2e}",
                f"{metrics['storage_lp_bound']:.2e}",
                f"{100 * metrics['storage_gap']:.1f}%",
            ]
        )
    table = format_table(
        ["seed", "greedy obj", "LP bound", "gap"],
        rows,
        title="Ablation — storage rental: greedy heuristic vs LP bound "
        "(60 chunks, Table III clusters, B_S=$1/h)",
    )
    emit("ablation_storage_heuristic", table)

    # Exact oracle agreement on a tight small instance where capacity binds
    # (2 + 2 slots for 4 chunks) so ordering decisions matter.
    from repro.cloud.cluster import NFSClusterSpec

    small_clusters = [
        NFSClusterSpec("a", 1.0, 2e-4, 2 * CHUNK),
        NFSClusterSpec("b", 0.7, 1e-4, 2 * CHUNK),
    ]
    small = StorageProblem(
        demands={("c", i): float(i + 1) for i in range(4)},
        chunk_size_bytes=CHUNK,
        clusters=small_clusters,
        budget_per_hour=1.0,
    )
    greedy_small = greedy_storage_rental(small)
    exact_small = exhaustive_storage_rental(small)
    assert greedy_small.objective <= exact_small.objective + 1e-9
    # Genuine finding: on this tight instance the u/p ordering picks the
    # *cheap* cluster (b: 0.7/1e-4 beats a: 1.0/2e-4 on u/p) for the hot
    # chunks even though the objective only rewards u — the exact optimum
    # puts the hot chunks on the high-utility cluster instead.
    # greedy = 0.7*(4+3) + 1.0*(2+1) = 7.9 < 9.1 = 1.0*(4+3) + 0.7*(2+1).
    assert greedy_small.objective == pytest.approx(7.9)
    assert exact_small.objective == pytest.approx(9.1)

    # Same instance the pre-migration bench timed (default scale=2.0),
    # so the recorded perf series stays comparable across PRs.
    problem = StorageProblem(
        demands=heuristic_demands(60, 100),
        chunk_size_bytes=CHUNK,
        clusters=paper_nfs_clusters(),
        budget_per_hour=1.0,
    )
    benchmark(lambda: greedy_storage_rental(problem))
