"""Fig 6: channel streaming quality vs channel size (client-server).

Paper: quality is high regardless of channel size — the provisioning
scales capacity with each channel's population, so big channels are not
worse off than small ones.

Timed kernel: extracting the scatter from the recorded samples.

Registry scenario: ``fig06`` (``repro sweep fig06``).
"""

import numpy as np

from repro.experiments.figures import fig6_quality_vs_channel_size
from repro.experiments.reporting import format_table


def test_fig06_quality_vs_channel_size(benchmark, cs_result, emit):
    data = fig6_quality_vs_channel_size(cs_result)
    sizes = data["channel_size"]
    quality = data["quality"]
    assert sizes.size > 0

    # Bucket the scatter by channel size for a printable view.
    edges = np.quantile(sizes, [0.0, 0.25, 0.5, 0.75, 1.0])
    rows = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        mask = (sizes >= lo) & (sizes <= hi)
        if mask.any():
            rows.append(
                [
                    f"{lo:.0f}-{hi:.0f}",
                    int(mask.sum()),
                    f"{quality[mask].mean():.3f}",
                    f"{quality[mask].min():.3f}",
                ]
            )
    table = format_table(
        ["channel size", "samples", "mean quality", "min quality"],
        rows,
        title="Fig 6 — streaming quality vs channel size (client-server)",
    )
    emit("fig06_quality_vs_size", table)

    # Paper shape: good quality across the size range; in particular the
    # largest channels are not systematically degraded.
    big = sizes >= np.median(sizes)
    small = sizes < np.median(sizes)
    if big.any() and small.any():
        assert quality[big].mean() >= quality[small].mean() - 0.1
    assert quality.mean() >= 0.9

    benchmark(lambda: fig6_quality_vs_channel_size(cs_result))
