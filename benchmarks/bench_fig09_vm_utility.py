"""Fig 9: evolution of aggregate VM utility in representative channels.

Paper: the VM configuration heuristic continually re-fits the fleet to
each channel's demand, so the per-channel aggregate VM utility
(sum u~_v * z_iv) follows the channel's popularity over the day.

Timed kernel: one full VM-allocation heuristic solve over the catalogue.

Registry scenario: ``fig09`` (``repro sweep fig09``).
"""

import numpy as np

from repro.core.demand import aggregate_demand
from repro.core.vm_allocation import VMProblem, greedy_vm_allocation
from repro.experiments.figures import fig9_vm_utility
from repro.experiments.reporting import format_table


def test_fig09_vm_utility(benchmark, p2p_result, emit):
    num_channels = p2p_result.scenario.num_channels
    channel_ids = sorted({0, num_channels // 2, num_channels - 1})
    data = fig9_vm_utility(p2p_result, channel_ids)

    rows = []
    idx = [int(i) for i in np.linspace(0, data["hours"].size - 1, 10)]
    for i in idx:
        rows.append(
            [f"{data['hours'][i]:.0f}"]
            + [f"{data[f'channel_{c}'][i]:.2f}" for c in channel_ids]
        )
    table = format_table(
        ["hour"] + [f"ch{c} utility" for c in channel_ids],
        rows,
        title="Fig 9 — aggregate VM utility per channel (sum u~_v z_iv)",
    )
    emit("fig09_vm_utility", table)

    # Paper shape: utilities are nonnegative, move over time (adaptive),
    # and the fleet-wide utility stays within what the budget can buy.
    for c in channel_ids:
        series = data[f"channel_{c}"]
        assert np.all(series >= 0)
    total = sum(data[f"channel_{c}"] for c in channel_ids)
    assert total.max() > 0.0

    demand = aggregate_demand(p2p_result.decisions[-1].demands)
    problem = VMProblem(
        demands=demand,
        vm_bandwidth=p2p_result.scenario.constants.vm_bandwidth,
        clusters=p2p_result.scenario.vm_clusters(),
        budget_per_hour=p2p_result.scenario.sla_terms().vm_budget_per_hour,
    )
    benchmark(lambda: greedy_vm_allocation(problem))
