"""Fig 8: evolution of aggregate storage utility in representative channels.

Paper: the storage heuristic adapts placements to popularity, so each
channel's aggregate storage utility (sum u_f * Delta_i over its chunks)
tracks its demand over the day, with bigger channels carrying more
utility.

Timed kernel: one full storage-rental heuristic solve over the catalogue.

Registry scenario: ``fig08`` (``repro sweep fig08``).
"""

import numpy as np

from repro.core.demand import aggregate_demand
from repro.core.storage_rental import StorageProblem, greedy_storage_rental
from repro.experiments.figures import fig8_storage_utility
from repro.experiments.reporting import format_table


def test_fig08_storage_utility(benchmark, p2p_result, emit):
    num_channels = p2p_result.scenario.num_channels
    # Representative channels across the popularity range (the paper picks
    # average sizes 60/100/200/600; we take the Zipf spread we have).
    channel_ids = sorted({0, num_channels // 2, num_channels - 1})
    data = fig8_storage_utility(p2p_result, channel_ids)

    rows = []
    idx = [int(i) for i in np.linspace(0, data["hours"].size - 1, 10)]
    for i in idx:
        rows.append(
            [f"{data['hours'][i]:.0f}"]
            + [f"{data[f'channel_{c}'][i]:.1f}" for c in channel_ids]
        )
    table = format_table(
        ["hour"] + [f"ch{c} utility" for c in channel_ids],
        rows,
        title="Fig 8 — aggregate storage utility per channel "
        "(utility x demand, in streaming-rate units)",
    )
    emit("fig08_storage_utility", table)

    # Shape: utilities are positive and respond to demand over the day
    # (adaptive placement), for every tracked channel. Note a genuine
    # deviation from the paper's Fig 8 ordering: in P2P mode the *cloud*
    # demand Delta of a popular channel is lower (more peers to offload
    # to), so its storage utility need not dominate — see EXPERIMENTS.md.
    for c in channel_ids:
        series = data[f"channel_{c}"]
        assert np.all(series >= 0.0)
        assert series.max() > 0.0
    popular = data[f"channel_{channel_ids[0]}"]
    assert popular.max() > popular.min()  # placement adapts over the day

    # Timed kernel: one storage heuristic solve on the live demand.
    demand = aggregate_demand(p2p_result.decisions[-1].demands)
    problem = StorageProblem(
        demands=demand,
        chunk_size_bytes=p2p_result.scenario.constants.chunk_size_bytes,
        clusters=p2p_result.scenario.nfs_clusters(),
        budget_per_hour=1.0,
    )
    benchmark(lambda: greedy_storage_rental(problem))
