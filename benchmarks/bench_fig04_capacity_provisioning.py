"""Fig 4: cloud capacity provisioning vs usage over time.

Paper: over ~100 hours, the reserved bandwidth stays above the used
bandwidth in the vast majority of intervals for both modes, and the P2P
mode's reserved/used levels sit far below the client-server mode's.

The timed kernel is the controller's recurring hourly computation — the
full Section IV demand analysis for one channel — since that is the
operation whose cost scales with the catalogue.

Registry scenario: ``fig04`` (``repro sweep fig04``); the shared
closed-loop fixtures in conftest.py are its two grid cells.
"""

import numpy as np

from repro.experiments.figures import fig4_capacity_provisioning
from repro.experiments.reporting import format_table
from repro.queueing.capacity import solve_channel_capacity


def test_fig04_capacity_provisioning(benchmark, cs_result, p2p_result, emit):
    data = fig4_capacity_provisioning(cs_result, p2p_result)

    rows = []
    idx = [int(i) for i in np.linspace(0, data["hours"].size - 1, 12)]
    for i in idx:
        rows.append(
            [
                f"{data['hours'][i]:.0f}",
                f"{data['cs_reserved_mbps'][i]:.0f}",
                f"{data['cs_used_mbps'][i]:.0f}",
                f"{data['p2p_reserved_mbps'][i]:.0f}",
                f"{data['p2p_used_mbps'][i]:.0f}",
            ]
        )
    table = format_table(
        ["hour", "C/S reserved", "C/S used", "P2P reserved", "P2P used"],
        rows,
        title="Fig 4 — cloud capacity provisioning vs usage (Mbps)",
    )
    covered_cs = float(
        np.mean(data["cs_reserved_mbps"] >= data["cs_used_mbps"])
    )
    covered_p2p = float(
        np.mean(data["p2p_reserved_mbps"] >= data["p2p_used_mbps"])
    )
    summary = (
        f"reserved >= used: C/S {100 * covered_cs:.0f}% of intervals, "
        f"P2P {100 * covered_p2p:.0f}% of intervals\n"
        f"mean reserved: C/S {data['cs_reserved_mbps'].mean():.0f} Mbps, "
        f"P2P {data['p2p_reserved_mbps'].mean():.0f} Mbps "
        f"(P2P/CS = {data['p2p_reserved_mbps'].mean() / data['cs_reserved_mbps'].mean():.2f})"
    )
    emit("fig04_capacity_provisioning", table + "\n\n" + summary)

    # Paper shape assertions.
    assert covered_cs >= 0.8
    assert covered_p2p >= 0.8
    assert data["p2p_reserved_mbps"].mean() < data["cs_reserved_mbps"].mean()
    assert data["p2p_used_mbps"].mean() < data["cs_used_mbps"].mean()

    # Timed kernel: one channel's hourly capacity analysis.
    scenario = cs_result.scenario
    model = scenario.capacity_model()
    behaviour = scenario.behaviour_matrix()
    rate = scenario.total_arrival_rate() / scenario.num_channels

    benchmark(lambda: solve_channel_capacity(model, behaviour, rate, alpha=0.8))
