"""Fig 11: streaming quality at different peer-upload sufficiency levels.

Paper: with the ratio of mean peer upload capacity to the streaming rate
at 0.9, 1.0 and 1.2, the P2P system's average quality stays satisfactory
(0.95, 0.95, 1.0) — the cloud absorbs whatever the swarm cannot supply.

This bench runs three additional (shorter) closed-loop P2P scenarios, one
per ratio — the ``fig11`` registry entry's grid (``repro sweep fig11``).
Timed kernel: the end-to-end P2P capacity analysis for one channel, the
per-interval cost of the sufficiency machinery.
"""

import os

import pytest

from conftest import registry_scenario
from repro.api import open_run
from repro.experiments.figures import fig11_quality_by_peer_bandwidth
from repro.experiments.registry import get
from repro.experiments.reporting import format_table
from repro.p2p.contribution import solve_p2p_channel_capacity

RATIOS = tuple(get("fig11").grid["upload_ratio"])


@pytest.fixture(scope="module")
def ratio_results():
    horizon = 24.0 if os.environ.get("REPRO_FULL") else 8.0
    results = {}
    for ratio in RATIOS:
        scenario = registry_scenario(
            "fig11", upload_ratio=ratio, horizon_hours=horizon
        )
        with open_run(scenario) as run:
            results[ratio] = run.result()
    return results


def test_fig11_quality_by_peer_bandwidth(benchmark, ratio_results, emit):
    data = fig11_quality_by_peer_bandwidth(ratio_results)

    rows = []
    for ratio in RATIOS:
        series = data[ratio]
        rows.append(
            [
                f"{ratio:.1f}",
                f"{float(series['average']):.3f}",
                f"{series['quality'].min():.3f}",
                f"{ratio_results[ratio].mean_vm_cost_per_hour:.2f}",
            ]
        )
    table = format_table(
        ["u/r ratio", "avg quality", "min quality", "VM cost ($/h)"],
        rows,
        title="Fig 11 — P2P streaming quality vs peer bandwidth sufficiency "
        "(paper avgs: 0.95 / 0.95 / 1.00)",
    )
    emit("fig11_peer_bandwidth", table)

    # Paper shape: satisfactory quality at every ratio; quality (weakly)
    # improves and cloud cost (weakly) falls as peers get stronger.
    avgs = [float(data[r]["average"]) for r in RATIOS]
    costs = [ratio_results[r].mean_vm_cost_per_hour for r in RATIOS]
    assert all(a >= 0.9 for a in avgs)
    assert avgs[-1] >= avgs[0] - 0.02
    assert costs[-1] <= costs[0] + 1e-6

    scenario = ratio_results[1.0].scenario
    model = scenario.capacity_model()
    behaviour = scenario.behaviour_matrix()
    rate = scenario.total_arrival_rate() / scenario.num_channels
    benchmark(
        lambda: solve_p2p_channel_capacity(
            model, behaviour, rate, peer_upload=50_000.0, alpha=0.8
        )
    )
