"""Extension bench: start-up delay under the solved capacity plan.

The paper targets smooth playback (mean sojourn <= T0 in every chunk
queue) but does not report start-up delay, the metric its related work
(ref [17]) centres on. Since the start-up delay is exactly the first
chunk's sojourn, the capacity plan implies a full distribution for it.
The numbers come from the registry's ``micro-startup-delay`` scenario
(``repro sweep micro-startup-delay`` runs the same cells over the
arrival-rate grid); the closed form is cross-checked against the
event-driven queue simulator here.
"""

import numpy as np

from repro.experiments.config import paper_capacity_model
from repro.experiments.registry import get as registry_scenario
from repro.experiments.reporting import format_table
from repro.queueing.capacity import solve_channel_capacity
from repro.queueing.startup import channel_startup_delay
from repro.queueing.transitions import uniform_jump_matrix
from repro.vod.queue_sim import JacksonChannelSimulator


def test_startup_delay(benchmark, emit):
    model = paper_capacity_model()
    behaviour = uniform_jump_matrix(10, 0.6, 0.2)
    spec = registry_scenario("micro-startup-delay")

    rows = []
    means = []
    for rate in spec.grid["arrival_rate"]:
        metrics = spec.run_cell({"arrival_rate": rate})
        means.append(metrics["mean_startup_seconds"])
        rows.append(
            [
                f"{rate:.2f}",
                int(metrics["servers_first_chunk"]),
                f"{metrics['wait_probability']:.3f}",
                f"{metrics['mean_startup_seconds']:.1f}",
                f"{metrics['p95_startup_seconds']:.1f}",
                f"{metrics['p99_startup_seconds']:.1f}",
            ]
        )
    table = format_table(
        ["arrival rate (1/s)", "m_1", "P(wait)", "mean (s)", "p95 (s)",
         "p99 (s)"],
        rows,
        title="Start-up delay implied by the capacity plan "
        "(first-chunk sojourn; T0 = 300 s)",
    )
    emit("startup_delay", table)

    # Under the solved plan the mean start-up delay never exceeds T0 (the
    # smooth-playback target subsumes it), at any load level.
    assert all(m <= model.chunk_duration + 1e-9 for m in means)

    # Cross-check one point against the stochastic simulator.
    rate = 0.5
    capacity = solve_channel_capacity(model, behaviour, rate, alpha=0.8)
    startup = channel_startup_delay(capacity)
    sim = JacksonChannelSimulator(
        behaviour, rate, model.service_rate, capacity.servers,
        alpha=0.8, seed=31,
    )
    result = sim.run(horizon=150_000.0, warmup=15_000.0)
    np.testing.assert_allclose(result.mean_sojourn[0], startup.mean, rtol=0.15)

    benchmark(lambda: channel_startup_delay(
        solve_channel_capacity(model, behaviour, 0.5, alpha=0.8)
    ).quantile(0.99))
