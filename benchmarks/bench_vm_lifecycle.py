"""Section VI-C (text): VM startup/shutdown latency and parallel launches.

Paper: "It takes around 25 seconds to turn on a VM, and even less time to
shut it down. As VMs can be launched (or shut down) in parallel, latency
involved in VM provisioning is small (at seconds), which enables timely
service provisioning."

The fleet-level numbers come from the registry's ``micro-vm-lifecycle``
scenario (``repro sweep micro-vm-lifecycle`` runs the same cell); the
single-VM boot-edge assertions need intermediate clock access and stay
local. The timed kernel is the scheduler's instant-mode scale-to path.
"""

import pytest

from repro.cloud.cluster import VirtualClusterSpec
from repro.cloud.vm import VMPool
from repro.experiments.registry import get as registry_scenario
from repro.experiments.reporting import format_table
from repro.sim.engine import Simulator


def spec(max_vms=75):
    return VirtualClusterSpec("standard", 0.6, 0.45, max_vms, 1.25e6)


def test_vm_lifecycle(benchmark, emit):
    # --- single VM boot takes ~25 simulated seconds (edge timing needs
    # intermediate clock access, so this stays outside the registry) ----
    sim = Simulator()
    pool = VMPool(spec(), sim)
    pool.launch(1)
    sim.run(until=24.9)
    still_booting = pool.booting
    sim.run(until=25.1)
    single_running = pool.running
    assert still_booting == 1
    assert single_running == 1

    # --- fleet boot/shutdown through the registry cell -----------------
    metrics = registry_scenario("micro-vm-lifecycle").run_cell({"fleet": 75})
    assert metrics["boot_seconds"] == pytest.approx(25.0)
    assert metrics["fleet_running_after_boot"] == 75
    assert metrics["shutdown_seconds"] < metrics["boot_seconds"]

    table = format_table(
        ["property", "value", "paper"],
        [
            ["single VM boot (s)", 25.0, "~25"],
            ["75-VM parallel launch (s)", metrics["boot_seconds"],
             "~25 (parallel)"],
            ["shutdown (s)", metrics["shutdown_seconds"], "less than boot"],
        ],
        title="VM lifecycle (Section VI-C)",
    )
    emit("vm_lifecycle", table)

    # Timed kernel: an instant-mode scale-to cycle across a cluster.
    pool3 = VMPool(spec())

    def scale_cycle():
        pool3.scale_to(75)
        pool3.scale_to(10)
        return pool3.active

    benchmark(scale_cycle)
