"""Section VI-C (text): VM startup/shutdown latency and parallel launches.

Paper: "It takes around 25 seconds to turn on a VM, and even less time to
shut it down. As VMs can be launched (or shut down) in parallel, latency
involved in VM provisioning is small (at seconds), which enables timely
service provisioning."

This bench verifies those properties on the simulated cloud substrate and
times the scheduler's scale-to path for a full cluster.
"""

import pytest

from repro.cloud.cluster import VirtualClusterSpec
from repro.cloud.vm import VMPool
from repro.experiments.reporting import format_table
from repro.sim.engine import Simulator


def spec(max_vms=75):
    return VirtualClusterSpec("standard", 0.6, 0.45, max_vms, 1.25e6)


def test_vm_lifecycle(benchmark, emit):
    # --- single VM boot takes ~25 simulated seconds -------------------
    sim = Simulator()
    pool = VMPool(spec(), sim)
    pool.launch(1)
    sim.run(until=24.9)
    still_booting = pool.booting
    sim.run(until=25.1)
    single_running = pool.running
    assert still_booting == 1
    assert single_running == 1

    # --- parallel launch: 75 VMs ready in the same ~25 seconds ---------
    sim2 = Simulator()
    fleet = VMPool(spec(), sim2)
    fleet.launch(75)
    sim2.run(until=25.1)
    fleet_running = fleet.running
    assert fleet_running == 75

    # --- shutdown faster than boot --------------------------------------
    fleet.shutdown(75)
    sim2.run(until=25.1 + 10.0 + 0.1)
    assert fleet.available_to_launch == 75

    table = format_table(
        ["property", "value", "paper"],
        [
            ["single VM boot (s)", 25.0, "~25"],
            ["75-VM parallel launch (s)", 25.0, "~25 (parallel)"],
            ["shutdown (s)", 10.0, "less than boot"],
        ],
        title="VM lifecycle (Section VI-C)",
    )
    emit("vm_lifecycle", table)

    # Timed kernel: an instant-mode scale-to cycle across a cluster.
    pool3 = VMPool(spec())

    def scale_cycle():
        pool3.scale_to(75)
        pool3.scale_to(10)
        return pool3.active

    benchmark(scale_cycle)
