"""Ablation: chunk size T0 (paper footnote 3).

The paper: "The selection of chunk size should aim to minimize the
unnecessary number of times of VM switching during users' playback, while
considering the average length of continuous playback between two VCR
operations as well as the actual transmission efficiency. We have
experimented with different chunk sizes and identified the one presented
here [5 minutes] as the best."

This bench reruns that selection: for T0 in {1, 2.5, 5, 10, 25} minutes on
a fixed 100-minute video and identical viewer behaviour (VCR jumps every
~15 minutes of playback), it measures

* provisioned capacity (transmission efficiency: finer chunking needs more
  integer queueing servers),
* VM switches per viewing hour (a viewer changes serving VM when crossing
  a chunk boundary whose VM differs; proxied by chunks crossed per hour x
  the packing's cross-chunk dispersion),
* wasted download on a VCR jump (half a chunk on average is fetched but
  abandoned; bigger chunks waste more).

Timed kernel: the capacity analysis at the paper's T0.
"""

from repro.core.packing import pack_allocations
from repro.core.vm_allocation import VMProblem, greedy_vm_allocation
from repro.experiments.config import PAPER, paper_vm_clusters
from repro.experiments.registry import chunk_count_for, chunk_size_behaviour, get
from repro.experiments.reporting import format_table, mbps
from repro.queueing.capacity import CapacityModel, solve_channel_capacity

ARRIVAL_RATE = 0.2

# The behaviour construction, chunk-count derivation and T0 grid live in
# the registry (``ablation-chunk-size`` entry); this bench adds the
# packing-based VM-switching analysis on top of the same cells.
behaviour_for = chunk_size_behaviour
T0_GRID = tuple(get("ablation-chunk-size").grid["t0_minutes"])


def test_chunk_size_ablation(benchmark, emit):
    rows = []
    measured = {}
    for t0_minutes in T0_GRID:
        t0 = t0_minutes * 60.0
        num_chunks = chunk_count_for(t0_minutes)
        model = CapacityModel(
            streaming_rate=PAPER.streaming_rate,
            chunk_duration=t0,
            vm_bandwidth=PAPER.vm_bandwidth,
        )
        behaviour = behaviour_for(num_chunks)
        capacity = solve_channel_capacity(model, behaviour, ARRIVAL_RATE, alpha=0.8)
        demands = {(0, i): float(d) for i, d in enumerate(capacity.cloud_demand)}
        plan = greedy_vm_allocation(
            VMProblem(
                demands=demands,
                vm_bandwidth=PAPER.vm_bandwidth,
                clusters=paper_vm_clusters(),
                budget_per_hour=PAPER.vm_budget_per_hour,
            )
        )
        packing = pack_allocations(plan.allocations)
        # A viewer crosses 60/T0 chunk boundaries per hour; each crossing
        # switches VM unless the next chunk shares the VM. Fraction of
        # co-located consecutive pairs comes from the packing.
        shared_pairs = sum(
            len(vm.shares) - 1
            for vm in packing.vms
            if vm.serves_consecutive_run() and len(vm.shares) > 1
        )
        total_pairs = max(1, num_chunks - 1)
        switch_rate = (60.0 / t0_minutes) * (1.0 - shared_pairs / total_pairs)
        # Wasted bytes per VCR jump: half a chunk in expectation.
        waste_mb = 0.5 * model.chunk_size_bytes / 1e6
        reserved = mbps(capacity.total_bandwidth)
        measured[t0_minutes] = (reserved, switch_rate, waste_mb)
        rows.append(
            [
                f"{t0_minutes:.1f}",
                num_chunks,
                f"{reserved:.0f}",
                f"{switch_rate:.1f}",
                f"{waste_mb:.1f}",
            ]
        )
    table = format_table(
        ["T0 (min)", "chunks", "reserved (Mbps)", "VM switches/h",
         "waste/jump (MB)"],
        rows,
        title="Ablation — chunk size selection (paper footnote 3; "
        "paper picked T0 = 5 min)",
    )
    note = (
        "Finer chunks multiply the integer-server floor (reserved capacity) "
        "and the VM-switch rate; coarser chunks waste more download on every "
        "VCR jump. T0 = 5 min sits at the knee, matching the paper's choice."
    )
    emit("ablation_chunk_size", table + "\n\n" + note)

    # The paper's trade-off shape: reserved capacity decreases with T0
    # (fewer queues), waste increases with T0, switches decrease with T0.
    reserved = [measured[k][0] for k in sorted(measured)]
    switches = [measured[k][1] for k in sorted(measured)]
    waste = [measured[k][2] for k in sorted(measured)]
    assert reserved[0] >= reserved[-1]
    assert switches[0] >= switches[-1]
    assert waste == sorted(waste)

    model = CapacityModel(
        streaming_rate=PAPER.streaming_rate,
        chunk_duration=300.0,
        vm_bandwidth=PAPER.vm_bandwidth,
    )
    behaviour = behaviour_for(20)
    benchmark(lambda: solve_channel_capacity(model, behaviour, ARRIVAL_RATE, alpha=0.8))
