"""Shared fixtures for the figure-reproduction benches.

The closed-loop runs are built through the scenario registry
(:mod:`repro.experiments.registry`) so the benches, ``repro run`` and
``repro sweep`` all exercise the same execution path: the shared
client-server/P2P runs here are exactly the ``fig04`` registry entry's
two grid cells.

The runs are expensive, so they are computed once per session and shared
by every bench. Default scale is CI-sized (12 simulated hours, 4
channels); set ``REPRO_FULL=1`` for the paper-scale run (100 simulated
hours, 20 channels, ~2500 users — expect several minutes per mode).

Each bench prints its figure's series (run pytest with ``-s`` to see them
inline) and writes them to ``benchmarks/results/``.
"""

import os
from pathlib import Path

import pytest

from repro.api import open_run
from repro.experiments.registry import get

RESULTS_DIR = Path(__file__).parent / "results"


def _full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes")


def registry_scenario(name: str, **params):
    """One registry cell's ScenarioConfig at the env-selected scale."""
    if _full_scale():
        params.setdefault("scale", "paper")
        params.setdefault("horizon_hours", 100.0)
    return get(name).config(**params)


@pytest.fixture(scope="session")
def cs_result():
    """Closed-loop client-server run shared by the benches (fig04 cell)."""
    with open_run(registry_scenario("fig04", mode="client-server")) as run:
        return run.result()


@pytest.fixture(scope="session")
def p2p_result():
    """Closed-loop P2P run shared by the benches (fig04 cell)."""
    with open_run(registry_scenario("fig04", mode="p2p")) as run:
        return run.result()


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir, capsys):
    """Print a figure report and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
