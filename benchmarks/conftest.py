"""Shared fixtures for the figure-reproduction benches.

The closed-loop runs are expensive, so they are computed once per session
and shared by every bench. Default scale is CI-sized (12 simulated hours,
4 channels); set ``REPRO_FULL=1`` for the paper-scale run (100 simulated
hours, 20 channels, ~2500 users — expect several minutes per mode).

Each bench prints its figure's series (run pytest with ``-s`` to see them
inline) and writes them to ``benchmarks/results/``.
"""

import os
from pathlib import Path

import pytest

from repro.experiments.config import scenario_from_env
from repro.experiments.runner import run_closed_loop

RESULTS_DIR = Path(__file__).parent / "results"


def _horizon_hours() -> float:
    return 100.0 if os.environ.get("REPRO_FULL", "").strip() in ("1", "true") else 12.0


@pytest.fixture(scope="session")
def cs_result():
    """Closed-loop client-server run shared by the benches."""
    scenario = scenario_from_env("client-server", horizon_hours=_horizon_hours())
    return run_closed_loop(scenario)


@pytest.fixture(scope="session")
def p2p_result():
    """Closed-loop P2P run shared by the benches."""
    scenario = scenario_from_env("p2p", horizon_hours=_horizon_hours())
    return run_closed_loop(scenario)


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def emit(results_dir, capsys):
    """Print a figure report and persist it under benchmarks/results/."""

    def _emit(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _emit
