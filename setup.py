"""Setup shim for legacy editable installs (no-network environments).

All metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-build-isolation --no-use-pep517`` where the
``wheel`` package is unavailable.
"""

from setuptools import setup

setup()
