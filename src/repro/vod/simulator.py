"""Time-stepped fluid VoD simulator (the paper's testbed, in simulation).

The simulator advances in fixed steps of ``dt`` simulated seconds. Each
step it:

1. admits arriving sessions from the workload trace (tracker notified);
2. runs the channel's delivery model (client-server or P2P) to get
   per-chunk per-user download rates given the currently provisioned cloud
   capacity;
3. advances all active downloads and handles completions: a retrieval is
   smooth iff its sojourn was at most ``sojourn_slack * T0``; the user then
   moves to the next chunk sampled from the channel's behaviour matrix (the
   tracker observing the transition) or departs;
4. samples the streaming-quality metric on its 5-minute grid.

Cloud capacity per chunk is an input (set by the provisioning controller
between intervals), making the simulator composable with
:mod:`repro.core.provisioner` for closed-loop experiments, or usable with
fixed capacity for open-loop analysis validation.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.rng import RandomStreams
from repro.vod.channel import ChannelSpec
from repro.vod.delivery import ClientServerDelivery, P2PDelivery
from repro.vod.metrics import QualityTracker
from repro.vod.tracker import TrackingServer
from repro.vod.user import UserStore
from repro.workload.trace import Session, Trace

__all__ = ["VoDSystemConfig", "VoDSimulator", "SimulationResult", "BandwidthSample"]


@dataclass(frozen=True)
class VoDSystemConfig:
    """Simulator parameters.

    Attributes
    ----------
    mode:
        ``"client-server"`` or ``"p2p"``.
    dt:
        Step length in simulated seconds. Must divide the quality sample
        interval reasonably; 5-30 s is a good range.
    user_rate_cap:
        Per-user download cap, normally the VM bandwidth R.
    quality_window / quality_sample_interval:
        The "smooth in the past 5 minutes" metric parameters.
    sojourn_slack:
        A retrieval is smooth iff sojourn <= slack * T0. The paper's
        criterion is slack = 1.
    seed:
        Master seed for behaviour sampling.
    """

    mode: str = "client-server"
    dt: float = 10.0
    user_rate_cap: float = 10e6 / 8.0
    quality_window: float = 300.0
    quality_sample_interval: float = 300.0
    sojourn_slack: float = 1.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.mode not in ("client-server", "p2p"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.dt <= 0:
            raise ValueError("dt must be > 0")
        if self.user_rate_cap <= 0:
            raise ValueError("user_rate_cap must be > 0")
        if self.quality_window <= 0 or self.quality_sample_interval <= 0:
            raise ValueError("quality parameters must be > 0")
        if self.sojourn_slack <= 0:
            raise ValueError("sojourn_slack must be > 0")


@dataclass(frozen=True)
class BandwidthSample:
    """Aggregate bandwidth usage over one step."""

    time: float
    cloud_used: float  # bytes/second
    peer_used: float  # bytes/second
    provisioned: float  # bytes/second (sum of per-chunk capacities)
    shortfall: float


@dataclass
class SimulationResult:
    """Everything an experiment needs after a run."""

    config: VoDSystemConfig
    quality: QualityTracker
    bandwidth: List[BandwidthSample]
    arrivals: int
    departures: int
    final_population: int

    def bandwidth_series(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, cloud_used, peer_used) arrays, bytes/second."""
        t = np.asarray([s.time for s in self.bandwidth])
        cloud = np.asarray([s.cloud_used for s in self.bandwidth])
        peer = np.asarray([s.peer_used for s in self.bandwidth])
        return t, cloud, peer

    def mean_cloud_bandwidth(self) -> float:
        if not self.bandwidth:
            return 0.0
        return float(np.mean([s.cloud_used for s in self.bandwidth]))


class VoDSimulator:
    """The multi-channel VoD system under simulation."""

    def __init__(
        self,
        channels: Sequence[ChannelSpec],
        trace: Trace,
        config: VoDSystemConfig,
        *,
        tracker: Optional[TrackingServer] = None,
    ) -> None:
        if not channels:
            raise ValueError("need at least one channel")
        self.channels = list(channels)
        self.config = config
        self.now = 0.0
        self._streams = RandomStreams(config.seed)

        self.stores: Dict[int, UserStore] = {
            ch.channel_id: UserStore(ch.num_chunks) for ch in self.channels
        }
        if config.mode == "client-server":
            self.delivery = {
                ch.channel_id: ClientServerDelivery(config.user_rate_cap)
                for ch in self.channels
            }
        else:
            self.delivery = {
                ch.channel_id: P2PDelivery(config.user_rate_cap)
                for ch in self.channels
            }
        self.cloud_capacity: Dict[int, np.ndarray] = {
            ch.channel_id: np.zeros(ch.num_chunks) for ch in self.channels
        }
        self.tracker = tracker or TrackingServer(
            num_channels=len(self.channels),
            chunks_per_channel=[ch.num_chunks for ch in self.channels],
        )
        self.quality = QualityTracker(config.quality_window)
        self.bandwidth: List[BandwidthSample] = []
        self.arrivals = 0
        self.departures = 0

        # Sessions sorted by arrival; consume with a cursor.
        self._sessions: List[Session] = sorted(
            trace.sessions, key=lambda s: s.arrival_time
        )
        self._session_times = [s.arrival_time for s in self._sessions]
        self._cursor = 0
        self._next_quality_sample = config.quality_sample_interval

        # Precompute per-channel behaviour sampling tables:
        # row-wise cumulative probabilities with departure as the last bin.
        self._cumulative: Dict[int, np.ndarray] = {}
        for ch in self.channels:
            p = np.asarray(ch.behaviour, dtype=float)
            cum = np.cumsum(p, axis=1)
            self._cumulative[ch.channel_id] = cum

    # ------------------------------------------------------------------
    # External control surface
    # ------------------------------------------------------------------
    def set_cloud_capacity(self, channel_id: int, capacity: np.ndarray) -> None:
        """Install the provisioned per-chunk cloud bandwidth (bytes/s)."""
        spec = self._channel(channel_id)
        cap = np.asarray(capacity, dtype=float)
        if cap.shape != (spec.num_chunks,):
            raise ValueError(
                f"capacity must have {spec.num_chunks} entries, got {cap.shape}"
            )
        if np.any(cap < 0):
            raise ValueError("capacities must be nonnegative")
        self.cloud_capacity[channel_id] = cap

    def total_provisioned(self) -> float:
        return float(sum(cap.sum() for cap in self.cloud_capacity.values()))

    def population(self) -> int:
        return sum(store.num_active for store in self.stores.values())

    def channel_populations(self) -> Dict[int, int]:
        return {cid: store.num_active for cid, store in self.stores.items()}

    def mean_peer_upload(self) -> float:
        """Mean upload capacity over all active peers (bytes/second)."""
        total = 0.0
        count = 0
        for store in self.stores.values():
            idx = store.active_indices()
            total += float(store.upload[idx].sum())
            count += int(idx.size)
        return total / count if count else 0.0

    def _channel(self, channel_id: int) -> ChannelSpec:
        for ch in self.channels:
            if ch.channel_id == channel_id:
                return ch
        raise KeyError(f"unknown channel {channel_id}")

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def _admit_arrivals(self) -> None:
        end = bisect.bisect_right(self._session_times, self.now, lo=self._cursor)
        for session in self._sessions[self._cursor : end]:
            store = self.stores.get(session.channel)
            if store is None:
                continue  # trace may cover more channels than this system
            store.add_user(self.now, session.start_chunk, session.upload_capacity)
            self.tracker.record_arrival(
                session.channel, session.start_chunk, session.upload_capacity
            )
            self.arrivals += 1
        self._cursor = end

    def _sample_transition(self, channel_id: int, chunk: int) -> int:
        """Next chunk index, or -1 for departure."""
        cum = self._cumulative[channel_id][chunk]
        u = self._streams.get("behaviour", str(channel_id)).random()
        if u >= cum[-1]:
            return -1
        return int(np.searchsorted(cum, u, side="right"))

    def _handle_completions(self, spec: ChannelSpec, store: UserStore) -> None:
        chunk_size = spec.chunk_size_bytes
        t0 = spec.chunk_duration
        done = store.completed(chunk_size)
        for uid in done:
            enter = float(store.enter_time[uid])
            sojourn = self.now - enter
            smooth = sojourn <= self.config.sojourn_slack * t0 + 1e-9
            finished = store.complete_chunk(int(uid), self.now, smooth)
            self.quality.record_retrieval(
                self.now, spec.channel_id, finished, sojourn, smooth
            )
            nxt = self._sample_transition(spec.channel_id, finished)
            # Playback pacing: the chunk's playback slot ends at
            # enter + max(T0, sojourn); a fast download leaves the user
            # watching (holding) until then, a slow one moves on at once.
            release = enter + max(t0, sojourn)
            if release <= self.now + 1e-9:
                self._apply_transition(spec, store, int(uid), finished, nxt)
            else:
                store.begin_hold(int(uid), release, nxt, finished)

    def _apply_transition(
        self,
        spec: ChannelSpec,
        store: UserStore,
        uid: int,
        finished: int,
        nxt: int,
    ) -> None:
        if nxt < 0:
            store.depart(uid)
            self.tracker.record_departure(spec.channel_id, finished)
            self.departures += 1
        else:
            store.start_chunk_download(uid, nxt, self.now)
            self.tracker.record_transition(spec.channel_id, finished, nxt)

    def _release_holds(self, spec: ChannelSpec, store: UserStore) -> None:
        for uid in store.due_holds(self.now):
            self._apply_transition(
                spec,
                store,
                int(uid),
                int(store.hold_from[uid]),
                int(store.hold_next[uid]),
            )

    def _sample_quality(self) -> None:
        smooth_counts: Dict[int, int] = {}
        user_counts: Dict[int, int] = {}
        for spec in self.channels:
            store = self.stores[spec.channel_id]
            smooth, total = store.smooth_users(
                self.now,
                self.config.quality_window,
                overdue_after=self.config.sojourn_slack * spec.chunk_duration,
            )
            smooth_counts[spec.channel_id] = smooth
            user_counts[spec.channel_id] = total
        self.quality.record_sample(self.now, smooth_counts, user_counts)

    def step(self) -> BandwidthSample:
        """Advance one ``dt`` step; returns the step's bandwidth sample."""
        dt = self.config.dt
        self.now += dt
        self._admit_arrivals()

        cloud_used = 0.0
        peer_used = 0.0
        shortfall = 0.0
        for spec in self.channels:
            store = self.stores[spec.channel_id]
            self._release_holds(spec, store)
            outcome = self.delivery[spec.channel_id].allocate(
                store, self.cloud_capacity[spec.channel_id]
            )
            store.advance_downloads(outcome.per_user_rates, dt)
            self._handle_completions(spec, store)
            cloud_used += outcome.cloud_used
            peer_used += outcome.peer_used
            shortfall += outcome.cloud_shortfall

        sample = BandwidthSample(
            time=self.now,
            cloud_used=cloud_used,
            peer_used=peer_used,
            provisioned=self.total_provisioned(),
            shortfall=shortfall,
        )
        self.bandwidth.append(sample)

        if self.now + 1e-9 >= self._next_quality_sample:
            self._sample_quality()
            self._next_quality_sample += self.config.quality_sample_interval
        return sample

    def advance_to(self, until: float) -> None:
        """Run steps until the clock reaches (or passes) ``until``."""
        if until < self.now:
            raise ValueError(f"cannot advance backwards to {until} < {self.now}")
        while self.now + 1e-9 < until:
            self.step()

    def result(self) -> SimulationResult:
        """Snapshot the run's outputs."""
        return SimulationResult(
            config=self.config,
            quality=self.quality,
            bandwidth=list(self.bandwidth),
            arrivals=self.arrivals,
            departures=self.departures,
            final_population=self.population(),
        )
