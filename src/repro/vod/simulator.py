"""Time-stepped fluid VoD simulator (the paper's testbed, in simulation).

The simulator advances in fixed steps of ``dt`` simulated seconds. Each
step it:

1. admits arriving sessions from the workload trace (tracker notified);
2. runs the channel's delivery model (client-server or P2P) to get
   per-chunk per-user download rates given the currently provisioned cloud
   capacity;
3. advances all active downloads and handles completions: a retrieval is
   smooth iff its sojourn was at most ``sojourn_slack * T0``; the user then
   moves to the next chunk sampled from the channel's behaviour matrix (the
   tracker observing the transition) or departs;
4. samples the streaming-quality metric on its 5-minute grid.

Cloud capacity per chunk is an input (set by the provisioning controller
between intervals), making the simulator composable with
:mod:`repro.core.provisioner` for closed-loop experiments, or usable with
fixed capacity for open-loop analysis validation.

The step kernel is batch-vectorized: every per-channel pass (hold
release, delivery, download advance, completion handling) is a fixed
number of array operations regardless of population, and all of a
channel's behaviour transitions for a step are sampled with one batch RNG
draw and one ``searchsorted``-equivalent pass over the precomputed
cumulative behaviour rows. The kernel's fixed-seed trajectories are
byte-identical to the original scalar implementation's (see
docs/performance.md for the invariants and tests/test_kernel_parity.py
for the enforcement).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.sim.rng import RandomStreams
from repro.vod.channel import ChannelSpec
from repro.vod.delivery import ClientServerDelivery, P2PDelivery
from repro.vod.metrics import QualityTracker
from repro.vod.tracker import TrackingServer
from repro.vod.user import UserStore
from repro.workload.trace import Session, Trace

__all__ = [
    "VoDSystemConfig",
    "VoDSimulator",
    "SimulationResult",
    "BandwidthSample",
    "BandwidthLog",
]


@dataclass(frozen=True)
class VoDSystemConfig:
    """Simulator parameters.

    Attributes
    ----------
    mode:
        ``"client-server"`` or ``"p2p"``.
    dt:
        Step length in simulated seconds. Must divide the quality sample
        interval reasonably; 5-30 s is a good range.
    user_rate_cap:
        Per-user download cap, normally the VM bandwidth R.
    quality_window / quality_sample_interval:
        The "smooth in the past 5 minutes" metric parameters.
    sojourn_slack:
        A retrieval is smooth iff sojourn <= slack * T0. The paper's
        criterion is slack = 1.
    seed:
        Master seed for behaviour sampling.
    """

    mode: str = "client-server"
    dt: float = 10.0
    user_rate_cap: float = 10e6 / 8.0
    quality_window: float = 300.0
    quality_sample_interval: float = 300.0
    sojourn_slack: float = 1.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.mode not in ("client-server", "p2p"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.dt <= 0:
            raise ValueError("dt must be > 0")
        if self.user_rate_cap <= 0:
            raise ValueError("user_rate_cap must be > 0")
        if self.quality_window <= 0 or self.quality_sample_interval <= 0:
            raise ValueError("quality parameters must be > 0")
        if self.sojourn_slack <= 0:
            raise ValueError("sojourn_slack must be > 0")


@dataclass(frozen=True)
class BandwidthSample:
    """Aggregate bandwidth usage over one step."""

    time: float
    cloud_used: float  # bytes/second
    peer_used: float  # bytes/second
    provisioned: float  # bytes/second (sum of per-chunk capacities)
    shortfall: float


class BandwidthLog:
    """Preallocated array-backed log of per-step bandwidth usage.

    Replaces the historical ``List[BandwidthSample]``: appending a step
    is one row write into a doubling array, and the per-field series the
    experiment layer aggregates over are zero-copy views. Iteration and
    indexing still yield :class:`BandwidthSample` objects, so existing
    consumers (``for s in result.bandwidth``, ``len``, ``[i]``) are
    unaffected.
    """

    _FIELDS = ("time", "cloud_used", "peer_used", "provisioned", "shortfall")

    __slots__ = ("_data", "_len")

    def __init__(self, capacity: int = 1024) -> None:
        self._data = np.zeros((max(1, int(capacity)), len(self._FIELDS)))
        self._len = 0

    def append(
        self,
        time: float,
        cloud_used: float,
        peer_used: float,
        provisioned: float,
        shortfall: float,
    ) -> None:
        if self._len == self._data.shape[0]:
            grown = np.zeros((2 * self._data.shape[0], self._data.shape[1]))
            grown[: self._len] = self._data
            self._data = grown
        self._data[self._len] = (time, cloud_used, peer_used, provisioned,
                                 shortfall)
        self._len += 1

    def __len__(self) -> int:
        return self._len

    def _sample(self, i: int) -> BandwidthSample:
        return BandwidthSample(*self._data[i])

    def __getitem__(
        self, index: Union[int, slice]
    ) -> Union[BandwidthSample, List[BandwidthSample]]:
        if isinstance(index, slice):
            return [self._sample(i) for i in range(*index.indices(self._len))]
        i = index if index >= 0 else self._len + index
        if not 0 <= i < self._len:
            raise IndexError(index)
        return self._sample(i)

    def __iter__(self) -> Iterator[BandwidthSample]:
        for i in range(self._len):
            yield self._sample(i)

    # Per-field series (zero-copy views over the filled prefix).
    @property
    def time(self) -> np.ndarray:
        return self._data[: self._len, 0]

    @property
    def cloud_used(self) -> np.ndarray:
        return self._data[: self._len, 1]

    @property
    def peer_used(self) -> np.ndarray:
        return self._data[: self._len, 2]

    @property
    def provisioned(self) -> np.ndarray:
        return self._data[: self._len, 3]

    @property
    def shortfall(self) -> np.ndarray:
        return self._data[: self._len, 4]

    def snapshot(self) -> "BandwidthLog":
        """An independent copy trimmed to the filled prefix."""
        copy = BandwidthLog(capacity=max(1, self._len))
        copy._data[: self._len] = self._data[: self._len]
        copy._len = self._len
        return copy


@dataclass
class SimulationResult:
    """Everything an experiment needs after a run."""

    config: VoDSystemConfig
    quality: QualityTracker
    bandwidth: BandwidthLog
    arrivals: int
    departures: int
    final_population: int
    steps: int = 0
    peak_step_events: int = 0

    def bandwidth_series(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(times, cloud_used, peer_used) arrays, bytes/second."""
        return (
            self.bandwidth.time.copy(),
            self.bandwidth.cloud_used.copy(),
            self.bandwidth.peer_used.copy(),
        )

    def mean_cloud_bandwidth(self) -> float:
        if not len(self.bandwidth):
            return 0.0
        return float(np.mean(self.bandwidth.cloud_used))


class VoDSimulator:
    """The multi-channel VoD system under simulation."""

    def __init__(
        self,
        channels: Sequence[ChannelSpec],
        trace: Trace,
        config: VoDSystemConfig,
        *,
        tracker: Optional[TrackingServer] = None,
    ) -> None:
        if not channels:
            raise ValueError("need at least one channel")
        self.channels = list(channels)
        self._channels_by_id: Dict[int, ChannelSpec] = {
            ch.channel_id: ch for ch in self.channels
        }
        if len(self._channels_by_id) != len(self.channels):
            raise ValueError("channel ids must be unique")
        self.config = config
        self.now = 0.0
        self._streams = RandomStreams(config.seed)

        self.stores: Dict[int, UserStore] = {
            ch.channel_id: UserStore(ch.num_chunks) for ch in self.channels
        }
        delivery_cls = (
            ClientServerDelivery if config.mode == "client-server"
            else P2PDelivery
        )
        self.delivery = {
            ch.channel_id: delivery_cls(config.user_rate_cap)
            for ch in self.channels
        }
        self.cloud_capacity: Dict[int, np.ndarray] = {
            ch.channel_id: np.zeros(ch.num_chunks) for ch in self.channels
        }
        # Cached per-channel capacity sums: installing one channel's
        # capacity must not re-reduce every other channel's array (the
        # catalog engine broadcasts capacities channel by channel every
        # epoch, which made this path O(channels^2) array reductions).
        # The total is still the sum of per-channel sums in channel
        # order, so the float value is bit-identical to the old full
        # recomputation.
        self._capacity_sums: Dict[int, float] = {
            ch.channel_id: 0.0 for ch in self.channels
        }
        self._provisioned_total = 0.0
        self.tracker = tracker or TrackingServer(
            num_channels=len(self.channels),
            chunks_per_channel=[ch.num_chunks for ch in self.channels],
        )
        self.quality = QualityTracker(config.quality_window)
        self.bandwidth = BandwidthLog()
        self.arrivals = 0
        self.departures = 0
        self.steps = 0
        #: Most events (arrivals + completions + hold releases) any single
        #: step has processed — the sweep artifacts record this as the
        #: cell's burstiness indicator.
        self.peak_step_events = 0

        # Sessions sorted by arrival; consume with a cursor.
        self._sessions: List[Session] = sorted(
            trace.sessions, key=lambda s: s.arrival_time
        )
        self._session_times = [s.arrival_time for s in self._sessions]
        self._cursor = 0
        self._next_quality_sample = config.quality_sample_interval

        # Precompute per-channel behaviour sampling tables:
        # row-wise cumulative probabilities with departure as the last bin.
        self._cumulative: Dict[int, np.ndarray] = {}
        self._stream_keys: Dict[int, str] = {}
        for ch in self.channels:
            p = np.asarray(ch.behaviour, dtype=float)
            self._cumulative[ch.channel_id] = np.cumsum(p, axis=1)
            self._stream_keys[ch.channel_id] = str(ch.channel_id)

    # ------------------------------------------------------------------
    # External control surface
    # ------------------------------------------------------------------
    def set_cloud_capacity(self, channel_id: int, capacity: np.ndarray) -> None:
        """Install the provisioned per-chunk cloud bandwidth (bytes/s)."""
        spec = self._channel(channel_id)
        cap = np.asarray(capacity, dtype=float)
        if cap.shape != (spec.num_chunks,):
            raise ValueError(
                f"capacity must have {spec.num_chunks} entries, got {cap.shape}"
            )
        if np.any(cap < 0):
            raise ValueError("capacities must be nonnegative")
        self.cloud_capacity[channel_id] = cap
        self._capacity_sums[channel_id] = cap.sum()
        self._provisioned_total = float(sum(self._capacity_sums.values()))

    def total_provisioned(self) -> float:
        return self._provisioned_total

    def population(self) -> int:
        return sum(store.num_active for store in self.stores.values())

    def channel_populations(self) -> Dict[int, int]:
        return {cid: store.num_active for cid, store in self.stores.items()}

    def peer_upload_totals(self) -> Tuple[float, int]:
        """(sum, count) of active peers' upload capacities.

        Split out from :meth:`mean_peer_upload` so the sharded engine can
        merge the raw accumulators across shards before dividing.
        """
        total = 0.0
        count = 0
        for store in self.stores.values():
            idx = store.active_indices()
            total += float(store.upload[idx].sum())
            count += int(idx.size)
        return total, count

    def mean_peer_upload(self) -> float:
        """Mean upload capacity over all active peers (bytes/second)."""
        total, count = self.peer_upload_totals()
        return total / count if count else 0.0

    def _channel(self, channel_id: int) -> ChannelSpec:
        try:
            return self._channels_by_id[channel_id]
        except KeyError:
            raise KeyError(f"unknown channel {channel_id}") from None

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def _admit_arrivals(self) -> int:
        end = bisect.bisect_right(self._session_times, self.now, lo=self._cursor)
        admitted = 0
        if end - self._cursor > 2:
            # Flash-crowd path: group the step's admissions per channel
            # (order within a channel is trace order, so slot and
            # sequence assignment match the scalar path exactly).
            by_channel: Dict[int, List[Session]] = {}
            for session in self._sessions[self._cursor : end]:
                if session.channel in self.stores:
                    by_channel.setdefault(session.channel, []).append(session)
            for channel_id, sessions in by_channel.items():
                starts = np.asarray(
                    [s.start_chunk for s in sessions], dtype=np.int64
                )
                uploads = np.asarray(
                    [s.upload_capacity for s in sessions], dtype=float
                )
                self.stores[channel_id].add_users(self.now, starts, uploads)
                self.tracker.record_arrivals(channel_id, starts, uploads)
                admitted += len(sessions)
        else:
            for session in self._sessions[self._cursor : end]:
                store = self.stores.get(session.channel)
                if store is None:
                    continue  # trace may cover more channels than this system
                store.add_user(
                    self.now, session.start_chunk, session.upload_capacity
                )
                self.tracker.record_arrival(
                    session.channel, session.start_chunk, session.upload_capacity
                )
                admitted += 1
        self.arrivals += admitted
        self._cursor = end
        return admitted

    def _sample_transitions(self, channel_id: int, chunks: np.ndarray) -> np.ndarray:
        """Next chunk per finished chunk, or -1 for departure.

        One batch draw from the channel's behaviour stream covers every
        transition of the step; the draw order (users in arrival order)
        and per-value decision match the scalar kernel's
        ``searchsorted(cum, u, side="right")`` exactly.
        """
        rows = self._cumulative[channel_id][chunks]  # (n, J)
        u = self._streams.batch(
            len(chunks), "behaviour", self._stream_keys[channel_id]
        )
        nxt = (rows <= u[:, None]).sum(axis=1)
        nxt[u >= rows[:, -1]] = -1
        return nxt

    def _handle_completion_scalar(
        self, spec: ChannelSpec, store: UserStore, uid: int
    ) -> None:
        """Single-completion fast path.

        Small configurations complete zero or one chunk per channel-step;
        scalar indexing sidesteps the batch machinery's fixed cost. Every
        arithmetic operation and the RNG draw are identical to the batch
        path (``batch(1)`` consumes exactly one stream value), so the
        trajectories are the same bit for bit — the golden-parity tests
        cover both paths.
        """
        now = self.now
        t0 = spec.chunk_duration
        enter = float(store.enter_time[uid])
        sojourn = now - enter
        smooth = sojourn <= self.config.sojourn_slack * t0 + 1e-9
        finished = store.complete_chunk(uid, now, smooth)
        self.quality.record_retrieval(
            now, spec.channel_id, finished, sojourn, smooth
        )
        cum = self._cumulative[spec.channel_id][finished]
        u = self._streams.get(
            "behaviour", self._stream_keys[spec.channel_id]
        ).random()
        nxt = -1 if u >= cum[-1] else int((cum <= u).sum())
        release = enter + max(t0, sojourn)
        if release <= now + 1e-9:
            self._apply_transition_scalar(spec, store, uid, finished, nxt)
        else:
            store.begin_hold(uid, release, nxt, finished)

    def _apply_transition_scalar(
        self, spec: ChannelSpec, store: UserStore, uid: int,
        finished: int, nxt: int,
    ) -> None:
        if nxt < 0:
            store.depart(uid)
            self.tracker.record_departure(spec.channel_id, finished)
            self.departures += 1
        else:
            store.start_chunk_download(uid, nxt, self.now)
            self.tracker.record_transition(spec.channel_id, finished, nxt)

    def _handle_completions(self, spec: ChannelSpec, store: UserStore) -> int:
        chunk_size = spec.chunk_size_bytes
        t0 = spec.chunk_duration
        uids = store.completed(chunk_size)
        if uids.size == 0:
            return 0
        if uids.size <= 4:
            # A scalar sweep in arrival order IS the original algorithm
            # (one RNG draw per user, same accumulation order), and beats
            # the batch machinery's fixed cost for a handful of events.
            for uid in uids:
                self._handle_completion_scalar(spec, store, int(uid))
            return int(uids.size)
        now = self.now
        enters = store.enter_time[uids]  # fancy indexing: a copy
        sojourns = now - enters
        smooth = sojourns <= self.config.sojourn_slack * t0 + 1e-9
        finished = store.complete_chunks(uids, now, smooth)
        self.quality.record_retrievals(
            now, spec.channel_id, finished, sojourns, smooth
        )
        nxt = self._sample_transitions(spec.channel_id, finished)
        # Playback pacing: the chunk's playback slot ends at
        # enter + max(T0, sojourn); a fast download leaves the user
        # watching (holding) until then, a slow one moves on at once.
        release = enters + np.maximum(t0, sojourns)
        immediate = release <= now + 1e-9
        immediate_count = int(immediate.sum())
        if immediate_count:
            self._apply_transitions(
                spec, store, uids[immediate], finished[immediate], nxt[immediate]
            )
        if immediate_count < uids.size:
            holding = ~immediate
            store.begin_holds(
                uids[holding], release[holding], nxt[holding], finished[holding]
            )
        return int(uids.size)

    def _apply_transitions(
        self,
        spec: ChannelSpec,
        store: UserStore,
        uids: np.ndarray,
        finished: np.ndarray,
        nxt: np.ndarray,
    ) -> None:
        departing = nxt < 0
        departing_count = int(departing.sum())
        if departing_count:
            store.depart_many(uids[departing])
            self.tracker.record_departures(spec.channel_id, finished[departing])
            self.departures += departing_count
        if departing_count < uids.size:
            moving = ~departing
            store.start_chunk_downloads(uids[moving], nxt[moving], self.now)
            self.tracker.record_transitions(
                spec.channel_id, finished[moving], nxt[moving]
            )

    def _release_holds(self, spec: ChannelSpec, store: UserStore) -> int:
        uids = store.due_holds(self.now)
        if uids.size == 0:
            return 0
        if uids.size <= 4:
            for uid in uids:
                uid = int(uid)
                self._apply_transition_scalar(
                    spec, store, uid,
                    int(store.hold_from[uid]), int(store.hold_next[uid]),
                )
            return int(uids.size)
        # hold_* reads are fancy-indexed copies, safe across the apply.
        self._apply_transitions(
            spec, store, uids, store.hold_from[uids], store.hold_next[uids]
        )
        return int(uids.size)

    def _sample_quality(self) -> None:
        smooth_counts: Dict[int, int] = {}
        user_counts: Dict[int, int] = {}
        for spec in self.channels:
            store = self.stores[spec.channel_id]
            smooth, total = store.smooth_users(
                self.now,
                self.config.quality_window,
                overdue_after=self.config.sojourn_slack * spec.chunk_duration,
            )
            smooth_counts[spec.channel_id] = smooth
            user_counts[spec.channel_id] = total
        self.quality.record_sample(self.now, smooth_counts, user_counts)

    def step(self) -> BandwidthSample:
        """Advance one ``dt`` step; returns the step's bandwidth sample."""
        dt = self.config.dt
        self.now += dt
        events = self._admit_arrivals()

        cloud_used = 0.0
        peer_used = 0.0
        shortfall = 0.0
        for spec in self.channels:
            store = self.stores[spec.channel_id]
            events += self._release_holds(spec, store)
            outcome = self.delivery[spec.channel_id].allocate(
                store, self.cloud_capacity[spec.channel_id]
            )
            store.advance_downloads(outcome.per_user_rates, dt)
            events += self._handle_completions(spec, store)
            cloud_used += outcome.cloud_used
            peer_used += outcome.peer_used
            shortfall += outcome.cloud_shortfall

        provisioned = self.total_provisioned()
        self.bandwidth.append(
            self.now, cloud_used, peer_used, provisioned, shortfall
        )
        self.steps += 1
        if events > self.peak_step_events:
            self.peak_step_events = events

        if self.now + 1e-9 >= self._next_quality_sample:
            self._sample_quality()
            self._next_quality_sample += self.config.quality_sample_interval
        return BandwidthSample(
            time=self.now,
            cloud_used=cloud_used,
            peer_used=peer_used,
            provisioned=provisioned,
            shortfall=shortfall,
        )

    def advance_to(self, until: float) -> None:
        """Run steps until the clock reaches (or passes) ``until``."""
        if until < self.now:
            raise ValueError(f"cannot advance backwards to {until} < {self.now}")
        while self.now + 1e-9 < until:
            self.step()

    def result(self) -> SimulationResult:
        """Snapshot the run's outputs."""
        return SimulationResult(
            config=self.config,
            quality=self.quality,
            bandwidth=self.bandwidth.snapshot(),
            arrivals=self.arrivals,
            departures=self.departures,
            final_population=self.population(),
            steps=self.steps,
            peak_step_events=self.peak_step_events,
        )
