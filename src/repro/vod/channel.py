"""Channel descriptions (paper Section III-B).

A channel is one video: a streaming rate r, a chunking into J pieces of T0
seconds each, and a viewing-behaviour model (the chunk-transfer matrix the
simulator samples user movements from).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.queueing.transitions import (
    mixture_matrix,
    sequential_matrix,
    uniform_jump_matrix,
    validate_transition_matrix,
)

__all__ = ["ChannelSpec", "make_uniform_channels", "default_behaviour_matrix"]


def default_behaviour_matrix(
    num_chunks: int,
    *,
    continue_prob: float = 0.72,
    jump_prob: float = 0.2,
    sequential_fraction: float = 0.35,
) -> np.ndarray:
    """The default viewing behaviour used by the evaluation.

    A mixture of strictly sequential viewers and VCR-happy viewers. With
    T0 = 5 min, a jump probability of ~0.2 per chunk reproduces the paper's
    "interval between two playback jumps is exponential with mean 15 min"
    at chunk granularity (a jump roughly every three chunks among the VCR
    population).
    """
    seq = sequential_matrix(num_chunks, continue_prob=min(0.95, continue_prob + jump_prob))
    vcr = uniform_jump_matrix(num_chunks, continue_prob=continue_prob, jump_prob=jump_prob)
    return mixture_matrix([seq, vcr], [sequential_fraction, 1.0 - sequential_fraction])


@dataclass(frozen=True)
class ChannelSpec:
    """One video channel.

    Attributes
    ----------
    channel_id:
        Stable integer identifier (its index in the system).
    num_chunks:
        Number of chunks J^(c) the video is divided into.
    streaming_rate:
        Playback rate r, bytes/second.
    chunk_duration:
        Playback time T0 of one chunk, seconds.
    behaviour:
        Chunk-transfer matrix P^(c) governing simulated user movement.
    name:
        Optional human-readable label.
    """

    channel_id: int
    num_chunks: int
    streaming_rate: float
    chunk_duration: float
    behaviour: np.ndarray = field(repr=False)
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.num_chunks <= 0:
            raise ValueError("need at least one chunk")
        if self.streaming_rate <= 0:
            raise ValueError("streaming rate must be > 0")
        if self.chunk_duration <= 0:
            raise ValueError("chunk duration must be > 0")
        p = validate_transition_matrix(self.behaviour)
        if p.shape[0] != self.num_chunks:
            raise ValueError(
                f"behaviour matrix is {p.shape[0]}x{p.shape[0]} but channel has "
                f"{self.num_chunks} chunks"
            )

    @property
    def chunk_size_bytes(self) -> float:
        """r * T0 bytes per chunk."""
        return self.streaming_rate * self.chunk_duration

    @property
    def video_duration(self) -> float:
        """Total playback time, seconds."""
        return self.num_chunks * self.chunk_duration

    @property
    def video_size_bytes(self) -> float:
        return self.num_chunks * self.chunk_size_bytes


def make_uniform_channels(
    num_channels: int,
    num_chunks: int,
    streaming_rate: float,
    chunk_duration: float,
    *,
    behaviour: Optional[np.ndarray] = None,
) -> List[ChannelSpec]:
    """Create ``num_channels`` identical channels (the paper's setup:
    every video is 100 minutes at 400 kbps, chunked into 5-minute pieces).
    """
    if behaviour is None:
        behaviour = default_behaviour_matrix(num_chunks)
    return [
        ChannelSpec(
            channel_id=c,
            num_chunks=num_chunks,
            streaming_rate=streaming_rate,
            chunk_duration=chunk_duration,
            behaviour=behaviour,
            name=f"channel-{c}",
        )
        for c in range(num_channels)
    ]
