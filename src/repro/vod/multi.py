"""Fused structure-of-arrays kernel for one shard's whole channel set.

:class:`MultiChannelSimulator` advances every channel of a shard in one
vectorized pass per phase, instead of looping Python-side over one
:class:`~repro.vod.simulator.VoDSimulator` store per channel.  All users
of all channels live in one dense **row table** in admission order — a
structure-of-arrays column per attribute (channel, current chunk,
received bytes, enter time, upload capacity, hold state, alive flag)
with a tail cursor for O(1) appends.  Departures only flip the alive
flag (and drop the chunk to ``-1`` so dead rows mask out of delivery);
the table is re-packed by one stable ``flatnonzero`` gather, *lazily* —
once per epoch at the report boundary, or mid-epoch only when dead rows
exceed half the table.  Per-channel state the delivery model needs is a
``(channels, chunks)`` capacity matrix, and each step runs:

1. fused admissions from the shard's arrival-sorted trace arrays;
2. fused hold releases across every channel;
3. one ``(channels, chunks)`` client-server delivery solve (bincount of
   downloaders, elementwise rate shares, row sums);
4. fused download advance and completion detection;
5. per-channel completion handling in ascending channel order (the only
   phase that must stay a loop: behaviour-stream draws and the sojourn
   accumulator are per-channel ordered state), then fused transition
   application;
6. fused quality sampling on the 5-minute grid.

Byte-identity contract
----------------------
The kernel's fixed-seed trajectories are byte-identical to running one
``VoDSimulator`` per channel (the configuration the golden traces and
the jobs-1-vs-N sweeps pin down).  The invariants that make this true:

* channels only interact within a step through integer counters and
  integer-valued ``bincount`` accumulations (exact in any grouping), so
  phases can be fused across channels;
* every float reduction either stays per-channel in arrival order (the
  upload-capacity and sojourn accumulators, element-by-element), or is
  a row-wise ``.sum(axis=1)`` over a C-contiguous matrix (bitwise equal
  to the per-channel 1-D ``.sum()``), or a sequential Python add over
  channels in ascending id order (the step's bandwidth totals);
* per-channel RNG streams are keyed by global channel id and consumed
  in the same order and batch sizes as the per-channel kernel,
  including its ``<= 4`` completions scalar path;
* row numbering is unobservable — every reported quantity derives from
  per-channel *arrival order*, which the row table maintains
  structurally: admissions append channel-sorted at the tail, and the
  compaction gather is an ascending index pick, so each channel's
  subsequence of the table is always its arrival order;
* dead and held rows mask out of delivery through the same ``chunk >=
  0`` test, spilling into a dropped overflow bin and gathering a
  trailing ``0.0`` rate — an exact ``+ 0.0`` on their buffers, so
  deferring compaction never perturbs a float.

The fused kernel covers the client-server mode with a uniform channel
set (what every catalog family built by
:func:`~repro.vod.channel.make_uniform_channels` produces).  P2P mode
and heterogeneous channels keep the per-channel kernel — see
:meth:`repro.sim.shard.ChannelShard`.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

import numpy as np

from repro.sim.rng import RandomStreams
from repro.vod.channel import ChannelSpec
from repro.vod.simulator import BandwidthLog, BandwidthSample, VoDSystemConfig
from repro.vod.tracker import IntervalStats
from repro.vod.user import HOLDING
from repro.workload.catalog import ShardTraceArrays

__all__ = ["MultiChannelSimulator", "channels_are_uniform"]

_GROW = 256


class _QualitySampleLite(NamedTuple):
    """One quality sample, aggregate counts only (what the shard ships)."""

    time: float
    total_smooth: int
    total_users: int


class _ShardQuality:
    """Aggregate-only stand-in for :class:`~repro.vod.metrics.QualityTracker`.

    The shard report only ships totals (retrievals, unsmooth count, the
    sojourn accumulator, per-sample smooth/user counts), so the fused
    kernel skips the per-channel dictionaries the full tracker keeps.
    The float accumulation order of ``sojourn_sum`` is owned by
    :meth:`MultiChannelSimulator._sample_transitions` and matches the
    per-channel kernel's scalar/batch split exactly.
    """

    def __init__(self, window_seconds: float) -> None:
        self.window_seconds = float(window_seconds)
        self.samples: List[_QualitySampleLite] = []
        self.total_retrievals = 0
        self.unsmooth_retrievals = 0
        self.sojourn_sum = 0.0


def channels_are_uniform(channels) -> bool:
    """True iff every channel shares chunk count, rate, duration and
    behaviour matrix (the precondition for the fused kernel)."""
    first = channels[0]
    for spec in channels[1:]:
        if (
            spec.num_chunks != first.num_chunks
            or spec.streaming_rate != first.streaming_rate
            or spec.chunk_duration != first.chunk_duration
            or not (
                spec.behaviour is first.behaviour
                or np.array_equal(spec.behaviour, first.behaviour)
            )
        ):
            return False
    return True


class MultiChannelSimulator:
    """All channels of one shard in a single structure-of-arrays kernel.

    Drop-in for the shard's per-channel :class:`VoDSimulator` loop: the
    external surface (``step``/``population``/``set_cloud_capacity``/
    ``bandwidth``/``quality``/``peer_upload_totals``/...) matches what
    :class:`repro.sim.shard.ChannelShard` consumes, and
    :meth:`close_interval` plays the tracker's role for the owned
    channels.
    """

    def __init__(
        self,
        channels: List[ChannelSpec],
        trace: ShardTraceArrays,
        config: VoDSystemConfig,
        *,
        interval_seconds: float = 3600.0,
    ) -> None:
        if not channels:
            raise ValueError("need at least one channel")
        if config.mode != "client-server":
            raise ValueError(
                "MultiChannelSimulator only implements client-server "
                "delivery; use the per-channel kernel for p2p"
            )
        if not channels_are_uniform(channels):
            raise ValueError(
                "MultiChannelSimulator needs a uniform channel set"
            )
        ids = [ch.channel_id for ch in channels]
        if any(b <= a for a, b in zip(ids, ids[1:])):
            raise ValueError("channel ids must be strictly increasing")
        self.channels = list(channels)
        self.config = config
        self.interval_seconds = float(interval_seconds)
        first = channels[0]
        self.num_channels = len(channels)
        self.num_chunks = first.num_chunks
        self.chunk_size = first.chunk_size_bytes
        self.t0 = first.chunk_duration
        # Precomputed scalar thresholds, same expressions as the
        # per-channel kernel evaluates inline.
        self._smooth_after = config.sojourn_slack * self.t0 + 1e-9
        self._overdue_after = config.sojourn_slack * self.t0
        self.channel_ids = np.asarray(ids, dtype=np.int64)
        self._local_of: Dict[int, int] = {cid: i for i, cid in enumerate(ids)}
        self._cumulative = np.cumsum(
            np.asarray(first.behaviour, dtype=float), axis=1
        )
        self._streams = RandomStreams(config.seed)
        # One persistent generator per channel (RandomStreams caches by
        # label, so these are the same objects scalar lookups would hit).
        self._gens = [
            self._streams.get("behaviour", str(cid)) for cid in ids
        ]

        self.now = 0.0
        self.arrivals = 0
        self.departures = 0
        self.steps = 0
        self.peak_step_events = 0
        self.quality = _ShardQuality(config.quality_window)
        self.bandwidth = BandwidthLog()
        self._next_quality_sample = config.quality_sample_interval

        # Trace (already (time, channel)-sorted); unknown channels are
        # skipped exactly like the per-channel admit loop skips them.
        known = np.isin(trace.channels, self.channel_ids)
        channels_arr = trace.channels[known]
        lookup = np.searchsorted(self.channel_ids, channels_arr)
        self._trace_times = trace.times[known]
        self._trace_channel = lookup.astype(np.int64)
        self._trace_start = trace.start_chunks[known]
        self._trace_upload = trace.upload_capacities[known]
        self._cursor = 0

        # Provisioned capacity: (C, J) matrix + per-channel sums whose
        # ascending-id ordered dict mirrors the per-channel kernel's
        # total reduction order.
        C, J = self.num_channels, self.num_chunks
        self._capacity = np.zeros((C, J))
        self._capacity_sums: Dict[int, float] = {cid: 0.0 for cid in ids}
        self._provisioned_total = 0.0
        self._capacity_dirty = False

        # Interval (tracker) accumulators, local-channel indexed.
        self._iv_arrivals = np.zeros(C, dtype=np.int64)
        self._iv_transitions = np.zeros((C, J, J))
        self._iv_departures = np.zeros((C, J))
        self._iv_starts = np.zeros((C, J))
        self._iv_upload_sum: List[float] = [0.0] * C
        self._iv_upload_samples = np.zeros(C, dtype=np.int64)

        # Per-user state, one ROW per session, dense in admission order —
        # each channel's subsequence is that channel's arrival order, the
        # kernel's only ordering source (slot numbering is unobservable
        # in the per-channel kernel; mirrors UserStore.active_indices()).
        # Rows append at the tail on admission; departures flip
        # ``_row_alive`` and mark the table stale, and ``_compact()``
        # squeezes the dead rows out of every column in one ordered
        # gather.  Keeping the live population contiguous turns the
        # delivery path's random slot gathers into sequential passes.
        cap = _GROW
        self._n = 0  # rows in use, including dead ones awaiting compaction
        self._row_chan = np.empty(cap, dtype=np.int64)
        self._row_chunk = np.empty(cap, dtype=np.int64)
        self._row_received = np.empty(cap)
        self._row_enter = np.empty(cap)
        self._row_upload = np.empty(cap)
        self._row_unsmooth = np.empty(cap)
        self._row_hold_until = np.empty(cap)
        self._row_hold_next = np.empty(cap, dtype=np.int64)
        self._row_hold_from = np.empty(cap, dtype=np.int64)
        self._row_alive = np.empty(cap, dtype=bool)
        self._stale = False
        # Number of rows in the between-chunks hold state; the delivery
        # solve skips its hold masking entirely when zero.
        self._hold_count = 0
        self._chan_count = np.zeros(C, dtype=np.int64)
        self._total_active = 0

    # ------------------------------------------------------------------
    # External control surface (mirrors VoDSimulator)
    # ------------------------------------------------------------------
    def set_cloud_capacity(self, channel_id: int, capacity: np.ndarray) -> None:
        """Install the provisioned per-chunk cloud bandwidth (bytes/s)."""
        try:
            local = self._local_of[channel_id]
        except KeyError:
            raise KeyError(f"unknown channel {channel_id}") from None
        cap = np.asarray(capacity, dtype=float)
        if cap.shape != (self.num_chunks,):
            raise ValueError(
                f"capacity must have {self.num_chunks} entries, got {cap.shape}"
            )
        if np.any(cap < 0):
            raise ValueError("capacities must be nonnegative")
        self._capacity[local] = cap
        self._capacity_sums[channel_id] = cap.sum()
        self._capacity_dirty = True

    def total_provisioned(self) -> float:
        if self._capacity_dirty:
            # Deferred, but the same ascending-channel reduction the
            # per-channel kernel performs on every install.
            self._provisioned_total = float(sum(self._capacity_sums.values()))
            self._capacity_dirty = False
        return self._provisioned_total

    def population(self) -> int:
        return int(self._total_active)

    def channel_populations(self) -> Dict[int, int]:
        counts = self._chan_count
        return {
            int(cid): int(counts[i])
            for i, cid in enumerate(self.channel_ids)
        }

    def peer_upload_totals(self) -> Tuple[float, int]:
        """(sum, count) of active peers' upload capacities, reduced
        channel by channel in ascending id order (the per-channel
        kernel's store iteration order, arrival order within each
        channel).  Idle channels contribute an exact ``+ 0.0``, so
        skipping them is bitwise-neutral."""
        count = self._compact()
        if count == 0:
            return 0.0, 0
        order = np.argsort(self._row_chan[:count], kind="stable")
        uploads = self._row_upload[:count][order]
        locals_sorted = self._row_chan[:count][order]
        bounds = np.flatnonzero(np.diff(locals_sorted)) + 1
        starts = [0, *bounds.tolist(), count]
        total = 0.0
        for k in range(len(starts) - 1):
            total += float(uploads[starts[k] : starts[k + 1]].sum())
        return total, count

    def mean_peer_upload(self) -> float:
        total, count = self.peer_upload_totals()
        return total / count if count else 0.0

    def close_interval(self) -> List[IntervalStats]:
        """This interval's per-channel statistics; resets accumulators.

        Plays :meth:`TrackingServer.close_interval` for the owned
        channels (ascending id order), with arrays copied out so the
        report owns its data.
        """
        out: List[IntervalStats] = []
        for i, cid in enumerate(self.channel_ids):
            out.append(
                IntervalStats(
                    channel_id=int(cid),
                    interval_seconds=self.interval_seconds,
                    arrivals=int(self._iv_arrivals[i]),
                    transition_counts=self._iv_transitions[i].copy(),
                    departure_counts=self._iv_departures[i].copy(),
                    upload_capacity_sum=self._iv_upload_sum[i],
                    upload_capacity_samples=int(self._iv_upload_samples[i]),
                    start_chunk_counts=self._iv_starts[i].copy(),
                )
            )
        self._iv_arrivals[:] = 0
        self._iv_transitions[:] = 0.0
        self._iv_departures[:] = 0.0
        self._iv_starts[:] = 0.0
        self._iv_upload_sum = [0.0] * self.num_channels
        self._iv_upload_samples[:] = 0
        return out

    # ------------------------------------------------------------------
    # Slot pool
    # ------------------------------------------------------------------
    _ROW_ARRAYS = (
        "_row_chan",
        "_row_chunk",
        "_row_received",
        "_row_enter",
        "_row_upload",
        "_row_unsmooth",
        "_row_hold_until",
        "_row_hold_next",
        "_row_hold_from",
        "_row_alive",
    )

    def _grow(self, need: int) -> None:
        cap = self._row_chan.size
        while cap < need:
            cap += max(_GROW, cap // 2)
        n = self._n
        for name in self._ROW_ARRAYS:
            arr = getattr(self, name)
            fresh = np.empty(cap, dtype=arr.dtype)
            fresh[:n] = arr[:n]
            setattr(self, name, fresh)

    def _compact(self) -> int:
        """Squeeze dead rows out of every column; returns the live count.

        The ascending gather preserves admission order — the ordering
        contract — and runs sequentially over each column.
        """
        if self._stale:
            n = self._n
            idx = np.flatnonzero(self._row_alive[:n])
            m = idx.size
            for name in self._ROW_ARRAYS:
                arr = getattr(self, name)
                # Fancy-index reads copy before the assignment writes,
                # so compacting into the same buffer is safe.
                arr[:m] = arr[idx]
            self._n = m
            self._stale = False
        return self._n

    # ------------------------------------------------------------------
    # Step phases
    # ------------------------------------------------------------------
    def _admit_arrivals(self) -> int:
        end = int(
            np.searchsorted(self._trace_times, self.now, side="right")
        )
        count = end - self._cursor
        if count == 0:
            return 0
        sl = slice(self._cursor, end)
        self._cursor = end
        locals_ = self._trace_channel[sl]
        starts = self._trace_start[sl]
        uploads = self._trace_upload[sl]
        if count > 1:
            # Group per channel, keeping trace order within a channel —
            # the order the per-channel accumulators saw.
            order = np.argsort(locals_, kind="stable")
            locals_ = locals_[order]
            starts = starts[order]
            uploads = uploads[order]
        # Appending at the tail keeps admission order even while dead
        # rows await compaction (relative order of live rows is stable).
        n0 = self._n
        n1 = n0 + count
        if n1 > self._row_chan.size:
            self._grow(n1)
        self._row_chan[n0:n1] = locals_
        self._row_chunk[n0:n1] = starts
        self._row_received[n0:n1] = 0.0
        self._row_enter[n0:n1] = self.now
        self._row_upload[n0:n1] = uploads
        self._row_unsmooth[n0:n1] = -np.inf
        self._row_alive[n0:n1] = True
        self._n = n1
        uniq, first_idx, per_channel = np.unique(
            locals_, return_index=True, return_counts=True
        )
        for c, i0, n in zip(
            uniq.tolist(), first_idx.tolist(), per_channel.tolist()
        ):
            # Element-by-element in arrival order: summation order is
            # part of the parity contract (see TrackingServer).
            # ``sum(seq, start)`` adds left to right from ``start`` —
            # the same float operations as an explicit loop.
            self._iv_upload_sum[c] = sum(
                uploads[i0 : i0 + n].tolist(), self._iv_upload_sum[c]
            )
        self._iv_arrivals[uniq] += per_channel
        self._iv_upload_samples[uniq] += per_channel
        starts_flat = self._iv_starts.ravel()
        starts_flat += np.bincount(
            locals_ * self.num_chunks + starts, minlength=starts_flat.size
        )
        self._chan_count[uniq] += per_channel
        self._total_active += count
        self.arrivals += count
        return count

    def _apply_transitions(
        self,
        rows: np.ndarray,
        locals_: np.ndarray,
        finished: np.ndarray,
        nxt: np.ndarray,
    ) -> None:
        """Fused depart-or-move application (hold releases and immediate
        completions) at the given row positions.  All effects are
        order-free across channels: integer counters and integer-valued
        counter adds (bincount adds touch untouched cells with +0,
        bitwise neutral on nonnegative counts, and integer-valued float
        sums are exact in any grouping)."""
        J = self.num_chunks
        departing = nxt < 0
        dep_count = int(departing.sum())
        if dep_count:
            d_rows = rows[departing]
            d_locals = locals_[departing]
            self._row_alive[d_rows] = False
            # Dead rows must not look held: the release scan runs before
            # the next compaction can drop them.
            self._row_chunk[d_rows] = -1
            dep_flat = self._iv_departures.ravel()
            dep_flat += np.bincount(
                d_locals * J + finished[departing], minlength=dep_flat.size
            )
            self._chan_count -= np.bincount(
                d_locals, minlength=self.num_channels
            )
            self._total_active -= dep_count
            self.departures += dep_count
            self._stale = True
        if dep_count < rows.size:
            moving = ~departing
            m_rows = rows[moving]
            self._row_chunk[m_rows] = nxt[moving]
            self._row_received[m_rows] = 0.0
            self._row_enter[m_rows] = self.now
            tr_flat = self._iv_transitions.ravel()
            tr_flat += np.bincount(
                (locals_[moving] * J + finished[moving]) * J + nxt[moving],
                minlength=tr_flat.size,
            )

    def _release_holds(self) -> int:
        if self._hold_count == 0:
            return 0
        n = self._n
        due = (self._row_chunk[:n] == HOLDING) & (
            self._row_hold_until[:n] <= self.now + 1e-9
        )
        rows = np.flatnonzero(due)
        if rows.size == 0:
            return 0
        self._hold_count -= int(rows.size)
        self._apply_transitions(
            rows,
            self._row_chan[rows],
            self._row_hold_from[rows],
            self._row_hold_next[rows],
        )
        return int(rows.size)

    def _deliver_and_complete(self) -> Tuple[List[float], List[float], int]:
        """One fused delivery solve + download advance + completions.

        Returns per-channel (served, shortfall) lists in ascending
        channel order plus the completion event count.
        """
        C, J = self.num_channels, self.num_chunks
        dt = self.config.dt
        now = self.now
        user_cap = self.config.user_rate_cap
        n = self._n
        chan = self._row_chan[:n]
        chunk = self._row_chunk[:n]
        holds = self._stale or self._hold_count > 0
        if holds:
            # Only held rows (chunk == HOLDING) and dead rows awaiting
            # compaction (chunk == -1) fail the mask; every other live
            # row is downloading.  Both spill into one extra bin that is
            # dropped from the counts and gather the appended 0.0 rate
            # below (an exact ``+ 0.0`` on their nonnegative buffers),
            # so the whole table advances in sequential passes with no
            # compression — and no per-step compaction.
            dl_mask = chunk >= 0
            flat = np.where(dl_mask, chan * J + chunk, C * J)
            counts = (
                np.bincount(flat, minlength=C * J + 1)[: C * J]
                .reshape(C, J)
                .astype(float)
            )
        else:
            flat = chan * J + chunk
            counts = (
                np.bincount(flat, minlength=C * J)
                .reshape(C, J)
                .astype(float)
            )
        rates = np.zeros(C * J + 1)
        rates_cj = rates[: C * J].reshape(C, J)
        busy = counts > 0
        rates_cj[busy] = np.minimum(
            user_cap, self._capacity[busy] / counts[busy]
        )
        # Row-wise sums over a C-contiguous matrix are bitwise equal to
        # each channel's own 1-D pairwise .sum().
        served = (rates_cj * counts).sum(axis=1)
        demand = counts.sum(axis=1) * user_cap
        shortfall = np.maximum(0.0, demand - served)

        events = 0
        if n:
            # ``rates`` is the C-contiguous (C, J) table plus one
            # trailing 0.0 for the spill bin, so the flat gather is the
            # same elements as ``rates[local, chunk]`` for downloading
            # rows and an exact 0.0 for masked ones; rows are unique,
            # so the whole-column add matches per-row updates.
            recv = self._row_received[:n] + rates[flat] * dt
            if holds:
                comp_mask = (recv >= self.chunk_size - 1e-9) & dl_mask
            else:
                comp_mask = recv >= self.chunk_size - 1e-9
            self._row_received[:n] = recv
            if comp_mask.any():
                comp = np.flatnonzero(comp_mask)
                comp_local = chan[comp]
                finished = chunk[comp]
                if comp.size > 1:
                    # Channel-major, arrival order within each channel —
                    # the order the per-channel kernel consumes its
                    # behaviour stream and sojourn accumulator in.
                    order = np.argsort(comp_local, kind="stable")
                    comp = comp[order]
                    comp_local = comp_local[order]
                    finished = finished[order]
                events = int(comp.size)
                enters = self._row_enter[comp]
                sojourns = now - enters
                smooth = sojourns <= self._smooth_after
                unsmooth = ~smooth
                if unsmooth.any():
                    self._row_unsmooth[comp[unsmooth]] = now
                nxt = self._sample_transitions(
                    comp_local, finished, sojourns, smooth
                )
                release = enters + np.maximum(self.t0, sojourns)
                immediate = release <= now + 1e-9
                hold = ~immediate
                if hold.any():
                    h_rows = comp[hold]
                    self._row_chunk[h_rows] = HOLDING
                    self._row_hold_until[h_rows] = release[hold]
                    self._row_hold_next[h_rows] = nxt[hold]
                    self._row_hold_from[h_rows] = finished[hold]
                    self._hold_count += int(h_rows.size)
                if immediate.any():
                    self._apply_transitions(
                        comp[immediate],
                        comp_local[immediate],
                        finished[immediate],
                        nxt[immediate],
                    )
        return served.tolist(), shortfall.tolist(), events

    def _sample_transitions(
        self,
        comp_local: np.ndarray,
        finished: np.ndarray,
        sojourns: np.ndarray,
        smooth: np.ndarray,
    ) -> np.ndarray:
        """Quality recording + behaviour draws, channel by channel.

        ``comp_local`` is ascending (completions come out channel-major),
        so each contiguous segment is one channel's completions in
        arrival order — the exact order (and batch size) in which the
        per-channel kernel consumes that channel's behaviour stream,
        including its ``<= 4`` scalar path.
        """
        n = comp_local.size
        bounds = np.flatnonzero(np.diff(comp_local)) + 1
        starts = [0, *bounds.tolist(), n]
        quality = self.quality
        gens = self._gens
        u = np.empty(n)
        sojourn_acc = quality.sojourn_sum
        for k in range(len(starts) - 1):
            i0 = starts[k]
            i1 = starts[k + 1]
            seg = i1 - i0
            # One block draw per channel; numpy bit generators consume
            # the stream identically for n scalar draws and one
            # ``random(n)`` (the RandomStreams.batch invariant), so this
            # also covers the per-channel kernel's <= 4 scalar path.
            u[i0:i1] = gens[comp_local[i0]].random(seg)
            if seg <= 4:
                # The scalar path accumulates sojourns one Python float
                # at a time; the batch path adds one pairwise np.sum per
                # segment.  Both orders are part of the parity contract
                # (``sum(seq, start)`` adds left to right from start).
                sojourn_acc = sum(sojourns[i0:i1].tolist(), sojourn_acc)
            else:
                sojourn_acc += float(np.sum(sojourns[i0:i1]))
        quality.sojourn_sum = sojourn_acc
        quality.total_retrievals += n
        quality.unsmooth_retrievals += n - int(np.count_nonzero(smooth))
        # Fused next-chunk decision: elementwise-identical to the scalar
        # ``-1 if u >= cum[-1] else (cum <= u).sum()`` rule.
        rows = self._cumulative[finished]
        nxt = (rows <= u[:, None]).sum(axis=1)
        nxt[u >= rows[:, -1]] = -1
        return nxt

    def _sample_quality(self) -> None:
        n = self._n
        total_users = self._total_active
        if total_users:
            window = self.config.quality_window
            ok = self._row_unsmooth[:n] <= self.now - window
            overdue = (self._row_chunk[:n] >= 0) & (
                self.now - self._row_enter[:n] > self._overdue_after
            )
            ok &= ~overdue
            if self._stale:
                ok &= self._row_alive[:n]
            # The report only ships totals, and integer sums are exact in
            # any grouping — identical to summing per-channel counts.
            total_smooth = int(np.count_nonzero(ok))
        else:
            total_smooth = 0
        self.quality.samples.append(
            _QualitySampleLite(self.now, total_smooth, total_users)
        )

    # ------------------------------------------------------------------
    # Core loop
    # ------------------------------------------------------------------
    def step(self) -> BandwidthSample:
        """Advance one ``dt`` step; returns the step's bandwidth sample."""
        if self._n > self._total_active + (self._total_active >> 1) + _GROW:
            # Dead rows are masked out of every per-step pass, so
            # compaction is pure housekeeping — amortize it: only squeeze
            # once the table carries >50% garbage.
            self._compact()
        self.now += self.config.dt
        events = self._admit_arrivals()
        events += self._release_holds()
        served, shortfall_per, completions = self._deliver_and_complete()
        events += completions

        # Sequential Python adds in ascending channel order — the
        # per-channel kernel's step-total accumulation order
        # (``sum(seq, 0.0)`` adds left to right from 0.0).
        cloud_used = sum(served, 0.0)
        shortfall = sum(shortfall_per, 0.0)
        peer_used = 0.0
        provisioned = self.total_provisioned()
        self.bandwidth.append(
            self.now, cloud_used, peer_used, provisioned, shortfall
        )
        self.steps += 1
        if events > self.peak_step_events:
            self.peak_step_events = events

        if self.now + 1e-9 >= self._next_quality_sample:
            self._sample_quality()
            self._next_quality_sample += self.config.quality_sample_interval
        return BandwidthSample(
            time=self.now,
            cloud_used=cloud_used,
            peer_used=peer_used,
            provisioned=provisioned,
            shortfall=shortfall,
        )

    def advance_to(self, until: float) -> None:
        """Run steps until the clock reaches (or passes) ``until``."""
        if until < self.now:
            raise ValueError(
                f"cannot advance backwards to {until} < {self.now}"
            )
        while self.now + 1e-9 < until:
            self.step()
