"""Multi-channel VoD application substrate (paper Sections III-B and VI).

The paper's evaluation runs a real VoD prototype over a home-built cloud;
this package is the simulated equivalent:

* :mod:`repro.vod.channel` — channel descriptions (chunking, behaviour).
* :mod:`repro.vod.user` — per-channel user state stores (struct-of-arrays
  for speed at paper scale).
* :mod:`repro.vod.tracker` — the tracking server: peer lists, per-interval
  arrival/transition statistics for the controller.
* :mod:`repro.vod.overlay` — mesh overlay construction and churn.
* :mod:`repro.vod.metrics` — retrieval records and the smooth-playback
  streaming-quality metric.
* :mod:`repro.vod.delivery` — client-server and P2P (rarest-first)
  bandwidth allocation models.
* :mod:`repro.vod.simulator` — the time-stepped fluid simulator that closes
  the loop with the cloud substrate and the provisioning controller.
* :mod:`repro.vod.queue_sim` — an event-driven Jackson-network simulator
  used to validate the Section IV analysis against stochastic sample paths.
"""

from repro.vod.channel import ChannelSpec, make_uniform_channels
from repro.vod.delivery import ClientServerDelivery, P2PDelivery
from repro.vod.metrics import QualityTracker, RetrievalRecord
from repro.vod.overlay import MeshOverlay
from repro.vod.simulator import SimulationResult, VoDSimulator, VoDSystemConfig
from repro.vod.tracker import IntervalStats, TrackingServer
from repro.vod.user import UserStore

__all__ = [
    "ChannelSpec",
    "make_uniform_channels",
    "ClientServerDelivery",
    "P2PDelivery",
    "QualityTracker",
    "RetrievalRecord",
    "MeshOverlay",
    "SimulationResult",
    "VoDSimulator",
    "VoDSystemConfig",
    "IntervalStats",
    "TrackingServer",
    "UserStore",
]
