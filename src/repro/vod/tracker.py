"""The tracking server (paper Sections IV-C and V-B).

The tracker maintains, per channel, the peer lists and chunk-availability
bitmaps the P2P protocol needs, and accumulates the per-interval statistics
the provisioning controller consumes at the end of every interval T:

* the average external user arrival rate Lambda^(c);
* observed chunk-to-chunk transition and departure counts (from which the
  controller estimates the viewing pattern P^(c));
* the mean peer upload capacity (for the Eqn (5) contribution estimate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["IntervalStats", "TrackingServer", "CloudEntryTicket"]


@dataclass(frozen=True)
class CloudEntryTicket:
    """The 3-tuple the tracker hands a peer with insufficient peer supply:
    a cloud entry point address, candidate ports, and a ticket the entry
    point verifies before port-forwarding to a serving VM."""

    entry_ip: str
    ports: List[int]
    ticket: str


@dataclass
class IntervalStats:
    """Per-channel statistics for one completed provisioning interval."""

    channel_id: int
    interval_seconds: float
    arrivals: int = 0
    transition_counts: np.ndarray = field(default=None)  # type: ignore[assignment]
    departure_counts: np.ndarray = field(default=None)  # type: ignore[assignment]
    upload_capacity_sum: float = 0.0
    upload_capacity_samples: int = 0
    start_chunk_counts: np.ndarray = field(default=None)  # type: ignore[assignment]

    @property
    def arrival_rate(self) -> float:
        """Average external arrival rate over the interval, users/second."""
        return self.arrivals / self.interval_seconds

    @property
    def mean_upload_capacity(self) -> float:
        if self.upload_capacity_samples == 0:
            return 0.0
        return self.upload_capacity_sum / self.upload_capacity_samples

    @property
    def observed_alpha(self) -> float:
        """Fraction of arrivals that started at chunk 0 (estimates alpha)."""
        total = int(self.start_chunk_counts.sum())
        if total == 0:
            return 1.0
        return float(self.start_chunk_counts[0]) / total


class TrackingServer:
    """Accumulates observations and closes them out per interval.

    Parameters
    ----------
    num_channels:
        Number of channels tracked.
    chunks_per_channel:
        J^(c) for each channel (list-indexed by channel id).
    interval_seconds:
        The provisioning interval T (paper default: one hour).
    """

    def __init__(
        self,
        num_channels: int,
        chunks_per_channel: List[int],
        interval_seconds: float = 3600.0,
        *,
        entry_ip: str = "10.0.0.1",
        keep_history: bool = True,
    ) -> None:
        """``keep_history=False`` drops closed intervals instead of
        retaining them — shard-side trackers ship their statistics to
        the control plane every epoch and would otherwise accumulate
        one dead stats set per channel per epoch for the whole run."""
        if num_channels <= 0:
            raise ValueError("need at least one channel")
        if len(chunks_per_channel) != num_channels:
            raise ValueError("need one chunk count per channel")
        if interval_seconds <= 0:
            raise ValueError("interval must be > 0")
        self.num_channels = num_channels
        self.chunks_per_channel = list(chunks_per_channel)
        self.interval_seconds = interval_seconds
        self.entry_ip = entry_ip
        self.keep_history = keep_history
        self._ticket_counter = 0
        self._stats = [self._fresh_stats(c) for c in range(num_channels)]
        self.history: List[List[IntervalStats]] = [[] for _ in range(num_channels)]

    def _fresh_stats(self, channel_id: int) -> IntervalStats:
        j = self.chunks_per_channel[channel_id]
        return IntervalStats(
            channel_id=channel_id,
            interval_seconds=self.interval_seconds,
            transition_counts=np.zeros((j, j), dtype=float),
            departure_counts=np.zeros(j, dtype=float),
            start_chunk_counts=np.zeros(j, dtype=float),
        )

    def empty_stats(self, channel_id: int) -> IntervalStats:
        """A zero-observation stats record (used for bootstrap estimates)."""
        return self._fresh_stats(channel_id)

    # ------------------------------------------------------------------
    # Observations (called by the simulator)
    # ------------------------------------------------------------------
    def record_arrival(
        self, channel_id: int, start_chunk: int, upload_capacity: float
    ) -> None:
        stats = self._stats[channel_id]
        stats.arrivals += 1
        stats.start_chunk_counts[start_chunk] += 1
        stats.upload_capacity_sum += upload_capacity
        stats.upload_capacity_samples += 1

    def record_arrivals(
        self,
        channel_id: int,
        start_chunks: np.ndarray,
        upload_capacities: np.ndarray,
    ) -> None:
        """Batch :meth:`record_arrival` (one step's admissions, one call).

        The upload-capacity accumulator is advanced element by element in
        input order — summation order is part of the kernel's parity
        contract — while the integer-valued counts are vectorized.
        """
        stats = self._stats[channel_id]
        count = len(start_chunks)
        stats.arrivals += count
        np.add.at(stats.start_chunk_counts, start_chunks, 1.0)
        for value in upload_capacities.tolist():
            stats.upload_capacity_sum += value
        stats.upload_capacity_samples += count

    def record_transition(self, channel_id: int, from_chunk: int, to_chunk: int) -> None:
        self._stats[channel_id].transition_counts[from_chunk, to_chunk] += 1

    def record_transitions(
        self, channel_id: int, from_chunks: np.ndarray, to_chunks: np.ndarray
    ) -> None:
        """Batch :meth:`record_transition` (one step's moves, one call)."""
        np.add.at(
            self._stats[channel_id].transition_counts,
            (from_chunks, to_chunks),
            1.0,
        )

    def record_departure(self, channel_id: int, from_chunk: int) -> None:
        self._stats[channel_id].departure_counts[from_chunk] += 1

    def record_departures(self, channel_id: int, from_chunks: np.ndarray) -> None:
        """Batch :meth:`record_departure`."""
        np.add.at(
            self._stats[channel_id].departure_counts, from_chunks, 1.0
        )

    def absorb(self, stats: IntervalStats) -> None:
        """Fold another tracker's interval deltas into the open interval.

        The sharded engine runs one tracker per shard and merges their
        closed intervals into a control-plane tracker in fixed shard
        order, so the controller sees the whole catalog's statistics
        (see :mod:`repro.sim.shard`).  Shapes must match the channel.
        """
        mine = self._stats[stats.channel_id]
        if mine.transition_counts.shape != stats.transition_counts.shape:
            raise ValueError(
                f"channel {stats.channel_id}: transition matrix shape "
                f"{stats.transition_counts.shape} != "
                f"{mine.transition_counts.shape}"
            )
        mine.arrivals += stats.arrivals
        mine.transition_counts += stats.transition_counts
        mine.departure_counts += stats.departure_counts
        mine.start_chunk_counts += stats.start_chunk_counts
        mine.upload_capacity_sum += stats.upload_capacity_sum
        mine.upload_capacity_samples += stats.upload_capacity_samples

    # ------------------------------------------------------------------
    # P2P protocol surface
    # ------------------------------------------------------------------
    def issue_cloud_ticket(self) -> CloudEntryTicket:
        """Hand out a cloud entry ticket (insufficient peer supply path)."""
        self._ticket_counter += 1
        return CloudEntryTicket(
            entry_ip=self.entry_ip,
            ports=[9000 + (self._ticket_counter % 16)],
            ticket=f"tkt-{self._ticket_counter:08d}",
        )

    @property
    def tickets_issued(self) -> int:
        return self._ticket_counter

    # ------------------------------------------------------------------
    # Interval close-out (called by the controller every T)
    # ------------------------------------------------------------------
    def close_interval(self) -> List[IntervalStats]:
        """Return this interval's statistics and start a fresh interval."""
        closed = self._stats
        if self.keep_history:
            for stats in closed:
                self.history[stats.channel_id].append(stats)
        self._stats = [self._fresh_stats(c) for c in range(self.num_channels)]
        return closed

    def current_arrival_counts(self) -> List[int]:
        """Arrivals so far in the open interval (for diagnostics)."""
        return [s.arrivals for s in self._stats]

    def last_closed(self, channel_id: int) -> Optional[IntervalStats]:
        hist = self.history[channel_id]
        return hist[-1] if hist else None
