"""Event-driven Jackson-network simulator (analysis validation).

Simulates one channel exactly as the Section IV model describes it: Poisson
external arrivals split by alpha, J chunk queues each with m_i servers of
exponential service rate mu, FIFO waiting rooms, and chunk-to-chunk
movement following the transfer matrix P. Peers keep downloaded chunks
until departure, so the simulator also measures the ownership counts
nu_i that Proposition 1 predicts.

This stochastic twin exists to validate the closed-form analysis
(:mod:`repro.queueing`, :mod:`repro.p2p.ownership`) against sample paths;
the production experiments use the faster fluid simulator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Set

import numpy as np

from repro.queueing.jackson import external_arrival_vector
from repro.queueing.transitions import validate_transition_matrix
from repro.sim.engine import Simulator
from repro.sim.rng import make_rng

__all__ = ["JacksonChannelSimulator", "QueueSimResult"]


@dataclass
class _Job:
    job_id: int
    queue: int
    enqueued_at: float
    owned: Set[int] = field(default_factory=set)


@dataclass
class QueueSimResult:
    """Measured equilibrium statistics of one simulated channel."""

    mean_in_system: np.ndarray  # time-average E[n_i]
    mean_sojourn: np.ndarray  # per-queue mean sojourn of completed visits
    mean_owners: np.ndarray  # time-average nu_i (owners outside queue i)
    completed_visits: np.ndarray
    arrivals: int
    departures: int
    horizon: float


class JacksonChannelSimulator:
    """One channel as an open Jackson network of M/M/m_i queues."""

    def __init__(
        self,
        transition_matrix: np.ndarray,
        external_rate: float,
        service_rate: float,
        servers: np.ndarray,
        *,
        alpha: float = 0.8,
        seed: int = 0,
        replay_buffered: bool = False,
    ) -> None:
        """Create the simulator.

        ``replay_buffered=False`` (default) gives pure Jackson semantics:
        every queue visit takes a full service, even when the job already
        buffered the chunk — this is the Section IV model, and what the
        validation tests compare against. ``replay_buffered=True`` gives
        the more realistic VoD behaviour where a buffered chunk replays
        instantly without consuming a server.
        """
        self.p = validate_transition_matrix(transition_matrix)
        self.num_queues = self.p.shape[0]
        if external_rate < 0:
            raise ValueError("external rate must be >= 0")
        if service_rate <= 0:
            raise ValueError("service rate must be > 0")
        self.servers = np.asarray(servers, dtype=int)
        if self.servers.shape != (self.num_queues,):
            raise ValueError("need one server count per queue")
        if np.any(self.servers < 0):
            raise ValueError("server counts must be >= 0")
        self.external_rate = float(external_rate)
        self.service_rate = float(service_rate)
        self.alpha = alpha
        self.replay_buffered = replay_buffered
        self.ext = external_arrival_vector(self.num_queues, external_rate, alpha)
        self.rng = make_rng(seed, "queue-sim")
        self.sim = Simulator()
        self._cumulative = np.cumsum(self.p, axis=1)

        self._job_counter = 0
        self.waiting: List[Deque[_Job]] = [deque() for _ in range(self.num_queues)]
        self.in_service: List[Dict[int, _Job]] = [dict() for _ in range(self.num_queues)]
        # Time-integrals for time-average statistics.
        self._area_n = np.zeros(self.num_queues)
        self._area_owners = np.zeros(self.num_queues)
        self._last_stat_time = 0.0
        self._owners_now = np.zeros(self.num_queues)
        # Owners of chunk i currently *inside* queue i (re-downloads);
        # Proposition 1's nu_i excludes them from the supplier count.
        self._inqueue_owners = np.zeros(self.num_queues)
        self._sojourn_sum = np.zeros(self.num_queues)
        self._visits = np.zeros(self.num_queues, dtype=np.int64)
        self.arrivals = 0
        self.departures = 0
        self._warmup_end = 0.0

    # ------------------------------------------------------------------
    def _accrue(self) -> None:
        now = self.sim.now
        dt = now - self._last_stat_time
        if dt > 0 and now > self._warmup_end:
            effective = min(dt, now - max(self._last_stat_time, self._warmup_end))
            counts = np.array(
                [len(w) + len(s) for w, s in zip(self.waiting, self.in_service)],
                dtype=float,
            )
            self._area_n += counts * effective
            self._area_owners += (
                self._owners_now - self._inqueue_owners
            ) * effective
        self._last_stat_time = now

    def _queue_population(self, q: int) -> int:
        return len(self.waiting[q]) + len(self.in_service[q])

    # ------------------------------------------------------------------
    def _schedule_external_arrival(self, queue: int) -> None:
        rate = self.ext[queue]
        if rate <= 0:
            return
        delay = self.rng.exponential(1.0 / rate)
        self.sim.schedule_in(delay, lambda q=queue: self._external_arrival(q))

    def _external_arrival(self, queue: int) -> None:
        self._accrue()
        self.arrivals += 1
        self._job_counter += 1
        job = _Job(self._job_counter, queue, self.sim.now)
        self._enqueue(job, queue)
        self._schedule_external_arrival(queue)

    def _enqueue(self, job: _Job, queue: int) -> None:
        job.queue = queue
        job.enqueued_at = self.sim.now
        if queue in job.owned:  # re-download: an owner temporarily in-queue
            self._inqueue_owners[queue] += 1
        if len(self.in_service[queue]) < self.servers[queue]:
            self._start_service(job, queue)
        else:
            self.waiting[queue].append(job)

    def _start_service(self, job: _Job, queue: int) -> None:
        self.in_service[queue][job.job_id] = job
        delay = self.rng.exponential(1.0 / self.service_rate)
        self.sim.schedule_in(
            delay, lambda j=job, q=queue: self._complete_service(j, q)
        )

    def _complete_service(self, job: _Job, queue: int) -> None:
        self._accrue()
        del self.in_service[queue][job.job_id]
        self._sojourn_sum[queue] += self.sim.now - job.enqueued_at
        self._visits[queue] += 1
        # The job now owns the chunk it just downloaded.
        if queue not in job.owned:
            job.owned.add(queue)
            self._owners_now[queue] += 1
        else:  # re-download finished: no longer an in-queue owner
            self._inqueue_owners[queue] -= 1
        # Pull the next waiter into service.
        if self.waiting[queue]:
            self._start_service(self.waiting[queue].popleft(), queue)
        # Route the job.
        cum = self._cumulative[queue]
        u = self.rng.random()
        if u >= cum[-1]:
            self._depart(job)
        else:
            nxt = int(np.searchsorted(cum, u, side="right"))
            if self.replay_buffered and nxt in job.owned:
                # Already buffered: instant replay, route again from nxt.
                self._route_through(job, nxt)
            else:
                self._enqueue(job, nxt)

    def _route_through(self, job: _Job, queue: int, depth: int = 0) -> None:
        """A job revisiting a buffered chunk replays it without downloading."""
        if depth > 64:  # safety against pathological matrices
            self._depart(job)
            return
        cum = self._cumulative[queue]
        u = self.rng.random()
        if u >= cum[-1]:
            self._depart(job)
            return
        nxt = int(np.searchsorted(cum, u, side="right"))
        if nxt in job.owned:
            self._route_through(job, nxt, depth + 1)
        else:
            self._enqueue(job, nxt)

    def _depart(self, job: _Job) -> None:
        self.departures += 1
        for chunk in job.owned:
            self._owners_now[chunk] -= 1

    # ------------------------------------------------------------------
    def run(self, horizon: float, *, warmup: float = 0.0) -> QueueSimResult:
        """Simulate for ``horizon`` seconds (discarding ``warmup``)."""
        if horizon <= warmup:
            raise ValueError("horizon must exceed warmup")
        self._warmup_end = warmup
        for q in range(self.num_queues):
            self._schedule_external_arrival(q)
        self.sim.run(until=horizon)
        self._accrue()
        measured = horizon - warmup
        mean_sojourn = np.divide(
            self._sojourn_sum,
            np.maximum(self._visits, 1),
            out=np.zeros(self.num_queues),
            where=self._visits > 0,
        )
        return QueueSimResult(
            mean_in_system=self._area_n / measured,
            mean_sojourn=mean_sojourn,
            mean_owners=self._area_owners / measured,
            completed_visits=self._visits.copy(),
            arrivals=self.arrivals,
            departures=self.departures,
            horizon=measured,
        )
