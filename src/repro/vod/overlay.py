"""Mesh overlay construction and churn (paper Section III-B).

Peers watching the same channel are organized into a mesh: on join (or on a
seek to a new position) a peer asks the tracker for neighbors and connects
to up to ``max_degree`` of them; on departure its edges are torn down.
Buffer-availability bitmaps travel over these edges in the real protocol.

The fluid simulator uses tracker-level (global) chunk availability, which
matches the paper's design — the tracker knows exactly which peers hold
which chunks and returns matching neighbor lists — so the overlay's role in
the reproduction is structural: join/leave dynamics, degree statistics, and
partition checks exercised by the tests and the overlay example.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

import numpy as np

from repro.sim.rng import make_rng

__all__ = ["MeshOverlay"]


class MeshOverlay:
    """An undirected bounded-degree mesh for one channel."""

    def __init__(
        self, max_degree: int = 8, *, rng: Optional[np.random.Generator] = None
    ) -> None:
        if max_degree <= 0:
            raise ValueError("max_degree must be > 0")
        self.max_degree = max_degree
        # No raw np.random fallback: the default is the named
        # seed-0 stream, so two default-constructed overlays make
        # identical neighbor choices (pass an rng to vary them).
        self.rng = rng if rng is not None else make_rng(0, "overlay", "mesh")
        self.neighbors: Dict[int, Set[int]] = {}

    def __contains__(self, peer: int) -> bool:
        return peer in self.neighbors

    def __len__(self) -> int:
        return len(self.neighbors)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def _select(self, peer: int, candidates: Iterable[int], need: int) -> None:
        """Connect ``peer`` to up to ``need`` candidates.

        Candidates with spare degree are preferred; if none are available
        the peer still gets one edge to a saturated candidate — a soft cap
        that prevents newcomers from being partitioned off (real mesh
        protocols do the same).
        """
        known = [
            c
            for c in candidates
            if c != peer and c in self.neighbors and c not in self.neighbors[peer]
        ]
        preferred = [c for c in known if len(self.neighbors[c]) < self.max_degree]
        saturated = [c for c in known if len(self.neighbors[c]) >= self.max_degree]
        if preferred and need > 0:
            take = min(need, len(preferred))
            chosen = self.rng.choice(len(preferred), size=take, replace=False)
            for idx in chosen:
                self._connect(peer, preferred[int(idx)])
        if not self.neighbors[peer] and saturated:
            fallback = saturated[int(self.rng.integers(0, len(saturated)))]
            self._connect(peer, fallback)

    def join(self, peer: int, candidates: Iterable[int] = ()) -> List[int]:
        """Add ``peer`` and connect it to up to ``max_degree`` candidates.

        Returns the neighbor list actually connected.
        """
        if peer in self.neighbors:
            raise ValueError(f"peer {peer} already in overlay")
        self.neighbors[peer] = set()
        self._select(peer, candidates, self.max_degree)
        return sorted(self.neighbors[peer])

    def leave(self, peer: int) -> None:
        """Remove ``peer`` and all its edges."""
        if peer not in self.neighbors:
            return
        for other in list(self.neighbors[peer]):
            self.neighbors[other].discard(peer)
        del self.neighbors[peer]

    def _connect(self, a: int, b: int) -> None:
        self.neighbors[a].add(b)
        self.neighbors[b].add(a)

    def rewire(self, peer: int, candidates: Iterable[int]) -> List[int]:
        """Top a peer's neighbor set back up after churn."""
        if peer not in self.neighbors:
            raise KeyError(f"peer {peer} not in overlay")
        need = self.max_degree - len(self.neighbors[peer])
        self._select(peer, candidates, need)
        return sorted(self.neighbors[peer])

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def degree(self, peer: int) -> int:
        return len(self.neighbors.get(peer, ()))

    def mean_degree(self) -> float:
        if not self.neighbors:
            return 0.0
        return float(np.mean([len(n) for n in self.neighbors.values()]))

    def connected_components(self) -> List[Set[int]]:
        """Connected components via BFS (partition diagnostics)."""
        seen: Set[int] = set()
        components: List[Set[int]] = []
        for start in self.neighbors:
            if start in seen:
                continue
            component = {start}
            frontier = [start]
            while frontier:
                node = frontier.pop()
                for nbr in self.neighbors[node]:
                    if nbr not in component:
                        component.add(nbr)
                        frontier.append(nbr)
            seen |= component
            components.append(component)
        return components

    def is_connected(self) -> bool:
        return len(self.connected_components()) <= 1
