"""Per-channel user state stores.

The fluid simulator tracks, for every active user: the chunk currently
being downloaded, bytes received of it, queue-entry time, upload capacity,
and the set of chunks buffered so far. A struct-of-arrays layout keeps the
per-step hot path (progress updates, per-chunk demand counts, peer supply
aggregation) vectorized, which is what makes paper-scale runs (~2500
concurrent users over a week) tractable in Python.

A user is in exactly one of two phases:

* ``chunk >= 0`` — downloading that chunk (a job in its queue);
* ``chunk == HOLDING`` — the download finished before the chunk's playback
  slot ended, so the user is watching until ``hold_until``, then moves to
  ``hold_next`` (or departs). This playback pacing is what keeps session
  durations tied to the video length rather than to raw bandwidth, and is
  exactly the regime in which the paper's "mean sojourn = T0" equilibrium
  is self-consistent.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["UserStore", "HOLDING"]

_GROW = 256  # slots added per growth step

HOLDING = -2  # chunk sentinel: user is watching, not downloading
_DEPART = -1  # hold_next sentinel: leave the channel when the hold expires


class UserStore:
    """State of all users (past and present) of one channel.

    Rows are user slots; a slot stays allocated after departure (``active``
    becomes False) so user ids remain stable for the tracker and overlay.
    """

    def __init__(self, num_chunks: int, capacity: int = _GROW) -> None:
        if num_chunks <= 0:
            raise ValueError("need at least one chunk")
        self.num_chunks = num_chunks
        self._size = 0
        cap = max(1, capacity)
        self.active = np.zeros(cap, dtype=bool)
        self.chunk = np.full(cap, -1, dtype=np.int64)
        self.received = np.zeros(cap, dtype=float)
        self.enter_time = np.zeros(cap, dtype=float)
        self.arrival_time = np.zeros(cap, dtype=float)
        self.upload = np.zeros(cap, dtype=float)
        self.owned = np.zeros((cap, num_chunks), dtype=bool)
        self.last_unsmooth = np.full(cap, -np.inf, dtype=float)
        self.retrievals = np.zeros(cap, dtype=np.int64)
        self.unsmooth_retrievals = np.zeros(cap, dtype=np.int64)
        self.hold_until = np.zeros(cap, dtype=float)
        self.hold_next = np.full(cap, _DEPART, dtype=np.int64)
        self.hold_from = np.full(cap, -1, dtype=np.int64)

    def __len__(self) -> int:
        return self._size

    @property
    def num_active(self) -> int:
        return int(self.active[: self._size].sum())

    def _grow(self) -> None:
        extra = max(_GROW, self.active.size // 2)
        self.active = np.concatenate([self.active, np.zeros(extra, dtype=bool)])
        self.chunk = np.concatenate([self.chunk, np.full(extra, -1, dtype=np.int64)])
        for name in ("received", "enter_time", "arrival_time", "upload"):
            arr = getattr(self, name)
            setattr(self, name, np.concatenate([arr, np.zeros(extra, dtype=float)]))
        self.owned = np.concatenate(
            [self.owned, np.zeros((extra, self.num_chunks), dtype=bool)]
        )
        self.last_unsmooth = np.concatenate(
            [self.last_unsmooth, np.full(extra, -np.inf, dtype=float)]
        )
        self.retrievals = np.concatenate(
            [self.retrievals, np.zeros(extra, dtype=np.int64)]
        )
        self.unsmooth_retrievals = np.concatenate(
            [self.unsmooth_retrievals, np.zeros(extra, dtype=np.int64)]
        )
        self.hold_until = np.concatenate(
            [self.hold_until, np.zeros(extra, dtype=float)]
        )
        self.hold_next = np.concatenate(
            [self.hold_next, np.full(extra, _DEPART, dtype=np.int64)]
        )
        self.hold_from = np.concatenate(
            [self.hold_from, np.full(extra, -1, dtype=np.int64)]
        )

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add_user(self, now: float, start_chunk: int, upload_capacity: float) -> int:
        """Register an arriving user; returns the user id (row index)."""
        if not 0 <= start_chunk < self.num_chunks:
            raise ValueError(f"start chunk {start_chunk} out of range")
        if upload_capacity < 0:
            raise ValueError("upload capacity must be >= 0")
        if self._size == self.active.size:
            self._grow()
        uid = self._size
        self._size += 1
        self.active[uid] = True
        self.chunk[uid] = start_chunk
        self.received[uid] = 0.0
        self.enter_time[uid] = now
        self.arrival_time[uid] = now
        self.upload[uid] = upload_capacity
        self.owned[uid, :] = False
        self.last_unsmooth[uid] = -np.inf
        self.retrievals[uid] = 0
        self.unsmooth_retrievals[uid] = 0
        return uid

    def start_chunk_download(self, uid: int, chunk: int, now: float) -> None:
        """Move a user into chunk queue ``chunk`` at time ``now``."""
        self.chunk[uid] = chunk
        self.received[uid] = 0.0
        self.enter_time[uid] = now

    def complete_chunk(self, uid: int, now: float, smooth: bool) -> int:
        """Record a finished retrieval; returns the finished chunk index."""
        finished = int(self.chunk[uid])
        self.owned[uid, finished] = True
        self.retrievals[uid] += 1
        if not smooth:
            self.unsmooth_retrievals[uid] += 1
            self.last_unsmooth[uid] = now
        return finished

    def begin_hold(self, uid: int, until: float, next_chunk: int, from_chunk: int) -> None:
        """Put a user into the watching phase until ``until``.

        ``next_chunk`` is the queue to enter when the hold expires, or -1
        to depart; ``from_chunk`` records where the transition originated
        (for the tracker).
        """
        self.chunk[uid] = HOLDING
        self.hold_until[uid] = until
        self.hold_next[uid] = next_chunk
        self.hold_from[uid] = from_chunk

    def due_holds(self, now: float) -> np.ndarray:
        """Active user ids whose watching phase has ended."""
        idx = self.active_indices()
        if idx.size == 0:
            return idx
        holding = idx[self.chunk[idx] == HOLDING]
        return holding[self.hold_until[holding] <= now + 1e-9]

    def depart(self, uid: int) -> None:
        """Deactivate a user (buffer contents become unavailable)."""
        self.active[uid] = False
        self.chunk[uid] = -1

    # ------------------------------------------------------------------
    # Vectorized queries (hot path)
    # ------------------------------------------------------------------
    def active_indices(self) -> np.ndarray:
        return np.nonzero(self.active[: self._size])[0]

    def downloading_indices(self) -> np.ndarray:
        """Active user ids currently in a chunk queue (not watching)."""
        idx = self.active_indices()
        if idx.size == 0:
            return idx
        return idx[self.chunk[idx] >= 0]

    def downloaders_per_chunk(self) -> np.ndarray:
        """Number of active users currently downloading each chunk."""
        idx = self.downloading_indices()
        if idx.size == 0:
            return np.zeros(self.num_chunks, dtype=np.int64)
        return np.bincount(self.chunk[idx], minlength=self.num_chunks)

    def owners_per_chunk(self) -> np.ndarray:
        """Number of active users whose buffer holds each chunk."""
        idx = self.active_indices()
        if idx.size == 0:
            return np.zeros(self.num_chunks, dtype=np.int64)
        return self.owned[idx].sum(axis=0)

    def ownership_matrix(self) -> np.ndarray:
        """Boolean (active users x chunks) buffer matrix (tracker bitmap)."""
        return self.owned[self.active_indices()]

    def advance_downloads(self, rates: np.ndarray, dt: float) -> np.ndarray:
        """Add ``rates[chunk]*dt`` bytes to every active download.

        ``rates`` is the per-chunk *per-user* delivery rate. Watching
        (holding) users are unaffected. Returns the downloading user ids
        that were advanced; see :meth:`completed` for completions.
        """
        idx = self.downloading_indices()
        if idx.size == 0:
            return idx
        self.received[idx] += rates[self.chunk[idx]] * dt
        return idx

    def completed(self, chunk_size: float) -> np.ndarray:
        """Downloading user ids whose current download has finished."""
        idx = self.downloading_indices()
        if idx.size == 0:
            return idx
        return idx[self.received[idx] >= chunk_size - 1e-9]

    def smooth_users(
        self, now: float, window: float, overdue_after: Optional[float] = None
    ) -> Tuple[int, int]:
        """(smooth, total) active users for the quality metric.

        A user is smooth iff no unsmooth retrieval completed within
        ``(now - window, now]`` and, when ``overdue_after`` is given, their
        in-flight download has not yet been outstanding longer than that —
        a stalled user counts as unsmooth *now*, without waiting for the
        retrieval to eventually finish.
        """
        idx = self.active_indices()
        if idx.size == 0:
            return 0, 0
        ok = self.last_unsmooth[idx] <= now - window
        if overdue_after is not None:
            overdue = (self.chunk[idx] >= 0) & (
                now - self.enter_time[idx] > overdue_after
            )
            ok &= ~overdue
        return int(np.sum(ok)), int(idx.size)

    def total_upload_capacity(self) -> float:
        idx = self.active_indices()
        return float(self.upload[idx].sum()) if idx.size else 0.0

    def active_user_ids(self) -> List[int]:
        return [int(i) for i in self.active_indices()]
