"""Per-channel user state stores.

The fluid simulator tracks, for every active user: the chunk currently
being downloaded, bytes received of it, queue-entry time, upload capacity,
and the set of chunks buffered so far. A struct-of-arrays layout keeps the
per-step hot path (progress updates, per-chunk demand counts, peer supply
aggregation) vectorized, which is what makes paper-scale runs (~2500
concurrent users over a week) tractable in Python.

A user is in exactly one of two phases:

* ``chunk >= 0`` — downloading that chunk (a job in its queue);
* ``chunk == HOLDING`` — the download finished before the chunk's playback
  slot ended, so the user is watching until ``hold_until``, then moves to
  ``hold_next`` (or departs). This playback pacing is what keeps session
  durations tied to the video length rather than to raw bandwidth, and is
  exactly the regime in which the paper's "mean sojourn = T0" equilibrium
  is self-consistent.

Slots of departed users are reclaimed through a free-list, so long
flash-crowd runs stop growing the arrays monotonically. A user id stays
stable (and exclusively owned) for the user's whole session — the tracker
and overlay can key on it — and is only reissued after that user departs.
Because reuse makes slot order diverge from arrival order, every index
query returns user ids in **arrival order** (see :meth:`active_indices`);
under the historical monotonic allocator the two orders coincide, which is
what keeps the vectorized kernel's float-reduction order — and therefore
its fixed-seed trajectories — byte-identical to the original scalar
kernel's (the golden-parity contract in docs/performance.md).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["UserStore", "HOLDING"]

_GROW = 256  # slots added per growth step

HOLDING = -2  # chunk sentinel: user is watching, not downloading
_DEPART = -1  # hold_next sentinel: leave the channel when the hold expires


class UserStore:
    """State of all users (past and present) of one channel.

    Rows are user slots. ``active`` marks live users; a departed user's
    slot goes on the free-list and is reissued to a later arrival (its
    buffer was cleared on departure, so stale ownership can never leak).

    Mutations come in scalar and batch flavours; the simulator's step
    kernel uses the batch ones (`complete_chunks`, `begin_holds`,
    `start_chunk_downloads`, `depart_many`) so a step costs O(arrays),
    not O(users) Python calls.
    """

    def __init__(self, num_chunks: int, capacity: int = _GROW) -> None:
        if num_chunks <= 0:
            raise ValueError("need at least one chunk")
        self.num_chunks = num_chunks
        self._size = 0
        cap = max(1, capacity)
        self.active = np.zeros(cap, dtype=bool)
        self.chunk = np.full(cap, -1, dtype=np.int64)
        self.received = np.zeros(cap, dtype=float)
        self.enter_time = np.zeros(cap, dtype=float)
        self.arrival_time = np.zeros(cap, dtype=float)
        self.upload = np.zeros(cap, dtype=float)
        self.owned = np.zeros((cap, num_chunks), dtype=bool)
        self.last_unsmooth = np.full(cap, -np.inf, dtype=float)
        self.retrievals = np.zeros(cap, dtype=np.int64)
        self.unsmooth_retrievals = np.zeros(cap, dtype=np.int64)
        self.hold_until = np.zeros(cap, dtype=float)
        self.hold_next = np.full(cap, _DEPART, dtype=np.int64)
        self.hold_from = np.full(cap, -1, dtype=np.int64)
        # Arrival sequence number per slot: the canonical user ordering.
        self.seq = np.zeros(cap, dtype=np.int64)
        # Active owners per chunk, maintained incrementally so the P2P
        # hot path never has to reduce the ownership matrix.
        self._owners_count = np.zeros(num_chunks, dtype=np.int64)
        # Peer-supply mirror: transposed ownership plus upload capacity of
        # the live users as *columns in arrival order*, so the rarest-first
        # loop reads each chunk's owner mask as a contiguous row view with
        # no per-step slicing. Departures tombstone their column (all-False
        # owners, zero upload — invisible to masks and sums); compaction
        # squeezes tombstones out once they pile up, preserving order.
        self._mirror_owned = np.zeros((num_chunks, cap), dtype=bool)
        self._mirror_upload = np.zeros(cap, dtype=float)
        self._col_of = np.full(cap, -1, dtype=np.int64)  # slot -> column
        self._cols = 0  # mirror columns in use (live + tombstones)
        self._tombstones = 0
        self._next_seq = 0
        self._free: List[int] = []  # reclaimed slots (LIFO)
        self._reused = False  # slot order may differ from arrival order
        # Index caches for the step kernel; maintained incrementally.
        self._active_cache: Optional[np.ndarray] = None
        self._pending_add: List[int] = []  # arrivals not yet in the cache
        self._downloading_cache: Optional[np.ndarray] = None

    def __len__(self) -> int:
        """Slots ever allocated (the arrays' high-water mark)."""
        return self._size

    @property
    def num_active(self) -> int:
        return int(self.active[: self._size].sum())

    @property
    def free_slots(self) -> int:
        """Reclaimed slots currently awaiting reuse."""
        return len(self._free)

    def _grow(self) -> None:
        extra = max(_GROW, self.active.size // 2)
        self.active = np.concatenate([self.active, np.zeros(extra, dtype=bool)])
        self.chunk = np.concatenate([self.chunk, np.full(extra, -1, dtype=np.int64)])
        for name in ("received", "enter_time", "arrival_time", "upload"):
            arr = getattr(self, name)
            setattr(self, name, np.concatenate([arr, np.zeros(extra, dtype=float)]))
        self.owned = np.concatenate(
            [self.owned, np.zeros((extra, self.num_chunks), dtype=bool)]
        )
        self.last_unsmooth = np.concatenate(
            [self.last_unsmooth, np.full(extra, -np.inf, dtype=float)]
        )
        self.retrievals = np.concatenate(
            [self.retrievals, np.zeros(extra, dtype=np.int64)]
        )
        self.unsmooth_retrievals = np.concatenate(
            [self.unsmooth_retrievals, np.zeros(extra, dtype=np.int64)]
        )
        self.hold_until = np.concatenate(
            [self.hold_until, np.zeros(extra, dtype=float)]
        )
        self.hold_next = np.concatenate(
            [self.hold_next, np.full(extra, _DEPART, dtype=np.int64)]
        )
        self.hold_from = np.concatenate(
            [self.hold_from, np.full(extra, -1, dtype=np.int64)]
        )
        self.seq = np.concatenate([self.seq, np.zeros(extra, dtype=np.int64)])
        self._col_of = np.concatenate(
            [self._col_of, np.full(extra, -1, dtype=np.int64)]
        )

    def _mirror_alloc(self, count: int) -> np.ndarray:
        """Claim ``count`` fresh mirror columns (compact/grow as needed)."""
        if self._cols + count > self._mirror_upload.size:
            if self._tombstones:
                self._mirror_compact()
            while self._cols + count > self._mirror_upload.size:
                extra = max(_GROW, self._mirror_upload.size // 2)
                self._mirror_owned = np.concatenate(
                    [self._mirror_owned,
                     np.zeros((self.num_chunks, extra), dtype=bool)],
                    axis=1,
                )
                self._mirror_upload = np.concatenate(
                    [self._mirror_upload, np.zeros(extra, dtype=float)]
                )
        cols = np.arange(self._cols, self._cols + count)
        self._cols += count
        return cols

    def _mirror_compact(self) -> None:
        """Squeeze tombstoned columns out of the peer-supply mirror.

        Live columns keep their relative (arrival) order, so the masks and
        reduction order the delivery loop sees are unchanged.
        """
        live = self.active_indices()
        cols = self._col_of[live]  # ascending: columns are issued in order
        n = live.size
        self._mirror_owned[:, :n] = self._mirror_owned[:, cols]
        self._mirror_owned[:, n : self._cols] = False
        self._mirror_upload[:n] = self._mirror_upload[cols]
        self._mirror_upload[n : self._cols] = 0.0
        self._col_of[live] = np.arange(n)
        self._cols = n
        self._tombstones = 0

    def peer_supply_mirror(self) -> Tuple[np.ndarray, np.ndarray]:
        """(owner masks, upload) over the mirror's in-use columns.

        Row ``j`` of the first array is chunk ``j``'s owner mask; the
        second is the matching per-column upload capacity. Columns are
        live users in arrival order, plus tombstones that no mask selects.
        Returned arrays are views — callers must not mutate them.
        """
        return (
            self._mirror_owned[:, : self._cols],
            self._mirror_upload[: self._cols],
        )

    def _invalidate(self) -> None:
        """Drop the phase (downloading) index cache."""
        self._downloading_cache = None

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def add_user(self, now: float, start_chunk: int, upload_capacity: float) -> int:
        """Register an arriving user; returns the user id (row index)."""
        if not 0 <= start_chunk < self.num_chunks:
            raise ValueError(f"start chunk {start_chunk} out of range")
        if upload_capacity < 0:
            raise ValueError("upload capacity must be >= 0")
        if self._free:
            uid = self._free.pop()
            self._reused = True
        else:
            if self._size == self.active.size:
                self._grow()
            uid = self._size
            self._size += 1
        col = self._mirror_alloc(1)[0]  # fresh columns are already clear
        self._mirror_upload[col] = upload_capacity
        self._col_of[uid] = col
        self.active[uid] = True
        self.chunk[uid] = start_chunk
        self.received[uid] = 0.0
        self.enter_time[uid] = now
        self.arrival_time[uid] = now
        self.upload[uid] = upload_capacity
        self.owned[uid, :] = False
        self.last_unsmooth[uid] = -np.inf
        self.retrievals[uid] = 0
        self.unsmooth_retrievals[uid] = 0
        # hold_until/hold_next/hold_from are deliberately not reset: they
        # are only ever read while chunk == HOLDING, which begin_hold sets
        # together with all three fields.
        self.seq[uid] = self._next_seq
        self._next_seq += 1
        # The arrival-ordered active cache extends by exactly this uid;
        # batch the append so a burst of arrivals costs one concatenate.
        if self._active_cache is not None:
            self._pending_add.append(uid)
        self._invalidate()
        return uid

    def add_users(
        self, now: float, start_chunks: np.ndarray, upload_capacities: np.ndarray
    ) -> np.ndarray:
        """Batch :meth:`add_user`; returns the assigned user ids in order.

        Slot assignment matches what the equivalent sequence of scalar
        calls would do: free-list slots are reissued LIFO first, then
        fresh slots, and arrival sequence numbers run in input order.
        """
        count = len(start_chunks)
        if count == 0:
            return np.empty(0, dtype=np.int64)
        start_chunks = np.asarray(start_chunks, dtype=np.int64)
        upload_capacities = np.asarray(upload_capacities, dtype=float)
        if np.any(start_chunks < 0) or np.any(start_chunks >= self.num_chunks):
            raise ValueError("start chunk out of range")
        if np.any(upload_capacities < 0):
            raise ValueError("upload capacity must be >= 0")
        from_free = min(count, len(self._free))
        uids = np.empty(count, dtype=np.int64)
        if from_free:
            uids[:from_free] = self._free[: -from_free - 1 : -1]  # LIFO pops
            del self._free[-from_free:]
            self._reused = True
        fresh = count - from_free
        if fresh:
            while self._size + fresh > self.active.size:
                self._grow()
            uids[from_free:] = np.arange(self._size, self._size + fresh)
            self._size += fresh
        cols = self._mirror_alloc(count)  # fresh columns are already clear
        self._mirror_upload[cols] = upload_capacities
        self._col_of[uids] = cols
        self.active[uids] = True
        self.chunk[uids] = start_chunks
        self.received[uids] = 0.0
        self.enter_time[uids] = now
        self.arrival_time[uids] = now
        self.upload[uids] = upload_capacities
        self.owned[uids] = False
        self.last_unsmooth[uids] = -np.inf
        self.retrievals[uids] = 0
        self.unsmooth_retrievals[uids] = 0
        # hold_* fields keep stale values; see add_user for why that is
        # safe (only read while chunk == HOLDING).
        self.seq[uids] = np.arange(self._next_seq, self._next_seq + count)
        self._next_seq += count
        if self._active_cache is not None:
            self._pending_add.extend(uids.tolist())
        self._invalidate()
        return uids

    def start_chunk_download(self, uid: int, chunk: int, now: float) -> None:
        """Move a user into chunk queue ``chunk`` at time ``now``."""
        self.chunk[uid] = chunk
        self.received[uid] = 0.0
        self.enter_time[uid] = now
        self._invalidate()

    def start_chunk_downloads(
        self, uids: np.ndarray, chunks: np.ndarray, now: float
    ) -> None:
        """Batch :meth:`start_chunk_download` for distinct ``uids``."""
        self.chunk[uids] = chunks
        self.received[uids] = 0.0
        self.enter_time[uids] = now
        self._invalidate()

    def complete_chunk(self, uid: int, now: float, smooth: bool) -> int:
        """Record a finished retrieval; returns the finished chunk index."""
        finished = int(self.chunk[uid])
        if not self.owned[uid, finished]:  # VCR jumps can re-download
            self.owned[uid, finished] = True
            self._owners_count[finished] += 1
        self._mirror_owned[finished, self._col_of[uid]] = True
        self.retrievals[uid] += 1
        if not smooth:
            self.unsmooth_retrievals[uid] += 1
            self.last_unsmooth[uid] = now
        return finished

    def complete_chunks(
        self, uids: np.ndarray, now: float, smooth: np.ndarray
    ) -> np.ndarray:
        """Batch :meth:`complete_chunk`; returns the finished chunk per uid."""
        finished = self.chunk[uids].copy()
        newly = ~self.owned[uids, finished]  # VCR jumps can re-download
        self.owned[uids, finished] = True
        np.add.at(self._owners_count, finished[newly], 1)
        self._mirror_owned[finished, self._col_of[uids]] = True
        self.retrievals[uids] += 1
        unsmooth = uids[~smooth]
        if unsmooth.size:
            self.unsmooth_retrievals[unsmooth] += 1
            self.last_unsmooth[unsmooth] = now
        return finished

    def grant_chunks(self, uid: int, chunks) -> None:
        """Place chunks in a user's buffer outside the download path.

        ``chunks`` is a chunk index, a sequence of indices, or a boolean
        mask over all chunks. The ownership matrix has derived state (the
        per-chunk owner counts and the peer-supply mirror), so seeding a
        buffer — tests, warm-started experiments — must go through here
        rather than poking ``store.owned`` directly.
        """
        if not self.active[uid]:
            raise ValueError(f"user {uid} is not active")
        chunks = np.atleast_1d(np.asarray(chunks))
        if chunks.dtype == bool:
            chunks = np.nonzero(chunks)[0]
        newly = chunks[~self.owned[uid, chunks]]
        self.owned[uid, newly] = True
        self._owners_count[newly] += 1
        self._mirror_owned[newly, self._col_of[uid]] = True

    def begin_hold(self, uid: int, until: float, next_chunk: int, from_chunk: int) -> None:
        """Put a user into the watching phase until ``until``.

        ``next_chunk`` is the queue to enter when the hold expires, or -1
        to depart; ``from_chunk`` records where the transition originated
        (for the tracker).
        """
        self.chunk[uid] = HOLDING
        self.hold_until[uid] = until
        self.hold_next[uid] = next_chunk
        self.hold_from[uid] = from_chunk
        self._invalidate()

    def begin_holds(
        self,
        uids: np.ndarray,
        until: np.ndarray,
        next_chunks: np.ndarray,
        from_chunks: np.ndarray,
    ) -> None:
        """Batch :meth:`begin_hold` for distinct ``uids``."""
        self.chunk[uids] = HOLDING
        self.hold_until[uids] = until
        self.hold_next[uids] = next_chunks
        self.hold_from[uids] = from_chunks
        self._invalidate()

    def due_holds(self, now: float) -> np.ndarray:
        """Active user ids (arrival order) whose watching phase has ended."""
        idx = self.active_indices()
        if idx.size == 0:
            return idx
        holding = idx[self.chunk[idx] == HOLDING]
        return holding[self.hold_until[holding] <= now + 1e-9]

    def _flush_pending(self) -> None:
        if self._pending_add and self._active_cache is not None:
            self._active_cache = np.concatenate([
                self._active_cache,
                np.asarray(self._pending_add, dtype=self._active_cache.dtype),
            ])
            self._pending_add.clear()

    def _drop_departed(self) -> None:
        """Filter freshly departed users out of the active cache in place
        (order-preserving, so no re-sort is ever needed)."""
        if self._active_cache is not None:
            self._flush_pending()
            cache = self._active_cache
            self._active_cache = cache[self.active[cache]]
        self._invalidate()

    def _mirror_tombstone(self, cols: np.ndarray) -> None:
        self._mirror_owned[:, cols] = False
        self._mirror_upload[cols] = 0.0
        self._tombstones += len(cols)

    def depart(self, uid: int) -> None:
        """Deactivate a user and reclaim the slot for later arrivals."""
        self.active[uid] = False
        self.chunk[uid] = -1
        self._owners_count -= self.owned[uid]
        self._mirror_tombstone(self._col_of[uid : uid + 1])
        self._col_of[uid] = -1
        self._free.append(int(uid))
        self._drop_departed()
        if self._tombstones > max(64, self._cols // 3):
            self._mirror_compact()

    def depart_many(self, uids: np.ndarray) -> None:
        """Batch :meth:`depart` for distinct ``uids``."""
        self.active[uids] = False
        self.chunk[uids] = -1
        if uids.size == 1:
            self._owners_count -= self.owned[uids[0]]
        else:
            self._owners_count -= self.owned[uids].sum(axis=0)
        self._mirror_tombstone(self._col_of[uids])
        self._col_of[uids] = -1
        self._free.extend(uids.tolist())
        self._drop_departed()
        if self._tombstones > max(64, self._cols // 3):
            self._mirror_compact()

    # ------------------------------------------------------------------
    # Vectorized queries (hot path)
    # ------------------------------------------------------------------
    def active_indices(self) -> np.ndarray:
        """Active user ids, **in arrival order**.

        Until a slot has been reused this is plain ascending slot order
        (the historical ordering); afterwards arrival order diverges from
        slot order, but float reductions over users still accumulate in
        the same order as the scalar kernel did. The cache is maintained
        incrementally — arrivals append (a new user always has the
        highest sequence number), departures filter in place — so the
        argsort below only runs on a cold rebuild. Callers must not
        mutate the returned array.
        """
        if self._active_cache is None:
            idx = np.nonzero(self.active[: self._size])[0]
            if self._reused and idx.size > 1:
                idx = idx[np.argsort(self.seq[idx], kind="stable")]
            self._active_cache = idx
            self._pending_add.clear()
        elif self._pending_add:
            self._flush_pending()
        return self._active_cache

    def downloading_indices(self) -> np.ndarray:
        """Active user ids currently in a chunk queue, in arrival order."""
        if self._downloading_cache is None:
            idx = self.active_indices()
            if idx.size:
                idx = idx[self.chunk[idx] >= 0]
            self._downloading_cache = idx
        return self._downloading_cache

    def downloaders_per_chunk(self) -> np.ndarray:
        """Number of active users currently downloading each chunk."""
        idx = self.downloading_indices()
        if idx.size == 0:
            return np.zeros(self.num_chunks, dtype=np.int64)
        return np.bincount(self.chunk[idx], minlength=self.num_chunks)

    def owners_per_chunk(self) -> np.ndarray:
        """Number of active users whose buffer holds each chunk.

        Maintained incrementally (completions add, departures subtract),
        so this is O(chunks) regardless of population.
        """
        return self._owners_count.copy()

    def ownership_matrix(self) -> np.ndarray:
        """Boolean (active users x chunks) buffer matrix (tracker bitmap)."""
        return self.owned[self.active_indices()]

    def advance_downloads(self, rates: np.ndarray, dt: float) -> np.ndarray:
        """Add ``rates[chunk]*dt`` bytes to every active download.

        ``rates`` is the per-chunk *per-user* delivery rate. Watching
        (holding) users are unaffected. Returns the downloading user ids
        that were advanced; see :meth:`completed` for completions.
        """
        idx = self.downloading_indices()
        if idx.size == 0:
            return idx
        self.received[idx] += rates[self.chunk[idx]] * dt
        return idx

    def completed(self, chunk_size: float) -> np.ndarray:
        """Downloading user ids (arrival order) whose download finished."""
        idx = self.downloading_indices()
        if idx.size == 0:
            return idx
        return idx[self.received[idx] >= chunk_size - 1e-9]

    def smooth_users(
        self, now: float, window: float, overdue_after: Optional[float] = None
    ) -> Tuple[int, int]:
        """(smooth, total) active users for the quality metric.

        A user is smooth iff no unsmooth retrieval completed within
        ``(now - window, now]`` and, when ``overdue_after`` is given, their
        in-flight download has not yet been outstanding longer than that —
        a stalled user counts as unsmooth *now*, without waiting for the
        retrieval to eventually finish.
        """
        idx = self.active_indices()
        if idx.size == 0:
            return 0, 0
        ok = self.last_unsmooth[idx] <= now - window
        if overdue_after is not None:
            overdue = (self.chunk[idx] >= 0) & (
                now - self.enter_time[idx] > overdue_after
            )
            ok &= ~overdue
        return int(np.sum(ok)), int(idx.size)

    def total_upload_capacity(self) -> float:
        idx = self.active_indices()
        return float(self.upload[idx].sum()) if idx.size else 0.0

    def active_user_ids(self) -> List[int]:
        return [int(i) for i in self.active_indices()]
