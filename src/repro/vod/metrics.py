"""Streaming-quality metrics (paper Section VI-B).

The paper's quality metric is "the percentage of users in all the channels
with smooth playback in the past 5 minutes". A chunk retrieval is smooth
iff its sojourn time (waiting + downloading) is at most the chunk playback
time T0; a user is smooth at sample time t iff no unsmooth retrieval
completed within the trailing window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

__all__ = [
    "RetrievalRecord",
    "QualitySample",
    "QualityTracker",
    "latency_adjusted_quality",
]

DEFAULT_WINDOW_SECONDS = 300.0  # "the past 5 minutes"


@dataclass(frozen=True)
class RetrievalRecord:
    """One completed chunk retrieval."""

    time: float
    channel: int
    chunk: int
    sojourn: float
    smooth: bool


@dataclass(frozen=True)
class QualitySample:
    """System and per-channel quality at one sample time."""

    time: float
    quality: float  # fraction of smooth users across all channels, in [0, 1]
    per_channel: Dict[int, float]
    per_channel_users: Dict[int, int]
    #: Raw smooth-user count behind ``quality``; kept as an exact integer
    #: so partial samples from different shards merge without float
    #: reconstruction (quality * users would round).
    total_smooth: int = 0

    @property
    def total_users(self) -> int:
        return sum(self.per_channel_users.values())


class QualityTracker:
    """Collects retrievals and periodic quality samples.

    The per-user smooth state lives in the simulator's
    :class:`~repro.vod.user.UserStore` (vectorized); this tracker stores the
    resulting samples and retrieval summaries for reporting.
    """

    def __init__(self, window_seconds: float = DEFAULT_WINDOW_SECONDS) -> None:
        if window_seconds <= 0:
            raise ValueError("window must be > 0")
        self.window_seconds = window_seconds
        self.samples: List[QualitySample] = []
        self.total_retrievals = 0
        self.unsmooth_retrievals = 0
        self._sojourn_sum = 0.0
        self._per_channel_retrievals: Dict[int, int] = {}
        self._per_channel_unsmooth: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def record_retrieval(
        self, time: float, channel: int, chunk: int, sojourn: float, smooth: bool
    ) -> None:
        """Account one completed retrieval (aggregates only, O(1) memory)."""
        self.total_retrievals += 1
        self._sojourn_sum += sojourn
        self._per_channel_retrievals[channel] = (
            self._per_channel_retrievals.get(channel, 0) + 1
        )
        if not smooth:
            self.unsmooth_retrievals += 1
            self._per_channel_unsmooth[channel] = (
                self._per_channel_unsmooth.get(channel, 0) + 1
            )

    def record_retrievals(
        self,
        time: float,
        channel: int,
        chunks: np.ndarray,
        sojourns: np.ndarray,
        smooth: np.ndarray,
    ) -> None:
        """Batch :meth:`record_retrieval` for one channel's step.

        The sojourn accumulator uses a vectorized partial sum, so its
        float rounding can differ from scalar accumulation in the last
        ulp; ``mean_sojourn`` is a reporting-only aggregate (nothing
        feeds it back into the control loop), so it sits deliberately
        outside the kernel's byte-identical parity contract.
        """
        del time  # kept for signature symmetry with record_retrieval
        count = int(len(chunks))
        if count == 0:
            return
        self.total_retrievals += count
        self._sojourn_sum += float(np.sum(sojourns))
        self._per_channel_retrievals[channel] = (
            self._per_channel_retrievals.get(channel, 0) + count
        )
        unsmooth = count - int(np.count_nonzero(smooth))
        if unsmooth:
            self.unsmooth_retrievals += unsmooth
            self._per_channel_unsmooth[channel] = (
                self._per_channel_unsmooth.get(channel, 0) + unsmooth
            )

    def record_sample(
        self,
        time: float,
        per_channel_smooth: Dict[int, int],
        per_channel_users: Dict[int, int],
    ) -> QualitySample:
        """Record a quality sample from per-channel (smooth, total) counts.

        Channels with zero users count as perfectly smooth (quality 1),
        matching how an operator would read an idle channel.
        """
        total_users = sum(per_channel_users.values())
        total_smooth = sum(per_channel_smooth.values())
        quality = 1.0 if total_users == 0 else total_smooth / total_users
        per_channel = {
            c: (
                1.0
                if per_channel_users.get(c, 0) == 0
                else per_channel_smooth.get(c, 0) / per_channel_users[c]
            )
            for c in per_channel_users
        }
        sample = QualitySample(
            time=time,
            quality=quality,
            per_channel=per_channel,
            per_channel_users=dict(per_channel_users),
            total_smooth=int(total_smooth),
        )
        self.samples.append(sample)
        return sample

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    @property
    def average_quality(self) -> float:
        """Time-average of the system quality samples (Fig 5's 'avg')."""
        if not self.samples:
            return 1.0
        return float(np.mean([s.quality for s in self.samples]))

    @property
    def smooth_retrieval_fraction(self) -> float:
        if self.total_retrievals == 0:
            return 1.0
        return 1.0 - self.unsmooth_retrievals / self.total_retrievals

    @property
    def sojourn_sum(self) -> float:
        """Raw sojourn accumulator (the sharded engine merges these)."""
        return self._sojourn_sum

    @property
    def mean_sojourn(self) -> float:
        if self.total_retrievals == 0:
            return 0.0
        return self._sojourn_sum / self.total_retrievals

    def quality_series(self) -> Tuple[np.ndarray, np.ndarray]:
        """(times, qualities) arrays for plotting Fig 5."""
        times = np.asarray([s.time for s in self.samples])
        quality = np.asarray([s.quality for s in self.samples])
        return times, quality

    def channel_size_quality_points(
        self, min_users: int = 1
    ) -> List[Tuple[int, float]]:
        """(channel size, channel quality) scatter points (Fig 6)."""
        points: List[Tuple[int, float]] = []
        for sample in self.samples:
            for channel, users in sample.per_channel_users.items():
                if users >= min_users:
                    points.append((users, sample.per_channel[channel]))
        return points

    def channel_retrieval_summary(self, channel: int) -> Tuple[int, int]:
        """(retrievals, unsmooth retrievals) for one channel."""
        return (
            self._per_channel_retrievals.get(channel, 0),
            self._per_channel_unsmooth.get(channel, 0),
        )


def latency_adjusted_quality(
    sample_times: np.ndarray,
    quality: np.ndarray,
    epoch_ends: np.ndarray,
    epoch_discounts: np.ndarray,
) -> np.ndarray:
    """Quality samples scaled by each epoch's latency utility discount.

    The geo extension serves part of every region's demand across priced,
    laggy links; the provisioning plan for an epoch implies a
    capacity-weighted utility discount ``0.5 ** (latency / half-life)``
    (see :meth:`repro.geo.region.GeoTopology.utility_discount`).  This
    maps each raw quality sample to the discount of the epoch it was
    taken in — epoch ``k`` covers ``(epoch_ends[k-1], epoch_ends[k]]`` —
    yielding the latency-*effective* streaming quality series.
    """
    sample_times = np.asarray(sample_times, dtype=float)
    quality = np.asarray(quality, dtype=float)
    epoch_ends = np.asarray(epoch_ends, dtype=float)
    epoch_discounts = np.asarray(epoch_discounts, dtype=float)
    if sample_times.shape != quality.shape:
        raise ValueError("sample_times and quality must align")
    if epoch_ends.shape != epoch_discounts.shape:
        raise ValueError("epoch_ends and epoch_discounts must align")
    if quality.size == 0:
        return quality.copy()
    if epoch_ends.size == 0:
        raise ValueError("need at least one epoch")
    idx = np.searchsorted(epoch_ends, sample_times, side="left")
    idx = np.minimum(idx, epoch_ends.size - 1)
    return quality * epoch_discounts[idx]
