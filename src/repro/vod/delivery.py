"""Bandwidth delivery models: client-server and P2P rarest-first.

Per simulation step, a delivery model turns the current per-chunk state of
one channel into per-chunk *per-user* download rates, and reports how much
cloud versus peer bandwidth was consumed. Both models cap a single user's
download rate at the VM bandwidth R, consistent with the queueing analysis
where one (queueing-theoretic) server serves one user at rate R.

Client-server: every downloader is served from the cloud only; the chunk's
provisioned cloud capacity is shared equally among its downloaders.

P2P (mesh-pull, rarest-first): peer upload capacity is allocated to chunks
in increasing order of replication, each chunk drawing from its owners'
remaining upload; the cloud supplies only the shortfall ("resort to
streaming servers only when deemed necessary").

Both models share the :class:`DeliveryModel` base (per-user cap
validation, per-chunk demand accounting). The P2P inner loop slices the
ownership matrix once per step, iterates only chunks that have both
demand and owners, and draws down the owners' remaining upload in place.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.vod.user import UserStore

__all__ = [
    "DeliveryOutcome",
    "DeliveryModel",
    "ClientServerDelivery",
    "P2PDelivery",
]


@dataclass(frozen=True)
class DeliveryOutcome:
    """Result of one allocation round for one channel.

    Attributes
    ----------
    per_user_rates:
        Array indexed by chunk: the download rate (bytes/second) each user
        currently in that chunk queue receives.
    cloud_used:
        Total cloud bandwidth consumed (bytes/second).
    peer_used:
        Total peer bandwidth consumed (bytes/second).
    cloud_shortfall:
        Demand (at per-user cap) that neither peers nor cloud covered.
    """

    per_user_rates: np.ndarray
    cloud_used: float
    peer_used: float
    cloud_shortfall: float


class DeliveryModel:
    """Shared surface of the per-channel delivery models."""

    def __init__(self, user_cap: float) -> None:
        if user_cap <= 0:
            raise ValueError("per-user rate cap must be > 0")
        self.user_cap = user_cap

    def _chunk_state(
        self, store: UserStore, cloud_capacity: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """(downloaders, capacity) per chunk, shape-checked."""
        downloaders = store.downloaders_per_chunk().astype(float)
        capacity = np.asarray(cloud_capacity, dtype=float)
        if capacity.shape != downloaders.shape:
            raise ValueError("cloud capacity must have one entry per chunk")
        return downloaders, capacity

    def allocate(
        self, store: UserStore, cloud_capacity: np.ndarray
    ) -> DeliveryOutcome:
        raise NotImplementedError


class ClientServerDelivery(DeliveryModel):
    """All demand is served by the cloud (paper's C/S mode)."""

    def allocate(
        self, store: UserStore, cloud_capacity: np.ndarray
    ) -> DeliveryOutcome:
        """Share each chunk's cloud capacity equally among its downloaders."""
        downloaders, capacity = self._chunk_state(store, cloud_capacity)
        rates = np.zeros_like(capacity)
        busy = downloaders > 0
        rates[busy] = np.minimum(self.user_cap, capacity[busy] / downloaders[busy])
        served = float((rates * downloaders).sum())
        demand = float(downloaders.sum() * self.user_cap)
        return DeliveryOutcome(
            per_user_rates=rates,
            cloud_used=served,
            peer_used=0.0,
            cloud_shortfall=max(0.0, demand - served),
        )


class P2PDelivery(DeliveryModel):
    """Mesh-pull P2P with rarest-first peer allocation and cloud top-up."""

    def allocate(
        self, store: UserStore, cloud_capacity: np.ndarray
    ) -> DeliveryOutcome:
        """Allocate peer upload rarest-first, then top up from the cloud.

        Owner bandwidth committed to a rarer chunk is unavailable to less
        rare ones, implemented by drawing each chunk's contribution from
        its owners' *remaining* upload capacity proportionally — the fluid
        counterpart of the paper's Eqn (5) accounting.
        """
        downloaders, capacity = self._chunk_state(store, cloud_capacity)

        active = store.active_indices()
        num_chunks = store.num_chunks
        rates = np.zeros(num_chunks, dtype=float)
        if active.size == 0:
            return DeliveryOutcome(rates, 0.0, 0.0, 0.0)

        # Rarest first among chunks with both demand and at least one owner
        # (chunks failing either test can contribute no peer supply — skip
        # them before touching any per-user array). Owner counts are
        # maintained incrementally by the store, so ordering the chunks
        # costs O(J), not a matrix reduction.
        owners_count = store.owners_per_chunk()
        order = np.lexsort((np.arange(num_chunks), owners_count))
        order = order[(downloaders[order] > 0) & (owners_count[order] > 0)]
        peer_supply = np.zeros(num_chunks, dtype=float)
        if order.size:
            # The store maintains a transposed, arrival-ordered mirror of
            # (ownership x upload), so each visited chunk's owner mask is
            # a contiguous row view with no per-step matrix slicing;
            # `remaining` (the peers' unallocated upload) is the only
            # per-user array materialized, drawn down in place.
            owned, upload = store.peer_supply_mirror()
            remaining = upload.copy()
            for chunk in order:
                # Integer owner indices beat boolean masks here: the
                # gather/scatter then touch owners(chunk) elements, not
                # every mirror column.
                owners = np.nonzero(owned[chunk])[0]
                pool = remaining[owners]
                available = float(np.add.reduce(pool))
                if available <= 0:
                    continue
                demand = downloaders[chunk] * self.user_cap
                take = min(demand, available)
                if take <= 0:
                    continue
                # Draw proportionally from each owner's remaining capacity.
                if take == available:
                    remaining[owners] = 0.0  # demand-limited: full drain
                else:
                    remaining[owners] = pool * (1.0 - take / available)
                peer_supply[chunk] = take
                # Once *every* peer is drained the remaining chunks can
                # only sum to zero and be skipped, so stop scanning them.
                if take == available and not remaining.any():
                    break

        cloud_used_per_chunk = np.zeros(num_chunks, dtype=float)
        busy = downloaders > 0
        demand_per_chunk = downloaders * self.user_cap
        shortfall_after_peers = np.maximum(0.0, demand_per_chunk - peer_supply)
        cloud_used_per_chunk[busy] = np.minimum(
            capacity[busy], shortfall_after_peers[busy]
        )
        total_supply = peer_supply + cloud_used_per_chunk
        rates[busy] = np.minimum(
            self.user_cap, total_supply[busy] / downloaders[busy]
        )
        delivered = rates * downloaders
        # Attribute delivered bandwidth to peers first (cloud is the backstop).
        peer_used = float(np.minimum(peer_supply, delivered).sum())
        cloud_used = float((delivered - np.minimum(peer_supply, delivered)).sum())
        shortfall = float(np.maximum(0.0, demand_per_chunk - delivered).sum())
        return DeliveryOutcome(
            per_user_rates=rates,
            cloud_used=cloud_used,
            peer_used=peer_used,
            cloud_shortfall=shortfall,
        )
