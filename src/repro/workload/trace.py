"""Assembled synthetic traces (paper Section VI-A).

A trace is a list of user sessions: (arrival time, channel, start chunk,
upload capacity). Viewing behaviour *within* a session (chunk-to-chunk
movement, seeks with 15-minute mean intervals, departure) is governed by
the channel's transition matrix at simulation time, so the trace stays
decoupled from the behaviour model.

Traces serialize to JSON for reuse across experiments.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from repro.sim.rng import make_rng
from repro.workload.arrivals import nonhomogeneous_poisson_times
from repro.workload.diurnal import DiurnalPattern
from repro.workload.pareto import BoundedPareto
from repro.workload.zipf import assign_channel_rates

__all__ = ["TraceConfig", "Session", "Trace", "generate_trace"]


@dataclass(frozen=True)
class TraceConfig:
    """Parameters of a synthetic workload.

    Defaults encode the paper's setup: 20 channels, Zipf popularity,
    ~2500 concurrent users at steady state, diurnal pattern with two flash
    crowds, alpha = 0.8 of users starting from the beginning, Pareto upload
    capacities.
    """

    num_channels: int = 20
    chunks_per_channel: int = 20
    horizon_seconds: float = 7 * 24 * 3600.0
    mean_total_arrival_rate: float = 2.0  # users/second across all channels
    zipf_exponent: float = 0.8
    alpha: float = 0.8  # fraction starting at chunk 1
    seed: int = 2011
    diurnal: DiurnalPattern = field(default_factory=DiurnalPattern)
    upload_distribution: BoundedPareto = field(default_factory=BoundedPareto)

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError("need at least one channel")
        if self.chunks_per_channel <= 0:
            raise ValueError("need at least one chunk per channel")
        if self.horizon_seconds <= 0:
            raise ValueError("horizon must be > 0")
        if self.mean_total_arrival_rate < 0:
            raise ValueError("arrival rate must be >= 0")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")

    def channel_rates(self) -> np.ndarray:
        """Mean per-channel arrival rates (users/second)."""
        return assign_channel_rates(
            self.mean_total_arrival_rate, self.num_channels, self.zipf_exponent
        )


@dataclass(frozen=True)
class Session:
    """One user session entering the system."""

    arrival_time: float
    channel: int
    start_chunk: int
    upload_capacity: float  # bytes/second


@dataclass
class Trace:
    """A generated workload: sessions sorted by arrival time."""

    config_summary: Dict[str, float]
    sessions: List[Session]

    def __len__(self) -> int:
        return len(self.sessions)

    def sessions_for_channel(self, channel: int) -> List[Session]:
        return [s for s in self.sessions if s.channel == channel]

    def arrival_times(self) -> np.ndarray:
        return np.asarray([s.arrival_time for s in self.sessions])

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON (config summary + session rows)."""
        payload = {
            "config": self.config_summary,
            "sessions": [asdict(s) for s in self.sessions],
        }
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def from_json(cls, path: Union[str, Path]) -> "Trace":
        payload = json.loads(Path(path).read_text())
        sessions = [Session(**row) for row in payload["sessions"]]
        return cls(config_summary=payload["config"], sessions=sessions)


def _sample_start_chunk(
    rng: np.random.Generator, num_chunks: int, alpha: float
) -> int:
    """Start at chunk 0 w.p. alpha, else uniformly among the others."""
    if num_chunks == 1 or rng.random() < alpha:
        return 0
    return int(rng.integers(1, num_chunks))


def generate_trace(
    config: TraceConfig,
    *,
    channel_rates: Optional[Sequence[float]] = None,
) -> Trace:
    """Generate a synthetic trace from a :class:`TraceConfig`.

    Per channel, arrivals follow a non-homogeneous Poisson process whose
    rate is the channel's Zipf share modulated by the diurnal pattern; each
    arrival receives a start chunk (alpha-split) and a Pareto upload
    capacity. Deterministic given ``config.seed``.
    """
    rates = (
        np.asarray(channel_rates, dtype=float)
        if channel_rates is not None
        else config.channel_rates()
    )
    if rates.shape != (config.num_channels,):
        raise ValueError("channel_rates must have one entry per channel")
    if np.any(rates < 0):
        raise ValueError("channel rates must be nonnegative")

    peak = config.diurnal.peak_factor()
    sessions: List[Session] = []
    for channel, mean_rate in enumerate(rates):
        if mean_rate == 0:
            continue
        rng = make_rng(config.seed, "trace", f"channel-{channel}")
        times = nonhomogeneous_poisson_times(
            rng,
            lambda t, _r=float(mean_rate): _r * config.diurnal.factor(t),
            config.horizon_seconds,
            rate_ceiling=float(mean_rate) * peak * 1.001,
        )
        starts = [
            _sample_start_chunk(rng, config.chunks_per_channel, config.alpha)
            for _ in times
        ]
        uploads = config.upload_distribution.sample(rng, times.size)
        sessions.extend(
            Session(
                arrival_time=float(t),
                channel=channel,
                start_chunk=start,
                upload_capacity=float(up),
            )
            for t, start, up in zip(times, starts, uploads)
        )

    sessions.sort(key=lambda s: s.arrival_time)
    summary = {
        "num_channels": config.num_channels,
        "chunks_per_channel": config.chunks_per_channel,
        "horizon_seconds": config.horizon_seconds,
        "mean_total_arrival_rate": config.mean_total_arrival_rate,
        "zipf_exponent": config.zipf_exponent,
        "alpha": config.alpha,
        "seed": config.seed,
        "num_sessions": len(sessions),
    }
    return Trace(config_summary=summary, sessions=sessions)
