"""Poisson arrival-time sampling, homogeneous and non-homogeneous.

The channel arrival process is Poisson with a time-varying rate
Lambda^(c)(t) = mean rate x diurnal factor. Non-homogeneous sampling uses
Lewis-Shedler thinning against a supplied rate function.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

__all__ = [
    "poisson_arrival_times",
    "nonhomogeneous_poisson_times",
    "interval_rates",
]


def poisson_arrival_times(
    rng: np.random.Generator, rate: float, horizon: float
) -> np.ndarray:
    """Arrival times of a homogeneous Poisson process on [0, horizon).

    Returns a sorted array; empty when ``rate`` is 0.
    """
    if rate < 0:
        raise ValueError(f"rate must be >= 0, got {rate}")
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    if rate == 0 or horizon == 0:
        return np.empty(0, dtype=float)
    count = rng.poisson(rate * horizon)
    return np.sort(rng.uniform(0.0, horizon, size=count))


def nonhomogeneous_poisson_times(
    rng: np.random.Generator,
    rate_fn: Callable[[float], float],
    horizon: float,
    rate_ceiling: float,
) -> np.ndarray:
    """Lewis-Shedler thinning for a non-homogeneous Poisson process.

    Parameters
    ----------
    rate_fn:
        Instantaneous rate lambda(t) (events/second), must satisfy
        ``0 <= rate_fn(t) <= rate_ceiling`` on [0, horizon).
    rate_ceiling:
        A (tight-ish) upper bound on the rate; candidates are generated at
        this rate and accepted with probability rate_fn(t)/ceiling.
    """
    if horizon < 0:
        raise ValueError(f"horizon must be >= 0, got {horizon}")
    if rate_ceiling < 0:
        raise ValueError(f"rate ceiling must be >= 0, got {rate_ceiling}")
    if horizon == 0 or rate_ceiling == 0:
        return np.empty(0, dtype=float)

    candidates = poisson_arrival_times(rng, rate_ceiling, horizon)
    if candidates.size == 0:
        return candidates
    accept_probs = np.array([rate_fn(t) for t in candidates]) / rate_ceiling
    if np.any(accept_probs > 1 + 1e-9):
        raise ValueError("rate_fn exceeded rate_ceiling; thinning is invalid")
    keep = rng.random(candidates.size) < accept_probs
    return candidates[keep]


def interval_rates(
    arrival_times: Sequence[float], horizon: float, interval: float
) -> np.ndarray:
    """Empirical per-interval average arrival rates (events/second).

    This is exactly what the tracker reports to the controller: the average
    arrival rate observed in each provisioning interval.
    """
    if interval <= 0:
        raise ValueError(f"interval must be > 0, got {interval}")
    if horizon <= 0:
        raise ValueError(f"horizon must be > 0, got {horizon}")
    times = np.asarray(arrival_times, dtype=float)
    num_bins = int(np.ceil(horizon / interval))
    counts, _ = np.histogram(times, bins=num_bins, range=(0.0, num_bins * interval))
    return counts / interval
