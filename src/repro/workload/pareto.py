"""Bounded Pareto peer upload capacities (paper Section VI-A).

"The upload capacity of users follows a Pareto distribution within range
[180 Kbps, 10 Mbps] with shape parameter k = 3." We sample a Pareto with
scale = lower bound and shape k, truncated at the upper bound via inverse
CDF sampling restricted to the admissible quantile range.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BoundedPareto"]


@dataclass(frozen=True)
class BoundedPareto:
    """Pareto(shape, low) truncated to [low, high].

    Attributes are in bytes/second to match the rest of the library; the
    defaults encode the paper's range (180 kbps = 22 500 B/s, 10 Mbps =
    1 250 000 B/s) and shape 3.
    """

    low: float = 180e3 / 8.0
    high: float = 10e6 / 8.0
    shape: float = 3.0

    def __post_init__(self) -> None:
        if self.low <= 0:
            raise ValueError(f"low must be > 0, got {self.low}")
        if self.high <= self.low:
            raise ValueError("high must exceed low")
        if self.shape <= 0:
            raise ValueError(f"shape must be > 0, got {self.shape}")

    def cdf(self, x: np.ndarray) -> np.ndarray:
        """Truncated CDF on [low, high]."""
        x = np.asarray(x, dtype=float)
        raw = 1.0 - (self.low / np.clip(x, self.low, None)) ** self.shape
        cap = 1.0 - (self.low / self.high) ** self.shape
        return np.clip(raw / cap, 0.0, 1.0)

    def mean(self) -> float:
        """Mean of the truncated distribution (closed form)."""
        k, lo, h = self.shape, self.low, self.high
        cap = 1.0 - (lo / h) ** k
        if k == 1.0:
            integral = lo * np.log(h / lo)
        else:
            integral = lo**k * (lo ** (1.0 - k) - h ** (1.0 - k)) * k / (k - 1.0)
        return float(integral / cap)

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` capacities via inverse-CDF on the truncated range."""
        if size < 0:
            raise ValueError("size must be >= 0")
        cap = 1.0 - (self.low / self.high) ** self.shape
        u = rng.random(size) * cap
        return self.low / (1.0 - u) ** (1.0 / self.shape)

    def scaled_to_mean(self, target_mean: float) -> "BoundedPareto":
        """Return a copy whose bounds are scaled to hit ``target_mean``.

        Used for the Fig 11 sweep, which varies the ratio of average peer
        upload capacity to the streaming rate while keeping the shape.
        """
        if target_mean <= 0:
            raise ValueError("target mean must be > 0")
        ratio = target_mean / self.mean()
        return BoundedPareto(self.low * ratio, self.high * ratio, self.shape)
