"""Catalog workloads: hundreds of channels under one provisioning loop.

The paper provisions for a *catalog* of channels whose aggregate demand
the cloud must track.  A :class:`CatalogConfig` describes such a catalog:
``num_channels`` videos with Zipf popularity ranks, each channel with its
own arrival process — the shared diurnal pattern shifted by a per-channel
phase offset, optionally hit by one *correlated* flash-crowd event (a
global surge at the same wall-clock time across a random subset of
channels, the "everyone tunes in" case that stresses the provisioner
hardest).

Every stochastic quantity of channel ``c`` is drawn from a stream keyed
by the stable spawn key ``("catalog", ..., "channel-<c>")``, so a
channel's shape parameters and its full arrival trace are byte-identical
no matter how the catalog is partitioned into shards or how many worker
processes execute it (the determinism contract of
:mod:`repro.sim.shard`).

The arrival sampler here is a vectorized Lewis–Shedler thinning (one
batched candidate draw + one batched accept draw per channel) rather
than the per-candidate callback in :mod:`repro.workload.arrivals`: at
catalog scale a single run admits 10^5–10^6 sessions and the scalar
``rate_fn`` evaluation dominates trace generation.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: The ``catalog-*`` scenario family's shape presets, shared by the
#: registry, the ``repro catalog`` CLI and the perf harness.
#:
#: ``zipf``
#:     Stationary popularity skew only: every channel follows the shared
#:     diurnal pattern in phase.
#: ``diurnal``
#:     Per-channel phase offsets (±9 h) — a geographically spread
#:     audience whose peaks do not line up, flattening aggregate demand.
#: ``flash``
#:     A correlated flash crowd: ~30% of channels surge together one
#:     hour in (5x at the peak), the hardest case for the last-interval
#:     predictor.
#:
#: Deliberately defined BEFORE the repro imports below: the experiment
#: layer imports this module while itself being imported by the config
#: import that follows, and the registry needs this constant to already
#: exist at that point (no other attribute of this module may be
#: imported at another module's top level).
CATALOG_VARIANTS = {
    "zipf": {},
    "diurnal": {"phase_jitter_hours": 9.0},
    "flash": {
        "flash_fraction": 0.3,
        "flash_hour": 1.0,
        "flash_width_hours": 0.5,
        "flash_amplitude": 5.0,
    },
}

#: Named geo topologies for the multi-region catalog engine (the
#: ``catalog-geo-*`` scenarios and ``repro catalog --topology``).  Each
#: preset fixes the viewer/serving regions, their time zones (diurnal
#: peaks shift accordingly), per-region VM price factors on the Table II
#: clusters, and the pairwise latency / egress pricing the geo allocator
#: optimizes against.  Defined before the repro imports below for the
#: same import-cycle reason as CATALOG_VARIANTS.
GEO_TOPOLOGIES = {
    "us-eu-ap": {
        "regions": ("us-east", "eu-west", "ap-south"),
        "utc_offset_hours": (-5.0, 1.0, 5.5),
        "price_factors": (1.00, 1.10, 0.85),
        "latency_ms": {
            ("us-east", "eu-west"): 80.0,
            ("us-east", "ap-south"): 220.0,
            ("eu-west", "ap-south"): 150.0,
        },
        "egress_price_per_gb": {
            ("us-east", "eu-west"): 0.02,
            ("us-east", "ap-south"): 0.05,
            ("eu-west", "ap-south"): 0.04,
        },
        "latency_halflife_ms": 200.0,
    },
    "us-eu": {
        "regions": ("us-east", "eu-west"),
        "utc_offset_hours": (-5.0, 1.0),
        "price_factors": (1.00, 1.10),
        "latency_ms": {("us-east", "eu-west"): 80.0},
        "egress_price_per_gb": {("us-east", "eu-west"): 0.02},
        "latency_halflife_ms": 200.0,
    },
}

from repro.cloud.cluster import NFSClusterSpec, VirtualClusterSpec
from repro.core.sla import SLATerms
from repro.experiments.config import (
    PAPER,
    PaperConstants,
    paper_capacity_model,
    paper_nfs_clusters,
    paper_sla_terms,
    paper_vm_clusters,
)
from repro.geo.region import GeoTopology, RegionSpec
from repro.queueing.capacity import CapacityModel
from repro.queueing.jackson import external_arrival_vector, solve_traffic_equations
from repro.sim.rng import make_rng
from repro.vod.channel import ChannelSpec, default_behaviour_matrix, make_uniform_channels
from repro.workload.arrivals import poisson_arrival_times
from repro.workload.diurnal import DiurnalPattern
from repro.workload.pareto import BoundedPareto
from repro.workload.trace import Session, Trace
from repro.workload.zipf import assign_channel_rates

__all__ = [
    "ChannelShape",
    "CatalogConfig",
    "GeoCatalogConfig",
    "CATALOG_VARIANTS",
    "GEO_TOPOLOGIES",
    "catalog_config",
    "geo_catalog_config",
    "channel_shapes",
    "channel_sessions",
    "shard_channel_ids",
    "build_shard_trace",
    "ShardTraceArrays",
    "build_shard_trace_arrays",
]


@dataclass(frozen=True)
class ChannelShape:
    """Per-channel arrival-process parameters, derived deterministically.

    Attributes
    ----------
    channel_id:
        Global channel id (== popularity rank, 0 = most popular).
    mean_rate:
        The channel's Zipf share of the catalog arrival rate, users/s.
    phase_seconds:
        Diurnal phase offset applied to this channel's daily pattern.
    flash_amplitude:
        Extra rate multiplier at the flash-crowd peak (0 = not hit).
    """

    channel_id: int
    mean_rate: float
    phase_seconds: float
    flash_amplitude: float


@dataclass(frozen=True)
class CatalogConfig:
    """A multi-channel catalog scenario for the sharded engine.

    All fields are plain scalars so a config pickles cheaply across the
    shard worker boundary; derived objects (channels, behaviour matrix,
    cluster specs) are rebuilt on demand from the fields.

    Attributes
    ----------
    mean_arrival_rate:
        Aggregate external arrival rate across the whole catalog,
        users/second, before diurnal/flash modulation (both have unit
        mean / are additive surges, so this is also roughly the realized
        mean baseline rate).
    num_shards:
        Fixed shard count the catalog is partitioned into.  This is part
        of the scenario identity — results are byte-identical for any
        worker count (``jobs``) given the same shard count.
    interval_seconds:
        Provisioning epoch T: shards advance in lock-step epochs of this
        length and the controller re-provisions between epochs.
    phase_jitter_hours:
        Per-channel diurnal phase offsets are uniform in ±jitter.
    flash_fraction / flash_hour / flash_width_hours / flash_amplitude:
        The correlated flash crowd: each channel is hit independently
        with probability ``flash_fraction``; hit channels surge together
        around ``flash_hour`` (Gaussian bump of the given width), with
        per-channel amplitude jittered in [0.75, 1.25] x the base value.
    cluster_scale:
        Table II/III capacity (and VM budget) multiplier; ``None``
        auto-sizes it from the catalog's expected peak demand.
    """

    name: str = "catalog"
    num_channels: int = 24
    chunks_per_channel: int = 8
    horizon_seconds: float = 2 * 3600.0
    mean_arrival_rate: float = 1.0
    mode: str = "client-server"
    dt: float = 30.0
    seed: int = 2011
    zipf_exponent: float = 0.8
    alpha: float = 0.8
    interval_seconds: float = 900.0
    num_shards: int = 6
    phase_jitter_hours: float = 0.0
    flash_fraction: float = 0.0
    flash_hour: float = 1.0
    flash_width_hours: float = 0.5
    flash_amplitude: float = 4.0
    cluster_scale: Optional[float] = None
    constants: PaperConstants = PAPER

    def __post_init__(self) -> None:
        if self.mode not in ("client-server", "p2p"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.num_channels <= 0 or self.chunks_per_channel <= 0:
            raise ValueError("need at least one channel and one chunk")
        if self.horizon_seconds <= 0 or self.dt <= 0:
            raise ValueError("horizon and dt must be > 0")
        if self.mean_arrival_rate < 0:
            raise ValueError("arrival rate must be >= 0")
        if self.interval_seconds <= 0:
            raise ValueError("interval must be > 0")
        if self.num_shards <= 0:
            raise ValueError("need at least one shard")
        if not 0.0 <= self.flash_fraction <= 1.0:
            raise ValueError("flash fraction must be in [0, 1]")
        if self.flash_width_hours <= 0:
            raise ValueError("flash width must be > 0")
        if self.flash_amplitude < 0:
            raise ValueError("flash amplitude must be >= 0")
        if not 0.0 <= self.alpha <= 1.0:
            raise ValueError("alpha must be in [0, 1]")

    # ------------------------------------------------------------------
    # Derived structure
    # ------------------------------------------------------------------
    @property
    def channel_slots(self) -> int:
        """Size of the engine's channel-id space.

        The single-region catalog simulates one instance per channel;
        the geo catalog simulates one instance per (region, channel)
        pair and overrides this.  All engine-side partitioning, tracker
        sizing and capacity broadcasting runs over slots.
        """
        return self.num_channels

    @property
    def effective_shards(self) -> int:
        """Shard count clamped so every shard owns >= 1 channel slot."""
        return min(self.num_shards, self.channel_slots)

    def behaviour_matrix(self) -> np.ndarray:
        return default_behaviour_matrix(self.chunks_per_channel)

    def channels(self) -> List[ChannelSpec]:
        return make_uniform_channels(
            self.num_channels,
            self.chunks_per_channel,
            self.constants.streaming_rate,
            self.constants.chunk_duration,
            behaviour=self.behaviour_matrix(),
        )

    def capacity_model(self) -> CapacityModel:
        return paper_capacity_model(self.constants)

    def channel_rates(self) -> np.ndarray:
        """Mean per-channel arrival rates (Zipf by rank), users/second."""
        return assign_channel_rates(
            self.mean_arrival_rate, self.num_channels, self.zipf_exponent
        )

    def upload_distribution(self) -> BoundedPareto:
        return BoundedPareto()

    def visits_per_session(self) -> float:
        """Expected chunk downloads per session under the behaviour model."""
        behaviour = self.behaviour_matrix()
        ext = external_arrival_vector(behaviour.shape[0], 1.0, self.alpha)
        solution = solve_traffic_equations(behaviour, ext)
        return float(solution.arrival_rates.sum())

    def expected_peak_population(self) -> float:
        """Rough aggregate concurrency bound used for cluster auto-sizing.

        Population ramps at the arrival rate until a session length (or
        the horizon) has passed; the flash crowd piles its surge on top.
        """
        session = self.visits_per_session() * self.constants.chunk_duration
        base = self.mean_arrival_rate * min(self.horizon_seconds, session)
        surge = 1.0 + self.flash_fraction * self.flash_amplitude * 0.5
        return base * surge

    def _resolved_cluster_scale(self) -> float:
        if self.cluster_scale is not None:
            return float(self.cluster_scale)
        demand = self.expected_peak_population() * self.constants.streaming_rate
        table_bw = sum(
            spec.max_vms * spec.vm_bandwidth for spec in paper_vm_clusters(self.constants)
        )
        return max(1.0, 1.6 * demand / table_bw)

    def vm_clusters(self) -> List[VirtualClusterSpec]:
        return paper_vm_clusters(self.constants, scale=self._resolved_cluster_scale())

    def nfs_clusters(self) -> List[NFSClusterSpec]:
        catalog_bytes = (
            self.num_channels
            * self.chunks_per_channel
            * self.constants.chunk_size_bytes
        )
        base = paper_nfs_clusters()
        total = sum(spec.capacity_bytes for spec in base)
        scale = max(
            self._resolved_cluster_scale(), 1.2 * catalog_bytes / total, 1.0
        )
        return paper_nfs_clusters(scale=scale)

    def sla_terms(self) -> SLATerms:
        terms = paper_sla_terms(self.constants)
        scale = self._resolved_cluster_scale()
        return SLATerms(
            vm_budget_per_hour=terms.vm_budget_per_hour * scale,
            storage_budget_per_hour=terms.storage_budget_per_hour * scale,
            interval_seconds=self.interval_seconds,
        )


def catalog_config(
    *,
    seed: int = 2011,
    mode: str = "client-server",
    num_channels: int = 24,
    chunks_per_channel: int = 8,
    horizon_hours: float = 2.0,
    arrival_rate: float = 1.0,
    target_population: Optional[int] = None,
    dt: float = 30.0,
    interval_minutes: float = 15.0,
    num_shards: int = 6,
    phase_jitter_hours: float = 0.0,
    flash_fraction: float = 0.0,
    flash_hour: float = 1.0,
    flash_width_hours: float = 0.5,
    flash_amplitude: float = 4.0,
    zipf_exponent: float = 0.8,
    cluster_scale: Optional[float] = None,
    name: str = "catalog",
) -> CatalogConfig:
    """The one :class:`CatalogConfig` factory behind the ``catalog-*``
    scenarios and the ``repro catalog`` CLI.

    ``target_population`` optionally overrides ``arrival_rate`` with the
    rate whose steady-state aggregate concurrency is the target (the same
    Little's-law sizing the closed-loop scenarios use).
    """
    config = CatalogConfig(
        name=name,
        num_channels=int(num_channels),
        chunks_per_channel=int(chunks_per_channel),
        horizon_seconds=float(horizon_hours) * 3600.0,
        mean_arrival_rate=float(arrival_rate),
        mode=mode,
        dt=float(dt),
        seed=int(seed),
        zipf_exponent=float(zipf_exponent),
        interval_seconds=float(interval_minutes) * 60.0,
        num_shards=int(num_shards),
        phase_jitter_hours=float(phase_jitter_hours),
        flash_fraction=float(flash_fraction),
        flash_hour=float(flash_hour),
        flash_width_hours=float(flash_width_hours),
        flash_amplitude=float(flash_amplitude),
        cluster_scale=cluster_scale,
    )
    if target_population is not None:
        session = config.visits_per_session() * config.constants.chunk_duration
        config = replace(
            config, mean_arrival_rate=float(target_population) / session
        )
    return config


# ----------------------------------------------------------------------
# The geo catalog: a viewer-region dimension on the slot space
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class GeoCatalogConfig(CatalogConfig):
    """A catalog whose viewers are spread over the regions of a
    :data:`GEO_TOPOLOGIES` preset.

    Every (region, channel) pair becomes one engine *slot* — its own
    arrival trace, tracker row and capacity array — with slot id
    ``region_index * num_channels + channel``, so sorting by slot id is
    exactly the fixed region-then-channel merge order the determinism
    contract requires.  A channel's catalog-wide Zipf rate is split
    across regions by weights drawn from the channel's stable spawn key
    (``seed/"geo"/"split"/"channel-<c>"``): neither the shard partition
    nor the worker count perturbs any split, so traces stay byte-stable.
    Each region's diurnal pattern is shifted by its UTC offset on top of
    the per-channel phase jitter; a flash crowd stays a *global* event —
    a hit channel surges in every region at the same wall-clock time.

    Attributes
    ----------
    topology:
        Key into :data:`GEO_TOPOLOGIES`.
    exact:
        Solve each epoch's multi-region VM configuration with the exact
        LP (:func:`repro.geo.allocation.lp_geo_allocation`) instead of
        the paper-style greedy.  The LP is dense — fine for CI-sized
        catalogs, prohibitive at acceptance scale.
    """

    topology: str = "us-eu-ap"
    exact: bool = False

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.topology not in GEO_TOPOLOGIES:
            raise ValueError(
                f"unknown geo topology {self.topology!r} "
                f"(presets: {', '.join(sorted(GEO_TOPOLOGIES))})"
            )

    # -- slot space ----------------------------------------------------
    @property
    def preset(self) -> dict:
        return GEO_TOPOLOGIES[self.topology]

    @property
    def region_names(self) -> Tuple[str, ...]:
        return tuple(self.preset["regions"])

    @property
    def num_regions(self) -> int:
        return len(self.region_names)

    @property
    def channel_slots(self) -> int:
        return self.num_regions * self.num_channels

    def slot_id(self, region_index: int, channel: int) -> int:
        return region_index * self.num_channels + channel

    def slot_region_index(self, slot: int) -> int:
        return slot // self.num_channels

    def slot_region(self, slot: int) -> str:
        return self.region_names[self.slot_region_index(slot)]

    def slot_channel(self, slot: int) -> int:
        return slot % self.num_channels

    # -- demand structure ----------------------------------------------
    def catalog_channel_rates(self) -> np.ndarray:
        """Catalog-wide per-channel Zipf rates (before the region split)."""
        return assign_channel_rates(
            self.mean_arrival_rate, self.num_channels, self.zipf_exponent
        )

    def region_splits(self) -> np.ndarray:
        """``(num_regions, num_channels)`` demand weights, columns sum 1.

        Channel ``c``'s split is drawn from its own stream (stable spawn
        key), jittered around uniform so regional audiences differ per
        channel — the imbalance the cross-region allocator exists for.
        """
        weights = np.empty((self.num_regions, self.num_channels))
        for c in range(self.num_channels):
            rng = make_rng(self.seed, "geo", "split", f"channel-{c}")
            draw = 0.5 + rng.random(self.num_regions)
            weights[:, c] = draw / draw.sum()
        return weights

    def channel_rates(self) -> np.ndarray:
        """Mean per-*slot* arrival rates, slot-id order, users/second."""
        splits = self.region_splits()
        return (splits * self.catalog_channel_rates()[None, :]).reshape(-1)

    def channels(self) -> List[ChannelSpec]:
        return make_uniform_channels(
            self.channel_slots,
            self.chunks_per_channel,
            self.constants.streaming_rate,
            self.constants.chunk_duration,
            behaviour=self.behaviour_matrix(),
        )

    # -- cloud substrate -----------------------------------------------
    def region_cluster_scale(self) -> float:
        """Table II multiplier per region: the catalog-wide auto-size
        split evenly, so regional demand imbalance *requires* the
        cross-region spill the geo allocator provides."""
        return max(1.0, self._resolved_cluster_scale() / self.num_regions)

    def geo_topology(self) -> GeoTopology:
        """The solver-facing topology: per-region Table II clusters at
        the preset's price factors, plus the priced cross links."""
        preset = self.preset
        scale = self.region_cluster_scale()
        regions = []
        for name, factor in zip(preset["regions"], preset["price_factors"]):
            clusters = tuple(
                replace(spec, price_per_hour=spec.price_per_hour * factor)
                for spec in paper_vm_clusters(self.constants, scale=scale)
            )
            regions.append(RegionSpec(name, clusters))
        return GeoTopology(
            regions,
            latency_ms=dict(preset["latency_ms"]),
            egress_price_per_gb=dict(preset["egress_price_per_gb"]),
            latency_halflife_ms=float(preset["latency_halflife_ms"]),
        )

    def vm_clusters(self) -> List[VirtualClusterSpec]:
        """The facility/billing view: every region's clusters, names
        prefixed ``<region>:<cluster>`` (the broker and meter need one
        flat unique namespace)."""
        topology = self.geo_topology()
        specs: List[VirtualClusterSpec] = []
        for region_name in self.region_names:
            specs.extend(
                replace(spec, name=f"{region_name}:{spec.name}")
                for spec in topology.regions[region_name].clusters
            )
        return specs


def geo_catalog_config(
    *,
    topology: str = "us-eu-ap",
    exact: bool = False,
    seed: int = 2011,
    mode: str = "client-server",
    num_channels: int = 24,
    chunks_per_channel: int = 8,
    horizon_hours: float = 2.0,
    arrival_rate: float = 1.0,
    target_population: Optional[int] = None,
    dt: float = 30.0,
    interval_minutes: float = 15.0,
    num_shards: int = 6,
    phase_jitter_hours: float = 0.0,
    flash_fraction: float = 0.0,
    flash_hour: float = 1.0,
    flash_width_hours: float = 0.5,
    flash_amplitude: float = 4.0,
    zipf_exponent: float = 0.8,
    cluster_scale: Optional[float] = None,
    name: str = "catalog-geo",
) -> GeoCatalogConfig:
    """The :class:`GeoCatalogConfig` factory behind the ``catalog-geo-*``
    scenarios and ``repro catalog --topology`` / ``repro geo``."""
    config = GeoCatalogConfig(
        name=name,
        topology=topology,
        exact=bool(exact),
        num_channels=int(num_channels),
        chunks_per_channel=int(chunks_per_channel),
        horizon_seconds=float(horizon_hours) * 3600.0,
        mean_arrival_rate=float(arrival_rate),
        mode=mode,
        dt=float(dt),
        seed=int(seed),
        zipf_exponent=float(zipf_exponent),
        interval_seconds=float(interval_minutes) * 60.0,
        num_shards=int(num_shards),
        phase_jitter_hours=float(phase_jitter_hours),
        flash_fraction=float(flash_fraction),
        flash_hour=float(flash_hour),
        flash_width_hours=float(flash_width_hours),
        flash_amplitude=float(flash_amplitude),
        cluster_scale=cluster_scale,
    )
    if target_population is not None:
        session = config.visits_per_session() * config.constants.chunk_duration
        config = replace(
            config, mean_arrival_rate=float(target_population) / session
        )
    return config


# ----------------------------------------------------------------------
# Per-channel shapes and traces (stable spawn keys)
# ----------------------------------------------------------------------

def _channel_shape(config: CatalogConfig, channel_id: int,
                   mean_rate: float) -> ChannelShape:
    """Draw one channel's shape parameters from its dedicated stream.

    The stream key depends only on (seed, channel id): neither the shard
    partition nor the worker count perturbs any channel's draws.
    """
    rng = make_rng(config.seed, "catalog", "shape", f"channel-{channel_id}")
    phase = config.phase_jitter_hours * (2.0 * rng.random() - 1.0) * 3600.0
    hit = rng.random() < config.flash_fraction
    amplitude = (
        config.flash_amplitude * (0.75 + 0.5 * rng.random()) if hit else 0.0
    )
    return ChannelShape(
        channel_id=channel_id,
        mean_rate=float(mean_rate),
        phase_seconds=float(phase),
        flash_amplitude=float(amplitude),
    )


def channel_shapes(config: CatalogConfig) -> List[ChannelShape]:
    """Every channel slot's arrival-process shape, in slot-id order.

    For a plain catalog, slots are channels and each shape is drawn from
    the channel's own stream.  For a :class:`GeoCatalogConfig`, the
    *channel-level* draws (phase jitter, flash hit/amplitude) come from
    the same per-channel streams — so a channel behaves identically in
    every region — and are then expanded per region: rate × region
    split, phase + region UTC offset.
    """
    if isinstance(config, GeoCatalogConfig):
        base = [
            _channel_shape(config, channel, rate)
            for channel, rate in enumerate(config.catalog_channel_rates())
        ]
        splits = config.region_splits()
        offsets = config.preset["utc_offset_hours"]
        return [
            ChannelShape(
                channel_id=config.slot_id(r, c),
                mean_rate=float(shape.mean_rate * splits[r, c]),
                phase_seconds=float(
                    shape.phase_seconds + offsets[r] * 3600.0
                ),
                flash_amplitude=shape.flash_amplitude,
            )
            for r in range(config.num_regions)
            for c, shape in enumerate(base)
        ]
    rates = config.channel_rates()
    return [
        _channel_shape(config, channel_id, rate)
        for channel_id, rate in enumerate(rates)
    ]


def _flash_factor(config: CatalogConfig, shape: ChannelShape,
                  times: np.ndarray) -> np.ndarray:
    """Multiplier 1 + A * exp(-(t - t_flash)^2 / 2 sigma^2) (one event)."""
    if shape.flash_amplitude <= 0:
        return np.ones_like(times)
    center = config.flash_hour * 3600.0
    sigma = config.flash_width_hours * 3600.0
    return 1.0 + shape.flash_amplitude * np.exp(
        -((times - center) ** 2) / (2.0 * sigma**2)
    )


def channel_sessions(
    config: CatalogConfig, shape: ChannelShape,
    diurnal: Optional[DiurnalPattern] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One channel's arrivals: (times, start_chunks, upload_capacities).

    Vectorized thinning against the channel's rate ceiling, then the
    alpha-split start chunks and Pareto uploads, all from the channel's
    own trace stream (key: seed + "catalog/trace/channel-<c>").
    """
    diurnal = diurnal or DiurnalPattern()
    rng = make_rng(config.seed, "catalog", "trace",
                   f"channel-{shape.channel_id}")
    if shape.mean_rate <= 0:
        empty = np.empty(0)
        return empty, empty.astype(np.int64), empty.copy()
    ceiling = (
        shape.mean_rate
        * diurnal.peak_factor()
        * (1.0 + shape.flash_amplitude)
        * 1.001
    )
    candidates = poisson_arrival_times(rng, ceiling, config.horizon_seconds)
    if candidates.size:
        rate = (
            shape.mean_rate
            * diurnal.factors(candidates + shape.phase_seconds)
            * _flash_factor(config, shape, candidates)
        )
        keep = rng.random(candidates.size) < rate / ceiling
        times = candidates[keep]
    else:
        times = candidates
    n = times.size
    j = config.chunks_per_channel
    from_start = rng.random(n) < config.alpha
    if j > 1:
        jumps = rng.integers(1, j, size=n)
    else:
        jumps = np.zeros(n, dtype=np.int64)
    starts = np.where(from_start, 0, jumps).astype(np.int64)
    uploads = config.upload_distribution().sample(rng, n)
    return times, starts, uploads


def shard_channel_ids(config: CatalogConfig, shard_index: int) -> List[int]:
    """The channel slots owned by one shard (round-robin over slot id).

    Round-robin balances load: slot ``s`` goes to shard
    ``s % effective_shards``, so every shard gets a slice of both head
    and tail popularity (and, in the geo catalog, of every region —
    slots are region-major, so consecutive ids cycle through channels
    within a region).  The partition depends only on the config, never
    on the worker count.
    """
    shards = config.effective_shards
    if not 0 <= shard_index < shards:
        raise ValueError(
            f"shard index {shard_index} out of range [0, {shards})"
        )
    return [
        c for c in range(config.channel_slots) if c % shards == shard_index
    ]


def build_shard_trace(
    config: CatalogConfig, channel_ids: Sequence[int],
    shapes: Optional[Sequence[ChannelShape]] = None,
) -> Trace:
    """Assemble the trace covering one shard's channels.

    Channel streams are sampled independently (stable keys), then the
    shard's sessions are merged into one arrival-sorted list with a
    stable tiebreak on channel id, exactly like
    :func:`repro.workload.trace.generate_trace` sorts the full system.
    """
    diurnal = DiurnalPattern()
    if shapes is None:
        all_shapes = channel_shapes(config)
        shapes = [all_shapes[c] for c in channel_ids]
    else:
        shapes = list(shapes)
    sessions: List[Session] = []
    total = 0
    for shape in shapes:
        times, starts, uploads = channel_sessions(config, shape, diurnal)
        total += times.size
        sessions.extend(
            Session(
                arrival_time=float(t),
                channel=shape.channel_id,
                start_chunk=int(s),
                upload_capacity=float(u),
            )
            for t, s, u in zip(times, starts, uploads)
        )
    sessions.sort(key=lambda s: (s.arrival_time, s.channel))
    summary = {
        "num_channels": len(channel_ids),
        "chunks_per_channel": config.chunks_per_channel,
        "horizon_seconds": config.horizon_seconds,
        "mean_total_arrival_rate": float(
            sum(shape.mean_rate for shape in shapes)
        ),
        "zipf_exponent": config.zipf_exponent,
        "alpha": config.alpha,
        "seed": config.seed,
        "num_sessions": len(sessions),
    }
    return Trace(config_summary=summary, sessions=sessions)


@dataclass(frozen=True)
class ShardTraceArrays:
    """One shard's trace as parallel arrays, sorted by (time, channel).

    The structure-of-arrays twin of :func:`build_shard_trace`: the same
    sessions in the same order, without materializing one
    :class:`~repro.workload.trace.Session` object per arrival.  ``times``
    is nondecreasing with a stable channel-id tiebreak —
    ``np.lexsort((channels, times))`` orders identically to the Session
    sort key ``(arrival_time, channel)``, including stability, so the
    fused kernel admits users in exactly the order the per-channel
    kernel would.
    """

    times: np.ndarray  # float64, sorted
    channels: np.ndarray  # int64 global channel ids
    start_chunks: np.ndarray  # int64
    upload_capacities: np.ndarray  # float64

    @property
    def num_sessions(self) -> int:
        return int(self.times.size)


def build_shard_trace_arrays(
    config: CatalogConfig, channel_ids: Sequence[int],
    shapes: Optional[Sequence[ChannelShape]] = None,
) -> ShardTraceArrays:
    """Assemble one shard's trace directly as sorted parallel arrays.

    Samples exactly the same per-channel streams as
    :func:`build_shard_trace` (stable keys, identical draw order) and
    merges them with the same (arrival_time, channel) ordering.
    """
    diurnal = DiurnalPattern()
    if shapes is None:
        all_shapes = channel_shapes(config)
        shapes = [all_shapes[c] for c in channel_ids]
    else:
        shapes = list(shapes)
    times_parts: List[np.ndarray] = []
    channel_parts: List[np.ndarray] = []
    start_parts: List[np.ndarray] = []
    upload_parts: List[np.ndarray] = []
    for shape in shapes:
        times, starts, uploads = channel_sessions(config, shape, diurnal)
        times_parts.append(np.asarray(times, dtype=float))
        channel_parts.append(
            np.full(times.size, shape.channel_id, dtype=np.int64)
        )
        start_parts.append(np.asarray(starts, dtype=np.int64))
        upload_parts.append(np.asarray(uploads, dtype=float))
    if times_parts:
        times = np.concatenate(times_parts)
        channels = np.concatenate(channel_parts)
        starts = np.concatenate(start_parts)
        uploads = np.concatenate(upload_parts)
    else:
        times = np.empty(0)
        channels = np.empty(0, dtype=np.int64)
        starts = np.empty(0, dtype=np.int64)
        uploads = np.empty(0)
    order = np.lexsort((channels, times))
    return ShardTraceArrays(
        times=times[order],
        channels=channels[order],
        start_chunks=starts[order],
        upload_capacities=uploads[order],
    )
