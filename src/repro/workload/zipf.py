"""Zipf-like channel popularity (paper Section VI-A).

The paper deploys 20 channels "with different popularities following a
Zipf-like distribution". Channel c (1-indexed by popularity rank) receives a
share proportional to ``1 / rank**exponent``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["zipf_weights", "assign_channel_rates"]


def zipf_weights(num_channels: int, exponent: float = 0.8) -> np.ndarray:
    """Normalized Zipf popularity weights for ranks 1..num_channels.

    Parameters
    ----------
    num_channels:
        Number of channels (>= 1).
    exponent:
        Zipf skew; measurement studies of VoD popularity typically report
        exponents in [0.6, 1.0]. Default 0.8.
    """
    if num_channels <= 0:
        raise ValueError("need at least one channel")
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    ranks = np.arange(1, num_channels + 1, dtype=float)
    weights = ranks**-exponent
    return weights / weights.sum()


def assign_channel_rates(
    total_rate: float, num_channels: int, exponent: float = 0.8
) -> np.ndarray:
    """Split a system-wide arrival rate across channels by Zipf popularity.

    Returns per-channel arrival rates summing to ``total_rate``.
    """
    if total_rate < 0:
        raise ValueError(f"total rate must be >= 0, got {total_rate}")
    return total_rate * zipf_weights(num_channels, exponent)
