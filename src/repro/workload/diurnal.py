"""Diurnal arrival-rate pattern with two flash crowds (paper Section VI-A).

"User population in each channel follows a daily pattern with two flash
crowds around noon and in the evening." The pattern is a baseline plus two
Gaussian bumps, evaluated as a multiplicative factor on a channel's average
arrival rate; it repeats every 24 hours.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["DiurnalPattern"]

_DAY_SECONDS = 24 * 3600.0


@dataclass(frozen=True)
class DiurnalPattern:
    """A 24-hour periodic rate multiplier.

    factor(t) = base + sum_k amp_k * exp(-(h(t) - peak_k)^2 / (2 width_k^2))

    with ``h(t)`` the hour-of-day. The default parameters give a noon flash
    crowd and a larger evening flash crowd, normalized so that the *mean*
    factor over a day is 1 — multiplying by an average rate preserves that
    average.

    Attributes
    ----------
    base:
        Off-peak level before normalization.
    peak_hours / amplitudes / widths_hours:
        Per-bump Gaussian parameters (hours).
    """

    base: float = 0.5
    peak_hours: Sequence[float] = (12.0, 20.5)
    amplitudes: Sequence[float] = (0.9, 1.4)
    widths_hours: Sequence[float] = (1.5, 2.0)
    _norm: float = field(init=False, default=1.0)
    _peak: float = field(init=False, default=1.0)

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError("base must be >= 0")
        if not (
            len(self.peak_hours) == len(self.amplitudes) == len(self.widths_hours)
        ):
            raise ValueError("peak/amplitude/width sequences must align")
        if any(a < 0 for a in self.amplitudes):
            raise ValueError("amplitudes must be >= 0")
        if any(w <= 0 for w in self.widths_hours):
            raise ValueError("widths must be > 0")
        # Normalize so the daily mean factor is 1.
        hours = np.linspace(0.0, 24.0, 24 * 60, endpoint=False)
        raw = self._raw(hours)
        mean = float(np.mean(raw))
        if mean <= 0:
            raise ValueError("pattern must have positive mean")
        object.__setattr__(self, "_norm", mean)
        # The day grid is in hand; cache the peak so per-channel trace
        # builders don't re-evaluate it.
        object.__setattr__(self, "_peak", float(np.max(raw) / mean))

    def _raw(self, hours: np.ndarray) -> np.ndarray:
        value = np.full_like(hours, self.base, dtype=float)
        for peak, amp, width in zip(
            self.peak_hours, self.amplitudes, self.widths_hours
        ):
            # Wrap-around distance on the 24 h circle.
            delta = np.abs(hours - peak)
            delta = np.minimum(delta, 24.0 - delta)
            value += amp * np.exp(-(delta**2) / (2.0 * width**2))
        return value

    def factor(self, time_seconds: float) -> float:
        """Rate multiplier at an absolute simulated time (seconds)."""
        hours = np.asarray([(time_seconds % _DAY_SECONDS) / 3600.0])
        return float(self._raw(hours)[0] / self._norm)

    def factors(self, times_seconds: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`factor`."""
        t = np.asarray(times_seconds, dtype=float)
        hours = (t % _DAY_SECONDS) / 3600.0
        return self._raw(hours) / self._norm

    def peak_factor(self) -> float:
        """Maximum multiplier over the day (flash-crowd intensity)."""
        return self._peak
