"""Trace manipulation utilities.

Operators commonly need to reshape a recorded workload before replaying
it: scale its intensity, cut out a time window, merge traces from several
sources, or shift it in time (e.g. to emulate a different launch hour).
All operations are pure (they return new traces).
"""

from __future__ import annotations

from typing import Sequence


from repro.sim.rng import make_rng
from repro.workload.trace import Session, Trace

__all__ = ["scale_trace", "slice_trace", "merge_traces", "shift_trace",
           "thin_trace"]


def _rebuild(trace: Trace, sessions, note: str) -> Trace:
    summary = dict(trace.config_summary)
    summary["num_sessions"] = len(sessions)
    summary["derived"] = summary.get("derived", "") + note
    return Trace(config_summary=summary, sessions=sessions)


def scale_trace(trace: Trace, factor: float, *, seed: int = 0) -> Trace:
    """Scale arrival intensity by ``factor``.

    ``factor < 1`` thins sessions independently (exact Poisson thinning);
    ``factor >= 1`` keeps all sessions and replicates each with
    probability ``factor - floor(factor)`` (plus whole copies), jittering
    replica arrival times slightly so they are not simultaneous.
    """
    if factor < 0:
        raise ValueError("factor must be >= 0")
    rng = make_rng(seed, "trace-scale")
    sessions = []
    whole = int(factor)
    frac = factor - whole
    for s in trace.sessions:
        copies = whole + (1 if rng.random() < frac else 0)
        for k in range(copies):
            jitter = 0.0 if k == 0 else float(rng.uniform(0.0, 1.0))
            sessions.append(
                Session(
                    arrival_time=s.arrival_time + jitter,
                    channel=s.channel,
                    start_chunk=s.start_chunk,
                    upload_capacity=s.upload_capacity,
                )
            )
    sessions.sort(key=lambda s: s.arrival_time)
    return _rebuild(trace, sessions, f"|scale({factor})")


def thin_trace(trace: Trace, keep_probability: float, *, seed: int = 0) -> Trace:
    """Independent thinning: keep each session with the given probability."""
    if not 0.0 <= keep_probability <= 1.0:
        raise ValueError("keep probability must be in [0, 1]")
    rng = make_rng(seed, "trace-thin")
    sessions = [s for s in trace.sessions if rng.random() < keep_probability]
    return _rebuild(trace, sessions, f"|thin({keep_probability})")


def slice_trace(trace: Trace, start: float, end: float) -> Trace:
    """Keep sessions arriving in [start, end); times re-zeroed to start."""
    if end <= start:
        raise ValueError("end must exceed start")
    sessions = [
        Session(
            arrival_time=s.arrival_time - start,
            channel=s.channel,
            start_chunk=s.start_chunk,
            upload_capacity=s.upload_capacity,
        )
        for s in trace.sessions
        if start <= s.arrival_time < end
    ]
    return _rebuild(trace, sessions, f"|slice({start},{end})")


def shift_trace(trace: Trace, offset: float) -> Trace:
    """Shift all arrival times by ``offset`` (must stay nonnegative)."""
    if trace.sessions and trace.sessions[0].arrival_time + offset < 0:
        raise ValueError("shift would produce negative arrival times")
    sessions = [
        Session(
            arrival_time=s.arrival_time + offset,
            channel=s.channel,
            start_chunk=s.start_chunk,
            upload_capacity=s.upload_capacity,
        )
        for s in trace.sessions
    ]
    return _rebuild(trace, sessions, f"|shift({offset})")


def merge_traces(traces: Sequence[Trace]) -> Trace:
    """Merge sessions from several traces into one (sorted by arrival)."""
    if not traces:
        raise ValueError("need at least one trace")
    sessions = [s for t in traces for s in t.sessions]
    sessions.sort(key=lambda s: s.arrival_time)
    summary = dict(traces[0].config_summary)
    summary["num_sessions"] = len(sessions)
    summary["derived"] = summary.get("derived", "") + f"|merge({len(traces)})"
    return Trace(config_summary=summary, sessions=sessions)
