"""Synthetic VoD workload generation (paper Section VI-A).

The paper drives its testbed with a synthetic trace matching measured
PPLive-VoD characteristics; this package regenerates an equivalent trace:

* :mod:`repro.workload.zipf` — Zipf-like channel popularity.
* :mod:`repro.workload.diurnal` — daily arrival-rate pattern with two flash
  crowds (around noon and in the evening).
* :mod:`repro.workload.pareto` — bounded Pareto peer upload capacities
  ([180 kbps, 10 Mbps], shape k = 3).
* :mod:`repro.workload.arrivals` — (non-)homogeneous Poisson arrival
  sampling.
* :mod:`repro.workload.trace` — assembled traces (sessions with channel,
  arrival time, start position, upload capacity) plus JSON serialization.
"""

from repro.workload.arrivals import (
    interval_rates,
    nonhomogeneous_poisson_times,
    poisson_arrival_times,
)
from repro.workload.diurnal import DiurnalPattern
from repro.workload.pareto import BoundedPareto
from repro.workload.tools import (
    merge_traces,
    scale_trace,
    shift_trace,
    slice_trace,
    thin_trace,
)
from repro.workload.trace import Session, Trace, TraceConfig, generate_trace
from repro.workload.zipf import assign_channel_rates, zipf_weights

#: Lazily re-exported from :mod:`repro.workload.catalog`, which reuses
#: the paper constants/cluster presets from :mod:`repro.experiments.
#: config` — a layer that itself imports this package.  Deferring the
#: import to first attribute access keeps the package import acyclic.
_CATALOG_EXPORTS = (
    "CatalogConfig",
    "ChannelShape",
    "build_shard_trace",
    "catalog_config",
    "channel_sessions",
    "channel_shapes",
    "shard_channel_ids",
)


def __getattr__(name: str):
    if name in _CATALOG_EXPORTS:
        from repro.workload import catalog

        return getattr(catalog, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "poisson_arrival_times",
    "nonhomogeneous_poisson_times",
    "interval_rates",
    "DiurnalPattern",
    "BoundedPareto",
    "Session",
    "Trace",
    "TraceConfig",
    "generate_trace",
    "zipf_weights",
    "assign_channel_rates",
    "merge_traces",
    "scale_trace",
    "shift_trace",
    "slice_trace",
    "thin_trace",
    *_CATALOG_EXPORTS,
]
