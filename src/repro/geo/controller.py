"""The multi-region provisioning controller (geo extension, Section VII).

The single-region controller (:mod:`repro.core.provisioner`) solves the
paper's Eqn (7) VM configuration per interval.  This controller runs the
same tracker → predictor → Section IV analysis front-end per channel
*slot* (a (viewer-region, channel) pair), then groups the resulting
per-chunk cloud demands by viewer region and solves the multi-region
problem (:mod:`repro.geo.allocation`): any region's clusters may serve
any region's viewers, at a latency-discounted utility and an
egress-inflated price, under one global hourly budget.

Each decision yields

* per-slot granted capacity arrays (the sum over serving cells, exactly
  like the single-region grants),
* integer VM targets per ``<region>:<cluster>`` plus the Eqn (6)
  storage placement (one stored copy per *channel* chunk in the global
  NFS estate serves every region), submitted through the broker,
* the plan's aggregate cross-region egress spend rate, metered by
  :meth:`repro.cloud.billing.BillingMeter.record_egress_rate`, and
* per-viewer-region capacity-weighted latency utility discounts, which
  the engine folds into the quality metrics
  (:func:`repro.vod.metrics.latency_adjusted_quality`).

The observe/predict/analyze skeleton is
:class:`repro.core.controller.ProvisioningControllerBase` — shared with
the single-region controller, so the geo loop is a strategy over the
same skeleton, not a fork — and the policy mixins compose with this
class the same way (``repro.core.controller`` documents the policies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.cloud.broker import Broker, NegotiationError, ResourceRequest, SLAAgreement
from repro.core.controller import (
    AdaptPolicy,
    MPCPolicy,
    PIDPolicy,
    ProvisioningControllerBase,
    ReactivePolicy,
)
from repro.core.demand import ChannelDemand, DemandEstimator
from repro.core.predictor import ArrivalRatePredictor
from repro.core.sla import SLATerms
from repro.core.storage_rental import StoragePlan, StorageProblem, greedy_storage_rental
from repro.geo.allocation import (
    GeoAllocationPlan,
    GeoVMProblem,
    greedy_geo_allocation,
    lp_geo_allocation,
)
from repro.geo.region import GeoTopology
from repro.vod.tracker import TrackingServer

__all__ = [
    "GeoProvisioningDecision",
    "GeoProvisioningController",
    "ReactiveGeoProvisioningController",
    "AdaptGeoProvisioningController",
    "PIDGeoProvisioningController",
    "MPCGeoProvisioningController",
]


@dataclass
class GeoProvisioningDecision:
    """Everything the geo controller decided for one interval."""

    time: float
    demands: List[ChannelDemand]
    plan: GeoAllocationPlan
    agreement: Optional[SLAAgreement]
    per_channel_capacity: Dict[int, np.ndarray] = field(default_factory=dict)
    #: The Eqn (6) storage rental, replanned on significant demand shift
    #: (``None`` when the previous placement was kept).  Storage is
    #: placed at *channel* granularity: one copy of each chunk in the
    #: global NFS estate serves every region's slots.
    storage_plan: Optional[StoragePlan] = None
    rejected: Optional[str] = None
    #: $/hour of cross-region transfer implied by the plan.
    egress_rate_per_hour: float = 0.0
    #: Viewer region -> capacity-weighted latency utility discount in
    #: (0, 1]; 1.0 when the region is fully served locally (or idle).
    region_discounts: Dict[str, float] = field(default_factory=dict)
    #: Fraction of allocated VM-hours served across regions.
    remote_fraction: float = 0.0

    @property
    def hourly_vm_cost(self) -> float:
        return self.agreement.hourly_vm_cost if self.agreement else 0.0

    @property
    def total_cloud_demand(self) -> float:
        return float(sum(d.total_cloud_demand for d in self.demands))

    def mean_discount(self) -> float:
        """Capacity-weighted discount across all viewer regions."""
        weights = self.plan.region_service_matrix()
        total = sum(weights.values())
        if total <= 0:
            return 1.0
        acc = 0.0
        for (viewer, _serving), z in weights.items():
            acc += z * self.region_discounts.get(viewer, 1.0)
        return acc / total

    def epoch_telemetry(self) -> Dict[str, float]:
        """The per-epoch geo series entries this decision contributes
        (consumed by the engine's result assembly and by
        :class:`repro.api.EpochSnapshot` streaming consumers)."""
        return {
            "discount": float(self.mean_discount()),
            "remote_fraction": float(self.remote_fraction),
            "egress_rate_per_hour": float(self.egress_rate_per_hour),
        }


class GeoProvisioningController(ProvisioningControllerBase):
    """Closes the provisioning loop across regions.

    Parameters
    ----------
    estimator / tracker / broker / terms / predictor:
        Same roles as in the single-region controller; the tracker and
        predictor are keyed by slot id.
    topology:
        The solver-facing region graph (unprefixed cluster names; the
        broker-facing names are ``<region>:<cluster>``).
    slot_region:
        Maps a slot id to its viewer region name.
    slot_channel:
        Maps a slot id to its catalog channel — the storage rental
        places one copy per *channel* chunk (the NFS estate is global),
        so regional slots of a channel pool their demand.
    exact:
        Use the LP optimum instead of the greedy each interval.
    min_capacity_per_chunk:
        Same floor semantics as the single-region controller.
    storage_replan_threshold:
        Relative L1 change in the channel-chunk demand vector that
        triggers a storage replan (same rule as the single-region
        controller).
    """

    decisions: List[GeoProvisioningDecision]

    def __init__(
        self,
        estimator: DemandEstimator,
        tracker: TrackingServer,
        broker: Broker,
        topology: GeoTopology,
        terms: SLATerms,
        slot_region: Callable[[int], str],
        slot_channel: Callable[[int], int],
        *,
        predictor: Optional[ArrivalRatePredictor] = None,
        exact: bool = False,
        min_capacity_per_chunk: float = 0.0,
        storage_replan_threshold: float = 0.25,
        **kwargs,
    ) -> None:
        super().__init__(
            estimator,
            tracker,
            broker,
            terms,
            predictor=predictor,
            storage_replan_threshold=storage_replan_threshold,
            min_capacity_per_chunk=min_capacity_per_chunk,
            **kwargs,
        )
        self.topology = topology
        self.slot_region = slot_region
        self.slot_channel = slot_channel
        self.exact = bool(exact)

    # ------------------------------------------------------------------
    def _regional_demands(
        self, demands: Sequence[ChannelDemand]
    ) -> Dict[str, Dict[object, float]]:
        """Group per-slot chunk demands by viewer region, fixed order.

        Regions appear in topology declaration order, and within a
        region the chunk keys follow slot-id order, so the solvers see a
        deterministic problem no matter how the reports arrived.
        """
        regional: Dict[str, Dict[object, float]] = {
            name: {} for name in self.topology.region_names()
        }
        for demand in demands:
            region = regional[self.slot_region(demand.channel_id)]
            for chunk_key, delta in demand.chunk_demands().items():
                region[chunk_key] = delta
        return regional

    def _capacity_arrays(
        self,
        demands: Sequence[ChannelDemand],
        plan: GeoAllocationPlan,
    ) -> Dict[int, np.ndarray]:
        """Granted bytes/s per slot chunk: R × Σ serving cells, plus the
        populated-chunk floor (same contract as the single-region
        controller's grants)."""
        grants: Dict[int, Dict[int, float]] = {}
        for (_viewer, (slot, chunk), _s, _cl), z in plan.allocations.items():
            slot_grants = grants.setdefault(slot, {})
            slot_grants[chunk] = (
                slot_grants.get(chunk, 0.0) + z * self.vm_bandwidth
            )
        arrays: Dict[int, np.ndarray] = {}
        for demand in demands:
            j = demand.cloud_demand.size
            arr = np.zeros(j, dtype=float)
            for i, value in grants.get(demand.channel_id, {}).items():
                arr[i] = value
            if self.min_capacity_per_chunk > 0:
                populated = demand.expected_in_system > 0
                arr[populated] = np.maximum(
                    arr[populated], self.min_capacity_per_chunk
                )
            arrays[demand.channel_id] = arr
        return arrays

    def _channel_chunk_demand(
        self, demands: Sequence[ChannelDemand]
    ) -> Dict[object, float]:
        """Slot demands pooled to ``{(channel, chunk): Delta}``.

        One stored copy serves every region, so the storage optimizer
        sees the catalog's channel-chunk space, not the slot space.
        Accumulation follows slot order (fixed) for determinism.
        """
        pooled: Dict[object, float] = {}
        for demand in demands:
            channel = self.slot_channel(demand.channel_id)
            for i, delta in enumerate(demand.cloud_demand):
                key = (channel, i)
                pooled[key] = pooled.get(key, 0.0) + float(delta)
        return pooled

    def _egress_rate(self, plan: GeoAllocationPlan) -> float:
        """$/hour of cross-region transfer the plan implies."""
        rate = 0.0
        for (viewer, _chunk, serving, _cluster), z in plan.allocations.items():
            if viewer != serving:
                rate += z * self.topology.egress_cost_per_vm_hour(
                    serving, viewer, self.vm_bandwidth
                )
        return rate

    def _region_discounts(self, plan: GeoAllocationPlan) -> Dict[str, float]:
        """Capacity-weighted latency discount per viewer region."""
        weighted: Dict[str, float] = {}
        totals: Dict[str, float] = {}
        for (viewer, serving), z in plan.region_service_matrix().items():
            weighted[viewer] = weighted.get(viewer, 0.0) + z * \
                self.topology.utility_discount(serving, viewer)
            totals[viewer] = totals.get(viewer, 0.0) + z
        return {
            name: (weighted[name] / totals[name] if totals.get(name) else 1.0)
            for name in self.topology.region_names()
        }

    # ------------------------------------------------------------------
    def provision(
        self, now: float, demands: List[ChannelDemand]
    ) -> GeoProvisioningDecision:
        """Optimize, negotiate and apply one set of slot demands."""
        problem = GeoVMProblem(
            topology=self.topology,
            demands=self._regional_demands(demands),
            vm_bandwidth=self.vm_bandwidth,
            budget_per_hour=self.terms.vm_budget_per_hour,
        )
        solve = lp_geo_allocation if self.exact else greedy_geo_allocation
        plan = solve(problem)

        # Storage rental (Eqn (6)) on significant demand shift, exactly
        # like the single-region controller — at channel granularity.
        chunk_demand = self._channel_chunk_demand(demands)
        storage_plan: Optional[StoragePlan] = None
        nfs_specs = list(self.broker.facility.nfs_specs.values())
        if nfs_specs and self._should_replan_storage(chunk_demand):
            storage_plan = greedy_storage_rental(StorageProblem(
                demands=chunk_demand,
                chunk_size_bytes=self.chunk_size_bytes,
                clusters=nfs_specs,
                budget_per_hour=self.terms.storage_budget_per_hour,
            ))

        vm_targets = {
            f"{region}:{cluster}": 0
            for region in self.topology.region_names()
            for cluster in (
                c.name for c in self.topology.regions[region].clusters
            )
        }
        for (region, cluster), total in sorted(plan.cluster_totals().items()):
            vm_targets[f"{region}:{cluster}"] = int(np.ceil(total - 1e-9))

        placement = (
            storage_plan.to_facility_placement(self.chunk_size_bytes)
            if storage_plan is not None and storage_plan.feasible
            else None
        )
        request = ResourceRequest(
            vm_targets=vm_targets,
            storage_placement=placement,
            max_hourly_budget=self.terms.total_budget_per_hour,
        )
        agreement: Optional[SLAAgreement] = None
        rejected: Optional[str] = None
        try:
            agreement = self.broker.request(request)
        except NegotiationError as exc:
            rejected = str(exc)

        # On rejection the facility keeps its previous VM allocation, so
        # the previous egress level keeps accruing too — metering the
        # rejected plan's rate would bill remote capacity that was never
        # deployed (the single-region analogue records $0 VM rate on
        # rejection for the same reason).
        egress_rate = self._egress_rate(plan) if agreement else 0.0
        if agreement:
            self.broker.facility.billing.record_egress_rate(
                now, egress_rate
            )

        decision = GeoProvisioningDecision(
            time=now,
            demands=demands,
            plan=plan,
            agreement=agreement,
            per_channel_capacity=self._capacity_arrays(demands, plan),
            storage_plan=storage_plan,
            rejected=rejected,
            egress_rate_per_hour=egress_rate,
            region_discounts=self._region_discounts(plan),
            remote_fraction=plan.remote_fraction(),
        )
        self.decisions.append(decision)

        if storage_plan is not None and storage_plan.feasible and agreement:
            self._storage_planned = True
        self._last_chunk_demand = dict(chunk_demand)
        return decision


class ReactiveGeoProvisioningController(
    ReactivePolicy, GeoProvisioningController
):
    """Multi-region reactive threshold scaling (``controller="reactive"``)."""


class AdaptGeoProvisioningController(AdaptPolicy, GeoProvisioningController):
    """Multi-region Adapt-style proactive estimator (``controller="adapt"``)."""


class PIDGeoProvisioningController(PIDPolicy, GeoProvisioningController):
    """Multi-region PID demand shaping (``controller="pid"``)."""


class MPCGeoProvisioningController(MPCPolicy, GeoProvisioningController):
    """Multi-region receding-horizon MPC (``controller="mpc"``).

    The inner solve is the real topology's exact LP — the same
    :class:`~repro.geo.allocation.GeoVMProblem` the ``exact`` paper
    controller would solve, but over the horizon-grown demand.
    """

    def _mpc_topology(self):
        return self.topology

    def _mpc_regional_demands(self, demands):
        return self._regional_demands(demands)
