"""Geo-distributed cloud extension (paper Section VII future work).

The paper closes with: "In our ongoing work, we are expanding to cloud
systems spanning different geographic locations." This package implements
that extension on top of the reproduction's substrates:

* :mod:`repro.geo.region` — region descriptions: a full set of virtual
  clusters per region, inter-region latency, and egress pricing.
* :mod:`repro.geo.allocation` — the multi-region VM configuration
  problem: per-region viewer demand may be served from any region, with
  latency-discounted utility and egress-inflated cost; solved with the
  same greedy style as Eqn (7) plus an LP optimum for comparison.
* :mod:`repro.geo.controller` — the multi-region provisioning
  controller the sharded catalog engine drives every epoch
  (:class:`repro.sim.shard.GeoShardedSimulator`): per-region demand
  estimation, the allocation solve, broker negotiation over the
  regional clusters, and egress/latency-discount accounting.
"""

from repro.geo.allocation import (
    GeoAllocationPlan,
    GeoVMProblem,
    greedy_geo_allocation,
    lp_geo_allocation,
)
from repro.geo.controller import (
    GeoProvisioningController,
    GeoProvisioningDecision,
)
from repro.geo.region import GeoTopology, RegionSpec

__all__ = [
    "GeoAllocationPlan",
    "GeoVMProblem",
    "greedy_geo_allocation",
    "lp_geo_allocation",
    "GeoProvisioningController",
    "GeoProvisioningDecision",
    "GeoTopology",
    "RegionSpec",
]
