"""Region descriptions for the geo-distributed extension.

A region hosts its own virtual clusters (same shape as Table II) and is
connected to every other region with a round-trip latency and an egress
price. Serving a viewer from a remote region is possible but worse on both
axes: streaming quality degrades with latency (modeled as a utility
discount) and the provider pays for cross-region egress bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.cloud.cluster import VirtualClusterSpec

__all__ = ["RegionSpec", "GeoTopology"]


@dataclass(frozen=True)
class RegionSpec:
    """One cloud region.

    Attributes
    ----------
    name:
        Region label, e.g. ``"us-east"``.
    clusters:
        The region's virtual clusters.
    """

    name: str
    clusters: Tuple[VirtualClusterSpec, ...]

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError(f"region {self.name!r} needs at least one cluster")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate cluster names in region {self.name!r}")

    @property
    def total_vms(self) -> int:
        return sum(c.max_vms for c in self.clusters)


class GeoTopology:
    """Regions plus pairwise latency and egress pricing.

    Parameters
    ----------
    regions:
        The participating regions.
    latency_ms:
        ``{(from_region, to_region): round-trip ms}``; symmetric entries
        are filled automatically, the diagonal defaults to
        ``local_latency_ms``.
    egress_price_per_gb:
        ``{(serving_region, viewer_region): $/GB}`` for cross-region
        traffic; intra-region traffic is free.
    latency_halflife_ms:
        Utility discount parameter: serving across a link of latency L
        multiplies the cluster utility by ``0.5 ** (L / halflife)``, so a
        link at the half-life halves the effective utility.
    """

    def __init__(
        self,
        regions: Sequence[RegionSpec],
        latency_ms: Mapping[Tuple[str, str], float],
        egress_price_per_gb: Mapping[Tuple[str, str], float],
        *,
        local_latency_ms: float = 5.0,
        latency_halflife_ms: float = 150.0,
    ) -> None:
        if not regions:
            raise ValueError("need at least one region")
        names = [r.name for r in regions]
        if len(set(names)) != len(names):
            raise ValueError("region names must be unique")
        if latency_halflife_ms <= 0:
            raise ValueError("latency half-life must be > 0")
        if local_latency_ms < 0:
            raise ValueError("local latency must be >= 0")
        self.regions: Dict[str, RegionSpec] = {r.name: r for r in regions}
        self.latency_halflife_ms = latency_halflife_ms
        self._latency: Dict[Tuple[str, str], float] = {}
        self._egress: Dict[Tuple[str, str], float] = {}

        for name in names:
            self._latency[(name, name)] = local_latency_ms
            self._egress[(name, name)] = 0.0
        for (a, b), value in latency_ms.items():
            self._check_regions(a, b)
            if value < 0:
                raise ValueError("latency must be >= 0")
            if a == b:
                # Intra-region latency is configured through
                # local_latency_ms only; a diagonal entry that silently
                # overrode it would contradict the documented defaults.
                if float(value) != float(local_latency_ms):
                    raise ValueError(
                        f"diagonal latency entry {(a, b)} = {value} "
                        f"conflicts with local_latency_ms="
                        f"{local_latency_ms}; intra-region latency is "
                        f"set via local_latency_ms"
                    )
                continue
            self._latency[(a, b)] = float(value)
            self._latency.setdefault((b, a), float(value))
        for (a, b), value in egress_price_per_gb.items():
            self._check_regions(a, b)
            if value < 0:
                raise ValueError("egress price must be >= 0")
            if a == b:
                # Intra-region traffic is free by contract.
                if float(value) != 0.0:
                    raise ValueError(
                        f"diagonal egress entry {(a, b)} = {value} "
                        f"conflicts with the free-intra-region contract "
                        f"(must be 0)"
                    )
                continue
            self._egress[(a, b)] = float(value)
            self._egress.setdefault((b, a), float(value))

        for a in names:
            for b in names:
                if (a, b) not in self._latency:
                    raise ValueError(f"missing latency for {(a, b)}")
                if (a, b) not in self._egress:
                    raise ValueError(f"missing egress price for {(a, b)}")

    def _check_regions(self, *names: str) -> None:
        for name in names:
            if name not in self.regions:
                raise KeyError(f"unknown region {name!r}")

    # ------------------------------------------------------------------
    def latency(self, serving: str, viewer: str) -> float:
        """Round-trip latency in milliseconds."""
        self._check_regions(serving, viewer)
        return self._latency[(serving, viewer)]

    def egress_price(self, serving: str, viewer: str) -> float:
        """Cross-region egress price, $/GB ($0 intra-region)."""
        self._check_regions(serving, viewer)
        return self._egress[(serving, viewer)]

    def utility_discount(self, serving: str, viewer: str) -> float:
        """Latency-driven utility multiplier in (0, 1]."""
        latency = self.latency(serving, viewer)
        return 0.5 ** (latency / self.latency_halflife_ms)

    def egress_cost_per_vm_hour(
        self, serving: str, viewer: str, vm_bandwidth: float
    ) -> float:
        """Hourly egress cost of one VM streaming at full rate across the
        link: R bytes/s for 3600 s, priced per GB."""
        gb_per_hour = vm_bandwidth * 3600.0 / 1e9
        return self.egress_price(serving, viewer) * gb_per_hour

    def region_names(self) -> List[str]:
        return list(self.regions)
