"""Multi-region VM allocation (the geo extension's Eqn (7) analogue).

Per-region demand ``{viewer_region: {chunk: Delta}}`` may be served from
any region's clusters. Serving region g's viewers from region s uses
an *effective* utility ``u~_v * discount(s, g)`` (latency degrades
streaming quality) and an *effective* price
``p~_v + egress(s, g, R)`` (cross-region traffic is billed per GB).
Subject to per-cluster capacity and one global hourly budget, maximize the
total effective utility while covering all demand.

Solvers mirror the single-region module: a greedy in the paper's
utility-per-dollar style, and the exact LP optimum via scipy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.geo.region import GeoTopology

__all__ = ["GeoVMProblem", "GeoAllocationPlan", "greedy_geo_allocation",
           "lp_geo_allocation"]

ChunkKey = Hashable
# An allocation cell: (viewer_region, chunk, serving_region, cluster).
CellKey = Tuple[str, ChunkKey, str, str]


@dataclass(frozen=True)
class GeoVMProblem:
    """One instance of the multi-region VM configuration problem."""

    topology: GeoTopology
    demands: Mapping[str, Mapping[ChunkKey, float]]  # region -> chunk -> B/s
    vm_bandwidth: float
    budget_per_hour: float

    def __post_init__(self) -> None:
        if self.vm_bandwidth <= 0:
            raise ValueError("VM bandwidth must be > 0")
        if self.budget_per_hour < 0:
            raise ValueError("budget must be >= 0")
        for region, chunks in self.demands.items():
            if region not in self.topology.regions:
                raise KeyError(f"unknown demand region {region!r}")
            if any(v < 0 for v in chunks.values()):
                raise ValueError(f"negative demand in region {region!r}")

    def vm_need(self, region: str, chunk: ChunkKey) -> float:
        return float(self.demands[region][chunk]) / self.vm_bandwidth

    def total_vm_need(self) -> float:
        return sum(
            float(v) for chunks in self.demands.values() for v in chunks.values()
        ) / self.vm_bandwidth

    def effective_utility(self, serving: str, viewer: str, cluster_utility: float) -> float:
        return cluster_utility * self.topology.utility_discount(serving, viewer)

    def effective_price(
        self, serving: str, viewer: str, cluster_price: float
    ) -> float:
        return cluster_price + self.topology.egress_cost_per_vm_hour(
            serving, viewer, self.vm_bandwidth
        )


@dataclass(frozen=True)
class GeoAllocationPlan:
    """A (possibly partial) multi-region allocation."""

    allocations: Dict[CellKey, float]  # fractional VMs per cell
    objective: float
    cost_per_hour: float
    feasible: bool
    unserved_vms: float = 0.0

    def cluster_totals(self) -> Dict[Tuple[str, str], float]:
        """Fractional VM totals per (serving_region, cluster)."""
        totals: Dict[Tuple[str, str], float] = {}
        for (_, _, serving, cluster), z in self.allocations.items():
            key = (serving, cluster)
            totals[key] = totals.get(key, 0.0) + z
        return totals

    def remote_fraction(self) -> float:
        """Fraction of VM-hours served across regions."""
        total = sum(self.allocations.values())
        if total <= 0:
            return 0.0
        remote = sum(
            z
            for (viewer, _, serving, _), z in self.allocations.items()
            if viewer != serving
        )
        return remote / total

    def region_service_matrix(self) -> Dict[Tuple[str, str], float]:
        """``{(viewer_region, serving_region): fractional VMs}``."""
        matrix: Dict[Tuple[str, str], float] = {}
        for (viewer, _, serving, _), z in self.allocations.items():
            key = (viewer, serving)
            matrix[key] = matrix.get(key, 0.0) + z
        return matrix


def _cells_for(
    problem: GeoVMProblem, viewer: str
) -> List[Tuple[str, str, float, float]]:
    """Candidate (serving_region, cluster, eff_utility, eff_price) options
    for a viewer region, best utility-per-dollar first."""
    options = []
    for serving, region in problem.topology.regions.items():
        for cluster in region.clusters:
            utility = problem.effective_utility(serving, viewer, cluster.utility)
            price = problem.effective_price(
                serving, viewer, cluster.price_per_hour
            )
            options.append((serving, cluster.name, utility, price))
    options.sort(key=lambda o: (-(o[2] / o[3]), o[0], o[1]))
    return options


def greedy_geo_allocation(problem: GeoVMProblem) -> GeoAllocationPlan:
    """Greedy in the paper's style, extended across regions.

    Demand cells (viewer region, chunk) are processed in decreasing
    demand; each draws from its best effective-utility-per-dollar option
    with remaining capacity, spilling across clusters *and regions*, while
    the global budget lasts.
    """
    remaining: Dict[Tuple[str, str], float] = {}
    for name, region in problem.topology.regions.items():
        for cluster in region.clusters:
            remaining[(name, cluster.name)] = float(cluster.max_vms)

    cells = [
        (viewer, chunk, problem.vm_need(viewer, chunk))
        for viewer, chunks in problem.demands.items()
        for chunk in chunks
    ]
    cells.sort(key=lambda c: (-c[2], c[0], repr(c[1])))

    options_cache: Dict[str, List[Tuple[str, str, float, float]]] = {}
    allocations: Dict[CellKey, float] = {}
    cost = 0.0
    objective = 0.0
    unserved = 0.0

    for viewer, chunk, need in cells:
        if viewer not in options_cache:
            options_cache[viewer] = _cells_for(problem, viewer)
        for serving, cluster, utility, price in options_cache[viewer]:
            if need <= 1e-12:
                break
            capacity = remaining[(serving, cluster)]
            if capacity <= 1e-12:
                continue
            affordable = (
                (problem.budget_per_hour - cost) / price
                if price > 0
                else float("inf")
            )
            take = min(need, capacity, max(0.0, affordable))
            if take <= 1e-12:
                continue
            key: CellKey = (viewer, chunk, serving, cluster)
            allocations[key] = allocations.get(key, 0.0) + take
            remaining[(serving, cluster)] -= take
            cost += take * price
            objective += take * utility
            need -= take
        if need > 1e-9:
            unserved += need

    return GeoAllocationPlan(
        allocations=allocations,
        objective=objective,
        cost_per_hour=cost,
        feasible=unserved <= 1e-9,
        unserved_vms=unserved,
    )


def lp_geo_allocation(problem: GeoVMProblem) -> GeoAllocationPlan:
    """Exact LP optimum of the multi-region problem via scipy HiGHS."""
    viewers = sorted(problem.demands)
    cells: List[Tuple[str, ChunkKey]] = [
        (viewer, chunk)
        for viewer in viewers
        for chunk in sorted(problem.demands[viewer], key=repr)
    ]
    supplies: List[Tuple[str, str, float, float, int]] = []  # + capacity idx
    capacity_keys: List[Tuple[str, str]] = []
    for name in sorted(problem.topology.regions):
        region = problem.topology.regions[name]
        for cluster in region.clusters:
            capacity_keys.append((name, cluster.name))
    cap_index = {key: i for i, key in enumerate(capacity_keys)}
    caps = np.array(
        [
            float(problem.topology.regions[rg].clusters[
                [c.name for c in problem.topology.regions[rg].clusters].index(cl)
            ].max_vms)
            for rg, cl in capacity_keys
        ]
    )

    # Variables: one per (cell, supply) combination.
    var_meta: List[Tuple[int, str, str, float, float]] = []
    for cell_idx, (viewer, _chunk) in enumerate(cells):
        for serving, cluster in capacity_keys:
            region = problem.topology.regions[serving]
            spec = next(c for c in region.clusters if c.name == cluster)
            utility = problem.effective_utility(serving, viewer, spec.utility)
            price = problem.effective_price(serving, viewer, spec.price_per_hour)
            var_meta.append((cell_idx, serving, cluster, utility, price))

    n_vars = len(var_meta)
    if n_vars == 0:
        return GeoAllocationPlan({}, 0.0, 0.0, True)
    c_obj = np.array([-(meta[3]) for meta in var_meta])

    # Demand equalities.
    needs = np.array([problem.vm_need(v, ch) for v, ch in cells])
    a_eq = np.zeros((len(cells), n_vars))
    for j, meta in enumerate(var_meta):
        a_eq[meta[0], j] = 1.0

    # Capacity + budget inequalities.
    a_ub = np.zeros((len(capacity_keys) + 1, n_vars))
    b_ub = np.zeros(len(capacity_keys) + 1)
    for j, meta in enumerate(var_meta):
        a_ub[cap_index[(meta[1], meta[2])], j] = 1.0
        a_ub[-1, j] = meta[4]
    b_ub[: len(capacity_keys)] = caps
    b_ub[-1] = problem.budget_per_hour

    res = linprog(
        c_obj,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=needs,
        bounds=[(0.0, None)] * n_vars,
        method="highs",
    )
    if not res.success:
        return GeoAllocationPlan(
            {}, 0.0, 0.0, False, unserved_vms=float(needs.sum())
        )

    allocations: Dict[CellKey, float] = {}
    cost = 0.0
    objective = 0.0
    for j, meta in enumerate(var_meta):
        z = float(res.x[j])
        if z <= 1e-9:
            continue
        cell_idx, serving, cluster, utility, price = meta
        viewer, chunk = cells[cell_idx]
        allocations[(viewer, chunk, serving, cluster)] = z
        cost += z * price
        objective += z * utility
    return GeoAllocationPlan(
        allocations=allocations,
        objective=objective,
        cost_per_hour=cost,
        feasible=True,
    )
