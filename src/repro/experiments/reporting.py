"""Plain-text reporting helpers shared by the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

import numpy as np

__all__ = ["format_table", "downsample", "series_summary", "mbps"]


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: Optional[str] = None,
    float_fmt: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float) or isinstance(value, np.floating):
                cells.append(float_fmt.format(float(value)))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in rendered)
    return "\n".join(lines)


def downsample(values: Sequence[float], max_points: int = 12) -> List[float]:
    """Evenly subsample a series for compact printing."""
    if max_points <= 0:
        raise ValueError("max_points must be > 0")
    arr = list(values)
    if len(arr) <= max_points:
        return arr
    idx = np.linspace(0, len(arr) - 1, max_points).round().astype(int)
    return [arr[i] for i in idx]


def series_summary(values: Sequence[float]) -> str:
    """min/mean/max one-liner."""
    if not len(values):
        return "(empty)"
    arr = np.asarray(values, dtype=float)
    return f"min={arr.min():.3f} mean={arr.mean():.3f} max={arr.max():.3f}"


def mbps(bytes_per_second: float) -> float:
    """Convert bytes/second to megabits/second (the paper's unit)."""
    return bytes_per_second * 8.0 / 1e6
