"""The closed-loop experiment runner (trace -> VoD -> controller -> cloud).

This is the simulated counterpart of the paper's testbed deployment: the
workload trace drives the VoD simulator; the tracker aggregates interval
statistics; the provisioning controller analyses them, optimizes rentals
and negotiates with the cloud facility; the granted capacities feed back
into the simulator for the next interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cloud.billing import CostReport
from repro.cloud.broker import Broker
from repro.cloud.scheduler import CloudFacility
from repro.core.demand import DemandEstimator
from repro.core.predictor import ArrivalRatePredictor
from repro.core.provisioner import ProvisioningController, ProvisioningDecision
from repro.experiments.config import ScenarioConfig
from repro.vod.simulator import SimulationResult, VoDSimulator, VoDSystemConfig
from repro.vod.tracker import TrackingServer
from repro.workload.trace import Trace, generate_trace

__all__ = ["ClosedLoopResult", "run_closed_loop"]


@dataclass
class ClosedLoopResult:
    """Everything measured over one closed-loop run."""

    scenario: ScenarioConfig
    simulation: SimulationResult
    decisions: List[ProvisioningDecision]
    cost_report: CostReport
    interval_times: List[float] = field(default_factory=list)
    provisioned_series: List[float] = field(default_factory=list)  # bytes/s
    used_series: List[float] = field(default_factory=list)  # bytes/s
    peer_series: List[float] = field(default_factory=list)  # bytes/s
    population_series: List[int] = field(default_factory=list)
    channel_population_series: List[Dict[int, int]] = field(default_factory=list)
    vm_cost_series: List[float] = field(default_factory=list)  # $/hour

    @property
    def average_quality(self) -> float:
        return self.simulation.quality.average_quality

    @property
    def mean_vm_cost_per_hour(self) -> float:
        return self.cost_report.hourly_vm_cost

    def provisioned_mbps(self) -> np.ndarray:
        return np.asarray(self.provisioned_series) * 8.0 / 1e6

    def used_mbps(self) -> np.ndarray:
        return np.asarray(self.used_series) * 8.0 / 1e6


def run_closed_loop(
    scenario: ScenarioConfig,
    *,
    trace: Optional[Trace] = None,
    predictor: Optional[ArrivalRatePredictor] = None,
    min_capacity_per_chunk: Optional[float] = None,
) -> ClosedLoopResult:
    """Run one scenario end to end.

    Parameters
    ----------
    trace:
        Optional pre-generated trace (defaults to the scenario's).
    predictor:
        Optional predictor override (the predictor ablation uses this);
        defaults to the paper's last-interval rule.
    min_capacity_per_chunk:
        Capacity floor override; defaults to one streaming rate per chunk,
        which keeps a just-woken channel from starving its first viewers.
    """
    constants = scenario.constants
    channels = scenario.channels()
    if trace is None:
        trace = generate_trace(scenario.trace_config())

    interval = constants.interval_seconds
    tracker = TrackingServer(
        num_channels=scenario.num_channels,
        chunks_per_channel=[ch.num_chunks for ch in channels],
        interval_seconds=interval,
    )
    sim_config = VoDSystemConfig(
        mode=scenario.mode,
        dt=scenario.dt,
        user_rate_cap=constants.vm_bandwidth,
        seed=scenario.seed,
    )
    simulator = VoDSimulator(channels, trace, sim_config, tracker=tracker)

    facility = CloudFacility(
        scenario.vm_clusters(),
        scenario.nfs_clusters(),
        clock=lambda: simulator.now,
    )
    broker = Broker(facility)

    behaviour = scenario.behaviour_matrix()
    estimator = DemandEstimator(
        scenario.capacity_model(),
        mode=scenario.mode,
        prior_matrices={ch.channel_id: behaviour for ch in channels},
    )
    floor = (
        min_capacity_per_chunk
        if min_capacity_per_chunk is not None
        else constants.streaming_rate
    )
    controller = ProvisioningController(
        estimator,
        tracker,
        broker,
        scenario.sla_terms(),
        predictor=predictor,
        min_capacity_per_chunk=floor,
    )

    # ------------------------------------------------------------------
    # Bootstrap deployment from the expected (empirical) channel rates.
    # ------------------------------------------------------------------
    expected_rates = {
        ch.channel_id: float(rate)
        for ch, rate in zip(channels, scenario.trace_config().channel_rates())
    }
    upload_mean = scenario.upload_distribution().mean()
    decision = controller.bootstrap(0.0, expected_rates, peer_upload=upload_mean)
    for channel_id, capacity in decision.per_channel_capacity.items():
        simulator.set_cloud_capacity(channel_id, capacity)

    # ------------------------------------------------------------------
    # Periodic provisioning loop.
    # ------------------------------------------------------------------
    interval_times: List[float] = []
    used_series: List[float] = []
    peer_series: List[float] = []
    provisioned_series: List[float] = []
    population_series: List[int] = []
    channel_population_series: List[Dict[int, int]] = []
    vm_cost_series: List[float] = []

    num_intervals = int(np.ceil(scenario.horizon_seconds / interval))
    samples_before = 0
    log = simulator.bandwidth
    for k in range(1, num_intervals + 1):
        t_end = min(k * interval, scenario.horizon_seconds)
        simulator.advance_to(t_end)

        # Interval-aggregate bandwidth for the Fig 4 series, straight off
        # the array-backed log (no per-sample object traffic).
        window = slice(samples_before, len(log))
        empty = window.start == window.stop
        samples_before = len(log)
        interval_times.append(t_end)
        used_series.append(
            0.0 if empty else float(np.mean(log.cloud_used[window]))
        )
        peer_series.append(
            0.0 if empty else float(np.mean(log.peer_used[window]))
        )
        provisioned_series.append(
            0.0 if empty else float(np.mean(log.provisioned[window]))
        )
        population_series.append(simulator.population())
        channel_population_series.append(simulator.channel_populations())

        if t_end >= scenario.horizon_seconds:
            break
        peer_upload = (
            simulator.mean_peer_upload() if scenario.mode == "p2p" else None
        )
        decision = controller.run_interval(t_end, peer_upload=peer_upload)
        for channel_id, capacity in decision.per_channel_capacity.items():
            simulator.set_cloud_capacity(channel_id, capacity)
        vm_cost_series.append(decision.hourly_vm_cost)

    return ClosedLoopResult(
        scenario=scenario,
        simulation=simulator.result(),
        decisions=controller.decisions,
        cost_report=facility.billing.report(simulator.now),
        interval_times=interval_times,
        provisioned_series=provisioned_series,
        used_series=used_series,
        peer_series=peer_series,
        population_series=population_series,
        channel_population_series=channel_population_series,
        vm_cost_series=vm_cost_series,
    )
