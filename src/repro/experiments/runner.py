"""The closed-loop experiment engine (trace -> VoD -> controller -> cloud).

This is the simulated counterpart of the paper's testbed deployment: the
workload trace drives the VoD simulator; the tracker aggregates interval
statistics; the provisioning controller analyses them, optimizes rentals
and negotiates with the cloud facility; the granted capacities feed back
into the simulator for the next interval.

:class:`ClosedLoopEngine` exposes the loop one provisioning interval at
a time (the :mod:`repro.api` streaming/checkpoint protocol, mirroring
:class:`repro.sim.shard.ShardedSimulator`); ``repro.api.open_run`` is
the one-shot entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

from repro.cloud.billing import CostReport
from repro.cloud.broker import Broker
from repro.cloud.scheduler import CloudFacility
from repro.core.controller import controller_class
from repro.core.demand import DemandEstimator
from repro.core.predictor import ArrivalRatePredictor
from repro.core.provisioner import ProvisioningDecision
from repro.experiments.config import ScenarioConfig
from repro.vod.simulator import SimulationResult, VoDSimulator, VoDSystemConfig
from repro.vod.tracker import TrackingServer
from repro.workload.trace import Trace, generate_trace

__all__ = ["ClosedLoopResult", "ClosedLoopEngine"]


@dataclass
class ClosedLoopResult:
    """Everything measured over one closed-loop run."""

    scenario: ScenarioConfig
    simulation: SimulationResult
    decisions: List[ProvisioningDecision]
    cost_report: CostReport
    interval_times: List[float] = field(default_factory=list)
    provisioned_series: List[float] = field(default_factory=list)  # bytes/s
    used_series: List[float] = field(default_factory=list)  # bytes/s
    peer_series: List[float] = field(default_factory=list)  # bytes/s
    population_series: List[int] = field(default_factory=list)
    channel_population_series: List[Dict[int, int]] = field(default_factory=list)
    vm_cost_series: List[float] = field(default_factory=list)  # $/hour

    @property
    def average_quality(self) -> float:
        return self.simulation.quality.average_quality

    @property
    def mean_vm_cost_per_hour(self) -> float:
        return self.cost_report.hourly_vm_cost

    def provisioned_mbps(self) -> np.ndarray:
        return np.asarray(self.provisioned_series) * 8.0 / 1e6

    def used_mbps(self) -> np.ndarray:
        return np.asarray(self.used_series) * 8.0 / 1e6


class _SimulatorClock:
    """Picklable clock adapter: the facility reads the simulator's time.

    A named class instead of ``lambda: simulator.now`` so the whole
    control-plane graph pickles for checkpointing.
    """

    __slots__ = ("simulator",)

    def __init__(self, simulator: VoDSimulator) -> None:
        self.simulator = simulator

    def __call__(self) -> float:
        return self.simulator.now


class ClosedLoopEngine:
    """One scenario's closed loop, advanced one interval at a time.

    Construction is lazy: the trace, simulator and control plane are
    built on the first :meth:`advance_epoch` (or :meth:`start`), so a
    checkpoint resume can adopt restored state without paying for a
    trace rebuild.  A fully drained engine's :meth:`result` is
    byte-identical to the historical monolithic-loop return.

    Parameters
    ----------
    scenario:
        The scenario preset to run.
    trace:
        Optional pre-generated trace (defaults to the scenario's).
    predictor:
        Optional predictor override (the predictor ablation uses this);
        defaults to the paper's last-interval rule.
    min_capacity_per_chunk:
        Capacity floor override; defaults to one streaming rate per
        chunk, which keeps a just-woken channel from starving its first
        viewers.
    controller:
        Registered provisioning-policy key
        (:func:`repro.core.controller.controller_names`); ``None`` means
        the paper controller.
    """

    kind = "closed-loop"

    def __init__(
        self,
        scenario: ScenarioConfig,
        *,
        trace: Optional[Trace] = None,
        predictor: Optional[ArrivalRatePredictor] = None,
        min_capacity_per_chunk: Optional[float] = None,
        controller: Optional[str] = None,
    ) -> None:
        self.scenario = scenario
        self._trace = trace
        self._predictor = predictor
        self._min_capacity_per_chunk = min_capacity_per_chunk
        self._controller_key = controller or "paper"
        self._built = False
        self._done = False
        self._epoch = 0
        # Streaming cursors (not part of the historical result).
        self._arrivals_prev = 0
        self._departures_prev = 0
        self._quality_cursor = 0

    # ------------------------------------------------------------------
    @property
    def epoch(self) -> int:
        """Completed provisioning intervals so far."""
        return self._epoch

    @property
    def epochs_total(self) -> int:
        scenario = self.scenario
        return int(np.ceil(
            scenario.horizon_seconds / scenario.constants.interval_seconds
        ))

    @property
    def done(self) -> bool:
        return self._done

    # ------------------------------------------------------------------
    def _build(self) -> None:
        if self._built:
            return
        self._built = True
        scenario = self.scenario
        constants = scenario.constants
        channels = scenario.channels()
        trace = self._trace
        if trace is None:
            trace = generate_trace(scenario.trace_config())

        interval = constants.interval_seconds
        self.tracker = TrackingServer(
            num_channels=scenario.num_channels,
            chunks_per_channel=[ch.num_chunks for ch in channels],
            interval_seconds=interval,
        )
        sim_config = VoDSystemConfig(
            mode=scenario.mode,
            dt=scenario.dt,
            user_rate_cap=constants.vm_bandwidth,
            seed=scenario.seed,
        )
        self.simulator = VoDSimulator(
            channels, trace, sim_config, tracker=self.tracker
        )
        self.facility = CloudFacility(
            scenario.vm_clusters(),
            scenario.nfs_clusters(),
            clock=_SimulatorClock(self.simulator),
        )
        self.broker = Broker(self.facility)

        behaviour = scenario.behaviour_matrix()
        self._estimator = DemandEstimator(
            scenario.capacity_model(),
            mode=scenario.mode,
            prior_matrices={ch.channel_id: behaviour for ch in channels},
        )
        floor = (
            self._min_capacity_per_chunk
            if self._min_capacity_per_chunk is not None
            else constants.streaming_rate
        )
        controller_cls = controller_class(self._controller_key)
        self.controller = controller_cls(
            self._estimator,
            self.tracker,
            self.broker,
            scenario.sla_terms(),
            predictor=self._predictor,
            min_capacity_per_chunk=floor,
        )

        self.interval_times: List[float] = []
        self.used_series: List[float] = []
        self.peer_series: List[float] = []
        self.provisioned_series: List[float] = []
        self.population_series: List[int] = []
        self.channel_population_series: List[Dict[int, int]] = []
        self.vm_cost_series: List[float] = []
        self._samples_before = 0

    def start(self) -> None:
        """Build the system and apply the bootstrap deployment
        (idempotent; resumes skip the bootstrap)."""
        if self._built:
            return
        self._build()
        scenario = self.scenario
        expected_rates = {
            ch.channel_id: float(rate)
            for ch, rate in zip(
                self.simulator.channels,
                scenario.trace_config().channel_rates(),
            )
        }
        upload_mean = scenario.upload_distribution().mean()
        decision = self.controller.bootstrap(
            0.0, expected_rates, peer_upload=upload_mean
        )
        for channel_id, capacity in decision.per_channel_capacity.items():
            self.simulator.set_cloud_capacity(channel_id, capacity)

    # ------------------------------------------------------------------
    def advance_epoch(self) -> Optional[Dict[str, Any]]:
        """Advance one provisioning interval; ``None`` once finished.

        Returns the interval's streaming payload (the flat summary
        :mod:`repro.api` wraps into an ``EpochSnapshot``).
        """
        self.start()
        if self._done:
            return None
        scenario = self.scenario
        simulator = self.simulator
        interval = scenario.constants.interval_seconds
        log = simulator.bandwidth

        k = self._epoch + 1
        t_end = min(k * interval, scenario.horizon_seconds)
        simulator.advance_to(t_end)

        # Interval-aggregate bandwidth for the Fig 4 series, straight off
        # the array-backed log (no per-sample object traffic).
        window = slice(self._samples_before, len(log))
        empty = window.start == window.stop
        self._samples_before = len(log)
        self.interval_times.append(t_end)
        self.used_series.append(
            0.0 if empty else float(np.mean(log.cloud_used[window]))
        )
        self.peer_series.append(
            0.0 if empty else float(np.mean(log.peer_used[window]))
        )
        self.provisioned_series.append(
            0.0 if empty else float(np.mean(log.provisioned[window]))
        )
        self.population_series.append(simulator.population())
        self.channel_population_series.append(simulator.channel_populations())
        self._epoch = k

        decision = None
        if t_end >= scenario.horizon_seconds or k >= self.epochs_total:
            self._done = True
        else:
            peer_upload = (
                simulator.mean_peer_upload()
                if scenario.mode == "p2p" else None
            )
            decision = self.controller.run_interval(
                t_end, peer_upload=peer_upload
            )
            for channel_id, capacity in decision.per_channel_capacity.items():
                simulator.set_cloud_capacity(channel_id, capacity)
            self.vm_cost_series.append(decision.hourly_vm_cost)
        return self._epoch_payload(k, t_end, window, empty, decision)

    def _epoch_payload(
        self, k: int, t_end: float, window: slice, empty: bool, decision,
    ) -> Dict[str, Any]:
        simulator = self.simulator
        log = simulator.bandwidth

        def mean_mbps(series: np.ndarray) -> float:
            return 0.0 if empty else float(np.mean(series[window])) * 8.0 / 1e6

        samples = simulator.quality.samples[self._quality_cursor:]
        self._quality_cursor = len(simulator.quality.samples)
        ratios = [
            1.0 if s.total_users == 0 else s.total_smooth / s.total_users
            for s in samples
        ]
        arrivals = simulator.arrivals - self._arrivals_prev
        departures = simulator.departures - self._departures_prev
        self._arrivals_prev = simulator.arrivals
        self._departures_prev = simulator.departures
        population = self.population_series[-1]
        return {
            "epoch": k,
            "t_end": float(t_end),
            "arrivals": int(arrivals),
            "departures": int(departures),
            "population": int(population),
            # The fluid loop only samples population at interval
            # boundaries, so the boundary value doubles as the peak.
            "peak_population": int(population),
            "used_mbps": mean_mbps(log.cloud_used),
            "peer_mbps": mean_mbps(log.peer_used),
            "provisioned_mbps": mean_mbps(log.provisioned),
            "shortfall_mbps": mean_mbps(log.shortfall),
            "quality": float(np.mean(ratios)) if ratios else 1.0,
            "vm_cost_per_hour": (
                float(decision.hourly_vm_cost) if decision is not None else 0.0
            ),
            "decision": decision,
        }

    # ------------------------------------------------------------------
    def result(self) -> ClosedLoopResult:
        """The monolithic result of the (fully drained) run."""
        if not self._done:
            raise RuntimeError(
                "the run is not finished; drain advance_epoch() (or use "
                "run()) before asking for the result"
            )
        simulator = self.simulator
        return ClosedLoopResult(
            scenario=self.scenario,
            simulation=simulator.result(),
            decisions=self.controller.decisions,
            cost_report=self.facility.billing.report(simulator.now),
            interval_times=self.interval_times,
            provisioned_series=self.provisioned_series,
            used_series=self.used_series,
            peer_series=self.peer_series,
            population_series=self.population_series,
            channel_population_series=self.channel_population_series,
            vm_cost_series=self.vm_cost_series,
        )

    def run(self) -> ClosedLoopResult:
        """Execute the whole horizon and return the monolithic result."""
        while self.advance_epoch() is not None:
            pass
        return self.result()

    def close(self) -> None:
        """Nothing to tear down (kept for engine-protocol symmetry)."""

    def suspend(self) -> None:
        """No worker processes to park (engine-protocol symmetry)."""

    def __enter__(self) -> "ClosedLoopEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Checkpoint support (repro.api's checkpoint()/resume())
    # ------------------------------------------------------------------
    def snapshot_state(self) -> Dict[str, Any]:
        """One picklable object graph capturing the whole run."""
        self.start()
        return {
            "epoch": self._epoch,
            "done": self._done,
            "samples_before": self._samples_before,
            "arrivals_prev": self._arrivals_prev,
            "departures_prev": self._departures_prev,
            "quality_cursor": self._quality_cursor,
            "simulator": self.simulator,
            "tracker": self.tracker,
            "facility": self.facility,
            "broker": self.broker,
            "estimator": self._estimator,
            "controller": self.controller,
            "interval_times": self.interval_times,
            "used_series": self.used_series,
            "peer_series": self.peer_series,
            "provisioned_series": self.provisioned_series,
            "population_series": self.population_series,
            "channel_population_series": self.channel_population_series,
            "vm_cost_series": self.vm_cost_series,
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Adopt a :meth:`snapshot_state` graph (before any epoch ran)."""
        if self._built:
            raise RuntimeError("can only restore into a fresh engine")
        self._built = True
        self._epoch = state["epoch"]
        self._done = state["done"]
        self._samples_before = state["samples_before"]
        self._arrivals_prev = state["arrivals_prev"]
        self._departures_prev = state["departures_prev"]
        self._quality_cursor = state["quality_cursor"]
        self.simulator = state["simulator"]
        self.tracker = state["tracker"]
        self.facility = state["facility"]
        self.broker = state["broker"]
        self._estimator = state["estimator"]
        self.controller = state["controller"]
        self.interval_times = state["interval_times"]
        self.used_series = state["used_series"]
        self.peer_series = state["peer_series"]
        self.provisioned_series = state["provisioned_series"]
        self.population_series = state["population_series"]
        self.channel_population_series = state["channel_population_series"]
        self.vm_cost_series = state["vm_cost_series"]
