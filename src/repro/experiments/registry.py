"""Scenario registry: every experiment the repo can run, by name.

Each paper figure, ablation and extension is registered here as a
:class:`ScenarioSpec` — a factory that builds a
:class:`~repro.experiments.config.ScenarioConfig` (or runs an analytic
computation directly) plus a default parameter grid.  The registry is the
single execution path shared by

* the sweep orchestrator (:mod:`repro.experiments.sweep`, CLI
  ``repro sweep <name>``),
* the CLI scenario browser (``repro scenarios``), and
* the figure-reproduction benches under ``benchmarks/`` (their fixtures
  build configs through :func:`get`).

A *cell* is one (scenario, grid-point, seed) triple; ``run_cell`` executes
it and returns a flat JSON-serializable metrics dict, which the sweep
layer hashes and caches.  Registering a new workload means writing one
``register(ScenarioSpec(...))`` call — every later PR adds scenarios here
rather than new hand-rolled scripts.
"""

from __future__ import annotations

import difflib
import itertools
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.cluster import VirtualClusterSpec
from repro.core.controller import controller_names
from repro.core.predictor import (
    ArrivalRatePredictor,
    EWMAPredictor,
    LastIntervalPredictor,
    MovingAveragePredictor,
    SeasonalPredictor,
)
from repro.experiments.config import (
    PAPER,
    ScenarioConfig,
    paper_capacity_model,
    paper_scenario,
    small_scenario,
)
from repro.experiments.reporting import mbps
from repro.experiments.runner import ClosedLoopResult
from repro.geo.allocation import GeoVMProblem, greedy_geo_allocation, lp_geo_allocation
from repro.geo.region import GeoTopology, RegionSpec
from repro.queueing.capacity import CapacityModel, solve_channel_capacity
from repro.sim.rng import make_rng
from repro.queueing.transitions import mixture_matrix, sequential_matrix, uniform_jump_matrix
from repro.vod.channel import default_behaviour_matrix
# Only CATALOG_VARIANTS may be imported from repro.workload.catalog at
# module level (it is defined before that module's own experiment-layer
# imports); everything else from the catalog/shard layer is imported
# lazily inside _run_catalog_cell to keep the import graph acyclic.
from repro.workload.catalog import CATALOG_VARIANTS
from repro.workload.diurnal import DiurnalPattern

__all__ = [
    "ScenarioSpec",
    "UnknownScenarioError",
    "register",
    "get",
    "names",
    "specs",
    "make_predictor",
    "summarize_closed_loop",
    "closed_loop_config",
    "heuristic_demands",
    "chunk_size_behaviour",
    "chunk_count_for",
    "geo_topology",
    "geo_demand_at",
    "PREDICTORS",
    "GEO_REGION_OFFSETS",
]


class UnknownScenarioError(KeyError):
    """Raised for a scenario name that is not registered."""

    def __init__(self, name: str, known: Sequence[str]):
        suggestions = difflib.get_close_matches(name, known, n=3, cutoff=0.4)
        hint = f"; did you mean {', '.join(suggestions)}?" if suggestions else ""
        super().__init__(
            f"unknown scenario {name!r}{hint} "
            f"(run `repro scenarios` for the full list)"
        )
        self.name = name
        self.suggestions = suggestions


@dataclass(frozen=True)
class ScenarioSpec:
    """One named experiment: how to build it, run it, and sweep it.

    Parameters
    ----------
    name:
        Registry key (``repro sweep <name>``).
    title:
        One-line human description.
    paper_ref:
        The paper figure/section/claim this reproduces.
    grid:
        Default sweep grid: parameter name -> tuple of candidate values.
        Values must be JSON-serializable (the sweep hashes them).
    defaults:
        Non-grid parameters with their default values; CLI ``--set`` and
        test overrides replace them per sweep.
    build:
        ``build(seed=..., **params) -> ScenarioConfig`` for closed-loop
        scenarios; ``None`` for analytic scenarios that only define
        ``run``.
    run:
        ``run(seed=..., **params) -> dict`` returning flat metrics.
        When ``None``, the default is the closed-loop path:
        ``summarize_closed_loop(open_run(build(...)).result())``.
    expected_seconds:
        Rough wall-clock per cell at the default (CI-sized) scale — shown
        by ``repro scenarios`` and documented in docs/scenarios.md.
    tags:
        Free-form labels (``figure``, ``ablation``, ``extension``).
    """

    name: str
    title: str
    paper_ref: str
    grid: Mapping[str, Tuple] = field(default_factory=dict)
    defaults: Mapping[str, object] = field(default_factory=dict)
    build: Optional[Callable[..., ScenarioConfig]] = None
    run: Optional[Callable[..., Dict[str, float]]] = None
    expected_seconds: float = 1.0
    tags: Tuple[str, ...] = ()

    def full_params(self, params: Optional[Mapping] = None) -> Dict[str, object]:
        """Defaults + first grid value for every parameter not given."""
        merged: Dict[str, object] = {k: v[0] for k, v in self.grid.items()}
        merged.update(self.defaults)
        merged.update(params or {})
        return merged

    def config(self, seed: int = 2011, **params) -> ScenarioConfig:
        """Build the scenario's :class:`ScenarioConfig` (closed-loop only)."""
        if self.build is None:
            raise ValueError(
                f"scenario {self.name!r} is analytic and has no ScenarioConfig"
            )
        return self.build(seed=seed, **self.full_params(params))

    def run_cell(self, params: Optional[Mapping] = None, seed: int = 2011
                 ) -> Dict[str, float]:
        """Execute one cell and return its flat metrics dict.

        Closed-loop cells execute through :mod:`repro.api` (imported
        lazily — the api sits above the experiment layer), whose
        monolithic ``result()`` is byte-identical to the historical
        runner's.
        """
        full = self.full_params(params)
        if self.run is not None:
            return self.run(seed=seed, **full)
        from repro.api import open_run

        with open_run(self.build(seed=seed, **full)) as run:
            return summarize_closed_loop(run.result())

    def grid_points(
        self, overrides: Optional[Mapping[str, object]] = None
    ) -> List[Dict[str, object]]:
        """Cartesian product of the grid, with overrides applied.

        An override whose value is a list/tuple replaces that axis of the
        grid; a scalar pins the parameter to one value (also allowed for
        non-grid ``defaults`` parameters, which adds them to every point).
        """
        axes: Dict[str, Tuple] = {k: tuple(v) for k, v in self.grid.items()}
        pinned: Dict[str, object] = dict(self.defaults)
        for key, value in (overrides or {}).items():
            if key not in axes and key not in pinned:
                known = sorted(set(axes) | set(pinned))
                raise KeyError(
                    f"scenario {self.name!r} has no parameter {key!r} "
                    f"(knobs: {', '.join(known) or 'none'})"
                )
            if isinstance(value, (list, tuple)):
                axes[key] = tuple(value)
                pinned.pop(key, None)
            elif key in axes:
                axes[key] = (value,)
            else:
                pinned[key] = value
        keys = sorted(axes)
        points = []
        for combo in itertools.product(*(axes[k] for k in keys)):
            point = dict(pinned)
            point.update(dict(zip(keys, combo)))
            points.append(point)
        return points


_REGISTRY: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a scenario to the registry (name must be unique)."""
    if spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get(name: str) -> ScenarioSpec:
    """Look a scenario up by name, with did-you-mean on failure."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownScenarioError(name, list(_REGISTRY)) from None


def names() -> List[str]:
    return sorted(_REGISTRY)


def specs() -> List[ScenarioSpec]:
    return [_REGISTRY[n] for n in sorted(_REGISTRY)]


# ----------------------------------------------------------------------
# Shared building blocks.
# ----------------------------------------------------------------------

PREDICTORS: Dict[str, Callable[[], ArrivalRatePredictor]] = {
    "last-interval": LastIntervalPredictor,
    "moving-average": lambda: MovingAveragePredictor(window=3),
    "ewma": lambda: EWMAPredictor(beta=0.5),
    "seasonal": lambda: SeasonalPredictor(period=24, blend=0.5),
}


def make_predictor(key: str) -> ArrivalRatePredictor:
    """Instantiate a predictor by its registry key (ablation knob)."""
    try:
        factory = PREDICTORS[key]
    except KeyError:
        raise KeyError(
            f"unknown predictor {key!r} (choices: {', '.join(PREDICTORS)})"
        ) from None
    return factory()


def summarize_closed_loop(result: ClosedLoopResult) -> Dict[str, float]:
    """Flatten a closed-loop run into the sweep's JSON metrics schema.

    Every value is a plain int/float so artifacts are directly
    JSON-serializable and comparable across runs (see docs/scenarios.md
    for the field glossary).
    """
    sim = result.simulation
    reserved = np.asarray(result.provisioned_mbps(), dtype=float)
    used = np.asarray(result.used_mbps(), dtype=float)
    peer = np.asarray(result.peer_series, dtype=float) * 8.0 / 1e6
    shortfalls = sim.bandwidth.shortfall
    coverage = float(np.mean(reserved >= used)) if reserved.size else 0.0
    return {
        "arrivals": int(sim.arrivals),
        "final_population": int(sim.final_population),
        "average_quality": float(result.average_quality),
        "mean_reserved_mbps": float(reserved.mean()) if reserved.size else 0.0,
        "mean_used_mbps": float(used.mean()) if used.size else 0.0,
        "mean_peer_mbps": float(peer.mean()) if peer.size else 0.0,
        "coverage_fraction": coverage,
        "mean_shortfall_mbps": (
            float(shortfalls.mean()) * 8.0 / 1e6 if shortfalls.size else 0.0
        ),
        "vm_cost_per_hour": float(result.mean_vm_cost_per_hour),
        "storage_cost_per_day": float(
            result.cost_report.hourly_storage_cost * 24.0
        ),
        "intervals": int(len(result.interval_times)),
        # Run-shape metrics (sweep artifact schema 2): how much work the
        # cell did and how bursty it was.
        "steps": int(sim.steps),
        "peak_step_events": int(sim.peak_step_events),
        "peak_population": (
            int(max(result.population_series))
            if result.population_series else 0
        ),
    }


def closed_loop_config(
    *,
    seed: int = 2011,
    mode: str = "p2p",
    horizon_hours: float = 12.0,
    scale: str = "small",
    upload_ratio: Optional[float] = None,
    num_channels: Optional[int] = None,
    chunks_per_channel: Optional[int] = None,
    target_population: Optional[int] = None,
) -> ScenarioConfig:
    """The one closed-loop ScenarioConfig factory behind every figure.

    ``upload_ratio`` is the Fig 11 knob: mean peer upload expressed as a
    multiple of the streaming rate.  ``scale`` selects the CI-sized preset
    or the paper-scale one (channels/population/clusters per Section
    VI-A); the size knobs default to the selected preset's values
    (``None``) and override either preset when set, so a sweep's recorded
    parameters always reflect the run.
    """
    upload_mean = (
        None if upload_ratio is None
        else float(upload_ratio) * PAPER.streaming_rate
    )
    if scale == "paper":
        config = paper_scenario(
            mode,
            horizon_hours=float(horizon_hours),
            seed=int(seed),
            peer_upload_mean=upload_mean,
        )
    elif scale == "small":
        config = small_scenario(
            mode,
            horizon_hours=float(horizon_hours),
            seed=int(seed),
            peer_upload_mean=upload_mean,
        )
    else:
        raise ValueError(f"unknown scale {scale!r} (small or paper)")
    sizes: Dict[str, int] = {}
    if num_channels is not None:
        sizes["num_channels"] = int(num_channels)
    if chunks_per_channel is not None:
        sizes["chunks_per_channel"] = int(chunks_per_channel)
    if target_population is not None:
        sizes["target_population"] = int(target_population)
    return replace(config, **sizes) if sizes else config


def _run_with_predictor(*, seed: int, predictor: str = "last-interval",
                        **params) -> Dict[str, float]:
    """Closed-loop run with the predictor ablation knob applied."""
    from repro.api import EngineConfig, open_run

    config = closed_loop_config(seed=seed, **params)
    with open_run(EngineConfig(spec=config, predictor=predictor)) as run:
        return summarize_closed_loop(run.result())


# ----------------------------------------------------------------------
# Chunk-size ablation (paper footnote 3) — analytic, no simulation.
# ----------------------------------------------------------------------

_VIDEO_MINUTES = 100.0
_JUMP_EVERY_MINUTES = 15.0  # paper: exponential seeks, 15-minute mean


def chunk_count_for(t0_minutes: float) -> int:
    """Chunks in the ablation's 100-minute video at one chunk duration."""
    return max(1, int(round(_VIDEO_MINUTES / float(t0_minutes))))


def chunk_size_behaviour(num_chunks: int) -> np.ndarray:
    """Viewing behaviour with the *same physical* VCR rate regardless of
    chunking: jump probability per chunk = T0 / 15 min (capped)."""
    t0_minutes = _VIDEO_MINUTES / num_chunks
    jump = min(0.45, t0_minutes / _JUMP_EVERY_MINUTES)
    cont = min(0.9, 0.95 - jump)
    seq = sequential_matrix(num_chunks, continue_prob=min(0.95, cont + jump))
    vcr = uniform_jump_matrix(num_chunks, continue_prob=cont, jump_prob=jump)
    return mixture_matrix([seq, vcr], [0.35, 0.65])


def _run_chunk_size(*, seed: int, t0_minutes: float = 5.0,
                    arrival_rate: float = 0.2) -> Dict[str, float]:
    """Capacity analysis for one chunk duration (seed-free, analytic)."""
    del seed  # analytic: same answer for every seed
    t0 = float(t0_minutes) * 60.0
    num_chunks = chunk_count_for(t0_minutes)
    model = CapacityModel(
        streaming_rate=PAPER.streaming_rate,
        chunk_duration=t0,
        vm_bandwidth=PAPER.vm_bandwidth,
    )
    capacity = solve_channel_capacity(
        model, chunk_size_behaviour(num_chunks), float(arrival_rate), alpha=0.8
    )
    return {
        "num_chunks": int(num_chunks),
        "provisioned_mbps": mbps(float(np.sum(capacity.cloud_demand))),
        "servers": int(np.sum(capacity.servers)),
        "expected_population": float(capacity.expected_population),
        "chunk_crossings_per_hour": 3600.0 / t0,
        "wasted_mb_per_jump": PAPER.streaming_rate * t0 / 2.0 / 1e6,
    }


# ----------------------------------------------------------------------
# Micro-benchmark scenarios: the optimizer, queueing and cloud-substrate
# kernels that used to live only in benchmarks/ scripts.  Registering
# them makes `repro sweep micro-*` the canonical execution path; the
# bench scripts build their tables through these cells.
# ----------------------------------------------------------------------


def heuristic_demands(
    num_chunks: int, seed: int, scale: float = 2.0
) -> Dict[Tuple[int, int], float]:
    """Random per-chunk bandwidth demands for the heuristic micro-bench.

    The draws come from a named, seed-derived stream (the repo-wide
    determinism contract), so the micro-bench cells hash and replay
    like every other experiment.
    """
    rng = make_rng(seed, "experiments", "heuristic-demands")
    rate = PAPER.vm_bandwidth
    return {
        (c // 20, c % 20): float(rng.uniform(0.0, scale)) * rate
        for c in range(num_chunks)
    }


def _run_micro_heuristics(
    *,
    seed: int,
    num_chunks: int = 80,
    vm_budget_per_hour: float = 100.0,
    storage_chunks: int = 60,
    storage_budget_per_hour: float = 1.0,
) -> Dict[str, float]:
    """Greedy-vs-LP optimality gaps of the paper's Eqn (6)/(7) heuristics."""
    from repro.core.storage_rental import StorageProblem, \
        greedy_storage_rental, lp_storage_bound
    from repro.core.vm_allocation import VMProblem, greedy_vm_allocation, \
        lp_vm_allocation
    from repro.experiments.config import paper_nfs_clusters, paper_vm_clusters

    vm_problem = VMProblem(
        demands=heuristic_demands(int(num_chunks), seed),
        vm_bandwidth=PAPER.vm_bandwidth,
        clusters=paper_vm_clusters(),
        budget_per_hour=float(vm_budget_per_hour),
    )
    greedy_vm = greedy_vm_allocation(vm_problem)
    lp_vm = lp_vm_allocation(vm_problem)
    vm_gap = 1.0 - greedy_vm.objective / lp_vm.objective \
        if lp_vm.objective else 0.0

    storage_problem = StorageProblem(
        demands=heuristic_demands(int(storage_chunks), seed, scale=1.0),
        chunk_size_bytes=PAPER.chunk_size_bytes,
        clusters=paper_nfs_clusters(),
        budget_per_hour=float(storage_budget_per_hour),
    )
    greedy_storage = greedy_storage_rental(storage_problem)
    storage_bound = lp_storage_bound(storage_problem)
    storage_gap = 1.0 - greedy_storage.objective / storage_bound \
        if storage_bound else 0.0
    return {
        "vm_greedy_objective": float(greedy_vm.objective),
        "vm_lp_objective": float(lp_vm.objective),
        "vm_gap": float(vm_gap),
        "vm_greedy_cost_per_hour": float(greedy_vm.cost_per_hour),
        "vm_lp_cost_per_hour": float(lp_vm.cost_per_hour),
        "storage_greedy_objective": float(greedy_storage.objective),
        "storage_lp_bound": float(storage_bound),
        "storage_gap": float(storage_gap),
    }


def _run_micro_startup(
    *, seed: int, arrival_rate: float = 0.5, alpha: float = 0.8,
    chunks: int = 10,
) -> Dict[str, float]:
    """Start-up delay implied by the solved capacity plan (analytic)."""
    del seed  # analytic: same answer for every seed
    from repro.queueing.startup import channel_startup_delay

    behaviour = uniform_jump_matrix(int(chunks), 0.6, 0.2)
    capacity = solve_channel_capacity(
        paper_capacity_model(), behaviour, float(arrival_rate),
        alpha=float(alpha),
    )
    startup = channel_startup_delay(capacity)
    return {
        "servers_first_chunk": int(capacity.servers[0]),
        "wait_probability": float(startup.wait_probability),
        "mean_startup_seconds": float(startup.mean),
        "p95_startup_seconds": float(startup.quantile(0.95)),
        "p99_startup_seconds": float(startup.quantile(0.99)),
    }


def _run_micro_vm_lifecycle(
    *, seed: int, fleet: int = 75,
) -> Dict[str, float]:
    """VM boot/shutdown latency and a scale-to cycle (Section VI-C text)."""
    del seed  # the substrate's timings are deterministic
    from repro.cloud.vm import VMPool
    from repro.sim.engine import Simulator

    def cluster(max_vms: int) -> VirtualClusterSpec:
        return VirtualClusterSpec(
            "standard", 0.6, 0.45, int(max_vms), PAPER.vm_bandwidth
        )

    sim = Simulator()
    pool = VMPool(cluster(fleet), sim)
    pool.launch(int(fleet))
    sim.run()  # drain boot completions (parallel launches share the 25 s)
    boot_seconds = float(sim.now)
    fleet_running = int(pool.running)
    pool.shutdown(int(fleet))
    sim.run()
    shutdown_seconds = float(sim.now) - boot_seconds

    instant = VMPool(cluster(fleet))  # no engine: instant scale-to mode
    instant.scale_to(int(fleet))
    instant.scale_to(max(1, int(fleet) // 7))
    return {
        "fleet": int(fleet),
        "boot_seconds": boot_seconds,
        "fleet_running_after_boot": fleet_running,
        "shutdown_seconds": shutdown_seconds,
        "scale_cycle_active": int(instant.active),
        "events_processed": int(sim.events_processed),
    }


# ----------------------------------------------------------------------
# Catalog scenarios: hundreds of channels through the sharded engine
# (repro.sim.shard) under one provisioning loop.
# ----------------------------------------------------------------------

#: Worker parallelism for catalog cells stays *outside* the cell
#: identity: the engine is byte-deterministic in the worker count, so
#: sweep artifacts are directly comparable no matter how a run was
#: parallelized.  Cells execute through :mod:`repro.api` with
#: ``workers=None``, i.e. the deprecated ``REPRO_CATALOG_JOBS``
#: environment variable still works as a warned fallback (the api's one
#: shared validation path).
def _run_catalog_cell(*, seed: int, variant: str = "zipf",
                      **params) -> Dict[str, float]:
    # Imported lazily: repro.api builds on the sim/workload/cloud/core
    # layers, so a module-level import here would close an import cycle
    # whichever side loads first.
    from repro.api import open_run
    from repro.sim.shard import summarize_catalog
    from repro.workload.catalog import catalog_config

    overrides = dict(CATALOG_VARIANTS[variant])
    overrides.update(params)
    config = catalog_config(seed=seed, name=f"catalog-{variant}", **overrides)
    with open_run(config) as run:
        return summarize_catalog(run.result())


#: Size/shape knobs shared by the catalog scenarios.  CI-sized defaults;
#: the million-user acceptance run overrides them, e.g.
#: ``repro sweep catalog-flash --set num_channels=200
#: --set arrival_rate=170 --set chunks_per_channel=12
#: --set num_shards=8 --set horizon_hours=1.0``.
_CATALOG_DEFAULTS = {
    "num_channels": 24,
    "chunks_per_channel": 8,
    "horizon_hours": 2.0,
    "arrival_rate": 1.0,
    "dt": 30.0,
    "interval_minutes": 15.0,
    "num_shards": 6,
    "zipf_exponent": 0.8,
}


def _run_geo_catalog_cell(*, seed: int, variant: str = "zipf",
                          **params) -> Dict[str, float]:
    """A multi-region catalog cell: the sharded engine under the geo
    control plane (lazy imports for the same cycle reason as above)."""
    from repro.api import open_run
    from repro.sim.shard import summarize_catalog
    from repro.workload.catalog import geo_catalog_config

    overrides = dict(CATALOG_VARIANTS[variant])
    overrides.update(params)
    config = geo_catalog_config(
        seed=seed, name=f"catalog-geo-{variant}", **overrides
    )
    with open_run(config) as run:
        return summarize_catalog(run.result())


#: The geo catalog's extra knobs on top of the shared catalog sizing:
#: the topology preset (regions, latency, egress pricing) and the exact
#: LP toggle (CI-sized catalogs only; the greedy scales).
_GEO_CATALOG_DEFAULTS = {
    **_CATALOG_DEFAULTS,
    "topology": "us-eu-ap",
    "exact": False,
}


# ----------------------------------------------------------------------
# Geo extension (paper Section VII) — three regions, shifted flash crowds.
# ----------------------------------------------------------------------

GEO_REGION_OFFSETS: Dict[str, float] = {
    "us-east": -5.0,
    "eu-west": 1.0,
    "ap-south": 5.5,
}


def geo_topology(vms_per_cluster: int = 10) -> GeoTopology:
    """Three regions with Table II-style clusters and priced cross links."""
    def clusters(price_factor: float) -> Tuple[VirtualClusterSpec, ...]:
        rows = [("standard", 0.6, 0.45), ("medium", 0.8, 0.70),
                ("advanced", 1.0, 0.80)]
        return tuple(
            VirtualClusterSpec(
                n, u, p * price_factor, int(vms_per_cluster),
                PAPER.vm_bandwidth,
            )
            for n, u, p in rows
        )

    regions = [
        RegionSpec("us-east", clusters(1.00)),
        RegionSpec("eu-west", clusters(1.10)),
        RegionSpec("ap-south", clusters(0.85)),
    ]
    return GeoTopology(
        regions,
        latency_ms={
            ("us-east", "eu-west"): 80.0,
            ("us-east", "ap-south"): 220.0,
            ("eu-west", "ap-south"): 150.0,
        },
        egress_price_per_gb={
            ("us-east", "eu-west"): 0.02,
            ("us-east", "ap-south"): 0.05,
            ("eu-west", "ap-south"): 0.04,
        },
        latency_halflife_ms=200.0,
    )


def geo_demand_at(
    hour_utc: float,
    model: CapacityModel,
    behaviour: np.ndarray,
    base_rate: float = 0.18,
) -> Dict[str, Dict[int, float]]:
    """Per-region cloud demand at one UTC hour (time-zone-shifted crowds)."""
    pattern = DiurnalPattern()
    demands: Dict[str, Dict[int, float]] = {}
    for region, offset in GEO_REGION_OFFSETS.items():
        factor = pattern.factor(((hour_utc + offset) % 24) * 3600.0)
        result = solve_channel_capacity(
            model, behaviour, base_rate * factor, alpha=0.8
        )
        demands[region] = {
            i: float(d) for i, d in enumerate(result.cloud_demand)
        }
    return demands


def _run_geo(*, seed: int, hour_utc: float = 18.0, vms_per_cluster: int = 10,
             budget_per_hour: float = 200.0, base_rate: float = 0.18,
             chunks: int = 10) -> Dict[str, float]:
    """Greedy vs LP geo allocation at one UTC hour (seed-free, analytic)."""
    del seed
    topology = geo_topology(int(vms_per_cluster))
    model = paper_capacity_model()
    behaviour = default_behaviour_matrix(int(chunks))
    demands = geo_demand_at(float(hour_utc), model, behaviour,
                            base_rate=float(base_rate))
    problem = GeoVMProblem(
        topology=topology,
        demands=demands,
        vm_bandwidth=PAPER.vm_bandwidth,
        budget_per_hour=float(budget_per_hour),
    )
    greedy = greedy_geo_allocation(problem)
    lp = lp_geo_allocation(problem)
    gap = 1.0 - greedy.objective / lp.objective if lp.objective else 0.0
    total_demand = sum(sum(d.values()) for d in demands.values())
    return {
        "objective": float(greedy.objective),
        "lp_objective": float(lp.objective),
        "optimality_gap": float(gap),
        "remote_fraction": float(greedy.remote_fraction()),
        "feasible": float(greedy.feasible),
        "total_demand_mbps": mbps(float(total_demand)),
    }


# ----------------------------------------------------------------------
# The registered scenarios.
# ----------------------------------------------------------------------

_MODE_GRID = {"mode": ("client-server", "p2p")}
# None means "use the scale preset's value"; exposed so `--set
# num_channels=8` etc. are accepted as sweep overrides (small scale only).
_CLOSED_LOOP_DEFAULTS = {
    "horizon_hours": 12.0,
    "scale": "small",
    "num_channels": None,
    "chunks_per_channel": None,
    "target_population": None,
}

register(ScenarioSpec(
    name="fig04",
    title="Cloud capacity provisioning vs usage over time",
    paper_ref="Fig. 4 (Section VI-B)",
    grid=_MODE_GRID,
    defaults=_CLOSED_LOOP_DEFAULTS,
    build=closed_loop_config,
    expected_seconds=1.0,
    tags=("figure",),
))

register(ScenarioSpec(
    name="fig05",
    title="Average streaming quality over time (C/S vs P2P)",
    paper_ref="Fig. 5 (Section VI-B; paper averages 0.97 / 0.95)",
    grid=_MODE_GRID,
    defaults=_CLOSED_LOOP_DEFAULTS,
    build=closed_loop_config,
    expected_seconds=1.0,
    tags=("figure",),
))

register(ScenarioSpec(
    name="fig06",
    title="Streaming quality vs channel size (client-server)",
    paper_ref="Fig. 6 (Section VI-B)",
    defaults={"mode": "client-server", **_CLOSED_LOOP_DEFAULTS},
    build=closed_loop_config,
    expected_seconds=1.0,
    tags=("figure",),
))

register(ScenarioSpec(
    name="fig07",
    title="Provisioned cloud bandwidth vs channel size",
    paper_ref="Fig. 7 (Section VI-B)",
    grid=_MODE_GRID,
    defaults=_CLOSED_LOOP_DEFAULTS,
    build=closed_loop_config,
    expected_seconds=1.0,
    tags=("figure",),
))

register(ScenarioSpec(
    name="fig08",
    title="Aggregate storage utility per channel over time",
    paper_ref="Fig. 8 (Section VI-C)",
    defaults={"mode": "p2p", **_CLOSED_LOOP_DEFAULTS},
    build=closed_loop_config,
    expected_seconds=1.0,
    tags=("figure",),
))

register(ScenarioSpec(
    name="fig09",
    title="Aggregate VM utility per channel over time",
    paper_ref="Fig. 9 (Section VI-C)",
    defaults={"mode": "p2p", **_CLOSED_LOOP_DEFAULTS},
    build=closed_loop_config,
    expected_seconds=1.0,
    tags=("figure",),
))

register(ScenarioSpec(
    name="fig10",
    title="Overall VM rental cost over time",
    paper_ref="Fig. 10 (Section VI-C; paper: ~$48/h C/S vs ~$4.27/h P2P)",
    grid=_MODE_GRID,
    defaults=_CLOSED_LOOP_DEFAULTS,
    build=closed_loop_config,
    expected_seconds=1.0,
    tags=("figure",),
))

register(ScenarioSpec(
    name="fig11",
    title="P2P quality vs peer-upload sufficiency ratio",
    paper_ref="Fig. 11 (Section VI-D; paper averages 0.95 / 0.95 / 1.00)",
    grid={"upload_ratio": (0.9, 1.0, 1.2)},
    defaults={**_CLOSED_LOOP_DEFAULTS, "mode": "p2p", "horizon_hours": 8.0},
    build=closed_loop_config,
    expected_seconds=1.0,
    tags=("figure",),
))

register(ScenarioSpec(
    name="ablation-predictors",
    title="Demand predictor ablation on a diurnal flash-crowd day",
    paper_ref="Section V-B (future-work knob: better predictors)",
    grid={"predictor": tuple(PREDICTORS)},
    defaults={"mode": "client-server", **_CLOSED_LOOP_DEFAULTS},
    build=None,
    run=_run_with_predictor,
    expected_seconds=1.0,
    tags=("ablation",),
))

def _run_controller_cell(*, seed: int, **params) -> Dict[str, float]:
    """One (controller, catalog shape) cell of the controller ablation
    (lazy import: the bench builds on repro.api)."""
    from repro.experiments.controllers import run_controller_cell

    return run_controller_cell(seed=seed, **params)


#: CI-sized shapes for the controller head-to-head: small enough that
#: the full 5-policy x 3-catalog grid stays sweepable in CI, big enough
#: that the policies actually diverge (two flash-crowd epochs, a few
#: hundred viewers).
_CONTROLLER_ABLATION_DEFAULTS = {
    "num_channels": 12,
    "chunks_per_channel": 6,
    "horizon_hours": 1.0,
    "arrival_rate": 2.0,
    "dt": 30.0,
    "interval_minutes": 15.0,
    "num_shards": 4,
    "zipf_exponent": 0.8,
    "mode": "client-server",
    "sla_quality_target": 0.98,
}

register(ScenarioSpec(
    name="ablation-controllers",
    title="Provisioning-policy head-to-head: cost vs quality vs SLA",
    paper_ref="Section V-B controller, vs reactive/Adapt/PID/MPC rivals",
    grid={
        "controller": controller_names(),
        "catalog": ("zipf", "flash", "geo"),
    },
    defaults=_CONTROLLER_ABLATION_DEFAULTS,
    build=None,
    run=_run_controller_cell,
    expected_seconds=4.0,
    tags=("ablation", "controllers", "catalog"),
))

register(ScenarioSpec(
    name="ablation-chunk-size",
    title="Chunk duration T0 selection (capacity vs switching vs waste)",
    paper_ref="Footnote 3 (paper picks T0 = 5 minutes)",
    grid={"t0_minutes": (1.0, 2.5, 5.0, 10.0, 25.0)},
    defaults={"arrival_rate": 0.2},
    build=None,
    run=_run_chunk_size,
    expected_seconds=0.5,
    tags=("ablation", "analytic"),
))

register(ScenarioSpec(
    name="flash-crowd",
    title="One-day flash-crowd chase (controller lag vs predictor)",
    paper_ref="Section VI-A workload (two daily flash crowds)",
    grid={"predictor": ("last-interval", "ewma")},
    defaults={
        **_CLOSED_LOOP_DEFAULTS,
        "mode": "client-server",
        "horizon_hours": 24.0,
        "target_population": 300,
    },
    build=None,
    run=_run_with_predictor,
    expected_seconds=2.0,
    tags=("extension",),
))

register(ScenarioSpec(
    name="micro-heuristics",
    title="Greedy utility-per-dollar heuristics vs LP optima",
    paper_ref="Eqns 6-7 (Section V; optimality gap never quantified)",
    defaults={
        "num_chunks": 80,
        "vm_budget_per_hour": 100.0,
        "storage_chunks": 60,
        "storage_budget_per_hour": 1.0,
    },
    build=None,
    run=_run_micro_heuristics,
    expected_seconds=0.5,
    tags=("micro", "ablation"),
))

register(ScenarioSpec(
    name="micro-startup-delay",
    title="Start-up delay distribution under the solved capacity plan",
    paper_ref="Section IV (first-chunk sojourn; related work ref [17])",
    grid={"arrival_rate": (0.02, 0.1, 0.5, 2.0)},
    defaults={"alpha": 0.8, "chunks": 10},
    build=None,
    run=_run_micro_startup,
    expected_seconds=0.5,
    tags=("micro", "analytic"),
))

register(ScenarioSpec(
    name="micro-vm-lifecycle",
    title="VM boot/shutdown latency and parallel launches",
    paper_ref="Section VI-C text (~25 s boot, faster shutdown)",
    defaults={"fleet": 75},
    build=None,
    run=_run_micro_vm_lifecycle,
    expected_seconds=0.5,
    tags=("micro",),
))

register(ScenarioSpec(
    name="catalog-zipf",
    title="Sharded catalog: Zipf popularity under one provisioning loop",
    paper_ref="Section III (multi-channel catalog), scaled out",
    grid=_MODE_GRID,
    defaults={"variant": "zipf", **_CATALOG_DEFAULTS},
    build=None,
    run=_run_catalog_cell,
    expected_seconds=8.0,
    tags=("extension", "catalog", "sharded"),
))

register(ScenarioSpec(
    name="catalog-diurnal",
    title="Sharded catalog: per-channel diurnal phase offsets",
    paper_ref="Section VI-A workload, geographically de-phased",
    grid={"phase_jitter_hours": (0.0, 9.0)},
    defaults={"variant": "diurnal", "mode": "client-server",
              **_CATALOG_DEFAULTS},
    build=None,
    run=_run_catalog_cell,
    expected_seconds=8.0,
    tags=("extension", "catalog", "sharded"),
))

register(ScenarioSpec(
    name="catalog-flash",
    title="Sharded catalog: correlated flash crowd across channels",
    paper_ref="Section VI-A flash crowds, correlated catalog-wide",
    grid=_MODE_GRID,
    # The preset values are spread into the defaults (not copied as
    # literals) so the flash knobs are --settable and `repro scenarios`
    # shows them, while CATALOG_VARIANTS stays the single source the CLI
    # and registry both follow.
    defaults={
        "variant": "flash",
        **CATALOG_VARIANTS["flash"],
        **_CATALOG_DEFAULTS,
    },
    build=None,
    run=_run_catalog_cell,
    expected_seconds=10.0,
    tags=("extension", "catalog", "sharded"),
))

register(ScenarioSpec(
    name="catalog-geo-zipf",
    title="Multi-region catalog: Zipf demand split over a geo topology",
    paper_ref="Section VII (geo extension) x Section III catalog, closed loop",
    grid=_MODE_GRID,
    defaults={"variant": "zipf", **_GEO_CATALOG_DEFAULTS},
    build=None,
    run=_run_geo_catalog_cell,
    expected_seconds=10.0,
    tags=("extension", "catalog", "sharded", "geo"),
))

register(ScenarioSpec(
    name="catalog-geo-flash",
    title="Multi-region catalog: correlated flash crowd across regions",
    paper_ref="Section VII x Section VI-A flash crowds, cross-region spill",
    grid=_MODE_GRID,
    defaults={
        "variant": "flash",
        **CATALOG_VARIANTS["flash"],
        **_GEO_CATALOG_DEFAULTS,
    },
    build=None,
    run=_run_geo_catalog_cell,
    expected_seconds=12.0,
    tags=("extension", "catalog", "sharded", "geo"),
))

register(ScenarioSpec(
    name="geo",
    title="Geo-distributed pooling vs isolation (greedy vs LP)",
    paper_ref="Section VII (closing future work, implemented)",
    grid={"hour_utc": (0.0, 6.0, 12.0, 18.0)},
    defaults={
        "vms_per_cluster": 10,
        "budget_per_hour": 200.0,
        "base_rate": 0.18,
        "chunks": 10,
    },
    build=None,
    run=_run_geo,
    expected_seconds=0.5,
    tags=("extension", "analytic"),
))
