"""Per-figure series generators (paper Section VI).

Every public function takes already-computed :class:`ClosedLoopResult`
objects (so benches can share expensive runs) and returns plain dicts of
numpy series shaped like the corresponding paper figure. The benches print
them; EXPERIMENTS.md records the paper-vs-measured comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.demand import aggregate_demand
from repro.experiments.reporting import mbps
from repro.experiments.runner import ClosedLoopResult

__all__ = [
    "fig4_capacity_provisioning",
    "fig5_streaming_quality",
    "fig6_quality_vs_channel_size",
    "fig7_bandwidth_vs_channel_size",
    "fig8_storage_utility",
    "fig9_vm_utility",
    "fig10_vm_cost",
    "fig11_quality_by_peer_bandwidth",
]


def fig4_capacity_provisioning(
    cs: ClosedLoopResult, p2p: ClosedLoopResult
) -> Dict[str, np.ndarray]:
    """Fig 4: provisioned vs used cloud bandwidth over time (Mbps)."""
    return {
        "hours": np.asarray(cs.interval_times) / 3600.0,
        "cs_reserved_mbps": cs.provisioned_mbps(),
        "cs_used_mbps": cs.used_mbps(),
        "p2p_reserved_mbps": p2p.provisioned_mbps(),
        "p2p_used_mbps": p2p.used_mbps(),
    }


def fig5_streaming_quality(
    cs: ClosedLoopResult, p2p: ClosedLoopResult
) -> Dict[str, np.ndarray]:
    """Fig 5: average streaming quality over time for both modes."""
    cs_t, cs_q = cs.simulation.quality.quality_series()
    p2p_t, p2p_q = p2p.simulation.quality.quality_series()
    return {
        "cs_hours": cs_t / 3600.0,
        "cs_quality": cs_q,
        "cs_average": np.asarray(cs.average_quality),
        "p2p_hours": p2p_t / 3600.0,
        "p2p_quality": p2p_q,
        "p2p_average": np.asarray(p2p.average_quality),
    }


def fig6_quality_vs_channel_size(
    result: ClosedLoopResult, *, min_users: int = 1
) -> Dict[str, np.ndarray]:
    """Fig 6: per-channel streaming quality vs channel size scatter."""
    points = result.simulation.quality.channel_size_quality_points(min_users)
    sizes = np.asarray([p[0] for p in points], dtype=float)
    quality = np.asarray([p[1] for p in points], dtype=float)
    return {"channel_size": sizes, "quality": quality}


def fig7_bandwidth_vs_channel_size(
    result: ClosedLoopResult,
) -> Dict[str, np.ndarray]:
    """Fig 7: per-channel provisioned cloud bandwidth vs channel size.

    Pairs each interval's provisioning decision with the channel sizes
    measured at the end of that interval.
    """
    sizes: List[float] = []
    bandwidth: List[float] = []
    # decisions[k] governs interval k (bootstrap governs interval 1);
    # channel_population_series[k] is measured at the end of interval k+1.
    for decision, populations in zip(
        result.decisions, result.channel_population_series
    ):
        for channel_id, capacity in decision.per_channel_capacity.items():
            size = populations.get(channel_id, 0)
            if size <= 0:
                continue
            sizes.append(float(size))
            bandwidth.append(mbps(float(capacity.sum())))
    return {
        "channel_size": np.asarray(sizes),
        "bandwidth_mbps": np.asarray(bandwidth),
    }


def _storage_utility_series(
    result: ClosedLoopResult, channel_id: int
) -> np.ndarray:
    """Aggregate storage utility per interval for one channel (Fig 8).

    Intervals without a storage replan reuse the most recent placement,
    priced against the interval's demand vector — exactly what the paper's
    system does (the placement persists; popularity moves).
    """
    utilities: List[float] = []
    last_placement: Optional[Dict] = None
    last_nfs_utilities: Dict[str, float] = {}
    for decision in result.decisions:
        if decision.storage_plan is not None:
            last_placement = decision.storage_plan.placement
            last_nfs_utilities = decision.nfs_utilities
        if last_placement is None:
            utilities.append(0.0)
            continue
        demand = aggregate_demand(decision.demands)
        total = 0.0
        for chunk, cluster in last_placement.items():
            if chunk[0] != channel_id:
                continue
            total += last_nfs_utilities[cluster] * demand.get(chunk, 0.0)
        utilities.append(total)
    return np.asarray(utilities)


def fig8_storage_utility(
    result: ClosedLoopResult, channel_ids: Sequence[int]
) -> Dict[str, np.ndarray]:
    """Fig 8: evolution of aggregate storage utility for chosen channels.

    Utilities are reported in the paper's unit (u_f times demand expressed
    in multiples of the streaming rate) so magnitudes are comparable
    across scales.
    """
    r = result.scenario.constants.streaming_rate
    out: Dict[str, np.ndarray] = {
        "hours": np.asarray([d.time for d in result.decisions]) / 3600.0
    }
    for channel_id in channel_ids:
        out[f"channel_{channel_id}"] = _storage_utility_series(result, channel_id) / r
    return out


def fig9_vm_utility(
    result: ClosedLoopResult, channel_ids: Sequence[int]
) -> Dict[str, np.ndarray]:
    """Fig 9: evolution of aggregate VM utility for chosen channels."""
    out: Dict[str, np.ndarray] = {
        "hours": np.asarray([d.time for d in result.decisions]) / 3600.0
    }
    for channel_id in channel_ids:
        out[f"channel_{channel_id}"] = np.asarray(
            [d.aggregate_vm_utility(channel_id) for d in result.decisions]
        )
    return out


def fig10_vm_cost(
    cs: ClosedLoopResult, p2p: ClosedLoopResult
) -> Dict[str, object]:
    """Fig 10: overall VM rental cost over time, plus the averages and the
    (negligible) storage cost the paper quotes in the text."""
    cs_series = [(d.time / 3600.0, d.hourly_vm_cost) for d in cs.decisions]
    p2p_series = [(d.time / 3600.0, d.hourly_vm_cost) for d in p2p.decisions]
    return {
        "cs_hours": np.asarray([t for t, _ in cs_series]),
        "cs_cost_per_hour": np.asarray([c for _, c in cs_series]),
        "p2p_hours": np.asarray([t for t, _ in p2p_series]),
        "p2p_cost_per_hour": np.asarray([c for _, c in p2p_series]),
        "cs_average": float(np.mean([c for _, c in cs_series])) if cs_series else 0.0,
        "p2p_average": float(np.mean([c for _, c in p2p_series])) if p2p_series else 0.0,
        "cs_storage_cost_per_day": cs.cost_report.hourly_storage_cost * 24.0,
        "p2p_storage_cost_per_day": p2p.cost_report.hourly_storage_cost * 24.0,
    }


def fig11_quality_by_peer_bandwidth(
    results_by_ratio: Dict[float, ClosedLoopResult],
) -> Dict[float, Dict[str, np.ndarray]]:
    """Fig 11: P2P quality series at each peer-upload/streaming-rate ratio."""
    out: Dict[float, Dict[str, np.ndarray]] = {}
    for ratio, result in sorted(results_by_ratio.items()):
        times, quality = result.simulation.quality.quality_series()
        out[ratio] = {
            "days": times / 86400.0,
            "quality": quality,
            "average": np.asarray(result.average_quality),
        }
    return out
