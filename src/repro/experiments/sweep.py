"""Parallel sweep orchestrator with an incremental on-disk artifact store.

A *sweep* expands one registered scenario (:mod:`repro.experiments.
registry`) into cells — the cartesian product of its parameter grid times
``K`` seeds — and fans the cells across a
:class:`concurrent.futures.ProcessPoolExecutor`.

Every cell is identified by a stable hash of ``(schema, scenario, params,
seed)``; its metrics are written to ``<out>/<scenario>/<hash>.json``
together with run metadata.  Re-running a sweep first consults the store
and only executes cells whose artifacts are missing (or whose identity no
longer matches), so interrupted or extended sweeps are incremental: add
seeds or grid values and only the new cells run.

Only ``(scenario name, params, seed)`` triples cross the process
boundary — each worker re-imports the registry and resolves the scenario
locally, so no callables are pickled and results are deterministic for a
given seed regardless of the number of workers.  Cells themselves
execute their engines through :mod:`repro.api` (see
``ScenarioSpec.run_cell``), so the sweep, the CLI and library callers
all exercise one surface.

Unknown override keys fail fast: :func:`run_sweep` expands and validates
every cell (``ScenarioSpec.grid_points`` raises a :class:`KeyError`
listing the scenario's valid knobs) *before* any cell executes or any
worker process spawns.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro import __version__
from repro.experiments import registry

__all__ = [
    "ARTIFACT_SCHEMA",
    "SweepCell",
    "CellOutcome",
    "SweepReport",
    "SweepError",
    "ArtifactStore",
    "cell_hash",
    "expand_cells",
    "run_sweep",
    "seed_list",
]


class SweepError(RuntimeError):
    """One or more cells failed; every *successful* cell was still saved.

    Raised after the whole sweep has drained, so an incremental re-run
    only repeats the failed cells.
    """

    def __init__(self, failures: Sequence[Tuple["SweepCell", BaseException]]):
        self.failures = list(failures)
        lines = [
            f"  [{cell.hash}] seed={cell.seed} "
            f"{dict(cell.params)}: {type(err).__name__}: {err}"
            for cell, err in self.failures[:5]
        ]
        more = len(self.failures) - len(lines)
        if more > 0:
            lines.append(f"  ... and {more} more")
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed "
            f"(completed cells were saved and will be reused):\n"
            + "\n".join(lines)
        )

#: Bump when the artifact layout or the hashed identity changes; old
#: artifacts then miss the cache instead of being misread.
#: Schema 2: top-level ``wall_seconds`` next to ``metrics``; closed-loop
#: metrics grew ``steps``, ``peak_step_events`` and ``peak_population``.
#: Schema 3: artifacts are **byte-deterministic** — a cell's file is a
#: pure function of (scenario, params, seed, environment), identical
#: for any worker count and across reruns, so artifact trees can be
#: compared by checksum.  The volatile run info (wall clock, creation
#: time) moved to a ``.runinfo/<hash>.json`` sidecar directory that
#: artifact globs never match.
ARTIFACT_SCHEMA = 3


def _canonical(params: Mapping[str, object]) -> Dict[str, object]:
    """Sorted, JSON-round-trippable copy of a cell's parameters."""
    return json.loads(
        json.dumps(dict(params), sort_keys=True, default=_coerce_scalar)
    )


def _coerce_scalar(value: object) -> object:
    """JSON fallback: numpy scalars hash like their Python equivalents.

    Grids built with ``np.arange``/``np.linspace`` leak ``np.int64``/
    ``np.float32``/``np.bool_`` values (``np.float64`` already subclasses
    ``float``); coercing them here keeps a numpy-built grid's cell hashes
    identical to the pure-Python grid's, so artifacts stay cache-hits.
    """
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    raise TypeError(
        f"sweep parameters must be JSON-serializable, got {value!r} "
        f"({type(value).__name__})"
    )


def cell_hash(scenario: str, params: Mapping[str, object], seed: int) -> str:
    """Stable identity of one (scenario, grid-point, seed) cell."""
    payload = json.dumps(
        {
            "schema": ARTIFACT_SCHEMA,
            "scenario": scenario,
            "params": _canonical(params),
            "seed": int(seed),
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SweepCell:
    """One executable unit of a sweep."""

    scenario: str
    params: Tuple[Tuple[str, object], ...]
    seed: int

    @classmethod
    def make(cls, scenario: str, params: Mapping[str, object],
             seed: int) -> "SweepCell":
        canonical = _canonical(params)
        return cls(
            scenario=scenario,
            params=tuple(sorted(canonical.items())),
            seed=int(seed),
        )

    @property
    def params_dict(self) -> Dict[str, object]:
        return dict(self.params)

    @property
    def hash(self) -> str:
        return cell_hash(self.scenario, self.params_dict, self.seed)


@dataclass
class CellOutcome:
    """What happened to one cell during a sweep."""

    cell: SweepCell
    metrics: Dict[str, float]
    path: Path
    cached: bool
    duration_seconds: float


@dataclass
class SweepReport:
    """Summary of one ``run_sweep`` invocation."""

    scenario: str
    out_dir: Path
    outcomes: List[CellOutcome] = field(default_factory=list)
    wall_seconds: float = 0.0
    jobs: int = 1

    @property
    def total(self) -> int:
        return len(self.outcomes)

    @property
    def cached(self) -> int:
        return sum(1 for o in self.outcomes if o.cached)

    @property
    def ran(self) -> int:
        return self.total - self.cached

    def metric_names(self) -> List[str]:
        seen: Dict[str, None] = {}
        for outcome in self.outcomes:
            for key in outcome.metrics:
                seen.setdefault(key)
        return list(seen)


class ArtifactStore:
    """``<root>/<scenario>/<hash>.json`` artifact files, written atomically.

    An artifact records the cell's full identity next to its metrics, so a
    hash collision or a hand-edited file is detected (identity mismatch ->
    treated as a cache miss) rather than silently trusted.
    """

    def __init__(self, root: os.PathLike) -> None:
        self.root = Path(root)

    def path(self, cell: SweepCell) -> Path:
        return self.root / cell.scenario / f"{cell.hash}.json"

    def load(self, cell: SweepCell) -> Optional[Dict[str, object]]:
        """The cell's artifact payload, or ``None`` on any mismatch."""
        path = self.path(cell)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            payload.get("schema") != ARTIFACT_SCHEMA
            or payload.get("scenario") != cell.scenario
            or payload.get("params") != cell.params_dict
            or payload.get("seed") != cell.seed
            or not isinstance(payload.get("metrics"), dict)
        ):
            return None
        return payload

    def _run_info_path(self, cell: SweepCell) -> Path:
        # Tucked in a dot-directory so ``*.json`` globs (and checksum
        # sweeps over the artifact tree) never see it.
        return self.root / cell.scenario / ".runinfo" / f"{cell.hash}.json"

    def run_info(self, cell: SweepCell) -> Dict[str, float]:
        """The cell's volatile run sidecar ({} when absent/corrupt)."""
        try:
            payload = json.loads(self._run_info_path(cell).read_text())
        except (OSError, ValueError):
            return {}
        return payload if isinstance(payload, dict) else {}

    def save(self, cell: SweepCell, metrics: Mapping[str, float],
             duration_seconds: float) -> Path:
        path = self.path(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Every field below is deterministic for a fixed environment —
        # the schema-3 contract that identical cells produce identical
        # bytes.  Wall-clock values go in the sidecar only.
        payload = {
            "schema": ARTIFACT_SCHEMA,
            "scenario": cell.scenario,
            "cell_hash": cell.hash,
            "params": cell.params_dict,
            "seed": cell.seed,
            "metrics": dict(metrics),
            "meta": {
                "repro_version": __version__,
                "python": platform.python_version(),
            },
        }
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        run_info = self._run_info_path(cell)
        run_info.parent.mkdir(parents=True, exist_ok=True)
        run_info.write_text(json.dumps({
            "created_unix": time.time(),
            "duration_seconds": duration_seconds,
        }, indent=2, sort_keys=True) + "\n")
        return path

    def scenario_artifacts(self, scenario: str) -> List[Path]:
        directory = self.root / scenario
        if not directory.is_dir():
            return []
        return sorted(directory.glob("*.json"))


def seed_list(count: int, base: int = 2011) -> List[int]:
    """The deterministic seed ladder used by ``repro sweep --seeds K``."""
    if count <= 0:
        raise ValueError("need at least one seed")
    return [base + i for i in range(count)]


def expand_cells(
    scenario: str,
    *,
    seeds: Sequence[int],
    overrides: Optional[Mapping[str, object]] = None,
) -> List[SweepCell]:
    """All (grid-point x seed) cells of a scenario, overrides applied."""
    spec = registry.get(scenario)
    points = spec.grid_points(overrides)
    return [
        SweepCell.make(scenario, point, seed)
        for point in points
        for seed in seeds
    ]


def _execute_cell(scenario: str, params: Dict[str, object],
                  seed: int) -> Tuple[Dict[str, float], float]:
    """Worker entry point: resolve the scenario locally and run one cell."""
    started = time.perf_counter()
    metrics = registry.get(scenario).run_cell(params, seed=seed)
    return dict(metrics), time.perf_counter() - started


def run_sweep(
    scenario: str,
    *,
    jobs: int = 1,
    seeds: Sequence[int] = (2011,),
    out_dir: os.PathLike = "results",
    overrides: Optional[Mapping[str, object]] = None,
    force: bool = False,
    progress: Optional[Callable[[CellOutcome], None]] = None,
) -> SweepReport:
    """Run (or incrementally resume) one scenario sweep.

    Parameters
    ----------
    jobs:
        Worker processes; ``1`` runs every cell in-process (no pool).
    seeds:
        Explicit seed values (use :func:`seed_list` for the CLI ladder).
    out_dir:
        Artifact store root; cells found there are *not* re-executed.
    overrides:
        Grid/parameter overrides, as accepted by
        :meth:`ScenarioSpec.grid_points`.
    force:
        Re-execute and overwrite even cached cells.
    progress:
        Optional callback invoked once per finished cell.
    """
    started = time.perf_counter()
    store = ArtifactStore(out_dir)
    cells = expand_cells(scenario, seeds=seeds, overrides=overrides)
    report = SweepReport(scenario=scenario, out_dir=store.root, jobs=jobs)

    def finish(outcome: CellOutcome) -> None:
        report.outcomes.append(outcome)
        if progress is not None:
            progress(outcome)

    pending: List[SweepCell] = []
    for cell in cells:
        payload = None if force else store.load(cell)
        if payload is not None:
            finish(CellOutcome(
                cell=cell,
                metrics=dict(payload["metrics"]),  # type: ignore[arg-type]
                path=store.path(cell),
                cached=True,
                duration_seconds=float(
                    store.run_info(cell).get("duration_seconds", 0.0)
                ),
            ))
        else:
            pending.append(cell)

    failures: List[Tuple[SweepCell, BaseException]] = []
    if len(pending) <= 1 or jobs <= 1:
        for cell in pending:
            try:
                metrics, duration = _execute_cell(
                    cell.scenario, cell.params_dict, cell.seed
                )
            except Exception as err:
                failures.append((cell, err))
                continue
            path = store.save(cell, metrics, duration)
            finish(CellOutcome(cell, metrics, path, False, duration))
    else:
        workers = min(jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _execute_cell, cell.scenario, cell.params_dict, cell.seed
                ): cell
                for cell in pending
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    cell = futures[future]
                    try:
                        metrics, duration = future.result()
                    except Exception as err:
                        failures.append((cell, err))
                        continue
                    path = store.save(cell, metrics, duration)
                    finish(CellOutcome(cell, metrics, path, False, duration))

    report.wall_seconds = time.perf_counter() - started
    if failures:
        raise SweepError(failures)
    return report
