"""Experiment harness reproducing the paper's evaluation (Section VI).

* :mod:`repro.experiments.config` — the paper's parameters: Tables II/III
  cluster configurations, streaming/chunking constants, budgets, and
  scenario presets (scaled-down for CI, paper-scale via ``REPRO_FULL=1``).
* :mod:`repro.experiments.runner` — the closed-loop runner wiring trace ->
  simulator -> tracker -> controller -> cloud.
* :mod:`repro.experiments.figures` — one generator per paper figure,
  returning printable series.
* :mod:`repro.experiments.reporting` — plain-text table rendering shared
  by the benches.
* :mod:`repro.experiments.registry` — the scenario registry: every
  figure/ablation/extension as a named :class:`ScenarioSpec` with a
  default parameter grid (``repro scenarios``).
* :mod:`repro.experiments.sweep` — the parallel sweep orchestrator with
  per-cell hashing and an incremental on-disk artifact store
  (``repro sweep <name> --jobs N --seeds K``).
"""

from repro.experiments.config import (
    PAPER,
    PaperConstants,
    ScenarioConfig,
    arrival_rate_for_population,
    paper_capacity_model,
    paper_nfs_clusters,
    paper_sla_terms,
    paper_vm_clusters,
    scenario_from_env,
    small_scenario,
)
from repro.experiments.registry import (
    ScenarioSpec,
    UnknownScenarioError,
    summarize_closed_loop,
)
from repro.experiments.runner import ClosedLoopEngine, ClosedLoopResult
from repro.experiments.sweep import (
    ArtifactStore,
    SweepCell,
    SweepError,
    SweepReport,
    cell_hash,
    run_sweep,
    seed_list,
)

__all__ = [
    "PAPER",
    "PaperConstants",
    "ScenarioConfig",
    "arrival_rate_for_population",
    "paper_capacity_model",
    "paper_nfs_clusters",
    "paper_sla_terms",
    "paper_vm_clusters",
    "scenario_from_env",
    "small_scenario",
    "ClosedLoopEngine",
    "ClosedLoopResult",
    "ScenarioSpec",
    "UnknownScenarioError",
    "summarize_closed_loop",
    "ArtifactStore",
    "SweepCell",
    "SweepError",
    "SweepReport",
    "cell_hash",
    "run_sweep",
    "seed_list",
]
