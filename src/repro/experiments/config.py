"""Paper parameters and scenario presets (Section VI-A, Tables II/III).

All constants below are taken verbatim from the paper:

* streaming rate r = 50 KB/s (400 kbps); chunk playback T0 = 5 min, so a
  chunk is 15 MB; videos are 100 minutes = 20 chunks;
* every VM gets R = 10 Mbps;
* 20 channels, Zipf popularity, ~2500 concurrent users;
* Table II virtual clusters and Table III NFS clusters;
* budgets B_M = $100/h, B_S = $1/h; provisioning interval T = 1 h.

Scenario presets scale the channel count / population / horizon down so the
benches run in minutes; setting ``REPRO_FULL=1`` selects paper scale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.cloud.cluster import NFSClusterSpec, VirtualClusterSpec
from repro.core.sla import SLATerms
from repro.queueing.capacity import CapacityModel
from repro.queueing.jackson import external_arrival_vector, solve_traffic_equations
from repro.vod.channel import ChannelSpec, default_behaviour_matrix, make_uniform_channels
from repro.workload.pareto import BoundedPareto
from repro.workload.trace import TraceConfig

__all__ = [
    "PaperConstants",
    "PAPER",
    "paper_capacity_model",
    "paper_vm_clusters",
    "paper_nfs_clusters",
    "paper_sla_terms",
    "arrival_rate_for_population",
    "ScenarioConfig",
    "small_scenario",
    "paper_scenario",
    "scenario_from_env",
]


@dataclass(frozen=True)
class PaperConstants:
    """The paper's physical constants."""

    streaming_rate: float = 50_000.0  # r: 50 KB/s = 400 kbps
    chunk_duration: float = 300.0  # T0: 5 minutes
    vm_bandwidth: float = 10e6 / 8.0  # R: 10 Mbps in bytes/second
    video_minutes: float = 100.0
    num_channels: int = 20
    target_population: int = 2500
    vm_budget_per_hour: float = 100.0
    storage_budget_per_hour: float = 1.0
    interval_seconds: float = 3600.0

    @property
    def chunks_per_channel(self) -> int:
        return int(self.video_minutes * 60 / self.chunk_duration)

    @property
    def chunk_size_bytes(self) -> float:
        return self.streaming_rate * self.chunk_duration  # 15 MB


PAPER = PaperConstants()


def paper_capacity_model(constants: PaperConstants = PAPER) -> CapacityModel:
    """The (r, T0, R) capacity model of Section VI-A."""
    return CapacityModel(
        streaming_rate=constants.streaming_rate,
        chunk_duration=constants.chunk_duration,
        vm_bandwidth=constants.vm_bandwidth,
    )


def paper_vm_clusters(
    constants: PaperConstants = PAPER, *, scale: float = 1.0
) -> List[VirtualClusterSpec]:
    """Table II: the three virtual clusters.

    ``scale`` multiplies the per-cluster VM counts for scaled scenarios
    (at least 1 VM per cluster is kept).
    """
    rows = [
        ("standard", 0.6, 0.450, 75, 128),
        ("medium", 0.8, 0.700, 30, 192),
        ("advanced", 1.0, 0.800, 45, 256),
    ]
    return [
        VirtualClusterSpec(
            name=name,
            utility=utility,
            price_per_hour=price,
            max_vms=max(1, int(round(count * scale))),
            vm_bandwidth=constants.vm_bandwidth,
            memory_mb=memory,
            cpu_mhz=500,
            disk_gb=5,
        )
        for name, utility, price, count, memory in rows
    ]


def paper_nfs_clusters(*, scale: float = 1.0) -> List[NFSClusterSpec]:
    """Table III: the two NFS clusters (20 GB each)."""
    gib = float(1024**3)
    rows = [
        ("standard", 0.8, 1.11e-4, 20.0, 7200),
        ("high", 1.0, 2.08e-4, 20.0, 10800),
    ]
    return [
        NFSClusterSpec(
            name=name,
            utility=utility,
            price_per_gb_hour=price,
            capacity_bytes=capacity_gb * gib * max(scale, 1e-6),
            rotation_rpm=rpm,
        )
        for name, utility, price, capacity_gb, rpm in rows
    ]


def paper_sla_terms(constants: PaperConstants = PAPER) -> SLATerms:
    """B_M = $100/h, B_S = $1/h, T = 1 h."""
    return SLATerms(
        vm_budget_per_hour=constants.vm_budget_per_hour,
        storage_budget_per_hour=constants.storage_budget_per_hour,
        interval_seconds=constants.interval_seconds,
    )


def arrival_rate_for_population(
    target_population: float,
    behaviour: np.ndarray,
    chunk_duration: float,
    *,
    alpha: float = 0.8,
) -> float:
    """Total arrival rate giving roughly the target concurrent population.

    In equilibrium, N ~= Lambda * E[downloads per session] * T0 (each queue
    visit lasts about the chunk playback time when capacity is sized per
    Section IV). E[downloads per session] is the sum of visit ratios from
    the traffic equations.
    """
    if target_population <= 0:
        raise ValueError("population must be > 0")
    j = behaviour.shape[0]
    ext = external_arrival_vector(j, 1.0, alpha)
    solution = solve_traffic_equations(behaviour, ext)
    visits_per_session = float(solution.arrival_rates.sum())
    return target_population / (visits_per_session * chunk_duration)


@dataclass(frozen=True)
class ScenarioConfig:
    """One end-to-end experiment scenario."""

    name: str
    constants: PaperConstants
    num_channels: int
    chunks_per_channel: int
    horizon_seconds: float
    target_population: int
    mode: str = "p2p"  # "client-server" or "p2p"
    dt: float = 10.0
    seed: int = 2011
    zipf_exponent: float = 0.8
    alpha: float = 0.8
    cluster_scale: float = 1.0
    peer_upload_mean: Optional[float] = None  # None keeps the paper Pareto
    behaviour: Optional[np.ndarray] = None
    bootstrap_rate_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.mode not in ("client-server", "p2p"):
            raise ValueError(f"unknown mode {self.mode!r}")
        if self.num_channels <= 0 or self.chunks_per_channel <= 0:
            raise ValueError("need at least one channel and one chunk")
        if self.horizon_seconds <= 0:
            raise ValueError("horizon must be > 0")
        if self.target_population <= 0:
            raise ValueError("target population must be > 0")
        if self.dt <= 0:
            raise ValueError("dt must be > 0")

    def capacity_model(self) -> CapacityModel:
        return paper_capacity_model(self.constants)

    def behaviour_matrix(self) -> np.ndarray:
        if self.behaviour is not None:
            return self.behaviour
        return default_behaviour_matrix(self.chunks_per_channel)

    def channels(self) -> List[ChannelSpec]:
        return make_uniform_channels(
            self.num_channels,
            self.chunks_per_channel,
            self.constants.streaming_rate,
            self.constants.chunk_duration,
            behaviour=self.behaviour_matrix(),
        )

    def total_arrival_rate(self) -> float:
        return arrival_rate_for_population(
            self.target_population,
            self.behaviour_matrix(),
            self.constants.chunk_duration,
            alpha=self.alpha,
        )

    def upload_distribution(self) -> BoundedPareto:
        dist = BoundedPareto()
        if self.peer_upload_mean is not None:
            dist = dist.scaled_to_mean(self.peer_upload_mean)
        return dist

    def trace_config(self) -> TraceConfig:
        return TraceConfig(
            num_channels=self.num_channels,
            chunks_per_channel=self.chunks_per_channel,
            horizon_seconds=self.horizon_seconds,
            mean_total_arrival_rate=self.total_arrival_rate(),
            zipf_exponent=self.zipf_exponent,
            alpha=self.alpha,
            seed=self.seed,
            upload_distribution=self.upload_distribution(),
        )

    def vm_clusters(self) -> List[VirtualClusterSpec]:
        return paper_vm_clusters(self.constants, scale=self.cluster_scale)

    def nfs_clusters(self) -> List[NFSClusterSpec]:
        return paper_nfs_clusters(scale=max(1.0, self.cluster_scale))

    def sla_terms(self) -> SLATerms:
        terms = paper_sla_terms(self.constants)
        if self.cluster_scale != 1.0:
            terms = SLATerms(
                vm_budget_per_hour=terms.vm_budget_per_hour * self.cluster_scale,
                storage_budget_per_hour=terms.storage_budget_per_hour,
                interval_seconds=terms.interval_seconds,
            )
        return terms


def small_scenario(
    mode: str = "p2p",
    *,
    name: str = "small",
    horizon_hours: float = 12.0,
    num_channels: int = 4,
    chunks_per_channel: int = 8,
    target_population: int = 240,
    seed: int = 2011,
    peer_upload_mean: Optional[float] = None,
) -> ScenarioConfig:
    """A CI-sized scenario that runs the full closed loop in seconds."""
    return ScenarioConfig(
        name=name,
        constants=PAPER,
        num_channels=num_channels,
        chunks_per_channel=chunks_per_channel,
        horizon_seconds=horizon_hours * 3600.0,
        target_population=target_population,
        mode=mode,
        dt=15.0,
        seed=seed,
        cluster_scale=0.35,
        peer_upload_mean=peer_upload_mean,
    )


def paper_scenario(
    mode: str = "p2p",
    *,
    horizon_hours: float = 100.0,
    seed: int = 2011,
    peer_upload_mean: Optional[float] = None,
) -> ScenarioConfig:
    """The paper-scale scenario (Fig 4: ~100 hours, 20 channels, ~2500
    users). Expect minutes of wall-clock time per run.

    Note on cluster_scale=3: the queueing analysis requires at least one
    VM-equivalent per populated chunk, i.e. >= 400 VMs for the full
    catalogue in client-server mode, while Table II lists only 150 VMs —
    the paper's own Fig 4 likewise reserves ~2200 Mbps (~220 VMs), more
    than Table II can provision. We scale the cluster capacities and the
    VM budget x3 so the paper-scale run is feasible; shapes are
    unaffected (see EXPERIMENTS.md).
    """
    return ScenarioConfig(
        name="paper",
        constants=PAPER,
        num_channels=PAPER.num_channels,
        chunks_per_channel=PAPER.chunks_per_channel,
        horizon_seconds=horizon_hours * 3600.0,
        target_population=PAPER.target_population,
        mode=mode,
        dt=30.0,
        seed=seed,
        cluster_scale=3.0,
        peer_upload_mean=peer_upload_mean,
    )


def scenario_from_env(mode: str = "p2p", **kwargs) -> ScenarioConfig:
    """``REPRO_FULL=1`` selects paper scale, anything else the small one."""
    if os.environ.get("REPRO_FULL", "").strip() in ("1", "true", "yes"):
        return paper_scenario(mode, **kwargs)
    return small_scenario(mode, **kwargs)
