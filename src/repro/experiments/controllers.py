"""The ``ablation-controllers`` head-to-head bench: policies vs SLA.

One cell = one (controller, catalog shape) pair run end to end through
:mod:`repro.api`, scored on the three axes a provisioning policy trades
between:

* **cost** — mean hourly VM spend (``vm_cost_per_hour``),
* **quality** — mean streaming quality over the run
  (``average_quality``),
* **SLA violations** — epochs below the quality target or above the VM
  budget, priced by :class:`repro.core.sla.SLAPenaltyModel`
  (``sla_penalty_dollars`` and the two violation counts).

:func:`run_controller_cell` is the registry's cell runner;
:func:`write_controller_summary` folds a finished sweep's outcomes into
one deterministic ``summary.json`` comparison table — the artifact the
acceptance criteria (and the CI gating smoke) assert on.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.sla import SLAPenaltyModel

__all__ = [
    "CONTROLLER_SUMMARY_SCHEMA",
    "SUMMARY_METRICS",
    "run_controller_cell",
    "write_controller_summary",
    "summary_table",
]

#: Bump when the summary artifact layout changes.
CONTROLLER_SUMMARY_SCHEMA = 1

#: The comparison columns, in table order (each a mean over seeds).
SUMMARY_METRICS: Tuple[str, ...] = (
    "vm_cost_per_hour",
    "average_quality",
    "sla_penalty_dollars",
    "sla_quality_violations",
    "sla_budget_violations",
)

#: Catalog shapes the ablation runs each policy against.  ``geo`` is the
#: Zipf workload split over the default three-region topology (the
#: multi-region engine); the others use the single-region engine.
CATALOG_SHAPES: Tuple[str, ...] = ("zipf", "flash", "geo")


def run_controller_cell(
    *,
    seed: int,
    controller: str = "paper",
    catalog: str = "zipf",
    sla_quality_target: float = 0.98,
    **params,
) -> Dict[str, float]:
    """Run one (controller, catalog) cell and return its flat metrics.

    The catalog engines' summary metrics are extended with the SLA
    penalty accounting; the controller/catalog identity itself lives in
    the recorded cell params, not the metrics.
    """
    # Imported lazily: repro.api builds on the sim/workload/cloud/core
    # layers, so a module-level import here would close an import cycle
    # whichever side loads first.
    from repro.api import open_run
    from repro.sim.shard import summarize_catalog
    from repro.workload.catalog import (
        CATALOG_VARIANTS,
        catalog_config,
        geo_catalog_config,
    )

    if catalog not in CATALOG_SHAPES:
        raise ValueError(
            f"unknown catalog shape {catalog!r} "
            f"(choices: {', '.join(CATALOG_SHAPES)})"
        )
    topology = params.pop("topology", "us-eu-ap")
    if catalog == "geo":
        overrides = dict(CATALOG_VARIANTS["zipf"])
        overrides.update(params)
        config = geo_catalog_config(
            seed=seed,
            name="controllers-geo",
            topology=topology,
            **overrides,
        )
    else:
        overrides = dict(CATALOG_VARIANTS[catalog])
        overrides.update(params)
        config = catalog_config(
            seed=seed, name=f"controllers-{catalog}", **overrides
        )

    epoch_quality: List[float] = []
    vm_cost_series: List[float] = []
    with open_run(config, controller=controller) as run:
        for snap in run.epochs():
            epoch_quality.append(float(snap.quality))
            vm_cost_series.append(float(snap.vm_cost_per_hour))
        result = run.result()

    metrics = dict(summarize_catalog(result))
    penalty = SLAPenaltyModel(quality_target=sla_quality_target)
    metrics.update(
        penalty.assess(config.sla_terms(), epoch_quality, vm_cost_series)
    )
    return metrics


def _mean(values: Sequence[float]) -> float:
    return float(sum(values) / len(values)) if values else 0.0


def write_controller_summary(
    report,
    out_dir: Optional[Union[str, os.PathLike]] = None,
) -> Path:
    """Fold a finished controller sweep into ``summary.json``.

    One row per (catalog, controller) pair, each column the mean over
    that pair's seeds; rows sorted by catalog then controller, keys
    sorted — byte-deterministic for a deterministic sweep, so the
    artifact can be diffed across refactors like any other.

    ``report`` is the sweep's :class:`~repro.experiments.sweep.
    SweepReport`; the file lands next to the sweep's cell artifacts
    (``<out>/<scenario>/summary.json``) unless ``out_dir`` overrides the
    directory.
    """
    groups: Dict[Tuple[str, str], List[Dict[str, float]]] = {}
    for outcome in report.outcomes:
        params = dict(outcome.cell.params)
        key = (
            str(params.get("catalog", "zipf")),
            str(params.get("controller", "paper")),
        )
        groups.setdefault(key, []).append(outcome.metrics)

    rows = []
    for (catalog, controller) in sorted(groups):
        cells = groups[(catalog, controller)]
        row: Dict[str, object] = {
            "catalog": catalog,
            "controller": controller,
            "seeds": len(cells),
        }
        for name in SUMMARY_METRICS:
            row[name] = _mean(
                [float(m[name]) for m in cells if name in m]
            )
        rows.append(row)

    payload = {
        "format": "repro-controller-summary",
        "schema": CONTROLLER_SUMMARY_SCHEMA,
        "scenario": report.scenario,
        "metrics": list(SUMMARY_METRICS),
        "rows": rows,
    }
    directory = (
        Path(out_dir) if out_dir is not None
        else Path(report.out_dir) / report.scenario
    )
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / "summary.json"
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)
    return path


def summary_table(payload: Dict) -> Tuple[List[str], List[List[str]]]:
    """Render a summary payload as (headers, rows) for tabular printing."""
    headers = ["catalog", "controller"] + [
        name for name in payload["metrics"]
    ]
    rows = []
    for row in payload["rows"]:
        rendered = [str(row["catalog"]), str(row["controller"])]
        for name in payload["metrics"]:
            value = row.get(name, 0.0)
            rendered.append(
                f"{value:.3f}" if isinstance(value, float) else str(value)
            )
        rows.append(rendered)
    return headers, rows
