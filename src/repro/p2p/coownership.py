"""Co-ownership probability Psi(a, b) (paper Section IV-C).

Psi(a, b) is the probability that a randomly chosen peer in the channel
simultaneously holds chunks a and b in its buffer. The paper computes it by
summing over all queue-transition sequences visiting both chunks, with the
details in an unavailable technical report; this module provides two
substitutes (documented in DESIGN.md):

* :func:`independent_coownership` — treat per-chunk ownership as independent
  events: Psi(a, b) = (nu_a / N)(nu_b / N). Fast, closed-form, and preserves
  the monotone structure Eqn (5) relies on (popular chunk pairs deduct more
  committed bandwidth).
* :func:`empirical_coownership` — measure Psi directly from a boolean
  peer-by-chunk buffer-ownership matrix, which the VoD simulator's tracker
  maintains; this is what a deployed CloudMedia controller would use.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["independent_coownership", "empirical_coownership", "CoOwnershipModel"]

# A co-ownership model maps (chunk_a, chunk_b) -> probability in [0, 1].
CoOwnershipModel = Callable[[int, int], float]


@dataclass(frozen=True)
class _IndependentModel:
    """Psi(a,b) = f_a * f_b with f the per-chunk ownership fractions."""

    fractions: np.ndarray

    def __call__(self, chunk_a: int, chunk_b: int) -> float:
        if chunk_a == chunk_b:
            return float(self.fractions[chunk_a])
        return float(self.fractions[chunk_a] * self.fractions[chunk_b])


def independent_coownership(
    owners: np.ndarray, population: float
) -> CoOwnershipModel:
    """Independence-approximation Psi from equilibrium owner counts.

    Ownership fractions are clipped to [0, 1]: the analysis can produce
    nu_i slightly above the population for chunks nearly everyone holds.

    Parameters
    ----------
    owners:
        Per-chunk expected owner counts nu_i
        (:class:`repro.p2p.ownership.OwnershipResult.owners`).
    population:
        Expected total channel population N.
    """
    nu = np.asarray(owners, dtype=float)
    if np.any(nu < 0):
        raise ValueError("owner counts must be nonnegative")
    if population < 0:
        raise ValueError("population must be nonnegative")
    if population == 0:
        fractions = np.zeros_like(nu)
    else:
        fractions = np.clip(nu / population, 0.0, 1.0)
    return _IndependentModel(fractions)


@dataclass(frozen=True)
class _EmpiricalModel:
    """Psi measured from a peers-by-chunks ownership matrix."""

    joint: np.ndarray  # joint[a, b] = fraction of peers owning both a and b

    def __call__(self, chunk_a: int, chunk_b: int) -> float:
        return float(self.joint[chunk_a, chunk_b])


def empirical_coownership(buffer_matrix: np.ndarray) -> CoOwnershipModel:
    """Measure Psi from a boolean (num_peers x num_chunks) buffer matrix.

    ``buffer_matrix[p, i]`` is truthy iff peer p currently buffers chunk i.
    Returns the exact empirical joint ownership frequencies. An empty peer
    set yields Psi == 0 everywhere.
    """
    buf = np.asarray(buffer_matrix)
    if buf.ndim != 2:
        raise ValueError("buffer matrix must be 2-D (peers x chunks)")
    num_peers, num_chunks = buf.shape
    if num_peers == 0:
        return _EmpiricalModel(np.zeros((num_chunks, num_chunks)))
    b = buf.astype(float)
    joint = (b.T @ b) / num_peers
    return _EmpiricalModel(joint)
