"""P2P VoD bandwidth-contribution analysis (paper Section IV-C).

In the P2P mode the upload bandwidth s_i = R * m_i required to serve chunk i
is split between the cloud (Delta_i) and the peers who own the chunk
(Gamma_i):

* :mod:`repro.p2p.ownership` — Proposition 1: the equilibrium distribution
  of chunk-i owners across the chunk queues, and the total owner count
  nu_i.
* :mod:`repro.p2p.coownership` — estimators of the co-ownership probability
  Psi(pi_j, pi_k) used by the rarest-first deduction in Eqn (5). The paper
  relegates the exact computation to an unavailable technical report; we
  provide an independence approximation and an empirical estimator and
  document the substitution in DESIGN.md.
* :mod:`repro.p2p.contribution` — Eqn (5): peer upload contribution under
  rarest-first scheduling, and the resulting cloud supplement
  Delta_i = R*m_i - Gamma_i.
"""

from repro.p2p.contribution import (
    P2PCapacityResult,
    peer_contribution,
    solve_p2p_channel_capacity,
)
from repro.p2p.coownership import (
    CoOwnershipModel,
    empirical_coownership,
    independent_coownership,
)
from repro.p2p.ownership import OwnershipResult, solve_ownership

__all__ = [
    "P2PCapacityResult",
    "peer_contribution",
    "solve_p2p_channel_capacity",
    "CoOwnershipModel",
    "empirical_coownership",
    "independent_coownership",
    "OwnershipResult",
    "solve_ownership",
]
