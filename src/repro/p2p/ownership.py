"""Equilibrium chunk-ownership propagation (paper Proposition 1).

Let nu_ij be the expected number of peers currently in chunk queue j whose
playback buffer already holds chunk i. Peers keep every downloaded chunk
until they leave the channel, so ownership of chunk i "flows" with peers as
they move between queues according to the transfer matrix P. Proposition 1
states the equilibrium balance

    E[nu_ij] = sum_l E[nu_il] * P[l, j]      for all j != i,

anchored by E[nu_ii] = E[n_i] (peers still *downloading* chunk i, who become
owners as soon as they move on and are not counted as suppliers while in
queue i). For each chunk i this is a linear fixed point in the unknowns
{nu_ij : j != i}; we solve it directly with a dense linear solve per chunk.

The total supplier count for chunk i is nu_i = sum_{j != i} nu_ij.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.queueing.transitions import validate_transition_matrix

__all__ = ["OwnershipResult", "solve_ownership"]


@dataclass(frozen=True)
class OwnershipResult:
    """Equilibrium ownership counts for one channel.

    Attributes
    ----------
    per_queue:
        Matrix ``per_queue[i, j] = E[nu_ij]``: expected peers in queue j
        owning chunk i. The diagonal holds E[n_i] (the anchor), which is
        *excluded* from supplier totals.
    owners:
        Vector ``owners[i] = E[nu_i] = sum_{j != i} per_queue[i, j]``.
    population:
        Total expected channel population ``sum_i E[n_i]``.
    """

    per_queue: np.ndarray = field(repr=False)
    owners: np.ndarray = field(repr=False)
    population: float

    @property
    def ownership_fraction(self) -> np.ndarray:
        """owners_i / population, the per-chunk replication level in [0, ...)."""
        if self.population <= 0:
            return np.zeros_like(self.owners)
        return self.owners / self.population

    def rarest_order(self) -> np.ndarray:
        """Chunk indices sorted by increasing owner count (rarest first).

        Ties break on the chunk index so the order is deterministic.
        """
        return np.lexsort((np.arange(self.owners.size), self.owners))


def solve_ownership(
    transition_matrix: np.ndarray,
    expected_in_system: np.ndarray,
) -> OwnershipResult:
    """Solve Proposition 1 for every chunk of a channel.

    Parameters
    ----------
    transition_matrix:
        Chunk-transfer matrix P^(c) (validated substochastic).
    expected_in_system:
        E[n_i] per chunk queue from the capacity analysis
        (:func:`repro.queueing.capacity.solve_channel_capacity`).
    """
    p = validate_transition_matrix(transition_matrix)
    n = np.asarray(expected_in_system, dtype=float)
    if n.shape != (p.shape[0],):
        raise ValueError(
            f"expected_in_system shape {n.shape} does not match matrix {p.shape}"
        )
    if np.any(n < 0):
        raise ValueError("expected_in_system must be nonnegative")

    j_total = p.shape[0]
    per_queue = np.zeros((j_total, j_total), dtype=float)

    for i in range(j_total):
        # Unknowns x_j = nu_ij for j != i; x satisfies
        #   x_j = sum_{l != i} x_l P[l, j] + n_i * P[i, j]
        # i.e. (I - P_sub^T) x = n_i * P[i, others]^T where P_sub drops
        # row i and column i.
        others = [j for j in range(j_total) if j != i]
        if not others:
            per_queue[i, i] = n[i]
            continue
        p_sub = p[np.ix_(others, others)]
        rhs = n[i] * p[i, others]
        identity = np.eye(len(others))
        x = np.linalg.solve(identity - p_sub.T, rhs)
        x = np.where(x < 0, 0.0, x)  # clamp numerical noise
        per_queue[i, others] = x
        per_queue[i, i] = n[i]

    owners = per_queue.sum(axis=1) - np.diag(per_queue)
    return OwnershipResult(
        per_queue=per_queue,
        owners=owners,
        population=float(n.sum()),
    )
