"""Rarest-first peer contribution and cloud supplement (paper Eqn (5)).

Chunks are served by peers in increasing order of replication (rarest
first). Walking chunks from rarest to most common, the bandwidth peers can
still contribute to chunk pi_k is their total upload capacity
nu_{pi_k} * u minus what owners of pi_k have already committed to rarer
chunks; the contribution is capped by the chunk's streaming demand. The
cloud supplies the remaining fraction of the chunk's server capacity.

Unit reconciliation (documented in DESIGN.md). The paper prices the
per-chunk demand addressed by peers as ``m_i * r`` and the cloud
supplement as ``Delta_i = R m_i - Gamma_i``. Taken literally this is
dimensionally inconsistent twice over:

* a chunk queue holds E[n_i] concurrent viewers, each needing the
  streaming rate r to sustain playback, so the bandwidth demand peers can
  address is ``E[n_i] * r`` — typically far larger than ``m_i * r``
  (m_i counts R-sized servers, and R = 25 r in the paper's setup);
* subtracting a streaming-rate quantity from a VM-rate quantity caps the
  possible peer saving at r/R ~ 4%, contradicting the paper's own Figs 4,
  7 and 10 where P2P cuts cloud cost roughly tenfold.

The consistent reading, which reproduces those figures: peers cover a
*fraction* of each chunk's streams, and the cloud provisions the
uncovered fraction of the queueing capacity:

    demand_i  = E[n_i] * r
    Gamma_i  <= min(demand_i, available peer upload)
    Delta_i   = R * m_i * (1 - Gamma_i / demand_i)

:func:`peer_contribution` and :func:`cloud_supplement` implement this
reading by default; the paper's literal formulas remain available via
``demand="servers"`` / ``accounting="literal"`` for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.p2p.coownership import CoOwnershipModel, independent_coownership
from repro.p2p.ownership import OwnershipResult, solve_ownership
from repro.queueing.capacity import CapacityModel, ChannelCapacityResult, solve_channel_capacity

__all__ = [
    "peer_contribution",
    "cloud_supplement",
    "P2PCapacityResult",
    "solve_p2p_channel_capacity",
]


def _chunk_demand(
    servers: np.ndarray,
    in_system: np.ndarray,
    streaming_rate: float,
    demand: str,
) -> np.ndarray:
    if demand == "viewers":
        return np.asarray(in_system, dtype=float) * streaming_rate
    if demand == "servers":  # the paper's literal m_i * r
        return np.asarray(servers, dtype=float) * streaming_rate
    raise ValueError(f"unknown demand model {demand!r}")


def peer_contribution(
    servers: np.ndarray,
    owners: np.ndarray,
    population: float,
    peer_upload: float,
    streaming_rate: float,
    *,
    in_system: Optional[np.ndarray] = None,
    coownership: Optional[CoOwnershipModel] = None,
    demand: str = "viewers",
) -> np.ndarray:
    """Expected peer upload bandwidth Gamma_i per chunk (paper Eqn (5)).

    Parameters
    ----------
    servers:
        Required queueing servers m_i per chunk (from the capacity solver).
    owners:
        Expected owner counts nu_i per chunk (Proposition 1).
    population:
        Expected total channel population N = sum_i E[n_i].
    peer_upload:
        Average per-peer upload capacity u, bytes/second.
    streaming_rate:
        Playback rate r, bytes/second.
    in_system:
        E[n_i] per chunk; required for the default ``demand="viewers"``
        model where the chunk's peer-addressable demand is E[n_i] * r.
    coownership:
        Psi model; defaults to the independence approximation built from
        ``owners`` and ``population``.
    demand:
        ``"viewers"`` (default, consistent units) or ``"servers"`` (the
        paper's literal m_i * r).

    Returns
    -------
    Gamma, per-chunk peer upload bandwidths (bytes/second), elementwise in
    [0, demand_i].
    """
    m = np.asarray(servers, dtype=float)
    nu = np.asarray(owners, dtype=float)
    if m.shape != nu.shape:
        raise ValueError("servers and owners must have matching shapes")
    if np.any(m < 0) or np.any(nu < 0):
        raise ValueError("servers and owners must be nonnegative")
    if peer_upload < 0:
        raise ValueError(f"peer upload must be >= 0, got {peer_upload}")
    if streaming_rate <= 0:
        raise ValueError(f"streaming rate must be > 0, got {streaming_rate}")
    if population < 0:
        raise ValueError("population must be nonnegative")
    if demand == "viewers" and in_system is None:
        raise ValueError('demand="viewers" requires the in_system vector')
    if in_system is not None:
        n_vec = np.asarray(in_system, dtype=float)
        if n_vec.shape != m.shape:
            raise ValueError("in_system must match the servers shape")
        if np.any(n_vec < 0):
            raise ValueError("in_system must be nonnegative")
    else:
        n_vec = np.zeros_like(m)

    demands = _chunk_demand(m, n_vec, streaming_rate, demand)

    if coownership is None:
        coownership = independent_coownership(nu, population)

    num_chunks = m.size
    # Rarest-first order: ascending owner count, chunk index breaking ties.
    order = np.lexsort((np.arange(num_chunks), nu))
    gamma = np.zeros(num_chunks, dtype=float)

    for rank, chunk in enumerate(order):
        supply = nu[chunk] * peer_upload
        # Deduct bandwidth that owners of this chunk already committed to
        # every rarer chunk.
        for prev in order[:rank]:
            if gamma[prev] <= 0 or nu[prev] <= 0:
                continue
            both = coownership(int(prev), int(chunk)) * population
            supply -= both * (gamma[prev] / nu[prev])
        gamma[chunk] = min(demands[chunk], max(0.0, supply))
    return gamma


def cloud_supplement(
    servers: np.ndarray,
    peer_bandwidth: np.ndarray,
    vm_bandwidth: float,
    streaming_rate: float,
    *,
    in_system: Optional[np.ndarray] = None,
    accounting: str = "coverage",
) -> np.ndarray:
    """Cloud capacity Delta_i given the peer contribution Gamma_i.

    ``accounting="coverage"`` (default): peers cover the fraction
    Gamma_i / (E[n_i] r) of the chunk's streams; the cloud provisions the
    uncovered fraction of the queueing capacity,
    Delta = R m (1 - Gamma / (E[n] r)). Requires ``in_system``.

    ``accounting="server-equivalent"``: Delta = R (m - Gamma / r); peer
    bandwidth retires whole servers at streaming-rate granularity.

    ``accounting="literal"``: the paper's Eqn as typeset,
    Delta = R m - Gamma.

    All variants are clamped at zero.
    """
    m = np.asarray(servers, dtype=float)
    gamma = np.asarray(peer_bandwidth, dtype=float)
    if m.shape != gamma.shape:
        raise ValueError("servers and peer_bandwidth must have matching shapes")
    if vm_bandwidth <= 0 or streaming_rate <= 0:
        raise ValueError("rates must be > 0")
    if accounting == "coverage":
        if in_system is None:
            raise ValueError('accounting="coverage" requires in_system')
        n_vec = np.asarray(in_system, dtype=float)
        if n_vec.shape != m.shape:
            raise ValueError("in_system must match the servers shape")
        demand = n_vec * streaming_rate
        coverage = np.divide(
            gamma, demand, out=np.zeros_like(gamma), where=demand > 0
        )
        delta = vm_bandwidth * m * (1.0 - np.clip(coverage, 0.0, 1.0))
    elif accounting == "server-equivalent":
        delta = vm_bandwidth * (m - gamma / streaming_rate)
    elif accounting == "literal":
        delta = vm_bandwidth * m - gamma
    else:
        raise ValueError(f"unknown accounting {accounting!r}")
    return np.maximum(0.0, delta)


@dataclass(frozen=True)
class P2PCapacityResult:
    """Capacity split between peers and cloud for one P2P channel."""

    capacity: ChannelCapacityResult
    ownership: OwnershipResult
    peer_bandwidth: np.ndarray = field(repr=False)  # Gamma_i
    cloud_demand: np.ndarray = field(repr=False)  # Delta_i

    @property
    def servers(self) -> np.ndarray:
        return self.capacity.servers

    @property
    def total_cloud_demand(self) -> float:
        return float(self.cloud_demand.sum())

    @property
    def total_peer_bandwidth(self) -> float:
        return float(self.peer_bandwidth.sum())

    @property
    def peer_offload_ratio(self) -> float:
        """Fraction of the client-server cloud capacity that peers replace.

        Computed as 1 - Delta / (R m), directly the relative cloud saving,
        in [0, 1].
        """
        total = self.capacity.total_bandwidth
        if total == 0:
            return 0.0
        return float(1.0 - self.cloud_demand.sum() / total)


def solve_p2p_channel_capacity(
    model: CapacityModel,
    transition_matrix: np.ndarray,
    external_rate: float,
    peer_upload: float,
    *,
    alpha: float = 0.8,
    coownership: Optional[CoOwnershipModel] = None,
    demand: str = "viewers",
    accounting: str = "coverage",
) -> P2PCapacityResult:
    """End-to-end P2P capacity analysis for one channel (Section IV-C).

    Runs the client-server analysis to get m_i and E[n_i], propagates
    ownership (Proposition 1), computes the rarest-first peer contribution
    (Eqn (5)) and finally the cloud supplement Delta_i (see
    :func:`cloud_supplement` for the accounting readings).
    """
    capacity = solve_channel_capacity(
        model, transition_matrix, external_rate, alpha=alpha
    )
    # Anchor populations at the Little target lambda_i * T0: every viewer
    # occupies a playback slot (and keeps uploading) for ~T0 per chunk even
    # when the download itself finishes early, so both the ownership counts
    # and the per-chunk streaming demand scale with lambda_i * T0, not with
    # the (possibly much smaller) downloading population E[n_i].
    populations = capacity.little_target
    ownership = solve_ownership(transition_matrix, populations)
    gamma = peer_contribution(
        capacity.servers,
        ownership.owners,
        ownership.population,
        peer_upload,
        model.streaming_rate,
        in_system=populations,
        coownership=coownership,
        demand=demand,
    )
    delta = cloud_supplement(
        capacity.servers,
        gamma,
        model.vm_bandwidth,
        model.streaming_rate,
        in_system=populations,
        accounting=accounting,
    )
    return P2PCapacityResult(
        capacity=capacity,
        ownership=ownership,
        peer_bandwidth=gamma,
        cloud_demand=delta,
    )
