"""Canonical JSON artifacts for service-hosted runs.

A run's result travels over HTTP as ONE canonical JSON document, and
the byte-identity of that document is the service's parity contract:
submitting an :class:`~repro.api.EngineConfig` through ``POST /runs``
and fetching ``GET /runs/{id}/result`` yields exactly the bytes of
:func:`artifact_bytes` applied to the same config's
``open_run(...).result()`` — sha256-comparable across processes,
restarts and checkpoint/resume boundaries.

Canonical means: keys sorted, no whitespace, plain Python scalars only
(numpy coerced), one trailing newline.  The document carries the flat
summary metrics (the sweep schema from
:func:`repro.sim.shard.summarize_catalog`) plus the full step/epoch
series, so it is diffable when a parity check ever fails.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict

__all__ = ["result_payload", "artifact_bytes", "sha256_hex"]


def _plain(value: Any) -> Any:
    """Numpy scalars -> plain Python (json.dumps rejects np.float64)."""
    return value.item() if hasattr(value, "item") else value


def _closed_loop_payload(result) -> Dict[str, Any]:
    populations = list(result.population_series)
    return {
        "kind": "closed-loop",
        "summary": {
            "average_quality": float(result.average_quality),
            "mean_vm_cost_per_hour": float(result.mean_vm_cost_per_hour),
            "final_population": int(populations[-1]) if populations else 0,
            "peak_population": int(max(populations)) if populations else 0,
            "epochs": len(result.interval_times),
        },
        "series": {
            "interval_times": [float(v) for v in result.interval_times],
            "provisioned": [float(v) for v in result.provisioned_series],
            "used": [float(v) for v in result.used_series],
            "peer": [float(v) for v in result.peer_series],
            "populations": [int(v) for v in populations],
            "vm_cost": [float(v) for v in result.vm_cost_series],
        },
    }


def _catalog_payload(kind: str, result) -> Dict[str, Any]:
    from repro.sim.shard import summarize_catalog

    payload: Dict[str, Any] = {
        "kind": kind,
        "summary": {
            key: _plain(value)
            for key, value in summarize_catalog(result).items()
        },
        "series": {
            "times": result.times.tolist(),
            "cloud_used": result.cloud_used.tolist(),
            "peer_used": result.peer_used.tolist(),
            "provisioned": result.provisioned.tolist(),
            "shortfall": result.shortfall.tolist(),
            "populations": result.populations.tolist(),
            "quality_times": result.quality_times.tolist(),
            "quality": result.quality.tolist(),
            "epoch_times": [float(v) for v in result.epoch_times],
            "vm_cost": [float(v) for v in result.vm_cost_series],
        },
        "channel_populations": {
            str(channel): int(count)
            for channel, count in sorted(result.channel_populations.items())
        },
    }
    if kind == "geo-catalog":
        payload["geo"] = {
            "region_names": list(result.region_names),
            "epoch_discounts": [float(v) for v in result.epoch_discounts],
            "epoch_remote_fractions": [
                float(v) for v in result.epoch_remote_fractions
            ],
            "epoch_egress_rates": [
                float(v) for v in result.epoch_egress_rates
            ],
        }
    return payload


def result_payload(kind: str, result) -> Dict[str, Any]:
    """One JSON-serializable document for a drained run's result.

    ``kind`` is the :attr:`repro.api.EngineConfig.kind` tag; ``result``
    the matching monolithic artifact (``ClosedLoopResult`` /
    ``CatalogResult`` / ``GeoCatalogResult``).
    """
    if kind == "closed-loop":
        return _closed_loop_payload(result)
    if kind in ("catalog", "geo-catalog"):
        return _catalog_payload(kind, result)
    raise ValueError(f"unknown engine kind {kind!r}")


def artifact_bytes(payload: Dict[str, Any]) -> bytes:
    """The payload's canonical encoding (the sha256-comparable bytes)."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("ascii")


def sha256_hex(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()
