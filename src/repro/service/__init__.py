"""`repro.service`: a long-lived, multi-run host over :mod:`repro.api`.

The paper's premise is provisioning as an *online service* — a
controller that watches demand and reshapes cloud capacity continuously.
This package is that face of the repo: where :func:`repro.api.open_run`
executes one run per process, the service hosts many concurrent runs
behind one asyncio event loop and one HTTP port, without giving up any
of the engine contracts (byte-determinism, checkpoint/resume,
worker-count invariance).

Three stdlib-only layers:

* :mod:`repro.service.host` — :class:`RunHost`: a bounded pool of
  concurrent :class:`repro.api.Run` drivers (admission queue with
  backpressure; per-run epoch advance pushed through a worker thread so
  the event loop never blocks on a provisioning epoch), periodic
  auto-checkpoints into a state directory, and crash recovery that
  re-adopts checkpointed runs on startup.
* :mod:`repro.service.server` — :class:`ServiceServer`: the asyncio
  HTTP front end (``POST /runs``, status, Server-Sent-Events epoch
  streams with mid-run replay, pause/resume/checkpoint controls, and a
  single-file live dashboard on ``GET /``).
* :mod:`repro.service.client` — :class:`ServiceClient`: a minimal
  blocking client for tests, examples and the ``repro submit`` CLI.

The canonical result document a run serves over HTTP is built by
:mod:`repro.service.artifact`; its bytes (hence sha256) are identical
to encoding the same :class:`~repro.api.EngineConfig`'s ``open_run``
result directly — the service never perturbs what it hosts.

See ``docs/service.md`` for the endpoint reference, the run state
machine, the state-dir layout and the crash-recovery contract.
"""

from repro.service.artifact import artifact_bytes, result_payload, sha256_hex
from repro.service.client import ServiceClient, ServiceError
from repro.service.host import (
    QueueFullError,
    RunHost,
    UnknownRunError,
)
from repro.service.server import ServiceServer

__all__ = [
    "RunHost",
    "ServiceServer",
    "ServiceClient",
    "ServiceError",
    "QueueFullError",
    "UnknownRunError",
    "artifact_bytes",
    "result_payload",
    "sha256_hex",
]
