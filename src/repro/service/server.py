"""The asyncio HTTP front end over :class:`repro.service.host.RunHost`.

Hand-rolled HTTP/1.1 on :func:`asyncio.start_server` — the stdlib has
no async HTTP server and the protocol surface here is tiny (short
request lines, JSON bodies, and one long-lived streaming response
type).  Every connection serves one request: responses carry
``Connection: close``, which is also the only framing SSE admits.

Endpoints::

    GET    /                      the live dashboard (single-file HTML)
    GET    /healthz               liveness probe
    POST   /runs                  submit (body: EngineConfig.to_dict())
    GET    /runs                  list run status documents
    GET    /runs/{id}             one run's status document
    GET    /runs/{id}/result      canonical artifact JSON (409 until done)
    GET    /runs/{id}/events      SSE epoch stream (mid-run join + replay)
    POST   /runs/{id}/pause       pause at the next epoch boundary
    POST   /runs/{id}/resume      resume a paused run
    POST   /runs/{id}/checkpoint  checkpoint at the next epoch boundary
    DELETE /runs/{id}             cancel (live) / purge (terminal)

Error mapping: malformed configs are 400, unknown runs 404, invalid
state transitions 409, a full admission queue 503 with ``Retry-After``.

The SSE stream replays the run's retained epoch ring on join (honoring
``Last-Event-ID``, so an ``EventSource`` reconnect never re-reads
epochs it has seen), then relays live events; a comment frame goes out
as a keepalive when the run is quiet, and a ``state`` event naming a
terminal state ends the stream.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Dict, Optional, Tuple

from repro.api import EngineConfig
from repro.service.dashboard import DASHBOARD_HTML
from repro.service.host import (
    STREAM_END,
    TERMINAL_STATES,
    QueueFullError,
    RunHost,
    UnknownRunError,
)

__all__ = ["ServiceServer"]

_MAX_BODY = 8 * 1024 * 1024
#: Seconds of SSE silence before a ``: keepalive`` comment frame.
_SSE_KEEPALIVE = 15.0

_REASONS = {
    200: "OK",
    201: "Created",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    503: "Service Unavailable",
}


class _HttpError(Exception):
    """Terminate request handling with a specific status + message."""

    def __init__(
        self, status: int, message: str, headers: Optional[Dict[str, str]] = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.message = message
        self.headers = headers or {}


class ServiceServer:
    """Bind a :class:`RunHost` to an HTTP port.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start` (that is how the tests run many servers in parallel).
    """

    def __init__(
        self, host: RunHost, *, bind: str = "127.0.0.1", port: int = 8352
    ) -> None:
        self.host = host
        self.bind = bind
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> "ServiceServer":
        await self.host.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.bind, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.host.close()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, path, headers, body = request
            await self._route(method, path, headers, body, writer)
        except _HttpError as exc:
            await self._send_json(
                writer,
                exc.status,
                {"error": exc.message},
                extra_headers=exc.headers,
            )
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response
        except Exception as exc:  # pragma: no cover - handler backstop
            try:
                await self._send_json(
                    writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                )
            except OSError:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        try:
            request_line = await reader.readline()
        except (ConnectionResetError, asyncio.IncompleteReadError):
            return None
        if not request_line:
            return None
        parts = request_line.decode("latin-1").split()
        if len(parts) != 3:
            raise _HttpError(400, "malformed request line")
        method, target, _version = parts
        headers: Dict[str, str] = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise _HttpError(413, f"body over {_MAX_BODY} bytes")
        body = await reader.readexactly(length) if length else b""
        path = target.split("?", 1)[0]
        return method.upper(), path, headers, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    async def _route(
        self,
        method: str,
        path: str,
        headers: Dict[str, str],
        body: bytes,
        writer: asyncio.StreamWriter,
    ) -> None:
        if path == "/" and method == "GET":
            await self._send(
                writer,
                200,
                DASHBOARD_HTML.encode("utf-8"),
                "text/html; charset=utf-8",
            )
            return
        if path == "/healthz" and method == "GET":
            await self._send_json(writer, 200, {"status": "ok"})
            return
        if path == "/runs":
            if method == "POST":
                await self._post_run(writer, body)
                return
            if method == "GET":
                await self._send_json(writer, 200, {"runs": self.host.runs()})
                return
            raise _HttpError(405, f"{method} not supported on {path}")

        segments = [s for s in path.split("/") if s]
        if not segments or segments[0] != "runs" or len(segments) > 3:
            raise _HttpError(404, f"no route for {path}")
        run_id = segments[1]
        action = segments[2] if len(segments) == 3 else None
        try:
            if action is None:
                await self._run_root(method, run_id, writer)
            elif method == "GET" and action == "result":
                await self._get_result(run_id, writer)
            elif method == "GET" and action == "events":
                await self._stream_events(run_id, headers, writer)
            elif method == "POST" and action in ("pause", "resume", "checkpoint"):
                await self._control(run_id, action, writer)
            else:
                raise _HttpError(405, f"{method} not supported on {path}")
        except UnknownRunError:
            raise _HttpError(404, f"no run {run_id!r}") from None
        except RuntimeError as exc:
            raise _HttpError(409, str(exc)) from None

    async def _post_run(self, writer: asyncio.StreamWriter, body: bytes) -> None:
        try:
            document = json.loads(body.decode("utf-8"))
            config = EngineConfig.from_dict(document)
        except (ValueError, TypeError, UnicodeDecodeError) as exc:
            raise _HttpError(400, f"bad engine config: {exc}") from None
        try:
            run_id = self.host.submit(config)
        except QueueFullError as exc:
            raise _HttpError(
                503, str(exc), headers={"Retry-After": "1"}
            ) from None
        await self._send_json(writer, 201, self.host.run_info(run_id))

    async def _run_root(
        self, method: str, run_id: str, writer: asyncio.StreamWriter
    ) -> None:
        if method == "GET":
            await self._send_json(writer, 200, self.host.run_info(run_id))
        elif method == "DELETE":
            self.host.cancel(run_id)
            await self._send_json(writer, 200, {"id": run_id, "cancelled": True})
        else:
            raise _HttpError(405, f"{method} not supported on /runs/{run_id}")

    async def _get_result(
        self, run_id: str, writer: asyncio.StreamWriter
    ) -> None:
        data = self.host.artifact(run_id)  # RuntimeError -> 409 until done
        await self._send(writer, 200, data, "application/json")

    async def _control(
        self, run_id: str, action: str, writer: asyncio.StreamWriter
    ) -> None:
        if action == "pause":
            self.host.pause(run_id)
            await self._send_json(writer, 200, {"id": run_id, "pause": "requested"})
        elif action == "resume":
            self.host.resume_run(run_id)
            await self._send_json(writer, 200, {"id": run_id, "resume": "requested"})
        else:
            path = await self.host.request_checkpoint(run_id)
            await self._send_json(
                writer, 200, {"id": run_id, "checkpoint": path}
            )

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------
    async def _stream_events(
        self,
        run_id: str,
        headers: Dict[str, str],
        writer: asyncio.StreamWriter,
    ) -> None:
        after = 0
        last_id = headers.get("last-event-id", "")
        if last_id.isdigit():
            after = int(last_id)
        replay, queue = self.host.subscribe(run_id, after=after)
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/event-stream\r\n"
                b"Cache-Control: no-store\r\n"
                b"Connection: close\r\n\r\n"
            )
            for event in replay:
                writer.write(_sse_frame(event))
            await writer.drain()
            if queue is None:
                return
            while True:
                try:
                    event = await asyncio.wait_for(
                        queue.get(), timeout=_SSE_KEEPALIVE
                    )
                except asyncio.TimeoutError:
                    writer.write(b": keepalive\n\n")
                    await writer.drain()
                    continue
                if event is STREAM_END:
                    return
                writer.write(_sse_frame(event))
                await writer.drain()
                if (
                    event["event"] == "state"
                    and event["data"].get("state") in TERMINAL_STATES
                ):
                    return
        finally:
            if queue is not None:
                self.host.unsubscribe(run_id, queue)

    # ------------------------------------------------------------------
    # Response plumbing
    # ------------------------------------------------------------------
    async def _send(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        content_type: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        await self._send(writer, status, body, "application/json", extra_headers)


def _sse_frame(event: Dict[str, Any]) -> bytes:
    """One Server-Sent-Events frame (``id`` / ``event`` / ``data``)."""
    data = json.dumps(event["data"], sort_keys=True)
    return (
        f"id: {event['id']}\nevent: {event['event']}\ndata: {data}\n\n"
    ).encode("utf-8")
