"""A minimal blocking client for the service (stdlib ``http.client``).

The client is the consumer side of the parity contract: everything it
returns is either the run's status document, the SSE event stream, or
the canonical artifact *bytes* (hash them yourself; the service never
re-encodes).  It backs the ``repro submit`` CLI and the service tests.

No wall-clock reads anywhere: waiting is expressed as bounded attempt
loops around ``time.sleep`` (determinism lint bans the clock calls, and
attempt counts make test timeouts explicit instead of time-dependent).
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.api import EngineConfig

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(RuntimeError):
    """A non-2xx service response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Talk to a running ``repro serve`` instance.

    Parameters
    ----------
    url:
        Base URL, e.g. ``http://127.0.0.1:8352`` (the scheme is
        tolerated and stripped; only plain HTTP is spoken).
    poll_seconds:
        Sleep between attempts in the waiting helpers.
    """

    def __init__(self, url: str, *, poll_seconds: float = 0.2) -> None:
        address = url.split("://", 1)[-1].rstrip("/")
        host, _, port = address.partition(":")
        self.host = host or "127.0.0.1"
        self.port = int(port) if port else 80
        self.poll_seconds = float(poll_seconds)

    # ------------------------------------------------------------------
    # Raw request plumbing
    # ------------------------------------------------------------------
    def _request(
        self, method: str, path: str, body: Optional[bytes] = None
    ) -> bytes:
        connection = http.client.HTTPConnection(self.host, self.port)
        try:
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            if response.status >= 400:
                message = data.decode("utf-8", "replace").strip()
                try:
                    message = json.loads(message)["error"]
                except (ValueError, KeyError, TypeError):
                    pass
                raise ServiceError(response.status, message)
            return data
        finally:
            connection.close()

    def _json(self, method: str, path: str, body: Optional[bytes] = None) -> Any:
        return json.loads(self._request(method, path, body).decode("utf-8"))

    # ------------------------------------------------------------------
    # The API surface
    # ------------------------------------------------------------------
    def healthy(self) -> bool:
        try:
            return self._json("GET", "/healthz").get("status") == "ok"
        except (ServiceError, OSError):
            return False

    def wait_healthy(self, attempts: int = 100) -> None:
        """Poll ``/healthz`` until it answers (serve-subprocess startup)."""
        for remaining in range(attempts, 0, -1):
            if self.healthy():
                return
            if remaining > 1:
                time.sleep(self.poll_seconds)
        raise ServiceError(503, f"service not healthy after {attempts} attempts")

    def submit(self, config: Union[EngineConfig, Dict[str, Any]]) -> str:
        """POST a run; returns its id."""
        document = (
            config.to_dict() if isinstance(config, EngineConfig) else config
        )
        body = json.dumps(document).encode("utf-8")
        return self._json("POST", "/runs", body)["id"]

    def runs(self) -> List[Dict[str, Any]]:
        return self._json("GET", "/runs")["runs"]

    def run(self, run_id: str) -> Dict[str, Any]:
        return self._json("GET", f"/runs/{run_id}")

    def pause(self, run_id: str) -> None:
        self._json("POST", f"/runs/{run_id}/pause")

    def resume(self, run_id: str) -> None:
        self._json("POST", f"/runs/{run_id}/resume")

    def checkpoint(self, run_id: str) -> str:
        """Checkpoint at the next epoch boundary; returns the host path."""
        return self._json("POST", f"/runs/{run_id}/checkpoint")["checkpoint"]

    def cancel(self, run_id: str) -> None:
        self._json("DELETE", f"/runs/{run_id}")

    def result_bytes(self, run_id: str, attempts: int = 1) -> bytes:
        """The canonical artifact bytes (sha256 these for parity checks).

        With ``attempts > 1``, retries through the 409 window while the
        run is still executing.
        """
        for remaining in range(attempts, 0, -1):
            try:
                return self._request("GET", f"/runs/{run_id}/result")
            except ServiceError as exc:
                if exc.status != 409 or remaining == 1:
                    raise
            time.sleep(self.poll_seconds)
        raise AssertionError("unreachable")  # pragma: no cover

    def result(self, run_id: str, attempts: int = 1) -> Dict[str, Any]:
        """The artifact parsed back into a document."""
        return json.loads(self.result_bytes(run_id, attempts).decode("utf-8"))

    def wait(self, run_id: str, attempts: int = 3000) -> Dict[str, Any]:
        """Poll until the run reaches a terminal state; returns its info."""
        terminal = ("done", "failed", "cancelled")
        info: Dict[str, Any] = {}
        for remaining in range(attempts, 0, -1):
            info = self.run(run_id)
            if info["state"] in terminal:
                return info
            if remaining > 1:
                time.sleep(self.poll_seconds)
        raise ServiceError(
            409, f"run {run_id} still {info.get('state')} after {attempts} polls"
        )

    # ------------------------------------------------------------------
    # SSE
    # ------------------------------------------------------------------
    def events(
        self, run_id: str, last_event_id: Optional[int] = None
    ) -> Iterator[Dict[str, Any]]:
        """Stream a run's SSE events as parsed documents.

        Yields ``{"event": ..., "id": ..., "data": {...}}`` per frame
        (keepalive comments are skipped) and returns when the server
        ends the stream after a terminal ``state`` event.
        """
        connection = http.client.HTTPConnection(self.host, self.port)
        try:
            headers = {"Accept": "text/event-stream"}
            if last_event_id is not None:
                headers["Last-Event-ID"] = str(last_event_id)
            connection.request("GET", f"/runs/{run_id}/events", headers=headers)
            response = connection.getresponse()
            if response.status >= 400:
                message = response.read().decode("utf-8", "replace").strip()
                raise ServiceError(response.status, message)
            event: Dict[str, Any] = {}
            for raw in response:
                line = raw.decode("utf-8").rstrip("\r\n")
                if not line:
                    if "data" in event:
                        event["data"] = json.loads(event["data"])
                        yield event
                    event = {}
                    continue
                if line.startswith(":"):
                    continue  # keepalive comment
                name, _, value = line.partition(":")
                value = value[1:] if value.startswith(" ") else value
                if name == "id":
                    event["id"] = int(value)
                else:
                    event[name] = value
        finally:
            connection.close()
