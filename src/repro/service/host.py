"""The async multi-run host: a bounded pool of concurrent engine runs.

:class:`RunHost` owns every run the service executes.  Each admitted
run gets a *driver* coroutine that pushes one
:meth:`repro.api.Run.advance` at a time through a worker thread — the
event loop never blocks on a provisioning epoch, so one host interleaves
many sharded engines (each with its own worker processes) behind a
single asyncio loop.

Run state machine::

    QUEUED ──> RUNNING ──> DONE
                 │  ▲  └──> FAILED
                 ▼  │
               PAUSED ────> (resume)
    any non-terminal ─────> CANCELLED   (DELETE /runs/{id})

Admission is a bounded FIFO: up to ``max_concurrent`` runs execute at
once, up to ``queue_limit`` more wait, and past that :meth:`submit`
raises :class:`QueueFullError` (the HTTP layer's 503 backpressure).
Pause, cancel and checkpoint are *epoch-boundary* operations — the
driver honors them between epochs, which is exactly where the engines
guarantee a clean (checkpointable, byte-identical) cut.  A paused run
is parked via :meth:`repro.api.Run.suspend`, so it holds no worker
processes or ``/dev/shm`` blocks while it waits.

State directory (crash recovery)
--------------------------------
With a ``state_dir``, every run persists under ``runs/<id>/``:

* ``meta.json`` — id, state, config (``EngineConfig.to_dict()``),
  progress, any live shm segment names, the artifact sha256;
* ``run.ckpt`` — the latest :meth:`repro.api.Run.checkpoint` (written
  on pause, on explicit request, and every ``checkpoint_every`` epochs);
* ``artifact.json`` — the canonical result document, once DONE.

On startup the host re-adopts the directory: DONE/FAILED/CANCELLED
runs come back as records (results still served), interrupted runs
re-enter the admission queue — from their checkpoint when one exists,
from scratch otherwise (byte-identical either way, by the engine
determinism contract) — and PAUSED runs come back PAUSED, waiting for
an explicit resume.  Any shm segment names recorded by a SIGKILLed
predecessor are reclaimed via
:func:`repro.sim.shm.unlink_stale_segment` before anything runs.
"""

from __future__ import annotations

import asyncio
import json
import os
import shutil
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.api import EngineConfig, Run, open_run, resume
from repro.service.artifact import artifact_bytes, result_payload, sha256_hex
from repro.sim.shm import unlink_stale_segment

__all__ = [
    "RunHost",
    "HostedRun",
    "QueueFullError",
    "UnknownRunError",
    "RUN_STATES",
    "TERMINAL_STATES",
]

QUEUED = "queued"
RUNNING = "running"
PAUSED = "paused"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

RUN_STATES = (QUEUED, RUNNING, PAUSED, DONE, FAILED, CANCELLED)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

#: The subscriber-queue sentinel: the stream is over, no more events.
STREAM_END = None


class QueueFullError(RuntimeError):
    """Admission queue at capacity — retry after a run drains."""


class UnknownRunError(KeyError):
    """No run by that id (never submitted, or purged)."""


class HostedRun:
    """One run under host management (host-internal mutable state).

    Everything here is touched only on the event-loop thread; the
    blocking engine work happens in the host's thread pool against the
    :class:`repro.api.Run` handle, one operation at a time per run.
    """

    def __init__(
        self, run_id: str, config: EngineConfig, ring_size: int
    ) -> None:
        self.id = run_id
        self.config = config
        self.state = QUEUED
        self.error: Optional[str] = None
        self.epoch = 0
        self.epochs_total: Optional[int] = None
        self.artifact_sha256: Optional[str] = None
        self.artifact_data: Optional[bytes] = None  # memory-only hosts
        self.shm_segments: List[str] = []
        self.resume_from: Optional[Path] = None
        #: Replay ring: the most recent epoch events, for SSE consumers
        #: joining mid-run.
        self.ring: List[Dict[str, Any]] = []
        self.ring_size = ring_size
        self.subscribers: List[asyncio.Queue] = []
        # Driver signalling (all flags honored at epoch boundaries).
        self.task: Optional[asyncio.Task] = None
        self.wake = asyncio.Event()
        self.pause_requested = False
        self.resume_requested = False
        self.cancel_requested = False
        self.checkpoint_waiters: List[asyncio.Future] = []
        self.shutdown_requested = False
        self.terminal = asyncio.Event()

    @property
    def kind(self) -> str:
        return self.config.kind

    def info(self) -> Dict[str, Any]:
        """The status document of ``GET /runs/{id}``."""
        return {
            "id": self.id,
            "kind": self.kind,
            "name": getattr(self.config.spec, "name", None),
            "state": self.state,
            "epoch": self.epoch,
            "epochs_total": self.epochs_total,
            "workers": self.config.resolved_workers(),
            "error": self.error,
            "artifact_sha256": self.artifact_sha256,
        }


class RunHost:
    """A bounded pool of concurrent engine runs behind one event loop.

    Parameters
    ----------
    max_concurrent:
        Runs executing at once; further admissions wait in FIFO order.
    queue_limit:
        Waiting runs beyond the executing pool; past this,
        :meth:`submit` raises :class:`QueueFullError` (backpressure).
    state_dir:
        Directory for checkpoints/metadata/artifacts.  ``None`` keeps
        everything in memory (no crash recovery, artifacts held on the
        heap).
    checkpoint_every:
        Auto-checkpoint period in *epochs* (0 disables).  Epoch counts,
        not wall clock, so the cadence is as deterministic as the runs.
    ring_size:
        Epoch events retained per run for mid-run SSE replay.
    """

    def __init__(
        self,
        *,
        max_concurrent: int = 4,
        queue_limit: int = 16,
        state_dir: Optional[Union[str, os.PathLike]] = None,
        checkpoint_every: int = 0,
        ring_size: int = 1024,
    ) -> None:
        self.max_concurrent = max(1, int(max_concurrent))
        self.queue_limit = max(0, int(queue_limit))
        self.checkpoint_every = max(0, int(checkpoint_every))
        self.ring_size = max(1, int(ring_size))
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self._runs: Dict[str, HostedRun] = {}
        self._queue: List[str] = []
        self._active = 0
        self._counter = 0
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "RunHost":
        """Create the worker pool and re-adopt any state directory."""
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_concurrent + 2,
            thread_name_prefix="repro-run",
        )
        if self.state_dir is not None:
            (self.state_dir / "runs").mkdir(parents=True, exist_ok=True)
            self._adopt_state_dir()
        self._dispatch()
        return self

    async def close(self) -> None:
        """Drain the host: park every live run, then stop the pool.

        Running runs are checkpointed (when a state dir exists) and
        re-marked QUEUED in their metadata, so the next host on the
        same state dir resumes them; queued runs simply stay QUEUED.
        This is the graceful half of the crash-recovery contract — the
        SIGKILL half is :meth:`start`'s adoption pass.
        """
        if self._closed:
            return
        self._closed = True
        self._queue = []
        tasks = []
        for hosted in self._runs.values():
            if hosted.task is not None:
                hosted.shutdown_requested = True
                hosted.wake.set()
                tasks.append(hosted.task)
        for task in tasks:
            try:
                await task
            except asyncio.CancelledError:  # pragma: no cover - defensive
                pass
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, config: EngineConfig) -> str:
        """Admit a run; returns its id (raises when the queue is full)."""
        if self._closed:
            raise RuntimeError("the host is shut down")
        if not isinstance(config, EngineConfig):
            raise TypeError(
                f"submit() needs an EngineConfig, got {type(config).__name__}"
            )
        if (
            self._active >= self.max_concurrent
            and len(self._queue) >= self.queue_limit
        ):
            raise QueueFullError(
                f"{self._active} runs executing and {len(self._queue)} "
                f"waiting (queue limit {self.queue_limit}); retry later"
            )
        self._counter += 1
        run_id = f"r{self._counter:04d}"
        hosted = HostedRun(run_id, config, self.ring_size)
        self._runs[run_id] = hosted
        self._persist_meta(hosted)
        self._queue.append(run_id)
        self._dispatch()
        return run_id

    def _dispatch(self) -> None:
        """Start drivers while slots and queued runs remain."""
        while self._queue and self._active < self.max_concurrent:
            hosted = self._runs[self._queue.pop(0)]
            if hosted.cancel_requested:
                self._set_state(hosted, CANCELLED)
                self._end_stream(hosted)
                continue
            self._active += 1
            hosted.task = asyncio.get_running_loop().create_task(
                self._drive(hosted)
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def _get(self, run_id: str) -> HostedRun:
        try:
            return self._runs[run_id]
        except KeyError:
            raise UnknownRunError(run_id) from None

    def runs(self) -> List[Dict[str, Any]]:
        return [hosted.info() for hosted in self._runs.values()]

    def run_info(self, run_id: str) -> Dict[str, Any]:
        return self._get(run_id).info()

    def artifact(self, run_id: str) -> bytes:
        """The canonical result document of a DONE run (its exact bytes)."""
        hosted = self._get(run_id)
        if hosted.state != DONE:
            raise RuntimeError(
                f"run {run_id} is {hosted.state}, not {DONE}"
            )
        if hosted.artifact_data is not None:
            return hosted.artifact_data
        path = self._run_dir(hosted.id) / "artifact.json"
        return path.read_bytes()

    async def wait(self, run_id: str) -> str:
        """Block until the run reaches a terminal state; returns it."""
        hosted = self._get(run_id)
        await hosted.terminal.wait()
        return hosted.state

    # ------------------------------------------------------------------
    # Control plane (pause / resume / checkpoint / cancel)
    # ------------------------------------------------------------------
    def pause(self, run_id: str) -> None:
        """Request a pause at the next epoch boundary (RUNNING only)."""
        hosted = self._get(run_id)
        if hosted.state != RUNNING:
            raise RuntimeError(
                f"can only pause a {RUNNING} run (run {run_id} is "
                f"{hosted.state})"
            )
        hosted.pause_requested = True
        hosted.wake.set()

    def resume_run(self, run_id: str) -> None:
        """Resume a PAUSED run (live driver or re-adopted checkpoint)."""
        hosted = self._get(run_id)
        if hosted.state != PAUSED:
            raise RuntimeError(
                f"can only resume a {PAUSED} run (run {run_id} is "
                f"{hosted.state})"
            )
        if hosted.task is not None:
            hosted.resume_requested = True
            hosted.wake.set()
        else:
            # Adopted from a previous host's state dir: re-enter the
            # admission queue (resume_from already points at the ckpt).
            hosted.state = QUEUED
            self._persist_meta(hosted)
            self._publish_state(hosted)
            self._queue.append(run_id)
            self._dispatch()

    def request_checkpoint(self, run_id: str) -> "asyncio.Future[str]":
        """Checkpoint at the next epoch boundary; resolves to the path."""
        if self.state_dir is None:
            raise RuntimeError(
                "checkpointing needs a state dir (start the host/serve "
                "with --state-dir)"
            )
        hosted = self._get(run_id)
        if hosted.state not in (RUNNING, PAUSED):
            raise RuntimeError(
                f"can only checkpoint a {RUNNING} or {PAUSED} run "
                f"(run {run_id} is {hosted.state})"
            )
        future: "asyncio.Future[str]" = (
            asyncio.get_running_loop().create_future()
        )
        hosted.checkpoint_waiters.append(future)
        hosted.wake.set()
        return future

    def cancel(self, run_id: str) -> None:
        """Cancel a non-terminal run; purge the record of a terminal one."""
        hosted = self._get(run_id)
        if hosted.state in TERMINAL_STATES:
            del self._runs[run_id]
            if self.state_dir is not None:
                shutil.rmtree(self._run_dir(run_id), ignore_errors=True)
            return
        hosted.cancel_requested = True
        hosted.wake.set()
        if hosted.task is None and hosted.state in (QUEUED, PAUSED):
            # No driver to honor the flag: settle it here.
            if run_id in self._queue:
                self._queue.remove(run_id)
            self._set_state(hosted, CANCELLED)
            self._end_stream(hosted)

    # ------------------------------------------------------------------
    # SSE subscriptions
    # ------------------------------------------------------------------
    def subscribe(
        self, run_id: str, after: int = 0
    ) -> "tuple[List[Dict[str, Any]], Optional[asyncio.Queue]]":
        """Join a run's event stream.

        Returns ``(replay, queue)``: every retained epoch event with
        index > ``after`` plus a current state event, then — for live
        runs — an :class:`asyncio.Queue` of further events ending with
        the ``STREAM_END`` sentinel.  Terminal runs return ``None`` for
        the queue (the replay is the whole stream).
        """
        hosted = self._get(run_id)
        replay = [
            event for event in hosted.ring if event["data"]["index"] > after
        ]
        replay.append(self._state_event(hosted))
        if hosted.state in TERMINAL_STATES:
            return replay, None
        queue: asyncio.Queue = asyncio.Queue()
        hosted.subscribers.append(queue)
        return replay, queue

    def unsubscribe(self, run_id: str, queue: asyncio.Queue) -> None:
        hosted = self._runs.get(run_id)
        if hosted is not None and queue in hosted.subscribers:
            hosted.subscribers.remove(queue)

    def _publish(self, hosted: HostedRun, event: Dict[str, Any]) -> None:
        if event["event"] == "epoch":
            hosted.ring.append(event)
            if len(hosted.ring) > hosted.ring_size:
                del hosted.ring[: -hosted.ring_size]
        for queue in hosted.subscribers:
            queue.put_nowait(event)

    def _state_event(self, hosted: HostedRun) -> Dict[str, Any]:
        return {
            "event": "state",
            "id": hosted.epoch,
            "data": hosted.info(),
        }

    def _publish_state(self, hosted: HostedRun) -> None:
        self._publish(hosted, self._state_event(hosted))

    def _end_stream(self, hosted: HostedRun) -> None:
        hosted.terminal.set()
        for queue in hosted.subscribers:
            queue.put_nowait(STREAM_END)
        hosted.subscribers = []

    def _set_state(self, hosted: HostedRun, state: str) -> None:
        hosted.state = state
        self._persist_meta(hosted)
        self._publish_state(hosted)

    # ------------------------------------------------------------------
    # The per-run driver
    # ------------------------------------------------------------------
    async def _call(self, fn, *args):
        """Run blocking engine work on the pool."""
        return await asyncio.get_running_loop().run_in_executor(
            self._pool, fn, *args
        )

    async def _drive(self, hosted: HostedRun) -> None:
        run: Optional[Run] = None
        parked = False  # left QUEUED/PAUSED on purpose (shutdown)
        try:
            if hosted.resume_from is not None:
                run = await self._call(resume, hosted.resume_from)
            else:
                run = await self._call(open_run, hosted.config)
            hosted.epochs_total = run.epochs_total
            hosted.epoch = run.epoch
            self._set_state(hosted, RUNNING)
            while True:
                if hosted.cancel_requested:
                    self._set_state(hosted, CANCELLED)
                    return
                if hosted.shutdown_requested:
                    parked = await self._park(hosted, run)
                    return
                if hosted.pause_requested:
                    await self._enter_pause(hosted, run)
                    if hosted.cancel_requested:
                        self._set_state(hosted, CANCELLED)
                        return
                    if hosted.shutdown_requested:
                        parked = True  # already checkpointed by the pause
                        return
                    self._set_state(hosted, RUNNING)
                snapshot = await self._call(run.advance)
                self._note_segments(hosted, run)
                if snapshot is None:
                    break
                hosted.epoch = snapshot.index
                data = snapshot.to_dict()
                data["run"] = hosted.id
                self._publish(
                    hosted,
                    {"event": "epoch", "id": snapshot.index, "data": data},
                )
                if hosted.checkpoint_waiters:
                    await self._checkpoint(hosted, run)
                elif (
                    self.checkpoint_every
                    and self.state_dir is not None
                    and not snapshot.is_final
                    and snapshot.index % self.checkpoint_every == 0
                ):
                    await self._checkpoint(hosted, run)
            await self._call(self._finish, hosted, run)
            self._set_state(hosted, DONE)
        except Exception as exc:  # noqa: BLE001 - a failed run is a state
            hosted.error = f"{type(exc).__name__}: {exc}"
            self._set_state(hosted, FAILED)
        finally:
            if run is not None:
                try:
                    await self._call(run.close)
                except Exception:  # pragma: no cover - teardown backstop
                    pass
            hosted.shm_segments = []
            self._persist_meta(hosted)
            self._fail_checkpoint_waiters(hosted)
            hosted.task = None
            self._active -= 1
            if not parked:
                self._end_stream(hosted)
            if not self._closed:
                self._dispatch()

    async def _enter_pause(self, hosted: HostedRun, run: Run) -> None:
        """PAUSED: checkpoint (if persistent), park the engine, wait."""
        hosted.pause_requested = False
        if self.state_dir is not None:
            await self._checkpoint(hosted, run)
        await self._call(run.suspend)
        self._note_segments(hosted, run)
        self._set_state(hosted, PAUSED)
        while True:
            if (
                hosted.cancel_requested
                or hosted.resume_requested
                or hosted.shutdown_requested
            ):
                break
            if hosted.checkpoint_waiters:
                # snapshot_state() transparently revives the parked
                # engine; park it again so PAUSED keeps its contract.
                await self._checkpoint(hosted, run)
                await self._call(run.suspend)
                continue
            hosted.wake.clear()
            await hosted.wake.wait()
        hosted.resume_requested = False

    async def _park(self, hosted: HostedRun, run: Run) -> bool:
        """Graceful shutdown: checkpoint and leave the run re-adoptable."""
        if self.state_dir is not None and hosted.state == RUNNING:
            await self._checkpoint(hosted, run)
        if hosted.state == RUNNING:
            hosted.state = QUEUED
            self._persist_meta(hosted)
        return True

    async def _checkpoint(self, hosted: HostedRun, run: Run) -> None:
        waiters = hosted.checkpoint_waiters
        hosted.checkpoint_waiters = []
        path = self._run_dir(hosted.id) / "run.ckpt"
        try:
            await self._call(run.checkpoint, path)
        except Exception as exc:
            for waiter in waiters:
                if not waiter.done():
                    waiter.set_exception(exc)
            raise
        hosted.resume_from = path
        self._note_segments(hosted, run)
        self._persist_meta(hosted)
        for waiter in waiters:
            if not waiter.done():
                waiter.set_result(str(path))

    def _fail_checkpoint_waiters(self, hosted: HostedRun) -> None:
        waiters = hosted.checkpoint_waiters
        hosted.checkpoint_waiters = []
        for waiter in waiters:
            if not waiter.done():
                waiter.set_exception(
                    RuntimeError(f"run {hosted.id} ended before checkpoint")
                )

    def _note_segments(self, hosted: HostedRun, run: Run) -> None:
        """Track the run's live shm segments in the persisted metadata.

        Recorded at epoch boundaries: a successor host unlinks whatever
        names a SIGKILLed predecessor left behind here.
        """
        segments = run.shm_segments()
        if segments != hosted.shm_segments:
            hosted.shm_segments = segments
            self._persist_meta(hosted)

    def _finish(self, hosted: HostedRun, run: Run) -> None:
        """Blocking tail: drain, encode, hash, persist (pool thread)."""
        result = run.result()
        data = artifact_bytes(result_payload(hosted.kind, result))
        hosted.artifact_sha256 = sha256_hex(data)
        if self.state_dir is None:
            hosted.artifact_data = data
            return
        path = self._run_dir(hosted.id) / "artifact.json"
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(data)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # State-dir persistence and adoption
    # ------------------------------------------------------------------
    def _run_dir(self, run_id: str) -> Path:
        if self.state_dir is None:
            raise RuntimeError("no state dir configured")
        return self.state_dir / "runs" / run_id

    def _persist_meta(self, hosted: HostedRun) -> None:
        if self.state_dir is None:
            return
        run_dir = self._run_dir(hosted.id)
        run_dir.mkdir(parents=True, exist_ok=True)
        meta = {
            "id": hosted.id,
            "state": hosted.state,
            "epoch": hosted.epoch,
            "epochs_total": hosted.epochs_total,
            "config": hosted.config.to_dict(),
            "error": hosted.error,
            "artifact_sha256": hosted.artifact_sha256,
            "shm_segments": list(hosted.shm_segments),
        }
        tmp = run_dir / "meta.json.tmp"
        tmp.write_text(json.dumps(meta, sort_keys=True, indent=2) + "\n")
        os.replace(tmp, run_dir / "meta.json")

    def _adopt_state_dir(self) -> None:
        """Re-adopt a predecessor host's runs (the crash-recovery pass)."""
        runs_root = self.state_dir / "runs"
        entries = sorted(
            (p for p in runs_root.iterdir() if (p / "meta.json").exists()),
            key=lambda p: p.name,
        )
        for run_dir in entries:
            try:
                meta = json.loads((run_dir / "meta.json").read_text())
                config = EngineConfig.from_dict(meta["config"])
            except (ValueError, KeyError, TypeError):  # pragma: no cover
                continue  # unreadable record; leave the files for forensics
            # Reclaim whatever the predecessor could not unlink itself.
            for name in meta.get("shm_segments", ()):
                unlink_stale_segment(name)
            hosted = HostedRun(meta["id"], config, self.ring_size)
            hosted.epoch = int(meta.get("epoch") or 0)
            hosted.epochs_total = meta.get("epochs_total")
            hosted.error = meta.get("error")
            hosted.artifact_sha256 = meta.get("artifact_sha256")
            checkpoint = run_dir / "run.ckpt"
            if checkpoint.exists():
                hosted.resume_from = checkpoint
            state = meta.get("state")
            if state == DONE and (run_dir / "artifact.json").exists():
                hosted.state = DONE
                hosted.terminal.set()
            elif state in (FAILED, CANCELLED):
                hosted.state = state
                hosted.terminal.set()
            elif state == PAUSED and hosted.resume_from is not None:
                hosted.state = PAUSED  # waits for an explicit resume
            else:
                # QUEUED/RUNNING (or PAUSED without a checkpoint): run it
                # again — from the checkpoint when there is one, from
                # scratch otherwise.  Determinism makes both identical.
                hosted.state = QUEUED
                hosted.epoch = 0
                self._queue.append(hosted.id)
            self._runs[hosted.id] = hosted
            self._persist_meta(hosted)
            number = hosted.id[1:]
            if number.isdigit():
                self._counter = max(self._counter, int(number))
