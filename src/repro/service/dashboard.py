"""The single-file live dashboard served on ``GET /``.

One self-contained HTML document — inline CSS, vanilla JS, zero
external assets — so the service stays stdlib-only end to end.  The
page polls ``GET /runs`` for the table and opens one ``EventSource``
per non-terminal run against ``GET /runs/{id}/events``, so epoch
progress, population and quality tick live without a refresh.
"""

from __future__ import annotations

__all__ = ["DASHBOARD_HTML"]

DASHBOARD_HTML = """\
<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>repro service</title>
<style>
  body { font-family: ui-monospace, SFMono-Regular, Menlo, monospace;
         margin: 2rem; background: #14161a; color: #d8dee9; }
  h1 { font-size: 1.1rem; font-weight: 600; }
  h1 .sub { color: #6c7686; font-weight: 400; }
  table { border-collapse: collapse; width: 100%; margin-top: 1rem; }
  th, td { text-align: left; padding: .35rem .75rem;
           border-bottom: 1px solid #2a2f38; font-size: .85rem; }
  th { color: #6c7686; font-weight: 600; }
  td.num { text-align: right; font-variant-numeric: tabular-nums; }
  .state { padding: .1rem .5rem; border-radius: .6rem; font-size: .75rem; }
  .state.queued    { background: #2a2f38; color: #9aa4b2; }
  .state.running   { background: #1d3a2f; color: #69d49b; }
  .state.paused    { background: #3a331d; color: #d4b869; }
  .state.done      { background: #1d2c3a; color: #69a8d4; }
  .state.failed    { background: #3a1d1d; color: #d46969; }
  .state.cancelled { background: #2a2f38; color: #6c7686; }
  .bar { background: #2a2f38; border-radius: .25rem; height: .5rem;
         width: 10rem; overflow: hidden; }
  .bar > div { background: #69d49b; height: 100%; width: 0; }
  .empty { color: #6c7686; margin-top: 2rem; }
  a { color: #69a8d4; }
</style>
</head>
<body>
<h1>repro service <span class="sub">&mdash; hosted provisioning runs</span></h1>
<div id="content"><p class="empty">loading&hellip;</p></div>
<script>
"use strict";
const runs = new Map();    // id -> latest info document
const streams = new Map(); // id -> EventSource
const TERMINAL = new Set(["done", "failed", "cancelled"]);

function fmt(v, digits) {
  return (v === null || v === undefined) ? "&ndash;"
       : Number(v).toFixed(digits === undefined ? 0 : digits);
}

function render() {
  const el = document.getElementById("content");
  if (runs.size === 0) {
    el.innerHTML = '<p class="empty">no runs yet &mdash; ' +
      'submit one with <code>repro submit</code> or POST /runs</p>';
    return;
  }
  let html = "<table><tr><th>id</th><th>name</th><th>kind</th>" +
    "<th>state</th><th>progress</th><th>epoch</th><th>population</th>" +
    "<th>quality</th><th>$/h</th><th>result</th></tr>";
  for (const id of Array.from(runs.keys()).sort()) {
    const r = runs.get(id);
    const pct = r.epochs_total ? 100 * r.epoch / r.epochs_total : 0;
    html += "<tr><td>" + id + "</td><td>" + (r.name || "&ndash;") +
      "</td><td>" + r.kind + "</td>" +
      '<td><span class="state ' + r.state + '">' + r.state + "</span>" +
      (r.error ? " <small>" + r.error + "</small>" : "") + "</td>" +
      '<td><div class="bar"><div style="width:' + pct + '%"></div></div></td>' +
      '<td class="num">' + r.epoch + "/" + (r.epochs_total || "?") + "</td>" +
      '<td class="num">' + fmt(r.population) + "</td>" +
      '<td class="num">' + fmt(r.quality, 4) + "</td>" +
      '<td class="num">' + fmt(r.vm_cost_per_hour, 2) + "</td>" +
      "<td>" + (r.state === "done"
        ? '<a href="/runs/' + id + '/result">json</a>' : "&ndash;") +
      "</td></tr>";
  }
  el.innerHTML = html + "</table>";
}

function watch(id) {
  if (streams.has(id)) return;
  const source = new EventSource("/runs/" + id + "/events");
  streams.set(id, source);
  source.addEventListener("epoch", (e) => {
    const d = JSON.parse(e.data);
    const r = runs.get(id);
    if (!r) return;
    r.epoch = d.index;
    r.population = d.population;
    r.quality = d.quality;
    r.vm_cost_per_hour = d.vm_cost_per_hour;
    render();
  });
  source.addEventListener("state", (e) => {
    const d = JSON.parse(e.data);
    runs.set(id, Object.assign(runs.get(id) || {}, d));
    if (TERMINAL.has(d.state)) { source.close(); streams.delete(id); }
    render();
  });
  source.onerror = () => { source.close(); streams.delete(id); };
}

async function refresh() {
  try {
    const listed = await (await fetch("/runs")).json();
    for (const info of listed.runs) {
      runs.set(info.id, Object.assign(runs.get(info.id) || {}, info));
      if (!TERMINAL.has(info.state)) watch(info.id);
    }
    for (const id of Array.from(runs.keys())) {
      if (!listed.runs.some((r) => r.id === id)) {
        runs.delete(id);
        const s = streams.get(id);
        if (s) { s.close(); streams.delete(id); }
      }
    }
    render();
  } catch (err) { /* server away; retry on the next tick */ }
}

refresh();
setInterval(refresh, 3000);
</script>
</body>
</html>
"""
