"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze``
    Run the Section IV capacity analysis for one channel and print the
    per-chunk arrival rates, server counts and cloud demand.
``trace``
    Generate a synthetic workload trace (Section VI-A) and write it to
    JSON.
``run``
    Run a closed-loop scenario end to end and print the summary.
``info``
    Print the paper's configuration (Tables II/III, constants, budgets).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.experiments.config import (
    PAPER,
    paper_capacity_model,
    paper_nfs_clusters,
    paper_vm_clusters,
    paper_scenario,
    small_scenario,
)
from repro.experiments.reporting import format_table, mbps
from repro.p2p.contribution import solve_p2p_channel_capacity
from repro.queueing.capacity import solve_channel_capacity
from repro.vod.channel import default_behaviour_matrix
from repro.workload.trace import TraceConfig, generate_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CloudMedia (ICDCS 2011) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="one-channel capacity analysis")
    analyze.add_argument("--chunks", type=int, default=20)
    analyze.add_argument("--rate", type=float, default=0.1,
                         help="channel arrival rate, users/second")
    analyze.add_argument("--alpha", type=float, default=0.8)
    analyze.add_argument("--mode", choices=["client-server", "p2p"],
                         default="client-server")
    analyze.add_argument("--peer-upload-ratio", type=float, default=0.9,
                         help="mean peer upload / streaming rate (p2p mode)")

    trace = sub.add_parser("trace", help="generate a synthetic trace")
    trace.add_argument("output", help="output JSON path")
    trace.add_argument("--channels", type=int, default=20)
    trace.add_argument("--chunks", type=int, default=20)
    trace.add_argument("--hours", type=float, default=24.0)
    trace.add_argument("--rate", type=float, default=1.0,
                       help="mean total arrival rate, users/second")
    trace.add_argument("--seed", type=int, default=2011)

    run = sub.add_parser("run", help="run a closed-loop scenario")
    run.add_argument("--mode", choices=["client-server", "p2p"], default="p2p")
    run.add_argument("--hours", type=float, default=12.0)
    run.add_argument("--scale", choices=["small", "paper"], default="small")
    run.add_argument("--seed", type=int, default=2011)

    sub.add_parser("info", help="print the paper's configuration")
    return parser


def _cmd_analyze(args: argparse.Namespace) -> int:
    model = paper_capacity_model()
    behaviour = default_behaviour_matrix(args.chunks)
    if args.mode == "p2p":
        result = solve_p2p_channel_capacity(
            model,
            behaviour,
            args.rate,
            peer_upload=args.peer_upload_ratio * model.streaming_rate,
            alpha=args.alpha,
        )
        servers = result.servers
        demand = result.cloud_demand
        extra = (
            f"peer offload {100 * result.peer_offload_ratio:.0f}%, "
            f"peer bandwidth {mbps(result.total_peer_bandwidth):.1f} Mbps"
        )
        rates = result.capacity.traffic.arrival_rates
    else:
        cs = solve_channel_capacity(model, behaviour, args.rate, alpha=args.alpha)
        servers, demand, rates = cs.servers, cs.cloud_demand, \
            cs.traffic.arrival_rates
        extra = f"expected population {cs.expected_population:.0f}"
    rows = [
        [i, f"{lam:.4f}", int(m), f"{mbps(d):.1f}"]
        for i, (lam, m, d) in enumerate(zip(rates, servers, demand))
    ]
    print(format_table(
        ["chunk", "lambda (1/s)", "m_i", "cloud Delta (Mbps)"], rows,
        title=f"{args.mode} capacity analysis "
              f"(rate={args.rate}/s, {args.chunks} chunks)",
    ))
    print(f"total cloud demand: {mbps(float(np.sum(demand))):.1f} Mbps; {extra}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = TraceConfig(
        num_channels=args.channels,
        chunks_per_channel=args.chunks,
        horizon_seconds=args.hours * 3600.0,
        mean_total_arrival_rate=args.rate,
        seed=args.seed,
    )
    trace = generate_trace(config)
    trace.to_json(args.output)
    print(f"wrote {len(trace)} sessions over {args.hours:.0f} h "
          f"({args.channels} channels) to {args.output}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import run_closed_loop  # heavy import

    if args.scale == "paper":
        scenario = paper_scenario(args.mode, horizon_hours=args.hours,
                                  seed=args.seed)
    else:
        scenario = small_scenario(args.mode, horizon_hours=args.hours,
                                  seed=args.seed)
    result = run_closed_loop(scenario)
    print(format_table(
        ["metric", "value"],
        [
            ["mode", args.mode],
            ["simulated hours", f"{args.hours:.0f}"],
            ["arrivals", result.simulation.arrivals],
            ["final population", result.simulation.final_population],
            ["avg streaming quality", f"{result.average_quality:.3f}"],
            ["mean reserved (Mbps)", f"{np.mean(result.provisioned_mbps()):.0f}"],
            ["mean used (Mbps)", f"{np.mean(result.used_mbps()):.0f}"],
            ["VM cost ($/h)", f"{result.mean_vm_cost_per_hour:.2f}"],
            ["storage cost ($/day)",
             f"{result.cost_report.hourly_storage_cost * 24:.4f}"],
        ],
        title="closed-loop run summary",
    ))
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    print(format_table(
        ["constant", "value"],
        [
            ["streaming rate r", "50 KB/s (400 kbps)"],
            ["chunk playback T0", "300 s (chunk = 15 MB)"],
            ["VM bandwidth R", "10 Mbps"],
            ["channels", PAPER.num_channels],
            ["chunks per channel", PAPER.chunks_per_channel],
            ["target population", PAPER.target_population],
            ["VM budget B_M", f"${PAPER.vm_budget_per_hour}/h"],
            ["storage budget B_S", f"${PAPER.storage_budget_per_hour}/h"],
            ["interval T", f"{PAPER.interval_seconds:.0f} s"],
        ],
        title="paper constants (Section VI-A)",
    ))
    print()
    print(format_table(
        ["cluster", "utility", "price/h", "max VMs"],
        [[c.name, c.utility, c.price_per_hour, c.max_vms]
         for c in paper_vm_clusters()],
        title="Table II — virtual clusters",
    ))
    print()
    print(format_table(
        ["cluster", "utility", "price/GB/h", "capacity"],
        [[c.name, c.utility, f"{c.price_per_gb_hour:.2e}",
          f"{c.capacity_bytes / 1024**3:.0f} GB"]
         for c in paper_nfs_clusters()],
        title="Table III — NFS clusters",
    ))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "analyze": _cmd_analyze,
        "trace": _cmd_trace,
        "run": _cmd_run,
        "info": _cmd_info,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
