"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``analyze``
    Run the Section IV capacity analysis for one channel and print the
    per-chunk arrival rates, server counts and cloud demand.
``trace``
    Generate a synthetic workload trace (Section VI-A) and write it to
    JSON.
``run``
    Run a closed-loop scenario end to end and print the summary.
``info``
    Print the paper's configuration (Tables II/III, constants, budgets).
``scenarios``
    List the scenario registry, or describe one scenario's knobs and grid.
``sweep``
    Fan a scenario's (grid x seeds) cells across worker processes, with
    cached JSON artifacts (see :mod:`repro.experiments.sweep`).
``catalog``
    Run a multi-channel catalog through the sharded engine
    (:mod:`repro.sim.shard`): hundreds of channels partitioned across
    worker processes, advanced in lock-step provisioning epochs.
    Byte-deterministic for a fixed seed regardless of ``--jobs``.
    ``--topology <preset>`` switches to the multi-region engine: viewer
    demand splits across the preset's regions and every epoch is
    provisioned by the geo allocator (latency-discounted utility,
    per-GB egress pricing; ``--exact`` solves the LP optimum).
``geo``
    The multi-region catalog engine with geo-flavored defaults — the
    same engine as ``catalog --topology``, defaulting to the three-
    region preset and reporting the region-level economics (remote
    fraction, egress spend, latency-adjusted quality).
``lint``
    Run the determinism lint engine (:mod:`repro.analysis`) — the
    static rule pack (DET001–DET004, RES001, CKP001) over the package
    source, gated against the committed ``lint_baseline.json``.
    Non-zero exit on any non-baselined finding; ``--check`` (the CI
    mode) also fails on stale baseline entries so debt burns down.
``serve``
    Start the run service (:mod:`repro.service`): a bounded pool of
    concurrent hosted runs behind one HTTP port — submit over
    ``POST /runs``, stream epochs over Server-Sent Events, pause /
    resume / checkpoint live, watch the dashboard on ``GET /``.  With
    ``--state-dir`` runs auto-checkpoint and a restarted server
    re-adopts them (crash recovery); see ``docs/service.md``.
``submit``
    Submit a catalog run to a ``repro serve`` instance (the same knobs
    as ``catalog``/``geo``); ``--stream`` follows the SSE epoch feed,
    ``--wait`` blocks for the canonical result artifact.

Every engine-backed command (``run``, ``catalog``, ``geo``, and sweep
cells) executes through :mod:`repro.api` — one `EngineConfig` ->
`open_run` surface; ``catalog``/``geo`` can stream per-epoch reports
live with ``--stream`` and accept ``--set KEY=VALUE`` overrides for any
catalog knob (unknown keys fail fast, listing the valid ones).
``repro --version`` prints the package version.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.experiments.config import (
    PAPER,
    paper_capacity_model,
    paper_nfs_clusters,
    paper_scenario,
    paper_vm_clusters,
    small_scenario,
)
from repro.experiments.reporting import format_table, mbps
from repro.p2p.contribution import solve_p2p_channel_capacity
from repro.queueing.capacity import solve_channel_capacity
from repro.vod.channel import default_behaviour_matrix
from repro.workload.trace import TraceConfig, generate_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__
    from repro.core.controller import controller_names

    parser = argparse.ArgumentParser(
        prog="repro",
        description="CloudMedia (ICDCS 2011) reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="one-channel capacity analysis")
    analyze.add_argument("--chunks", type=int, default=20)
    analyze.add_argument("--rate", type=float, default=0.1,
                         help="channel arrival rate, users/second")
    analyze.add_argument("--alpha", type=float, default=0.8)
    analyze.add_argument("--mode", choices=["client-server", "p2p"],
                         default="client-server")
    analyze.add_argument("--peer-upload-ratio", type=float, default=0.9,
                         help="mean peer upload / streaming rate (p2p mode)")

    trace = sub.add_parser("trace", help="generate a synthetic trace")
    trace.add_argument("output", help="output JSON path")
    trace.add_argument("--channels", type=int, default=20)
    trace.add_argument("--chunks", type=int, default=20)
    trace.add_argument("--hours", type=float, default=24.0)
    trace.add_argument("--rate", type=float, default=1.0,
                       help="mean total arrival rate, users/second")
    trace.add_argument("--seed", type=int, default=2011)

    run = sub.add_parser("run", help="run a closed-loop scenario")
    run.add_argument("--mode", choices=["client-server", "p2p"], default="p2p")
    run.add_argument("--hours", type=float, default=12.0)
    run.add_argument("--scale", choices=["small", "paper"], default="small")
    run.add_argument("--seed", type=int, default=2011)
    run.add_argument("--controller", choices=list(controller_names()),
                     default="paper",
                     help="provisioning policy (default: the paper's)")

    sub.add_parser("info", help="print the paper's configuration")

    scenarios = sub.add_parser(
        "scenarios", help="list or describe registered scenarios"
    )
    scenarios.add_argument("name", nargs="?", default=None,
                           help="describe one scenario instead of listing")
    scenarios.add_argument("--json", action="store_true", dest="as_json",
                           help="machine-readable output")

    sweep = sub.add_parser(
        "sweep", help="run a scenario's (grid x seeds) sweep in parallel"
    )
    sweep.add_argument("name", help="registered scenario name")
    sweep.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = in-process)")
    sweep.add_argument("--seeds", type=int, default=1,
                       help="number of seeds (base 2011, consecutive)")
    sweep.add_argument("--seed-base", type=int, default=2011,
                       help="first seed of the ladder")
    sweep.add_argument("--out", default="results",
                       help="artifact store root (default: results/)")
    sweep.add_argument("--force", action="store_true",
                       help="re-run cells even when cached artifacts exist")
    sweep.add_argument("--set", action="append", default=[], dest="overrides",
                       metavar="KEY=VALUE",
                       help="override a grid axis or default parameter "
                            "(repeatable; VALUE is parsed as JSON, e.g. "
                            "--set mode=p2p --set 'upload_ratio=[0.9,1.2]')")

    catalog = sub.add_parser(
        "catalog",
        help="run a multi-channel catalog through the sharded engine",
    )
    _add_catalog_args(catalog, default_topology=None)

    geo = sub.add_parser(
        "geo",
        help="run the multi-region catalog engine (geo extension)",
    )
    _add_catalog_args(geo, default_topology="us-eu-ap")

    lint = sub.add_parser(
        "lint",
        help="run the determinism lint rule pack (repro.analysis)",
    )
    lint.add_argument("paths", nargs="*", default=[],
                      help="files/directories to lint (default: the "
                           "installed repro package)")
    lint.add_argument("--baseline", default=None,
                      help="baseline file (default: lint_baseline.json "
                           "discovered above the lint target)")
    lint.add_argument("--no-baseline", action="store_true",
                      help="ignore any baseline (every finding is new)")
    lint.add_argument("--check", action="store_true",
                      help="CI mode: also fail on stale baseline "
                           "entries (debt must burn down)")
    lint.add_argument("--json", dest="json_out", default=None,
                      metavar="PATH",
                      help="write the machine-readable findings report")
    lint.add_argument("--verbose", action="store_true",
                      help="list baselined findings individually")
    lint.add_argument("--rules", action="store_true", dest="list_rules",
                      help="print the rule catalog and exit")

    serve = sub.add_parser(
        "serve",
        help="host concurrent runs behind HTTP + SSE (repro.service)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="bind address (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8352,
                       help="bind port (0 = ephemeral; printed on start)")
    serve.add_argument("--state-dir", default=None,
                       help="checkpoint/artifact directory; enables "
                            "crash recovery and run re-adoption")
    serve.add_argument("--max-runs", type=int, default=4,
                       help="runs executing concurrently (default: 4)")
    serve.add_argument("--queue-limit", type=int, default=16,
                       help="admitted-but-waiting runs before POST /runs "
                            "answers 503 (default: 16)")
    serve.add_argument("--checkpoint-every", type=int, default=0,
                       help="auto-checkpoint period in epochs "
                            "(0 = only on pause/request; needs "
                            "--state-dir)")

    submit = sub.add_parser(
        "submit",
        help="submit a catalog run to a repro serve instance",
    )
    submit.add_argument("--url", default="http://127.0.0.1:8352",
                        help="service base URL (default: "
                             "http://127.0.0.1:8352)")
    submit.add_argument("--wait", action="store_true",
                        help="block until the run finishes and print the "
                             "summary (with --out: save the canonical "
                             "artifact JSON)")
    _add_catalog_args(submit, default_topology=None)
    return parser


def _add_catalog_args(parser: argparse.ArgumentParser,
                      *, default_topology: Optional[str]) -> None:
    """Shared knobs of ``repro catalog`` and ``repro geo``."""
    parser.add_argument("--variant", choices=["zipf", "diurnal", "flash"],
                        default="flash",
                        help="arrival-shape preset (default: flash)")
    parser.add_argument("--channels", type=int, default=24)
    parser.add_argument("--chunks", type=int, default=8,
                        help="chunks per channel")
    parser.add_argument("--hours", type=float, default=2.0)
    parser.add_argument("--rate", type=float, default=1.0,
                        help="aggregate arrival rate, users/second")
    parser.add_argument("--mode", choices=["client-server", "p2p"],
                        default="client-server")
    parser.add_argument("--dt", type=float, default=30.0)
    parser.add_argument("--interval-minutes", type=float, default=15.0,
                        help="provisioning epoch length")
    parser.add_argument("--shards", type=int, default=6,
                        help="fixed shard count (part of the scenario "
                             "identity)")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (results are identical "
                             "for any value)")
    parser.add_argument("--seed", type=int, default=2011)
    parser.add_argument("--topology", default=default_topology,
                        help="geo topology preset; switches to the "
                             "multi-region engine"
                        + ("" if default_topology is None
                           else f" (default: {default_topology})"))
    parser.add_argument("--exact", action="store_true",
                        help="solve each epoch's geo allocation as an "
                             "exact LP instead of the greedy "
                             "(CI-sized catalogs only)")
    from repro.core.controller import controller_names
    parser.add_argument("--controller", choices=list(controller_names()),
                        default="paper",
                        help="provisioning policy (default: the paper's)")
    parser.add_argument("--set", action="append", default=[],
                        dest="overrides", metavar="KEY=VALUE",
                        help="override any catalog config knob by its "
                             "factory name (repeatable; VALUE parsed as "
                             "JSON, e.g. --set zipf_exponent=1.1); "
                             "unknown keys fail fast listing the valid "
                             "ones, and --set wins over the flags")
    parser.add_argument("--stream", action="store_true",
                        help="print one line per provisioning epoch as "
                             "it completes (the repro.api epoch stream)")
    parser.add_argument("--out", default=None,
                        help="optional path for the JSON metrics")


def _parse_overrides(pairs: List[str]) -> dict:
    import json

    overrides = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--set expects KEY=VALUE, got {pair!r}")
        try:
            overrides[key] = json.loads(raw)
        except ValueError:
            overrides[key] = raw  # bare strings like p2p
    return overrides


def _cmd_analyze(args: argparse.Namespace) -> int:
    model = paper_capacity_model()
    behaviour = default_behaviour_matrix(args.chunks)
    if args.mode == "p2p":
        result = solve_p2p_channel_capacity(
            model,
            behaviour,
            args.rate,
            peer_upload=args.peer_upload_ratio * model.streaming_rate,
            alpha=args.alpha,
        )
        servers = result.servers
        demand = result.cloud_demand
        extra = (
            f"peer offload {100 * result.peer_offload_ratio:.0f}%, "
            f"peer bandwidth {mbps(result.total_peer_bandwidth):.1f} Mbps"
        )
        rates = result.capacity.traffic.arrival_rates
    else:
        cs = solve_channel_capacity(model, behaviour, args.rate, alpha=args.alpha)
        servers, demand, rates = cs.servers, cs.cloud_demand, \
            cs.traffic.arrival_rates
        extra = f"expected population {cs.expected_population:.0f}"
    rows = [
        [i, f"{lam:.4f}", int(m), f"{mbps(d):.1f}"]
        for i, (lam, m, d) in enumerate(zip(rates, servers, demand))
    ]
    print(format_table(
        ["chunk", "lambda (1/s)", "m_i", "cloud Delta (Mbps)"], rows,
        title=f"{args.mode} capacity analysis "
              f"(rate={args.rate}/s, {args.chunks} chunks)",
    ))
    print(f"total cloud demand: {mbps(float(np.sum(demand))):.1f} Mbps; {extra}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    config = TraceConfig(
        num_channels=args.channels,
        chunks_per_channel=args.chunks,
        horizon_seconds=args.hours * 3600.0,
        mean_total_arrival_rate=args.rate,
        seed=args.seed,
    )
    trace = generate_trace(config)
    trace.to_json(args.output)
    print(f"wrote {len(trace)} sessions over {args.hours:.0f} h "
          f"({args.channels} channels) to {args.output}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.api import open_run  # heavy import

    if args.scale == "paper":
        scenario = paper_scenario(args.mode, horizon_hours=args.hours,
                                  seed=args.seed)
    else:
        scenario = small_scenario(args.mode, horizon_hours=args.hours,
                                  seed=args.seed)
    with open_run(scenario, controller=args.controller) as run:
        result = run.result()
    print(format_table(
        ["metric", "value"],
        [
            ["mode", args.mode],
            ["simulated hours", f"{args.hours:.0f}"],
            ["arrivals", result.simulation.arrivals],
            ["final population", result.simulation.final_population],
            ["avg streaming quality", f"{result.average_quality:.3f}"],
            ["mean reserved (Mbps)", f"{np.mean(result.provisioned_mbps()):.0f}"],
            ["mean used (Mbps)", f"{np.mean(result.used_mbps()):.0f}"],
            ["VM cost ($/h)", f"{result.mean_vm_cost_per_hour:.2f}"],
            ["storage cost ($/day)",
             f"{result.cost_report.hourly_storage_cost * 24:.4f}"],
        ],
        title="closed-loop run summary",
    ))
    return 0


def _cmd_info(_args: argparse.Namespace) -> int:
    print(format_table(
        ["constant", "value"],
        [
            ["streaming rate r", "50 KB/s (400 kbps)"],
            ["chunk playback T0", "300 s (chunk = 15 MB)"],
            ["VM bandwidth R", "10 Mbps"],
            ["channels", PAPER.num_channels],
            ["chunks per channel", PAPER.chunks_per_channel],
            ["target population", PAPER.target_population],
            ["VM budget B_M", f"${PAPER.vm_budget_per_hour}/h"],
            ["storage budget B_S", f"${PAPER.storage_budget_per_hour}/h"],
            ["interval T", f"{PAPER.interval_seconds:.0f} s"],
        ],
        title="paper constants (Section VI-A)",
    ))
    print()
    print(format_table(
        ["cluster", "utility", "price/h", "max VMs"],
        [[c.name, c.utility, c.price_per_hour, c.max_vms]
         for c in paper_vm_clusters()],
        title="Table II — virtual clusters",
    ))
    print()
    print(format_table(
        ["cluster", "utility", "price/GB/h", "capacity"],
        [[c.name, c.utility, f"{c.price_per_gb_hour:.2e}",
          f"{c.capacity_bytes / 1024**3:.0f} GB"]
         for c in paper_nfs_clusters()],
        title="Table III — NFS clusters",
    ))
    return 0


def _spec_json(spec) -> dict:
    if "controller" in spec.grid:
        controller = list(spec.grid["controller"])
    else:
        controller = spec.defaults.get("controller", "paper")
    return {
        "name": spec.name,
        "title": spec.title,
        "paper_ref": spec.paper_ref,
        "grid": {k: list(v) for k, v in spec.grid.items()},
        "defaults": dict(spec.defaults),
        "controller": controller,
        "tags": list(spec.tags),
        "expected_seconds_per_cell": spec.expected_seconds,
        "closed_loop": spec.build is not None,
    }


def _cmd_scenarios(args: argparse.Namespace) -> int:
    import json

    from repro.experiments import registry

    if args.name is None:
        if args.as_json:
            print(json.dumps(
                [_spec_json(spec) for spec in registry.specs()], indent=2
            ))
            return 0
        rows = []
        for spec in registry.specs():
            cells = 1
            for values in spec.grid.values():
                cells *= len(values)
            rows.append([
                spec.name,
                spec.paper_ref.split(" (")[0],
                cells,
                ",".join(spec.tags),
                spec.title,
            ])
        print(format_table(
            ["scenario", "paper", "grid cells", "tags", "description"],
            rows,
            title="registered scenarios (repro sweep <name>)",
        ))
        return 0

    try:
        spec = registry.get(args.name)
    except registry.UnknownScenarioError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if args.as_json:
        print(json.dumps(_spec_json(spec), indent=2))
        return 0
    rows = [["title", spec.title], ["paper", spec.paper_ref],
            ["tags", ", ".join(spec.tags) or "-"],
            ["kind", "closed-loop" if spec.build is not None else "analytic"],
            ["~s / cell", f"{spec.expected_seconds:g}"]]
    for key, values in spec.grid.items():
        rows.append([f"grid: {key}", ", ".join(str(v) for v in values)])
    for key, value in spec.defaults.items():
        rows.append([f"default: {key}", value])
    print(format_table(["field", "value"], rows,
                       title=f"scenario {spec.name!r}"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments import registry
    from repro.experiments.sweep import SweepError, run_sweep, seed_list

    try:
        spec = registry.get(args.name)
        overrides = _parse_overrides(args.overrides)
        # Fail fast on unknown --set keys (the KeyError lists the
        # scenario's valid knobs) before any cell runs or worker spawns.
        spec.grid_points(overrides)
        seeds = seed_list(args.seeds, base=args.seed_base)
    except (registry.UnknownScenarioError, KeyError, ValueError) as exc:
        print(exc.args[0], file=sys.stderr)
        return 2

    def progress(outcome) -> None:
        params = " ".join(
            f"{k}={v}" for k, v in outcome.cell.params
        )
        state = "cached" if outcome.cached else \
            f"ran in {outcome.duration_seconds:.1f}s"
        print(f"  [{outcome.cell.hash}] seed={outcome.cell.seed} "
              f"{params}: {state}")

    try:
        report = run_sweep(
            args.name,
            jobs=args.jobs,
            seeds=seeds,
            out_dir=args.out,
            overrides=overrides,
            force=args.force,
            progress=progress,
        )
    except KeyError as exc:  # unknown --set parameter
        print(exc.args[0], file=sys.stderr)
        return 2
    except (SweepError, ValueError) as exc:
        # Failed cells (bad --set values surface here too); completed
        # cells were saved and a re-run will reuse them.
        print(exc.args[0], file=sys.stderr)
        return 1

    metric_names = report.metric_names()[:5]
    rows = []
    for outcome in report.outcomes:
        wall = f"{outcome.duration_seconds:.1f}s"
        if outcome.cached:
            wall += "*"  # recorded when the cached artifact was created
        rows.append(
            [outcome.cell.hash, outcome.cell.seed,
             " ".join(f"{k}={v}" for k, v in outcome.cell.params), wall]
            + [f"{outcome.metrics.get(name, float('nan')):.3f}"
               if isinstance(outcome.metrics.get(name), float)
               else str(outcome.metrics.get(name, "-"))
               for name in metric_names]
        )
    print()
    print(format_table(
        ["cell", "seed", "params", "time"] + metric_names,
        rows,
        title=f"sweep {args.name!r}: {report.total} cells "
              f"({report.ran} ran, {report.cached} cached) "
              f"in {report.wall_seconds:.1f}s with {args.jobs} job(s) "
              f"[* = cached]",
    ))
    if "controllers" in spec.tags:
        import json

        from repro.experiments.controllers import (
            summary_table,
            write_controller_summary,
        )

        summary_path = write_controller_summary(report)
        with open(summary_path) as handle:
            headers, table_rows = summary_table(json.load(handle))
        print()
        print(format_table(
            headers, table_rows,
            title="controller ablation: cost vs quality vs SLA",
        ))
        print(f"controller summary: {summary_path}")
    print(f"artifacts: {report.out_dir / args.name}/")
    return 0


def _catalog_knob_names(factory) -> List[str]:
    """The --set vocabulary of a catalog config factory (its kwargs)."""
    import inspect

    return [name for name in inspect.signature(factory).parameters
            if name != "name"]


def _catalog_config_from_args(args: argparse.Namespace):
    """Build the catalog/geo spec from the shared CLI knobs.

    The shared front half of ``catalog``, ``geo`` and ``submit``.
    Usage errors (unknown --set keys, values the config dataclasses
    reject) print to stderr and return ``None``; callers exit 2.
    """
    from repro.workload.catalog import (
        CATALOG_VARIANTS,
        catalog_config,
        geo_catalog_config,
    )

    knobs = dict(
        seed=args.seed,
        mode=args.mode,
        num_channels=args.channels,
        chunks_per_channel=args.chunks,
        horizon_hours=args.hours,
        arrival_rate=args.rate,
        dt=args.dt,
        interval_minutes=args.interval_minutes,
        num_shards=args.shards,
        **CATALOG_VARIANTS[args.variant],
    )
    if args.topology is None and args.exact:
        print("--exact selects the geo LP solver and needs --topology "
              "(or use `repro geo`)", file=sys.stderr)
        return None

    factory = geo_catalog_config if args.topology is not None \
        else catalog_config
    overrides = _parse_overrides(args.overrides)
    valid = _catalog_knob_names(factory)
    unknown = sorted(set(overrides) - set(valid))
    if unknown:
        # Fail fast before any engine work, naming the valid knobs.
        print(f"unknown --set key(s) {', '.join(unknown)} "
              f"(valid: {', '.join(valid)})", file=sys.stderr)
        return None
    if args.topology is not None:
        knobs.update(topology=args.topology, exact=args.exact)
        knobs.update(overrides)
        knobs["name"] = f"catalog-geo-{args.variant}"
    else:
        knobs.update(overrides)
        knobs["name"] = f"catalog-{args.variant}"
    try:
        # The config dataclasses validate every knob (including a --set
        # or --topology value the flags let through, e.g. an unknown
        # topology preset) with a precise message — surface it as the
        # usage error it is, not a traceback.
        return factory(**knobs)
    except (TypeError, ValueError) as exc:
        # TypeError covers --set values of the wrong JSON container
        # type (e.g. --set 'num_shards=[2]'); both are usage errors.
        print(exc.args[0], file=sys.stderr)
        return None


def _cmd_catalog(args: argparse.Namespace) -> int:
    import json
    import time

    from repro.api import EngineConfig, open_run
    from repro.sim.shard import summarize_catalog

    config = _catalog_config_from_args(args)
    if config is None:
        return 2

    started = time.perf_counter()
    engine_config = EngineConfig(
        spec=config, workers=args.jobs, controller=args.controller
    )
    with open_run(engine_config) as run:
        if args.stream:
            for snap in run.epochs():
                print(f"  epoch {snap.index:>3}/{snap.epochs_total} "
                      f"t={snap.t_end / 3600:.2f}h "
                      f"pop={snap.population} "
                      f"used={snap.used_mbps:.0f} Mbps "
                      f"quality={snap.quality:.3f} "
                      f"vm=${snap.vm_cost_per_hour:.2f}/h")
        result = run.result()
    wall = time.perf_counter() - started
    metrics = summarize_catalog(result)
    steps_per_sec = result.steps / wall if wall > 0 else float("inf")
    rows = [
        ["variant", args.variant],
        ["channels x chunks",
         f"{args.channels} x {args.chunks}"],
        ["shards (workers)",
         f"{config.effective_shards} ({args.jobs})"],
        ["simulated hours", f"{args.hours:g}"],
        ["arrivals", metrics["arrivals"]],
        ["peak population", metrics["peak_population"]],
        ["final population", metrics["final_population"]],
        ["avg streaming quality", f"{metrics['average_quality']:.3f}"],
        ["mean reserved (Mbps)",
         f"{metrics['mean_reserved_mbps']:.0f}"],
        ["mean used (Mbps)", f"{metrics['mean_used_mbps']:.0f}"],
        ["VM cost ($/h)", f"{metrics['vm_cost_per_hour']:.2f}"],
    ]
    if args.topology is not None:
        solver = "LP (exact)" if config.exact else "greedy"
        rows += [
            ["regions (topology)",
             f"{metrics['num_regions']} ({config.topology}, {solver})"],
            ["mean remote fraction",
             f"{metrics['mean_remote_fraction']:.3f}"],
            ["egress cost ($/h)",
             f"{metrics['egress_cost_per_hour']:.2f}"],
            ["latency-adj quality",
             f"{metrics['latency_adjusted_quality']:.3f}"],
        ]
    rows += [
        ["steps/s", f"{steps_per_sec:.1f}"],
        ["wall seconds", f"{wall:.1f}"],
    ]
    print(format_table(
        ["metric", "value"],
        rows,
        title=f"sharded catalog run ({config.name}, seed {args.seed})",
    ))
    if args.out is not None:
        payload = {
            "variant": args.variant,
            "topology": getattr(config, "topology", None),
            "seed": config.seed,
            "jobs": args.jobs,
            "wall_seconds": wall,
            "steps_per_sec": steps_per_sec,
            "metrics": metrics,
        }
        with open(args.out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.service import RunHost, ServiceServer

    async def serve() -> int:
        host = RunHost(
            max_concurrent=args.max_runs,
            queue_limit=args.queue_limit,
            state_dir=args.state_dir,
            checkpoint_every=args.checkpoint_every,
        )
        server = ServiceServer(host, bind=args.host, port=args.port)
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        state = f" state-dir={args.state_dir}" if args.state_dir else ""
        # The exact line the smoke scripts and tests wait for.
        print(f"repro-service listening on "
              f"http://{args.host}:{server.port}{state}", flush=True)
        await stop.wait()
        print("repro-service draining (checkpointing live runs)",
              flush=True)
        await server.close()
        return 0

    return asyncio.run(serve())


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.api import EngineConfig
    from repro.service import ServiceClient, ServiceError

    config = _catalog_config_from_args(args)
    if config is None:
        return 2
    engine_config = EngineConfig(
        spec=config, workers=args.jobs, controller=args.controller
    )
    client = ServiceClient(args.url)
    try:
        run_id = client.submit(engine_config)
        print(f"submitted {run_id} ({engine_config.kind} "
              f"{config.name!r}) to {args.url}")
        if args.stream:
            for event in client.events(run_id):
                if event["event"] != "epoch":
                    continue
                snap = event["data"]
                print(f"  epoch {snap['index']:>3}/{snap['epochs_total']} "
                      f"t={snap['t_end'] / 3600:.2f}h "
                      f"pop={snap['population']} "
                      f"used={snap['used_mbps']:.0f} Mbps "
                      f"quality={snap['quality']:.3f} "
                      f"vm=${snap['vm_cost_per_hour']:.2f}/h")
        if not (args.wait or args.stream):
            return 0
        info = client.wait(run_id)
        if info["state"] != "done":
            print(f"run {run_id} ended {info['state']}: "
                  f"{info.get('error') or 'cancelled'}", file=sys.stderr)
            return 1
        data = client.result_bytes(run_id)
        if args.out is not None:
            with open(args.out, "wb") as handle:
                handle.write(data)
            print(f"wrote {args.out}")
        import hashlib
        import json

        summary = json.loads(data.decode("utf-8"))["summary"]
        print(format_table(
            ["metric", "value"],
            [[key, f"{value:.4f}" if isinstance(value, float) else value]
             for key, value in sorted(summary.items())],
            title=f"run {run_id} summary "
                  f"(sha256 {hashlib.sha256(data).hexdigest()[:16]}…)",
        ))
        return 0
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    except ConnectionError as exc:
        print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
        return 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import render_text, run_lint
    from repro.analysis.engine import all_rules
    from repro.analysis.report import write_json

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id}  {rule.title}")
            print(f"    {rule.doc}")
            print(f"    fix: {rule.hint}")
        return 0
    baseline = False if args.no_baseline else args.baseline
    result = run_lint(args.paths or None, baseline=baseline)
    print(render_text(result, verbose=args.verbose))
    if args.json_out is not None:
        write_json(result, args.json_out)
        print(f"wrote {args.json_out}")
    if result.parse_errors:
        return 2
    return 1 if result.gate_failures(strict=args.check) else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "analyze": _cmd_analyze,
        "trace": _cmd_trace,
        "run": _cmd_run,
        "info": _cmd_info,
        "scenarios": _cmd_scenarios,
        "sweep": _cmd_sweep,
        "catalog": _cmd_catalog,
        "geo": _cmd_catalog,  # same engine, geo-flavored defaults
        "lint": _cmd_lint,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
