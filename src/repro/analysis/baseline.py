"""The committed finding baseline: gating from day one, debt burns down.

The baseline is a JSON map of finding fingerprints (line-number
independent; see :class:`~repro.analysis.model.Finding.fingerprint`) to
occurrence counts.  The engine classifies every finding against it:

* **new** — not in the baseline (or beyond its count): fails the lint;
* **baselined** — covered by an entry: reported, does not fail;
* **stale** — baseline entries the scan no longer produces: the debt
  was paid, so ``repro lint --check`` (the CI mode) fails until
  ``scripts/lint_baseline.py --update`` prunes them — entries only
  ever burn down, they are never silently kept.

The file lives at the repository root (``lint_baseline.json``) and is
discovered by walking up from the scan target, so ``repro lint`` works
from any checkout directory without flags.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.model import Finding, fingerprint_counts

__all__ = ["Baseline", "find_baseline", "BASELINE_NAME", "BASELINE_SCHEMA"]

BASELINE_NAME = "lint_baseline.json"
BASELINE_SCHEMA = 1


@dataclass
class Baseline:
    """Fingerprint → count, with apply/save/load round-tripping."""

    entries: Dict[str, int] = field(default_factory=dict)
    path: Optional[Path] = None

    @classmethod
    def load(cls, path) -> "Baseline":
        path = Path(path)
        payload = json.loads(path.read_text())
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != BASELINE_SCHEMA
            or not isinstance(payload.get("entries"), dict)
        ):
            raise ValueError(
                f"{path} is not a schema-{BASELINE_SCHEMA} lint baseline"
            )
        entries = {
            str(key): int(value)
            for key, value in payload["entries"].items()
        }
        return cls(entries=entries, path=path)

    @classmethod
    def from_findings(
        cls, findings: Iterable[Finding], path=None
    ) -> "Baseline":
        return cls(
            entries=fingerprint_counts(findings),
            path=Path(path) if path is not None else None,
        )

    def save(self, path=None) -> Path:
        path = Path(path) if path is not None else self.path
        if path is None:
            raise ValueError("no baseline path to save to")
        payload = {
            "schema": BASELINE_SCHEMA,
            "comment": (
                "Known repro-lint findings, burning down. Entries are "
                "line-number-independent fingerprints; refresh only via "
                "scripts/lint_baseline.py --update (docs/static-analysis.md)."
            ),
            "entries": {
                key: self.entries[key] for key in sorted(self.entries)
            },
        }
        path.write_text(json.dumps(payload, indent=2) + "\n")
        return path

    def apply(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding], Dict[str, int]]:
        """Split findings into (new, baselined) and report stale debt.

        Within one fingerprint, the first ``count`` occurrences are
        baselined and the rest are new — a second copy of a baselined
        bug is still a regression.
        """
        remaining = dict(self.entries)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            if remaining.get(finding.fingerprint, 0) > 0:
                remaining[finding.fingerprint] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale = {key: count for key, count in remaining.items() if count > 0}
        return new, baselined, stale


def find_baseline(start: Path) -> Optional[Path]:
    """Walk up from ``start`` looking for the committed baseline file."""
    node = Path(start).resolve()
    if node.is_file():
        node = node.parent
    for candidate in [node, *node.parents]:
        path = candidate / BASELINE_NAME
        if path.is_file():
            return path
    return None
