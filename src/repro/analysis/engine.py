"""The lint engine: parse → rules → pragmas → baseline → result.

:func:`run_lint` is the one entry point behind ``repro lint``, the
fixture tests and ``scripts/lint_baseline.py``:

1. parse every ``*.py`` under the target paths into a
   :class:`~repro.analysis.visitor.Project` (one AST pass per file);
2. run the full rule pack (local rules + the call-graph taint rules);
3. drop findings whose source line carries an inline
   ``# lint: allow[RULE]`` pragma (sanctioned sites);
4. classify the rest against the committed baseline (new / baselined /
   stale) — new findings are what gates CI.

The engine is pure analysis: no imports of the scanned code, no
execution, so a fixture file full of planted bugs is safe to scan and
the whole ``src/`` pass stays well under the 10 s budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline, find_baseline
from repro.analysis.model import Finding, pragma_allows
from repro.analysis.rules import DEFAULT_CONFIG, LintConfig, local_rules
from repro.analysis.taint import taint_rules
from repro.analysis.visitor import Project

__all__ = [
    "LintResult",
    "all_rules",
    "default_target",
    "run_lint",
    "update_baseline",
]


def all_rules():
    """The full pack, in rule-ID order (DET001..., then RES/CKP)."""
    pack = list(local_rules()) + list(taint_rules())
    return tuple(sorted(pack, key=lambda rule: rule.rule_id))


def default_target() -> Path:
    """The installed ``repro`` package directory (what CI lints)."""
    import repro

    return Path(repro.__file__).resolve().parent


@dataclass
class LintResult:
    """Everything one lint pass learned."""

    findings: List[Finding]  # post-pragma, pre-baseline
    new: List[Finding]
    baselined: List[Finding]
    stale: Dict[str, int]  # fingerprint -> unspent count
    suppressed: int  # pragma-suppressed finding count
    files: int
    duration_seconds: float
    baseline_path: Optional[Path] = None
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)

    @property
    def rule_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return counts

    def gate_failures(self, strict: bool = False) -> int:
        """What fails the build: new findings (+ stale debt when strict)."""
        return len(self.new) + (len(self.stale) if strict else 0)


def _suppressed(project: Project, finding: Finding) -> bool:
    """Inline pragma on the finding's line, or a standalone pragma
    comment on the line directly above (for lines with no room)."""
    for module in project.modules:
        if module.relpath != finding.path:
            continue
        allowed = pragma_allows(module.line(finding.line))
        above = module.line(finding.line - 1).strip()
        if above.startswith("#"):
            allowed = allowed | pragma_allows(above)
        return finding.rule in allowed or "*" in allowed
    return False


def run_lint(
    paths: Optional[Sequence] = None,
    *,
    baseline: Optional[object] = None,
    config: LintConfig = DEFAULT_CONFIG,
    rules=None,
) -> LintResult:
    """Run the rule pack over ``paths`` (default: the repro package).

    ``baseline`` may be a :class:`Baseline`, a path, ``None`` (auto-
    discover ``lint_baseline.json`` above the first target) or
    ``False`` (explicitly no baseline).
    """
    started = time.perf_counter()
    targets = [Path(p) for p in (paths or [default_target()])]
    project = Project(targets)
    if baseline is None:
        found = find_baseline(targets[0])
        baseline = Baseline.load(found) if found else Baseline()
    elif baseline is False:
        baseline = Baseline()
    elif not isinstance(baseline, Baseline):
        baseline = Baseline.load(baseline)

    findings: List[Finding] = []
    suppressed = 0
    for rule in rules or all_rules():
        for finding in rule.run(project, config):
            if _suppressed(project, finding):
                suppressed += 1
            else:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.col))
    new, baselined, stale = baseline.apply(findings)
    return LintResult(
        findings=findings,
        new=new,
        baselined=baselined,
        stale=stale,
        suppressed=suppressed,
        files=project.file_count,
        duration_seconds=time.perf_counter() - started,
        baseline_path=baseline.path,
        parse_errors=list(project.errors),
    )


def update_baseline(
    paths: Optional[Sequence] = None,
    *,
    baseline_path,
    config: LintConfig = DEFAULT_CONFIG,
) -> Tuple[Baseline, LintResult]:
    """Re-record the baseline from the current findings (the sanctioned
    refresh path, wrapped by ``scripts/lint_baseline.py --update``)."""
    result = run_lint(paths, baseline=False, config=config)
    refreshed = Baseline.from_findings(result.findings, path=baseline_path)
    refreshed.save()
    return refreshed, result
