"""Rendering lint results: terminal text and the CI JSON artifact."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.analysis.model import Finding

__all__ = ["render_text", "result_payload", "write_json"]

REPORT_SCHEMA = 1


def _line(finding: Finding) -> str:
    return (
        f"{finding.location()}: {finding.rule} {finding.message}\n"
        f"    {finding.snippet}\n"
        f"    fix: {finding.hint}"
    )


def render_text(result, verbose: bool = False) -> str:
    """The human-readable report ``repro lint`` prints."""
    sections: List[str] = []
    if result.new:
        sections.append("new findings (fail):")
        sections.extend(_line(f) for f in result.new)
    if result.baselined:
        if verbose:
            sections.append("baselined findings (known debt, burning down):")
            sections.extend(_line(f) for f in result.baselined)
        else:
            sections.append(
                f"{len(result.baselined)} baselined finding(s) "
                f"(known debt; repro lint --verbose lists them)"
            )
    if result.stale:
        sections.append(
            "stale baseline entries (debt paid — run "
            "scripts/lint_baseline.py --update to burn them down):"
        )
        sections.extend(f"  {key} (x{count})" for key, count in
                        sorted(result.stale.items()))
    for path, error in result.parse_errors:
        sections.append(f"{path}: parse error: {error}")
    counts = ", ".join(
        f"{rule}={count}" for rule, count in sorted(result.rule_counts.items())
    ) or "none"
    sections.append(
        f"checked {result.files} file(s) in {result.duration_seconds:.2f}s: "
        f"{len(result.new)} new, {len(result.baselined)} baselined, "
        f"{len(result.stale)} stale baseline entr"
        f"{'y' if len(result.stale) == 1 else 'ies'} "
        f"[{counts}]"
    )
    return "\n".join(sections)


def _finding_payload(finding: Finding) -> Dict:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule,
        "message": finding.message,
        "hint": finding.hint,
        "context": finding.context,
        "snippet": finding.snippet,
        "fingerprint": finding.fingerprint,
    }


def result_payload(result) -> Dict:
    """The machine-readable report (uploaded as a CI artifact)."""
    return {
        "schema": REPORT_SCHEMA,
        "files": result.files,
        "duration_seconds": result.duration_seconds,
        "new": [_finding_payload(f) for f in result.new],
        "baselined": [_finding_payload(f) for f in result.baselined],
        "stale_baseline_entries": dict(sorted(result.stale.items())),
        "parse_errors": [
            {"path": path, "error": error}
            for path, error in result.parse_errors
        ],
        "rule_counts": dict(sorted(result.rule_counts.items())),
    }


def write_json(result, path) -> None:
    with open(path, "w") as handle:
        json.dump(result_payload(result), handle, indent=2, sort_keys=True)
        handle.write("\n")
