"""`repro.analysis`: the repository's determinism lint engine.

Every headline guarantee the repo makes — golden parity, jobs-1-vs-N
byte-identity, sha256-identical sweep artifacts, checkpoint/resume
equivalence — is enforced *dynamically*, by running engines and diffing
outputs.  This package is the static half of that contract: a custom
AST-based analysis over ``src/`` that catches the bug classes which
break those guarantees *at review time*, before they cost a bisect.

The rule pack (each rule has an ID, docs, fixture tests and a fix hint):

* :data:`~repro.analysis.rules.DET001` — raw RNG construction outside
  ``sim/rng.py`` (all draws must route through ``make_rng`` /
  ``RandomStreams`` named streams).
* :data:`~repro.analysis.taint.DET002` — wall-clock reads
  (``time.time``/``perf_counter``/``datetime.now``/…) reachable from
  artifact-producing entry points (``advance_epoch``, ``result``,
  ``run_cell``), found by a module-level call-graph taint pass.
* :data:`~repro.analysis.taint.DET003` — unordered ``set`` iteration /
  reduction in the same artifact-reachable paths.
* :data:`~repro.analysis.rules.DET004` — ``os.environ`` reads outside
  the sanctioned resolution points (``repro.api.resolve_workers`` and
  ``experiments/config.py``).
* :data:`~repro.analysis.rules.RES001` — ``SharedMemory`` lifecycle:
  creates paired with unlinks, workers never unlink (the ``sim/shm.py``
  contract).
* :data:`~repro.analysis.rules.CKP001` — unpicklable attributes
  (lambdas, local closures) assigned on checkpoint-state classes.

Surfaces: the ``repro lint`` CLI subcommand (gating in CI against the
committed ``lint_baseline.json``) and :func:`run_lint` for tests and
scripts.  A finding on a sanctioned line is suppressed with an inline
pragma — ``# lint: allow[DET002] <reason>`` — while known debt lives in
the baseline and burns down (``scripts/lint_baseline.py --update``).
See ``docs/static-analysis.md`` for the catalog and workflows.
"""

from repro.analysis.baseline import Baseline, find_baseline
from repro.analysis.engine import LintResult, default_target, run_lint, update_baseline
from repro.analysis.model import Finding, Rule
from repro.analysis.report import render_text, result_payload

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "Rule",
    "default_target",
    "find_baseline",
    "render_text",
    "result_payload",
    "run_lint",
    "update_baseline",
]
