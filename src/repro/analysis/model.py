"""Core datatypes of the lint engine: findings, rules, pragmas.

A :class:`Finding` is one rule violation at one source location.  Its
:attr:`~Finding.fingerprint` deliberately excludes the line number, so
baseline entries survive unrelated edits above the flagged site: two
findings are "the same" when they are the same rule, in the same file,
inside the same enclosing function/class, on the same (whitespace-
normalized) source line.  Several identical lines in one scope fold
into one fingerprint with a count — the baseline stores counts, and a
*new* occurrence beyond the baselined count still fails.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator

__all__ = ["Finding", "Rule", "fingerprint_counts", "pragma_allows"]

#: Inline suppression pragma: ``# lint: allow[DET002] why this is fine``,
#: either trailing the flagged line or as a standalone comment on the
#: line directly above it.  ``allow[*]`` suppresses every rule on the
#: line.  Pragmas are for *sanctioned* sites (reviewed, permanently
#: fine); temporary debt goes in the baseline instead, where it burns
#: down.
_PRAGMA = re.compile(r"#\s*lint:\s*allow\[([A-Z0-9*,\s]+)\]")


def pragma_allows(line: str) -> frozenset:
    """The rule IDs an inline pragma on ``line`` suppresses (may be ``*``)."""
    match = _PRAGMA.search(line)
    if not match:
        return frozenset()
    return frozenset(
        token.strip() for token in match.group(1).split(",") if token.strip()
    )


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str  # scan-root-relative posix path
    line: int  # 1-based
    col: int  # 0-based
    rule: str  # e.g. "DET001"
    message: str
    hint: str  # how to fix (or sanction) it
    context: str  # enclosing qualname, e.g. "MeshOverlay.__init__"
    snippet: str  # the flagged source line, stripped

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        snippet = " ".join(self.snippet.split())
        return f"{self.path}::{self.rule}::{self.context}::{snippet}"

    def location(self) -> str:
        return f"{self.path}:{self.line}"


def fingerprint_counts(findings: Iterable[Finding]) -> Dict[str, int]:
    """Histogram of finding fingerprints (the baseline's payload)."""
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
    return counts


@dataclass
class Rule:
    """One checker: an ID, documentation, and a check function.

    ``check`` receives the whole :class:`~repro.analysis.visitor.Project`
    plus the :class:`~repro.analysis.rules.LintConfig` (even purely
    local rules — uniformity keeps the engine loop trivial) and yields
    :class:`Finding`\\ s.  Pragma suppression and baseline matching
    happen in the engine, not in rules.
    """

    rule_id: str
    title: str
    doc: str  # one-paragraph rationale for the catalog
    hint: str  # default fix hint
    check: "object" = field(repr=False, default=None)  # (project, config)

    def run(self, project, config) -> Iterator[Finding]:
        return self.check(project, config)
