"""The call-graph / taint pass: DET002 (wall clock) and DET003 (sets).

Both rules care about the same thing — code that can execute while an
*artifact* is being produced.  The artifact-producing entry points are
the engine protocol's ``advance_epoch`` / ``result`` and the sweep's
``run_cell`` (configurable); everything reachable from them through a
module-level call graph is "artifact path", and inside that region a
wall-clock read taints the artifact (DET002) while an unordered
``set`` iteration / reduction taints its float-reduction order
(DET003).

The graph is deliberately conservative:

* resolved dotted calls (``module.func(...)``, imported names,
  constructors → ``__init__``) become precise edges;
* ``self.x(...)`` prefers the defining class's method, then any
  same-named method in the module, then in the project;
* any other ``obj.x(...)`` attribute call edges to *every* method named
  ``x`` in the project (methods only — plain functions are not
  reachable through an attribute).

Over-approximation yields false positives, never false negatives; the
pragma/allowlist mechanism (``# lint: allow[DET002] reason``) is how a
reviewed site is sanctioned — e.g. the engine's ``phase_seconds``
instrumentation and the sweep's ``.runinfo`` sidecar, which measure
wall time *about* the run without writing it into artifacts.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.model import Finding, Rule
from repro.analysis.rules import LintConfig
from repro.analysis.visitor import FunctionInfo, Project

__all__ = ["DET002", "DET003", "WALL_CLOCK", "build_call_graph", "taint_rules"]

#: Dotted names whose return value depends on when (or on what machine)
#: the call runs.  ``process_time`` counts: CPU seconds are just as
#: nondeterministic as wall seconds if they leak into an artifact.
WALL_CLOCK = frozenset({
    "time.time",
    "time.time_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})


def _edges(project: Project, func: FunctionInfo) -> List[FunctionInfo]:
    """Conservative call edges out of one function."""
    out: List[FunctionInfo] = []
    for site in func.calls:
        if site.resolved is not None:
            targets = project.callee(site.resolved)
            if targets:
                out.extend(targets)
                continue
        if site.self_attr is not None:
            name = site.self_attr
            own = None
            if func.class_name is not None:
                cls_qual = f"{func.module.name}.{func.class_name}"
                cls = project.classes.get(cls_qual)
                if cls is not None and name in cls.methods:
                    own = cls.methods[name]
            if own is not None:
                out.append(own)
            else:
                # unresolved self-call (inherited / dynamically bound):
                # conservatively edge to every same-named method
                out.extend(project.methods_by_name.get(name, ()))
            continue
        if site.attr_name is not None:
            out.extend(project.methods_by_name.get(site.attr_name, ()))
    return out


def build_call_graph(
    project: Project, config: LintConfig
) -> Tuple[Set[str], Dict[str, str]]:
    """Functions reachable from the artifact entry points.

    Returns ``(reachable qualnames, via)`` where ``via[f]`` is ``f``'s
    predecessor on a shortest path from an entry point — enough to
    print a human-readable taint trace in every finding.
    """
    entries = [
        func
        for func in project.functions.values()
        if func.name in config.entry_points
    ]
    reachable: Set[str] = set()
    via: Dict[str, str] = {}
    queue = deque()
    for entry in entries:
        if entry.full_qualname not in reachable:
            reachable.add(entry.full_qualname)
            queue.append(entry)
    while queue:
        func = queue.popleft()
        for target in _edges(project, func):
            if target.full_qualname in reachable:
                continue
            reachable.add(target.full_qualname)
            via[target.full_qualname] = func.full_qualname
            queue.append(target)
    return reachable, via


def _trace(via: Dict[str, str], qualname: str, limit: int = 6) -> str:
    """``entry -> ... -> qualname`` (shortest path, short names)."""
    chain = [qualname]
    while chain[-1] in via and len(chain) < limit:
        chain.append(via[chain[-1]])
    parts = [q.rpartition(".")[2] if "." in q else q for q in reversed(chain)]
    return " -> ".join(parts)


def _function_finding(
    func: FunctionInfo, node: ast.AST, rule: Rule, message: str
) -> Finding:
    module = func.module
    return Finding(
        path=module.relpath,
        line=node.lineno,
        col=node.col_offset,
        rule=rule.rule_id,
        message=message,
        hint=rule.hint,
        context=module.context_of(node),
        snippet=module.line(node.lineno).strip(),
    )


# ----------------------------------------------------------------------
# DET002 — wall-clock taint on artifact paths
# ----------------------------------------------------------------------

def _check_det002(project: Project, config: LintConfig) -> Iterator[Finding]:
    reachable, via = build_call_graph(project, config)
    for func in project.functions.values():
        if func.full_qualname not in reachable:
            continue
        for site in func.calls:
            if site.resolved not in WALL_CLOCK:
                continue
            trace = _trace(via, func.full_qualname)
            yield _function_finding(
                func, site.node, DET002,
                f"wall-clock read {site.resolved!r} on an artifact path "
                f"({trace})",
            )


DET002 = Rule(
    rule_id="DET002",
    title="wall-clock taint",
    doc=(
        "Artifacts must be byte-identical across runs and worker "
        "counts; any `time.*` / `datetime.now` value that can flow "
        "from `advance_epoch`/`result`/`run_cell` into a result is "
        "volatile state in a deterministic output. Sanctioned timing "
        "(the engine's `phase_seconds` diagnostics, the sweep's "
        "`.runinfo` sidecar) is *about* the run, never *in* the "
        "artifact — mark those sites with `# lint: allow[DET002]`."
    ),
    hint=(
        "move timing out of the artifact path (sidecar/diagnostics), "
        "or sanction a reviewed site inline with "
        "`# lint: allow[DET002] <why>`"
    ),
)


# ----------------------------------------------------------------------
# DET003 — unordered iteration / reduction on artifact paths
# ----------------------------------------------------------------------

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference",
}


def _local_set_names(node: ast.AST) -> Set[str]:
    """Names assigned a set-typed value anywhere in ``node``'s body."""
    names: Set[str] = set()
    # two passes so `a = set(); b = a | other` resolves
    for _ in range(2):
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign):
                if _is_setish(sub.value, names):
                    for target in sub.targets:
                        if isinstance(target, ast.Name):
                            names.add(target.id)
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                if _is_setish(sub.value, names) and isinstance(
                    sub.target, ast.Name
                ):
                    names.add(sub.target.id)
    return names


def _is_setish(node: ast.AST, local_sets: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Name):
        return node.id in local_sets
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_setish(node.left, local_sets) or _is_setish(
            node.right, local_sets
        )
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set", "frozenset"
        ):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
            and _is_setish(node.func.value, local_sets)
        ):
            return True
    return False


def _check_det003(project: Project, config: LintConfig) -> Iterator[Finding]:
    reachable, via = build_call_graph(project, config)
    for func in project.functions.values():
        if func.full_qualname not in reachable:
            continue
        local_sets = _local_set_names(func.node)
        trace = _trace(via, func.full_qualname)

        def flag(node: ast.AST, what: str):
            return _function_finding(
                func, node, DET003,
                f"{what} on an artifact path ({trace})",
            )

        for node in ast.walk(func.node):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_setish(node.iter, local_sets):
                    yield flag(node, "iteration over an unordered set")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                                   ast.DictComp)):
                for gen in node.generators:
                    if _is_setish(gen.iter, local_sets):
                        yield flag(
                            node, "comprehension over an unordered set"
                        )
            elif isinstance(node, ast.Call):
                reducer = None
                if isinstance(node.func, ast.Name) and node.func.id == "sum":
                    reducer = "sum()"
                else:
                    dotted = func.module.resolve(node.func)
                    if dotted in ("math.fsum", "numpy.sum", "numpy.mean"):
                        reducer = dotted
                if (
                    reducer
                    and node.args
                    and _is_setish(node.args[0], local_sets)
                ):
                    yield flag(
                        node, f"float reduction {reducer} over an "
                        f"unordered set"
                    )


DET003 = Rule(
    rule_id="DET003",
    title="unordered merge iteration",
    doc=(
        "Float addition is not associative: summing or iterating a "
        "`set` in a merge/reduction that feeds an artifact makes the "
        "result depend on hash-iteration order, which varies across "
        "interpreters and inputs. Every reduction on an artifact path "
        "must impose an explicit order (`sorted(...)`, fixed shard "
        "order) before accumulating."
    ),
    hint="wrap the iterable in sorted(...) (or reduce in fixed index order)",
)


DET002.check = _check_det002
DET003.check = _check_det003


def taint_rules():
    return (DET002, DET003)
