"""The AST visitor framework: per-module models and the project index.

The rules never re-parse or re-walk source themselves; everything they
need is collected here in one pass per module:

* an **import alias map** (``np`` → ``numpy``, ``perf_counter`` →
  ``time.perf_counter``, relative imports resolved against the module's
  package), so a rule asks "what dotted name does this call resolve
  to?" instead of pattern-matching syntax;
* a **function table** — one :class:`FunctionInfo` per ``def``/method
  with its resolved call sites (the call-graph edges the taint pass
  consumes); nested ``def``\\ s fold into their enclosing function,
  which over-approximates reachability in exactly the conservative
  direction a lint wants;
* an **enclosing-context tag** on every AST node (``Class.method`` /
  ``<module>``), giving findings their line-number-independent
  baseline identity.

Module names are derived from the package structure on disk (walking up
``__init__.py`` chains), so the same engine runs unchanged over
``src/repro`` and over loose fixture files in the test suite.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "Project",
    "parse_module",
]


@dataclass(frozen=True)
class CallSite:
    """One ``Call`` inside a function, pre-resolved for the rules.

    ``resolved`` is the dotted name of the callee when the alias map can
    name it (``"time.perf_counter"``, ``"repro.sim.rng.make_rng"``);
    ``self_attr`` is set for ``self.x(...)`` / ``cls.x(...)`` calls; and
    ``attr_name`` for any other ``obj.x(...)`` attribute call — the
    taint pass turns the latter into conservative same-name edges.
    """

    node: ast.Call
    resolved: Optional[str]
    self_attr: Optional[str]
    attr_name: Optional[str]


@dataclass
class FunctionInfo:
    """One function or method (nested defs folded into their parent)."""

    module: "ModuleInfo"
    name: str  # bare name
    qualname: str  # local, e.g. "ShardedSimulator.advance_epoch"
    full_qualname: str  # e.g. "repro.sim.shard.ShardedSimulator.advance_epoch"
    class_name: Optional[str]  # enclosing class (local name), if a method
    node: ast.AST
    calls: List[CallSite] = field(default_factory=list)
    nested_defs: List[str] = field(default_factory=list)


@dataclass
class ClassInfo:
    module: "ModuleInfo"
    name: str
    full_qualname: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)  # resolved dotted, best effort
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


class ModuleInfo:
    """One parsed source file: tree, lines, aliases, functions, classes."""

    def __init__(self, path: Path, root: Path) -> None:
        self.path = path
        self.relpath = path.relative_to(root).as_posix()
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))
        self.name = _module_name(path)
        self.aliases: Dict[str, str] = {}
        self.toplevel: Dict[str, str] = {}  # local name -> "def" | "class"
        self.functions: List[FunctionInfo] = []
        self.classes: List[ClassInfo] = []
        _collect(self)

    # -- resolution ----------------------------------------------------
    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted name of an expression, via the alias map (or ``None``).

        ``Name`` hits the alias map first, then the module's own
        top-level defs/classes (as ``<module>.<name>``).  ``Attribute``
        chains resolve their base and append.
        """
        if isinstance(node, ast.Name):
            if node.id in self.aliases:
                return self.aliases[node.id]
            if node.id in self.toplevel:
                return f"{self.name}.{node.id}"
            return None
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def context_of(self, node: ast.AST) -> str:
        return getattr(node, "_lint_context", "<module>")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ModuleInfo({self.name!r}, {self.relpath!r})"


def _module_name(path: Path) -> str:
    """Dotted module name from the on-disk package structure.

    Walks up while ``__init__.py`` siblings exist, so
    ``src/repro/sim/rng.py`` → ``repro.sim.rng`` regardless of the scan
    root, and a loose fixture file is just its stem.
    """
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


def _package_of(module_name: str, path: Path) -> str:
    """The package a module lives in (itself, for ``__init__.py``)."""
    if path.stem == "__init__":
        return module_name
    return module_name.rpartition(".")[0]


def _record_imports(info: ModuleInfo, node: ast.AST) -> None:
    if isinstance(node, ast.Import):
        for alias in node.names:
            local = alias.asname or alias.name.partition(".")[0]
            target = alias.name if alias.asname else alias.name.partition(".")[0]
            info.aliases[local] = target
    elif isinstance(node, ast.ImportFrom):
        if node.level:
            package = _package_of(info.name, info.path)
            for _ in range(node.level - 1):
                package = package.rpartition(".")[0]
            base = f"{package}.{node.module}" if node.module else package
        else:
            base = node.module or ""
        for alias in node.names:
            if alias.name == "*":
                continue
            local = alias.asname or alias.name
            info.aliases[local] = f"{base}.{alias.name}" if base else alias.name


class _Collector(ast.NodeVisitor):
    """One pass: imports, scope tags, function/class tables, call sites."""

    def __init__(self, info: ModuleInfo) -> None:
        self.info = info
        self.scope: List[str] = []  # local qualname parts
        self.class_stack: List[ClassInfo] = []
        self.function_stack: List[FunctionInfo] = []

    # every visited node gets its enclosing context stamped on it
    def visit(self, node: ast.AST) -> None:
        node._lint_context = ".".join(self.scope) or "<module>"
        super().visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        _record_imports(self.info, node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        _record_imports(self.info, node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self.scope:
            self.info.toplevel[node.name] = "class"
        cls = ClassInfo(
            module=self.info,
            name=node.name,
            full_qualname=f"{self.info.name}.{node.name}",
            node=node,
            bases=[b for b in map(self.info.resolve, node.bases) if b],
        )
        self.info.classes.append(cls)
        self.class_stack.append(cls)
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()
        self.class_stack.pop()

    def _visit_function(self, node) -> None:
        if not self.scope:
            self.info.toplevel[node.name] = "def"
        if self.function_stack:
            # Nested def: calls fold into the enclosing function (the
            # conservative over-approximation the taint pass wants).
            self.function_stack[-1].nested_defs.append(node.name)
            self.scope.append(node.name)
            self.generic_visit(node)
            self.scope.pop()
            return
        in_class = bool(self.class_stack) and \
            self.scope[-1:] == [self.class_stack[-1].name]
        qualname = ".".join(self.scope + [node.name])
        func = FunctionInfo(
            module=self.info,
            name=node.name,
            qualname=qualname,
            full_qualname=f"{self.info.name}.{qualname}",
            class_name=self.class_stack[-1].name if in_class else None,
            node=node,
        )
        self.info.functions.append(func)
        if in_class:
            self.class_stack[-1].methods[node.name] = func
        self.function_stack.append(func)
        self.scope.append(node.name)
        self.generic_visit(node)
        self.scope.pop()
        self.function_stack.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Call(self, node: ast.Call) -> None:
        if self.function_stack:
            func = self.function_stack[-1]
            resolved = self.info.resolve(node.func)
            self_attr = None
            attr_name = None
            if isinstance(node.func, ast.Attribute):
                attr_name = node.func.attr
                base = node.func.value
                if isinstance(base, ast.Name) and base.id in ("self", "cls"):
                    self_attr = node.func.attr
            func.calls.append(
                CallSite(
                    node=node,
                    resolved=resolved,
                    self_attr=self_attr,
                    attr_name=attr_name,
                )
            )
        self.generic_visit(node)


def _collect(info: ModuleInfo) -> None:
    _Collector(info).visit(info.tree)


def parse_module(path: Path, root: Path) -> ModuleInfo:
    return ModuleInfo(path, root)


class Project:
    """Every parsed module under the scan roots, with cross-module indexes."""

    def __init__(self, roots: Sequence[Path]) -> None:
        self.roots = [Path(r) for r in roots]
        self.modules: List[ModuleInfo] = []
        self.errors: List[Tuple[str, str]] = []  # (path, parse error)
        for root in self.roots:
            files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
            base = root if root.is_dir() else root.parent
            for path in files:
                if "__pycache__" in path.parts:
                    continue
                try:
                    self.modules.append(parse_module(path, base))
                except (SyntaxError, UnicodeDecodeError) as exc:
                    self.errors.append((str(path), str(exc)))
        self.functions: Dict[str, FunctionInfo] = {}
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        self.classes: Dict[str, ClassInfo] = {}
        for module in self.modules:
            for func in module.functions:
                self.functions[func.full_qualname] = func
                self.by_name.setdefault(func.name, []).append(func)
                if func.class_name is not None:
                    self.methods_by_name.setdefault(func.name, []).append(func)
            for cls in module.classes:
                self.classes[cls.full_qualname] = cls

    @property
    def file_count(self) -> int:
        return len(self.modules)

    def callee(self, dotted: str) -> List[FunctionInfo]:
        """Functions a resolved dotted name can denote.

        A function qualname matches directly; a class name becomes an
        edge to its ``__init__`` (constructing is calling).
        """
        func = self.functions.get(dotted)
        if func is not None:
            return [func]
        cls = self.classes.get(dotted)
        if cls is not None and "__init__" in cls.methods:
            return [cls.methods["__init__"]]
        return []
