"""Per-rule checkers: the syntactic half of the rule pack.

DET001 (raw RNG), DET004 (environment reads), RES001 (``SharedMemory``
lifecycle) and CKP001 (unpicklable checkpoint attributes) are local —
one module at a time, no call graph.  The reachability rules DET002 /
DET003 live in :mod:`repro.analysis.taint`.

Sanctioned locations are configured by path suffix / qualname in
:class:`LintConfig` rather than hard-coded inside the checkers, so the
fixture suite exercises the sanctioning logic with its own layouts.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.analysis.model import Finding, Rule
from repro.analysis.visitor import ModuleInfo, Project

__all__ = ["DET001", "DET004", "RES001", "CKP001", "LintConfig", "local_rules"]


@dataclass(frozen=True)
class LintConfig:
    """Where the sanctioned sites live (path suffixes / qualnames)."""

    #: The one module allowed to construct raw numpy / stdlib RNGs.
    rng_modules: Tuple[str, ...] = ("sim/rng.py",)
    #: Files whose environment reads are the sanctioned resolution point.
    env_modules: Tuple[str, ...] = ("experiments/config.py",)
    #: ``path-suffix:qualname`` functions sanctioned to read the
    #: environment (the one shared validation path).
    env_functions: Tuple[str, ...] = ("api.py:resolve_workers",)
    #: The module owning the SharedMemory create/unlink lifecycle.
    shm_modules: Tuple[str, ...] = ("sim/shm.py",)
    #: Artifact-producing entry points for the reachability rules.
    entry_points: Tuple[str, ...] = ("advance_epoch", "result", "run_cell")


DEFAULT_CONFIG = LintConfig()


def _sanctioned_path(module: ModuleInfo, suffixes: Tuple[str, ...]) -> bool:
    """Whole-path-component suffix match (``sim/rng.py`` never matches
    ``mock_sim/wrong_rng.py``), relative to any scan root."""
    parts = module.relpath.split("/")
    for suffix in suffixes:
        want = suffix.split("/")
        if parts[-len(want):] == want:
            return True
    return False


def _sanctioned_function(
    module: ModuleInfo, context: str, specs: Tuple[str, ...]
) -> bool:
    for spec in specs:
        path_suffix, _, qualname = spec.partition(":")
        if _sanctioned_path(module, (path_suffix,)) and (
            context == qualname or context.startswith(qualname + ".")
        ):
            return True
    return False


def _finding(
    module: ModuleInfo, node: ast.AST, rule: Rule, message: str, hint: str = ""
) -> Finding:
    return Finding(
        path=module.relpath,
        line=node.lineno,
        col=node.col_offset,
        rule=rule.rule_id,
        message=message,
        hint=hint or rule.hint,
        context=module.context_of(node),
        snippet=module.line(node.lineno).strip(),
    )


# ----------------------------------------------------------------------
# DET001 — raw RNG construction / draws outside sim/rng.py
# ----------------------------------------------------------------------

def _check_det001(project: Project, config: LintConfig) -> Iterator[Finding]:
    for module in project.modules:
        if _sanctioned_path(module, config.rng_modules):
            continue
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = module.resolve(node.func)
            if dotted is None:
                continue
            if dotted.startswith("numpy.random."):
                yield _finding(
                    module, node, DET001,
                    f"raw numpy RNG call {dotted!r} outside the rng module",
                )
            elif dotted == "random" or dotted.startswith("random."):
                yield _finding(
                    module, node, DET001,
                    f"stdlib random call {dotted!r} outside the rng module",
                )


DET001 = Rule(
    rule_id="DET001",
    title="raw RNG construction",
    doc=(
        "Every stochastic draw must come from a named, seed-derived "
        "stream (`make_rng` / `RandomStreams`); a raw "
        "`np.random.default_rng()`, direct `np.random.<dist>` call or "
        "stdlib `random.*` use creates a stream the experiment seed "
        "does not control, silently breaking bit-reproducibility."
    ),
    hint=(
        "route the draw through repro.sim.rng.make_rng(seed, ...) or a "
        "RandomStreams named stream (accept an rng/seed parameter "
        "instead of constructing one)"
    ),
)


# ----------------------------------------------------------------------
# DET004 — environment reads outside the sanctioned resolution points
# ----------------------------------------------------------------------

def _check_det004(project: Project, config: LintConfig) -> Iterator[Finding]:
    for module in project.modules:
        if _sanctioned_path(module, config.env_modules):
            continue
        for node in ast.walk(module.tree):
            dotted = None
            if isinstance(node, (ast.Attribute, ast.Name)):
                dotted = module.resolve(node)
                # flag the environ object itself exactly once, not the
                # `.get` attribute hanging off it as well
                if dotted not in ("os.environ", "os.environb"):
                    dotted = None
            elif isinstance(node, ast.Call):
                resolved = module.resolve(node.func)
                if resolved in ("os.getenv", "os.putenv"):
                    dotted = resolved
            if dotted is None:
                continue
            context = module.context_of(node)
            if _sanctioned_function(module, context, config.env_functions):
                continue
            yield _finding(
                module, node, DET004,
                f"environment read {dotted!r} outside the sanctioned "
                f"resolution points",
            )


DET004 = Rule(
    rule_id="DET004",
    title="stray environment reads",
    doc=(
        "Configuration must flow through explicit config objects; an "
        "`os.environ` read buried in engine code makes results depend "
        "on ambient shell state that is invisible to the cell hash and "
        "the checkpoint. The sanctioned points are "
        "`repro.api.resolve_workers` (the one workers-count path) and "
        "`experiments/config.py` (scale resolution)."
    ),
    hint=(
        "thread the value through the config/spec (or, for worker "
        "counts, repro.api.resolve_workers) instead of reading the "
        "environment at use site"
    ),
)


# ----------------------------------------------------------------------
# RES001 — SharedMemory lifecycle
# ----------------------------------------------------------------------

def _shm_calls(module: ModuleInfo):
    """(node, creates) for every ``SharedMemory(...)`` construction."""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = module.resolve(node.func)
        if dotted is None or not dotted.endswith("shared_memory.SharedMemory"):
            continue
        creates = any(
            kw.arg == "create"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is True
            for kw in node.keywords
        )
        yield node, creates


def _scope_unlinks(module: ModuleInfo, context_prefix: str) -> bool:
    """Does any code under ``context_prefix`` call ``<x>.unlink()``?"""
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        if not (isinstance(node.func, ast.Attribute) and node.func.attr == "unlink"):
            continue
        context = module.context_of(node)
        if context == context_prefix or context.startswith(context_prefix + "."):
            return True
    return False


def _check_res001(project: Project, config: LintConfig) -> Iterator[Finding]:
    for module in project.modules:
        owner = _sanctioned_path(module, config.shm_modules)
        for node, creates in _shm_calls(module):
            context = module.context_of(node)
            if creates:
                if not owner:
                    yield _finding(
                        module, node, RES001,
                        "SharedMemory segment created outside the owner "
                        "module",
                        hint=(
                            "allocate epoch segments through "
                            "repro.sim.shm.ParentSegment (parent-owned "
                            "create/unlink lifecycle)"
                        ),
                    )
                    continue
                # the creating scope (class, else function) must also
                # unlink on some path
                scope = context.split(".")[0] if context != "<module>" else context
                if scope == "<module>" or not _scope_unlinks(module, scope):
                    yield _finding(
                        module, node, RES001,
                        "SharedMemory create without a paired unlink in "
                        "the owning scope",
                        hint=(
                            "every create=True needs an unlink on all "
                            "paths (idempotent close(); see "
                            "ParentSegment.close)"
                        ),
                    )
            else:
                # attach-only site: the attaching scope must never unlink
                scope = context.split(".")[0] if context != "<module>" else context
                if scope != "<module>" and _scope_unlinks(module, scope):
                    yield _finding(
                        module, node, RES001,
                        "attach-only SharedMemory scope also calls "
                        "unlink()",
                        hint=(
                            "workers only close() their mapping; the "
                            "parent is the sole unlinker (sim/shm.py "
                            "contract)"
                        ),
                    )


RES001 = Rule(
    rule_id="RES001",
    title="SharedMemory lifecycle",
    doc=(
        "The engine's epoch plane is one parent-owned shared segment: "
        "the parent creates and unconditionally unlinks it; workers "
        "attach and only ever close their mapping. A create without a "
        "paired unlink leaks /dev/shm across crashed runs; a worker "
        "that unlinks races the parent's crash-safety net."
    ),
    hint="follow the sim/shm.py contract (ParentSegment / attach_segment)",
)


# ----------------------------------------------------------------------
# CKP001 — unpicklable attributes on checkpoint-state classes
# ----------------------------------------------------------------------

def _check_ckp001(project: Project, config: LintConfig) -> Iterator[Finding]:
    for module in project.modules:
        for func in module.functions:
            if func.class_name is None:
                continue
            nested = set(func.nested_defs)
            for node in ast.walk(func.node):
                if not isinstance(node, ast.Assign):
                    continue
                is_self_attr = any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in node.targets
                )
                if not is_self_attr:
                    continue
                value = node.value
                bad = None
                if isinstance(value, ast.Lambda):
                    bad = "a lambda"
                elif isinstance(value, ast.Name) and value.id in nested:
                    bad = f"the local closure {value.id!r}"
                if bad is not None:
                    yield _finding(
                        module, node, CKP001,
                        f"{bad} assigned to an instance attribute "
                        f"(unpicklable checkpoint state)",
                    )


CKP001 = Rule(
    rule_id="CKP001",
    title="unpicklable checkpoint attributes",
    doc=(
        "Engine state graphs are pickled whole by checkpoint()/resume() "
        "(CHECKPOINT_SCHEMA); a lambda or locally-defined closure "
        "assigned to `self.<attr>` makes the instance unpicklable — the "
        "exact bug class the EpochClock/_SimulatorClock classes "
        "replaced by hand in PR 5."
    ),
    hint=(
        "use a small module-level class or function instead of a "
        "lambda/closure (cf. EpochClock in sim/shard.py)"
    ),
)


DET001.check = _check_det001
DET004.check = _check_det004
RES001.check = _check_res001
CKP001.check = _check_ckp001


def local_rules():
    return (DET001, DET004, RES001, CKP001)
