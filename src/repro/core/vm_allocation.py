"""Optimal VM configuration (paper Eqn (7)) and its solvers.

Decide how many VMs z_iv (fractional allowed) each chunk requests from each
virtual cluster, maximizing  sum u~_v * z_iv  subject to

* demand cover  sum_v z_iv = Delta_i / R      per chunk,
* capacity      sum_i z_iv <= N_v             per cluster,
* budget        sum p~_v * z_iv <= B_M.

Since z is continuous this is a transportation-style LP; the paper solves
it with a greedy heuristic and we additionally provide the exact LP optimum
(:func:`lp_vm_allocation`) for the ablation benches. Infeasibility (budget
or capacity exhausted before all demand is served) is reported on the plan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.cloud.cluster import VirtualClusterSpec

__all__ = ["VMProblem", "VMAllocationPlan", "greedy_vm_allocation",
           "lp_vm_allocation"]

ChunkKey = Hashable


@dataclass(frozen=True)
class VMProblem:
    """One instance of the VM configuration problem.

    Attributes
    ----------
    demands:
        ``{chunk_key: Delta_i}`` cloud demand per chunk, bytes/second.
    vm_bandwidth:
        R, bytes/second per VM (identical across clusters per the model).
    clusters:
        Virtual cluster specs.
    budget_per_hour:
        B_M, dollars per hour.
    """

    demands: Mapping[ChunkKey, float]
    vm_bandwidth: float
    clusters: Sequence[VirtualClusterSpec]
    budget_per_hour: float

    def __post_init__(self) -> None:
        if self.vm_bandwidth <= 0:
            raise ValueError("VM bandwidth must be > 0")
        if self.budget_per_hour < 0:
            raise ValueError("budget must be >= 0")
        if not self.clusters:
            raise ValueError("need at least one virtual cluster")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError("cluster names must be unique")
        if any(d < 0 for d in self.demands.values()):
            raise ValueError("demands must be nonnegative")

    def vm_need(self, chunk: ChunkKey) -> float:
        """Delta_i / R: (fractional) VMs needed to serve the chunk."""
        return float(self.demands[chunk]) / self.vm_bandwidth

    @property
    def total_vm_need(self) -> float:
        return float(sum(self.demands.values())) / self.vm_bandwidth


@dataclass(frozen=True)
class VMAllocationPlan:
    """A (possibly partial) solution to a :class:`VMProblem`."""

    allocations: Dict[Tuple[ChunkKey, str], float]  # (chunk, cluster) -> z_iv
    objective: float  # sum u~_v z_iv
    cost_per_hour: float
    feasible: bool  # True iff every chunk's demand is fully covered
    unserved_vms: float = 0.0  # total VM-equivalents of uncovered demand

    def cluster_totals(self) -> Dict[str, float]:
        """Fractional VM totals per cluster: sum_i z_iv."""
        totals: Dict[str, float] = {}
        for (_, cluster), z in self.allocations.items():
            totals[cluster] = totals.get(cluster, 0.0) + z
        return totals

    def integer_vm_counts(self) -> Dict[str, int]:
        """VMs to actually rent: ceil of each cluster's fractional total."""
        return {
            cluster: int(np.ceil(total - 1e-9))
            for cluster, total in self.cluster_totals().items()
        }

    def chunk_bandwidth(self, vm_bandwidth: float) -> Dict[ChunkKey, float]:
        """Granted upload bandwidth per chunk: R * sum_v z_iv, bytes/s."""
        grants: Dict[ChunkKey, float] = {}
        for (chunk, _), z in self.allocations.items():
            grants[chunk] = grants.get(chunk, 0.0) + z * vm_bandwidth
        return grants


def greedy_vm_allocation(problem: VMProblem) -> VMAllocationPlan:
    """The paper's VM configuration heuristic (Section V-A2).

    Clusters sorted by decreasing u~_v / p~_v; chunks processed in
    decreasing demand (deterministic; the paper does not fix an order).
    Each chunk draws as much as possible from the best cluster with
    remaining VMs, spilling to the next, while the running cost stays
    within B_M.
    """
    clusters = sorted(
        problem.clusters,
        key=lambda c: (-c.marginal_utility_per_dollar, c.name),
    )
    remaining = {c.name: float(c.max_vms) for c in clusters}
    budget = problem.budget_per_hour
    cost = 0.0
    objective = 0.0
    allocations: Dict[Tuple[ChunkKey, str], float] = {}
    unserved = 0.0

    chunks = sorted(
        problem.demands.keys(), key=lambda k: (-problem.demands[k], repr(k))
    )
    for chunk in chunks:
        need = problem.vm_need(chunk)
        for cluster in clusters:
            if need <= 1e-12:
                break
            if remaining[cluster.name] <= 1e-12:
                continue
            affordable = (
                (budget - cost) / cluster.price_per_hour
                if cluster.price_per_hour > 0
                else float("inf")
            )
            take = min(need, remaining[cluster.name], max(0.0, affordable))
            if take <= 1e-12:
                continue
            allocations[(chunk, cluster.name)] = (
                allocations.get((chunk, cluster.name), 0.0) + take
            )
            remaining[cluster.name] -= take
            cost += take * cluster.price_per_hour
            objective += take * cluster.utility
            need -= take
        if need > 1e-9:
            unserved += need

    return VMAllocationPlan(
        allocations=allocations,
        objective=objective,
        cost_per_hour=cost,
        feasible=unserved <= 1e-9,
        unserved_vms=unserved,
    )


def lp_vm_allocation(problem: VMProblem) -> VMAllocationPlan:
    """Exact LP optimum of Eqn (7) via scipy's HiGHS solver.

    When the instance is infeasible (demand cannot be covered within
    capacity and budget), the equality constraints are relaxed to
    "<= demand" and the objective augmented with a large cover reward so
    the LP returns a best-effort allocation, mirroring the heuristic's
    partial plans; the plan is then marked infeasible.
    """
    chunks = [k for k in problem.demands.keys()]
    clusters = list(problem.clusters)
    n, v = len(chunks), len(clusters)
    if n == 0:
        return VMAllocationPlan({}, 0.0, 0.0, True)

    def var(i: int, j: int) -> int:
        return i * v + j

    needs = np.array([problem.vm_need(c) for c in chunks])

    def solve(equality: bool) -> Tuple[bool, np.ndarray]:
        c_obj = np.zeros(n * v)
        for i in range(n):
            for j, cluster in enumerate(clusters):
                reward = cluster.utility + (0.0 if equality else 1e4)
                c_obj[var(i, j)] = -reward
        a_ub_rows: List[np.ndarray] = []
        b_ub_vals: List[float] = []
        for j, cluster in enumerate(clusters):
            row = np.zeros(n * v)
            for i in range(n):
                row[var(i, j)] = 1.0
            a_ub_rows.append(row)
            b_ub_vals.append(float(cluster.max_vms))
        budget_row = np.zeros(n * v)
        for i in range(n):
            for j, cluster in enumerate(clusters):
                budget_row[var(i, j)] = cluster.price_per_hour
        a_ub_rows.append(budget_row)
        b_ub_vals.append(problem.budget_per_hour)

        a_eq = None
        b_eq = None
        if equality:
            a_eq = np.zeros((n, n * v))
            for i in range(n):
                for j in range(v):
                    a_eq[i, var(i, j)] = 1.0
            b_eq = needs
        else:
            for i in range(n):
                row = np.zeros(n * v)
                for j in range(v):
                    row[var(i, j)] = 1.0
                a_ub_rows.append(row)
                b_ub_vals.append(float(needs[i]))

        res = linprog(
            c_obj,
            A_ub=np.vstack(a_ub_rows),
            b_ub=np.asarray(b_ub_vals),
            A_eq=a_eq,
            b_eq=b_eq,
            bounds=[(0.0, None)] * (n * v),
            method="highs",
        )
        if not res.success:
            return False, np.zeros(n * v)
        return True, res.x

    ok, x = solve(equality=True)
    feasible = ok
    if not ok:
        ok2, x = solve(equality=False)
        if not ok2:
            return VMAllocationPlan(
                {}, 0.0, 0.0, False, unserved_vms=float(needs.sum())
            )

    allocations: Dict[Tuple[ChunkKey, str], float] = {}
    objective = 0.0
    cost = 0.0
    served = np.zeros(n)
    for i, chunk in enumerate(chunks):
        for j, cluster in enumerate(clusters):
            z = float(x[var(i, j)])
            if z <= 1e-9:
                continue
            allocations[(chunk, cluster.name)] = z
            objective += z * cluster.utility
            cost += z * cluster.price_per_hour
            served[i] += z
    unserved = float(np.maximum(0.0, needs - served).sum())
    return VMAllocationPlan(
        allocations=allocations,
        objective=objective,
        cost_per_hour=cost,
        feasible=feasible and unserved <= 1e-6,
        unserved_vms=unserved,
    )
