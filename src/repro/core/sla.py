"""Consumer-side SLA terms and budget accounting (paper Sections III, V).

The VoD provider negotiates with the cloud under two per-unit-time budgets
(B_M for VMs, B_S for storage). :class:`SLATerms` carries those terms plus
the provisioning interval; :class:`BudgetLedger` tracks realized spending
against them so experiments can report budget adherence and the controller
can detect sustained infeasibility (the paper's "budget... should be
increased" signal).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

__all__ = ["SLATerms", "BudgetLedger"]


@dataclass(frozen=True)
class SLATerms:
    """The consumer's standing agreement parameters.

    Attributes
    ----------
    vm_budget_per_hour:
        B_M, dollars per hour for VM rental (paper default: $100/h).
    storage_budget_per_hour:
        B_S, dollars per hour for NFS storage (paper default: $1/h).
    interval_seconds:
        Provisioning interval T (paper default: one hour).
    """

    vm_budget_per_hour: float = 100.0
    storage_budget_per_hour: float = 1.0
    interval_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.vm_budget_per_hour < 0:
            raise ValueError("VM budget must be >= 0")
        if self.storage_budget_per_hour < 0:
            raise ValueError("storage budget must be >= 0")
        if self.interval_seconds <= 0:
            raise ValueError("interval must be > 0")

    @property
    def total_budget_per_hour(self) -> float:
        return self.vm_budget_per_hour + self.storage_budget_per_hour


class BudgetLedger:
    """Per-interval spending record against the SLA budgets."""

    def __init__(self, terms: SLATerms) -> None:
        self.terms = terms
        self.entries: List[Tuple[float, float, float]] = []  # (t, vm$, storage$)
        self.infeasible_intervals = 0

    def record(
        self,
        time: float,
        vm_rate: float,
        storage_rate: float,
        *,
        feasible: bool = True,
    ) -> None:
        """Record one interval's hourly spend rates (dollars/hour)."""
        if vm_rate < 0 or storage_rate < 0:
            raise ValueError("spend rates must be >= 0")
        self.entries.append((time, vm_rate, storage_rate))
        if not feasible:
            self.infeasible_intervals += 1

    @property
    def intervals(self) -> int:
        return len(self.entries)

    def mean_vm_rate(self) -> float:
        if not self.entries:
            return 0.0
        return sum(e[1] for e in self.entries) / len(self.entries)

    def mean_storage_rate(self) -> float:
        if not self.entries:
            return 0.0
        return sum(e[2] for e in self.entries) / len(self.entries)

    def peak_vm_rate(self) -> float:
        return max((e[1] for e in self.entries), default=0.0)

    def vm_budget_violations(self) -> int:
        """Intervals whose VM spend rate exceeded B_M (should be zero)."""
        limit = self.terms.vm_budget_per_hour + 1e-9
        return sum(1 for e in self.entries if e[1] > limit)

    def storage_budget_violations(self) -> int:
        limit = self.terms.storage_budget_per_hour + 1e-9
        return sum(1 for e in self.entries if e[2] > limit)

    def series(self) -> List[Tuple[float, float]]:
        """(time, vm $/hour) points — the Fig 10 series."""
        return [(t, vm) for t, vm, _ in self.entries]
