"""Consumer-side SLA terms and budget accounting (paper Sections III, V).

The VoD provider negotiates with the cloud under two per-unit-time budgets
(B_M for VMs, B_S for storage). :class:`SLATerms` carries those terms plus
the provisioning interval; :class:`BudgetLedger` tracks realized spending
against them so experiments can report budget adherence and the controller
can detect sustained infeasibility (the paper's "budget... should be
increased" signal).

:class:`SLAPenaltyModel` turns a run's per-epoch quality and VM-cost
series into violation counts and a dollar penalty — the common yardstick
the ``ablation-controllers`` scenarios use to score rival provisioning
policies head-to-head (a policy that saves rental dollars by letting
quality slip below the target pays for it here, and so does one that
buys quality by blowing through B_M).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

__all__ = ["SLATerms", "BudgetLedger", "SLAPenaltyModel"]


@dataclass(frozen=True)
class SLATerms:
    """The consumer's standing agreement parameters.

    Attributes
    ----------
    vm_budget_per_hour:
        B_M, dollars per hour for VM rental (paper default: $100/h).
    storage_budget_per_hour:
        B_S, dollars per hour for NFS storage (paper default: $1/h).
    interval_seconds:
        Provisioning interval T (paper default: one hour).
    """

    vm_budget_per_hour: float = 100.0
    storage_budget_per_hour: float = 1.0
    interval_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.vm_budget_per_hour < 0:
            raise ValueError("VM budget must be >= 0")
        if self.storage_budget_per_hour < 0:
            raise ValueError("storage budget must be >= 0")
        if self.interval_seconds <= 0:
            raise ValueError("interval must be > 0")

    @property
    def total_budget_per_hour(self) -> float:
        return self.vm_budget_per_hour + self.storage_budget_per_hour


class BudgetLedger:
    """Per-interval spending record against the SLA budgets."""

    def __init__(self, terms: SLATerms) -> None:
        self.terms = terms
        self.entries: List[Tuple[float, float, float]] = []  # (t, vm$, storage$)
        self.infeasible_intervals = 0

    def record(
        self,
        time: float,
        vm_rate: float,
        storage_rate: float,
        *,
        feasible: bool = True,
    ) -> None:
        """Record one interval's hourly spend rates (dollars/hour)."""
        if vm_rate < 0 or storage_rate < 0:
            raise ValueError("spend rates must be >= 0")
        self.entries.append((time, vm_rate, storage_rate))
        if not feasible:
            self.infeasible_intervals += 1

    @property
    def intervals(self) -> int:
        return len(self.entries)

    def mean_vm_rate(self) -> float:
        if not self.entries:
            return 0.0
        return sum(e[1] for e in self.entries) / len(self.entries)

    def mean_storage_rate(self) -> float:
        if not self.entries:
            return 0.0
        return sum(e[2] for e in self.entries) / len(self.entries)

    def peak_vm_rate(self) -> float:
        return max((e[1] for e in self.entries), default=0.0)

    def vm_budget_violations(self) -> int:
        """Intervals whose VM spend rate exceeded B_M (should be zero)."""
        limit = self.terms.vm_budget_per_hour + 1e-9
        return sum(1 for e in self.entries if e[1] > limit)

    def storage_budget_violations(self) -> int:
        limit = self.terms.storage_budget_per_hour + 1e-9
        return sum(1 for e in self.entries if e[2] > limit)

    def series(self) -> List[Tuple[float, float]]:
        """(time, vm $/hour) points — the Fig 10 series."""
        return [(t, vm) for t, vm, _ in self.entries]


@dataclass(frozen=True)
class SLAPenaltyModel:
    """Dollar penalties for missing the service-level targets.

    Two violation classes, assessed per provisioning epoch:

    * **quality** — the epoch's streaming quality (fraction of demand
      served, in [0, 1]) fell below ``quality_target``; each such epoch
      costs ``quality_penalty`` dollars.
    * **budget** — the epoch's VM spend rate exceeded the agreement's
      B_M; each such epoch costs ``budget_penalty`` dollars.

    The model is deliberately linear-per-epoch: it ranks controllers by
    how *often* they violate, not by excursion depth, which keeps the
    score robust to a single catastrophic epoch dominating the table.
    """

    quality_target: float = 0.98
    quality_penalty: float = 10.0
    budget_penalty: float = 25.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.quality_target <= 1.0:
            raise ValueError("quality target must be in [0, 1]")
        if self.quality_penalty < 0 or self.budget_penalty < 0:
            raise ValueError("penalties must be >= 0")

    def assess(
        self,
        terms: SLATerms,
        epoch_quality: Sequence[float],
        vm_cost_series: Sequence[float],
    ) -> Dict[str, float]:
        """Score one run: violation counts and the total dollar penalty.

        ``epoch_quality`` and ``vm_cost_series`` are the engines'
        per-epoch series (they may differ in length by the bootstrap
        epoch; each is scanned independently).
        """
        quality_violations = sum(
            1 for q in epoch_quality if q < self.quality_target - 1e-12
        )
        budget_limit = terms.vm_budget_per_hour + 1e-9
        budget_violations = sum(
            1 for c in vm_cost_series if c > budget_limit
        )
        penalty = (
            quality_violations * self.quality_penalty
            + budget_violations * self.budget_penalty
        )
        return {
            "sla_quality_target": float(self.quality_target),
            "sla_quality_violations": int(quality_violations),
            "sla_budget_violations": int(budget_violations),
            "sla_penalty_dollars": float(penalty),
        }
