"""Packing fractional VM shares onto concrete VMs (paper Section V-A2).

The paper notes that z_iv may be fractional: the integer part gives whole
VMs dedicated to a chunk, and the fractional remainders share VMs — with
the rule that "if one VM is used to serve more than one chunk, we will
maximally allow consecutive chunks in one channel to be served by the VM"
(this minimizes VM switching during a user's playback, footnote 3).

The packer therefore walks each cluster's chunk shares in (channel, chunk)
order and fills VMs first-fit, so fractional remainders of neighbouring
chunks end up co-located.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Tuple

__all__ = ["PackedVM", "PackingResult", "pack_allocations"]

ChunkKey = Hashable  # expected to be a (channel_id, chunk_index) tuple

_EPS = 1e-9


@dataclass
class PackedVM:
    """One concrete VM and the chunk shares it serves (fractions of R)."""

    cluster: str
    shares: Dict[ChunkKey, float] = field(default_factory=dict)

    @property
    def load(self) -> float:
        return float(sum(self.shares.values()))

    @property
    def free(self) -> float:
        return 1.0 - self.load

    def channels(self) -> List[object]:
        """Distinct channel ids served (chunk keys must be (channel, idx))."""
        seen: List[object] = []
        for key in self.shares:
            channel = key[0] if isinstance(key, tuple) and len(key) == 2 else key
            if channel not in seen:
                seen.append(channel)
        return seen

    def serves_consecutive_run(self) -> bool:
        """True iff this VM's chunks form one consecutive run of one channel."""
        keys = list(self.shares.keys())
        if len(keys) <= 1:
            return True
        if not all(isinstance(k, tuple) and len(k) == 2 for k in keys):
            return False
        channels = {k[0] for k in keys}
        if len(channels) != 1:
            return False
        indices = sorted(k[1] for k in keys)
        return indices == list(range(indices[0], indices[0] + len(indices)))


@dataclass(frozen=True)
class PackingResult:
    """All packed VMs plus summary statistics."""

    vms: Tuple[PackedVM, ...]

    def vm_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for vm in self.vms:
            counts[vm.cluster] = counts.get(vm.cluster, 0) + 1
        return counts

    @property
    def total_vms(self) -> int:
        return len(self.vms)

    @property
    def shared_vms(self) -> int:
        """VMs serving more than one chunk."""
        return sum(1 for vm in self.vms if len(vm.shares) > 1)

    @property
    def cross_channel_vms(self) -> int:
        """Shared VMs mixing chunks from different channels (switch cost)."""
        return sum(1 for vm in self.vms if len(vm.channels()) > 1)

    @property
    def mean_load(self) -> float:
        if not self.vms:
            return 0.0
        return sum(vm.load for vm in self.vms) / len(self.vms)


def _chunk_sort_key(key: ChunkKey) -> Tuple:
    if isinstance(key, tuple) and len(key) == 2:
        return (0, repr(key[0]), key[1])
    return (1, repr(key), 0)


def pack_allocations(
    allocations: Mapping[Tuple[ChunkKey, str], float],
) -> PackingResult:
    """Pack fractional allocations ``{(chunk, cluster): z}`` onto VMs.

    Per cluster: chunks are visited in (channel, chunk-index) order; whole
    units open dedicated VMs; the fractional remainder goes into the
    cluster's currently open shared VM if it fits (keeping consecutive
    chunks together), otherwise a new shared VM opens.
    """
    by_cluster: Dict[str, List[Tuple[ChunkKey, float]]] = {}
    for (chunk, cluster), z in allocations.items():
        if z < -_EPS:
            raise ValueError(f"negative allocation for {(chunk, cluster)!r}")
        if z <= _EPS:
            continue
        by_cluster.setdefault(cluster, []).append((chunk, float(z)))

    vms: List[PackedVM] = []
    for cluster in sorted(by_cluster):
        entries = sorted(by_cluster[cluster], key=lambda e: _chunk_sort_key(e[0]))
        open_vm: PackedVM = PackedVM(cluster)
        for chunk, z in entries:
            whole = int(z + _EPS)
            frac = z - whole
            for _ in range(whole):
                dedicated = PackedVM(cluster)
                dedicated.shares[chunk] = 1.0
                vms.append(dedicated)
            if frac <= _EPS:
                continue
            if open_vm.free + _EPS < frac:
                if open_vm.shares:
                    vms.append(open_vm)
                open_vm = PackedVM(cluster)
            open_vm.shares[chunk] = open_vm.shares.get(chunk, 0.0) + frac
        if open_vm.shares:
            vms.append(open_vm)

    return PackingResult(vms=tuple(vms))
