"""The provisioning-controller protocol and the rival-policy zoo.

The paper has exactly one provisioning policy: last-interval prediction
plus the Section V threshold replan, wired through
:class:`~repro.core.provisioner.ProvisioningController` (single region)
and :class:`~repro.geo.controller.GeoProvisioningController` (multi
region).  This module extracts the shared skeleton both controllers run
— close the tracker interval, pick per-channel target rates, run the
Section IV demand analysis, optionally reshape the demand vector, then
optimize/negotiate/apply — so a *policy* is a small strategy over that
skeleton rather than a fork of the whole loop:

* :class:`Controller` — the structural protocol every engine drives
  (``bootstrap`` / ``run_interval`` / ``provision`` / ``decisions``).
* :class:`ProvisioningControllerBase` — the shared skeleton.  The paper
  controller IS this skeleton with the default hooks; byte-for-byte, its
  ``run_interval`` performs the same operations in the same order as the
  historical monolithic method.
* Policy mixins — :class:`ReactivePolicy`, :class:`AdaptPolicy`,
  :class:`PIDPolicy`, :class:`MPCPolicy` — override one of two hooks:
  ``_target_rates`` (what arrival rates to provision for) or
  ``_shape_demands`` (how to transform the analyzed demand vector).
  Each mixin composes with either concrete controller, so every policy
  exists in a single-region and a geo flavor without duplication.
* :data:`CONTROLLERS` — the registry keyed by the ``controller`` knob
  (:class:`repro.api.EngineConfig`, ``repro run/catalog/geo
  --controller``, the ``ablation-controllers`` scenarios).  Classes are
  resolved lazily by dotted path so this module never imports the geo
  layer at import time (the geo package imports the core one).

The rival policies:

``reactive``
    Threshold scaling with hysteresis: hold the provisioned target rate
    until the observed rate breaks out of a band, then re-target with
    headroom.  The classic rule-based autoscaler baseline.
``adapt``
    An Adapt-style proactive estimator with weighted history (after the
    OpenDC autoscaling prototype): per-channel exponentially weighted
    level + trend, with the characteristic asymmetric damping of
    negative trends (scale-down 15x more cautiously than scale-up).
``pid``
    A PID loop on the demand/grant utilization error, acting as a
    bounded multiplier on the demand vector, with conditional-
    integration anti-windup.
``mpc``
    Receding-horizon model-predictive control: forecast demand growth
    over the horizon, provision for the window's peak, and bound the
    anticipatory demand by solving the *exact*
    :class:`~repro.geo.allocation.GeoVMProblem` LP (PR 4's solver) over
    the shaped demand — falling back to the greedy when the grown
    demand makes the LP infeasible under the budget.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Protocol, Sequence, Tuple

import numpy as np

from repro.core.demand import ChannelDemand, ChunkKey
from repro.core.predictor import LastIntervalPredictor
from repro.core.sla import BudgetLedger
from repro.vod.tracker import IntervalStats

__all__ = [
    "Controller",
    "ProvisioningControllerBase",
    "ReactiveScaler",
    "AdaptEstimator",
    "PIDLoop",
    "ReactivePolicy",
    "AdaptPolicy",
    "PIDPolicy",
    "MPCPolicy",
    "ControllerInfo",
    "CONTROLLERS",
    "controller_names",
    "controller_class",
    "storage_demand_shifted",
]


def storage_demand_shifted(
    last: Mapping[ChunkKey, float],
    current: Mapping[ChunkKey, float],
    threshold: float,
) -> bool:
    """Has chunk demand shifted enough to replan storage (Section V-B)?

    True when videos were added/removed (key sets differ) or the
    relative L1 change of the demand vector exceeds ``threshold``.
    Shared by the single-region and geo controllers so the replan rule
    cannot silently diverge between them.
    """
    if set(current) != set(last):
        return True  # videos added or removed
    baseline = sum(last.values())
    if baseline <= 0:
        return any(v > 0 for v in current.values())
    shift = sum(abs(current[k] - last.get(k, 0.0)) for k in current)
    return shift / baseline > threshold


class Controller(Protocol):
    """What every provisioning controller looks like to an engine.

    The engines (:class:`repro.experiments.runner.ClosedLoopEngine`,
    :class:`repro.sim.shard.ShardedSimulator`,
    :class:`repro.sim.shard.GeoShardedSimulator`) only ever call these
    three methods and read ``decisions``; anything satisfying this
    protocol plugs into the closed loop.
    """

    decisions: List[Any]

    def bootstrap(
        self,
        now: float,
        expected_rates: Mapping[int, float],
        *,
        peer_upload: Optional[float] = None,
    ) -> Any:
        """Initial deployment from expected per-channel arrival rates."""
        ...

    def run_interval(
        self,
        now: float,
        *,
        peer_upload: Optional[float] = None,
    ) -> Any:
        """One periodic provisioning round at time ``now``."""
        ...

    def provision(self, now: float, demands: List[ChannelDemand]) -> Any:
        """Optimize, negotiate and apply a set of channel demands."""
        ...


class ProvisioningControllerBase:
    """The shared observe -> predict -> analyze -> provision skeleton.

    Subclasses provide :meth:`provision` (what to optimize and how to
    apply it — the single-region Eqn (6)/(7) pipeline or the geo
    allocator) and may override the two policy hooks:

    * :meth:`_target_rates` — per-channel arrival rates to provision
      for, given the closed interval's statistics.  The default is the
      paper's rule: feed each observation to the predictor and ask it
      for the next rate (last-interval by default).
    * :meth:`_shape_demands` — transform the analyzed demand vector
      before the optimizers see it.  The default is the identity; the
      PID and MPC policies act here.

    ``bootstrap`` never shapes: the initial deployment has no history
    for any policy to act on, so it is policy-invariant by construction
    (and byte-identical to the paper's).

    Parameters
    ----------
    storage_replan_threshold:
        Relative L1 change in the chunk-demand vector that triggers a
        storage replan ("if the demand for chunks has changed
        significantly since last interval", Section V-B).
    min_capacity_per_chunk:
        Optional floor (bytes/s) on granted capacity for chunks with a
        nonzero expected population; guards the first interval after a
        channel wakes up.
    """

    #: Registry key of the policy this class implements.
    policy = "paper"

    def __init__(
        self,
        estimator,
        tracker,
        broker,
        terms,
        *,
        predictor=None,
        storage_replan_threshold: float = 0.25,
        min_capacity_per_chunk: float = 0.0,
    ) -> None:
        if storage_replan_threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.estimator = estimator
        self.tracker = tracker
        self.broker = broker
        self.terms = terms
        self.predictor = predictor or LastIntervalPredictor()
        self.storage_replan_threshold = storage_replan_threshold
        self.min_capacity_per_chunk = min_capacity_per_chunk
        self.ledger = BudgetLedger(terms)
        self.decisions: List[Any] = []
        self._last_chunk_demand: Optional[Dict[Any, float]] = None
        self._storage_planned = False

    # ------------------------------------------------------------------
    @property
    def vm_bandwidth(self) -> float:
        return self.estimator.model.vm_bandwidth

    @property
    def chunk_size_bytes(self) -> float:
        return self.estimator.model.chunk_size_bytes

    def _should_replan_storage(
        self, chunk_demand: Mapping[Any, float]
    ) -> bool:
        if not self._storage_planned:
            return True
        return storage_demand_shifted(
            self._last_chunk_demand or {},
            chunk_demand,
            self.storage_replan_threshold,
        )

    # ------------------------------------------------------------------
    # Policy hooks
    # ------------------------------------------------------------------
    def _target_rates(
        self, now: float, interval_stats: Sequence[IntervalStats]
    ) -> Dict[int, float]:
        """Per-channel arrival rates to provision the next interval for.

        The paper's rule: every observation goes to the predictor, which
        then answers for the channel.  Policies that form their own
        rate estimate override this (the predictor is theirs to ignore).
        """
        del now
        predicted: Dict[int, float] = {}
        for stats in interval_stats:
            self.predictor.observe(stats.channel_id, stats.arrival_rate)
            predicted[stats.channel_id] = self.predictor.predict(
                stats.channel_id
            )
        return predicted

    def _shape_demands(
        self, now: float, demands: List[ChannelDemand]
    ) -> List[ChannelDemand]:
        """Transform the analyzed demand vector (identity by default)."""
        del now
        return demands

    # ------------------------------------------------------------------
    # The subclass-provided optimization pipeline
    # ------------------------------------------------------------------
    def provision(self, now: float, demands: List[ChannelDemand]):
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Entry points (shared verbatim by every controller)
    # ------------------------------------------------------------------
    def bootstrap(
        self,
        now: float,
        expected_rates: Mapping[int, float],
        *,
        peer_upload: Optional[float] = None,
    ):
        """Initial deployment from expected per-channel arrival rates.

        Builds synthetic interval statistics (no observations; the
        empirical estimator falls back to the prior viewing pattern) and
        runs the normal decision pipeline. The tracker and predictor are
        untouched.
        """
        synthetic: List[IntervalStats] = [
            self.tracker.empty_stats(channel_id)
            for channel_id in sorted(expected_rates)
        ]
        demands = self.estimator.estimate_all(
            synthetic,
            arrival_rates=dict(expected_rates),
            peer_upload=peer_upload,
        )
        return self.provision(now, demands)

    def run_interval(
        self,
        now: float,
        *,
        peer_upload: Optional[float] = None,
    ):
        """Execute one periodic provisioning round at time ``now``.

        ``peer_upload`` optionally injects the measured mean peer upload
        (e.g. the simulator's live value) instead of the tracker's
        per-interval sample mean.
        """
        interval_stats: List[IntervalStats] = self.tracker.close_interval()
        predicted = self._target_rates(now, interval_stats)
        demands = self.estimator.estimate_all(
            interval_stats, arrival_rates=predicted, peer_upload=peer_upload
        )
        return self.provision(now, self._shape_demands(now, demands))


# ----------------------------------------------------------------------
# Policy state machines (standalone so tests can hand-compute traces)
# ----------------------------------------------------------------------

class ReactiveScaler:
    """Per-key threshold scaling with hysteresis.

    Holds the last provisioned target until the observed rate breaks
    out of the ``[down_threshold, up_threshold]`` band around it, then
    re-targets at ``observed * (1 + headroom)``.  The hold keeps the
    actuator from thrashing on noise; the headroom gives breach
    responses a margin so consecutive intervals of steady growth do not
    each trigger a re-target.
    """

    def __init__(
        self,
        up_threshold: float = 1.1,
        down_threshold: float = 0.7,
        headroom: float = 0.2,
    ) -> None:
        if not 0.0 < down_threshold <= 1.0 <= up_threshold:
            raise ValueError(
                "need down_threshold in (0, 1] and up_threshold >= 1"
            )
        if headroom < 0:
            raise ValueError("headroom must be >= 0")
        self.up_threshold = float(up_threshold)
        self.down_threshold = float(down_threshold)
        self.headroom = float(headroom)
        self._held: Dict[Any, float] = {}

    def update(self, key: Any, observed: float) -> float:
        """Observe one rate; return the (possibly held) target rate."""
        held = self._held.get(key)
        if (
            held is None
            or observed > held * self.up_threshold
            or observed < held * self.down_threshold
        ):
            held = observed * (1.0 + self.headroom)
        self._held[key] = held
        return held


class AdaptEstimator:
    """Weighted level + trend estimator (Adapt-style proactive rule).

    Per key, maintains an exponentially weighted level and trend::

        level' = w * r + (1 - w) * level
        trend' = w * (level' - level) + (1 - w) * trend

    and predicts ``level' + trend'`` — except a *negative* trend is
    divided by ``negative_damping`` first (the OpenDC Adapt prototype's
    R/15 rule): scale down an order of magnitude more cautiously than
    up, because under-provisioning hurts viewers while over-provisioning
    only costs money.
    """

    def __init__(
        self, weight: float = 0.5, negative_damping: float = 15.0
    ) -> None:
        if not 0.0 < weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")
        if negative_damping < 1.0:
            raise ValueError("negative damping must be >= 1")
        self.weight = float(weight)
        self.negative_damping = float(negative_damping)
        self._level: Dict[Any, float] = {}
        self._trend: Dict[Any, float] = {}

    def update(self, key: Any, observed: float) -> float:
        """Observe one rate; return the damped level+trend prediction."""
        prev_level = self._level.get(key)
        if prev_level is None:
            level, trend = float(observed), 0.0
        else:
            w = self.weight
            level = w * float(observed) + (1.0 - w) * prev_level
            trend = w * (level - prev_level) + (1.0 - w) * self._trend[key]
        self._level[key] = level
        self._trend[key] = trend
        step = trend if trend >= 0 else trend / self.negative_damping
        return max(0.0, level + step)


class PIDLoop:
    """A discrete PID loop emitting a clamped multiplicative gain.

    ``update(error)`` returns ``1 + kp*e + ki*sum(e) + kd*de`` clamped
    to ``[min_gain, max_gain]``.  Anti-windup is conditional
    integration: the integral term only absorbs the step's error when
    the *unclamped* output was within the actuation bounds, so a long
    saturated excursion cannot charge up the integrator and overshoot on
    the way back.  ``saturated_steps`` counts the clamped updates.
    """

    def __init__(
        self,
        kp: float = 0.6,
        ki: float = 0.15,
        kd: float = 0.1,
        min_gain: float = 0.5,
        max_gain: float = 4.0,
    ) -> None:
        if min_gain <= 0 or max_gain < min_gain:
            raise ValueError("need 0 < min_gain <= max_gain")
        self.kp = float(kp)
        self.ki = float(ki)
        self.kd = float(kd)
        self.min_gain = float(min_gain)
        self.max_gain = float(max_gain)
        self.integral = 0.0
        self.saturated_steps = 0
        self._last_error: Optional[float] = None

    def update(self, error: float) -> float:
        """One step: the clamped gain for this interval's error."""
        derivative = (
            0.0 if self._last_error is None else error - self._last_error
        )
        self._last_error = float(error)
        candidate = self.integral + float(error)
        output = (
            1.0 + self.kp * error + self.ki * candidate + self.kd * derivative
        )
        gain = min(self.max_gain, max(self.min_gain, output))
        if gain != output:
            self.saturated_steps += 1  # conditional integration: discard
        else:
            self.integral = candidate
        return gain


# ----------------------------------------------------------------------
# Policy mixins (compose with either concrete controller)
# ----------------------------------------------------------------------

def _scaled_demand(demand: ChannelDemand, gain: float) -> ChannelDemand:
    """A channel demand with its cloud-demand vector scaled by ``gain``
    (``ChannelDemand`` is frozen; the other fields carry over)."""
    return replace(demand, cloud_demand=demand.cloud_demand * float(gain))


class ReactivePolicy:
    """Reactive threshold scaling over the shared skeleton."""

    policy = "reactive"

    def __init__(
        self,
        *args,
        reactive_up_threshold: float = 1.1,
        reactive_down_threshold: float = 0.7,
        reactive_headroom: float = 0.2,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.reactive = ReactiveScaler(
            up_threshold=reactive_up_threshold,
            down_threshold=reactive_down_threshold,
            headroom=reactive_headroom,
        )

    def _target_rates(self, now, interval_stats):
        del now
        return {
            stats.channel_id: self.reactive.update(
                stats.channel_id, stats.arrival_rate
            )
            for stats in interval_stats
        }


class AdaptPolicy:
    """Adapt-style weighted-history estimation over the shared skeleton."""

    policy = "adapt"

    def __init__(
        self,
        *args,
        adapt_weight: float = 0.5,
        adapt_negative_damping: float = 15.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.adapt = AdaptEstimator(
            weight=adapt_weight, negative_damping=adapt_negative_damping
        )

    def _target_rates(self, now, interval_stats):
        del now
        return {
            stats.channel_id: self.adapt.update(
                stats.channel_id, stats.arrival_rate
            )
            for stats in interval_stats
        }


class PIDPolicy:
    """PID on the demand/grant utilization error, shaping the demand.

    The measured signal is the ratio of this interval's analyzed total
    demand to the capacity actually granted last interval; the error is
    its excess over ``pid_setpoint``.  The loop's clamped gain
    multiplies every channel's demand vector, so persistent
    under-provisioning (ratio > setpoint) escalates the request and
    slack capacity relaxes it — bounded actuation by construction.
    """

    policy = "pid"

    def __init__(
        self,
        *args,
        pid_kp: float = 0.6,
        pid_ki: float = 0.15,
        pid_kd: float = 0.1,
        pid_setpoint: float = 1.0,
        pid_min_gain: float = 0.5,
        pid_max_gain: float = 4.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if pid_setpoint <= 0:
            raise ValueError("setpoint must be > 0")
        self.pid_setpoint = float(pid_setpoint)
        self.pid = PIDLoop(
            kp=pid_kp,
            ki=pid_ki,
            kd=pid_kd,
            min_gain=pid_min_gain,
            max_gain=pid_max_gain,
        )

    def _last_granted_total(self) -> float:
        if not self.decisions:
            return 0.0
        last = self.decisions[-1]
        return float(
            sum(arr.sum() for arr in last.per_channel_capacity.values())
        )

    def _shape_demands(self, now, demands):
        del now
        total = float(sum(d.total_cloud_demand for d in demands))
        granted = self._last_granted_total()
        if granted <= 0.0 or total <= 0.0:
            return demands  # no utilization signal yet
        error = total / granted - self.pid_setpoint
        gain = self.pid.update(error)
        if gain == 1.0:
            return demands
        return [_scaled_demand(d, gain) for d in demands]


class MPCPolicy:
    """Receding-horizon MPC with the exact geo LP as the inner solve.

    Each interval: record the analyzed total demand, estimate the
    per-interval growth factor from the last step, and provision for the
    anticipated *peak* over the next ``mpc_horizon`` intervals
    (``growth ** horizon``, growth clamped to ``mpc_max_growth``).  The
    grown demand is then bounded by reality: the exact
    :class:`~repro.geo.allocation.GeoVMProblem` LP is solved over it
    under the VM budget, and each chunk's anticipatory demand is clipped
    to the capacity that solve could actually place (never below the
    unshaped analysis).  When the grown demand is infeasible under the
    budget the LP has no solution — ``mpc_lp_fallbacks`` counts those
    intervals and the greedy's best-effort partial plan bounds the
    shaping instead.

    Subclasses say what problem to solve via :meth:`_mpc_topology` and
    :meth:`_mpc_regional_demands` (a degenerate one-region topology for
    the single-region controller, the real one for geo).
    """

    policy = "mpc"

    def __init__(
        self,
        *args,
        mpc_horizon: int = 3,
        mpc_max_growth: float = 3.0,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if mpc_horizon < 1:
            raise ValueError("horizon must be >= 1")
        if mpc_max_growth < 1.0:
            raise ValueError("max growth must be >= 1")
        self.mpc_horizon = int(mpc_horizon)
        self.mpc_max_growth = float(mpc_max_growth)
        self.mpc_lp_fallbacks = 0
        self._mpc_rate_history: List[float] = []

    # -- the problem the subclass exposes ------------------------------
    def _mpc_topology(self):
        raise NotImplementedError

    def _mpc_regional_demands(
        self, demands: Sequence[ChannelDemand]
    ) -> Mapping[str, Mapping[Any, float]]:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _mpc_solve(self, demands: Sequence[ChannelDemand]):
        """Exact LP over the shaped demand; greedy when infeasible."""
        # Lazy import: the geo package imports the core one at init.
        from repro.geo.allocation import (
            GeoVMProblem,
            greedy_geo_allocation,
            lp_geo_allocation,
        )

        problem = GeoVMProblem(
            topology=self._mpc_topology(),
            demands=self._mpc_regional_demands(demands),
            vm_bandwidth=self.vm_bandwidth,
            budget_per_hour=self.terms.vm_budget_per_hour,
        )
        plan = lp_geo_allocation(problem)
        if not plan.feasible:
            self.mpc_lp_fallbacks += 1
            plan = greedy_geo_allocation(problem)
        return plan

    def _shape_demands(self, now, demands):
        del now
        total = float(sum(d.total_cloud_demand for d in demands))
        history = self._mpc_rate_history
        prev = history[-1] if history else None
        history.append(total)
        if len(history) > self.mpc_horizon + 1:
            del history[: len(history) - (self.mpc_horizon + 1)]
        if prev is None or prev <= 0.0 or total <= 0.0:
            return demands  # no growth signal yet
        growth = min(self.mpc_max_growth, total / prev)
        factor = max(1.0, growth ** self.mpc_horizon)
        shaped = (
            demands
            if factor <= 1.0 + 1e-12
            else [_scaled_demand(d, factor) for d in demands]
        )
        plan = self._mpc_solve(shaped)
        served: Dict[Any, float] = {}
        for (_viewer, chunk, _serving, _cluster), z in \
                plan.allocations.items():
            served[chunk] = served.get(chunk, 0.0) + z * self.vm_bandwidth
        clipped: List[ChannelDemand] = []
        for base, grown in zip(demands, shaped):
            arr = np.asarray(grown.cloud_demand, dtype=float).copy()
            for i in range(arr.size):
                cap = served.get((grown.channel_id, i), 0.0)
                arr[i] = max(
                    float(base.cloud_demand[i]), min(float(arr[i]), cap)
                )
            clipped.append(replace(grown, cloud_demand=arr))
        return clipped


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ControllerInfo:
    """One registered policy: its key, blurb, and concrete classes
    (dotted paths, resolved lazily to keep the core/geo import graph
    acyclic)."""

    name: str
    title: str
    single: Tuple[str, str]  # (module, class) for the single-region flavor
    geo: Tuple[str, str]  # (module, class) for the multi-region flavor


CONTROLLERS: Dict[str, ControllerInfo] = {
    info.name: info
    for info in (
        ControllerInfo(
            "paper",
            "last-interval prediction + threshold replan (Section V-B)",
            ("repro.core.provisioner", "ProvisioningController"),
            ("repro.geo.controller", "GeoProvisioningController"),
        ),
        ControllerInfo(
            "reactive",
            "threshold scaling with hysteresis and headroom",
            ("repro.core.provisioner", "ReactiveProvisioningController"),
            ("repro.geo.controller", "ReactiveGeoProvisioningController"),
        ),
        ControllerInfo(
            "adapt",
            "Adapt-style weighted level+trend estimator (OpenDC prototype)",
            ("repro.core.provisioner", "AdaptProvisioningController"),
            ("repro.geo.controller", "AdaptGeoProvisioningController"),
        ),
        ControllerInfo(
            "pid",
            "PID on the demand/grant utilization error, anti-windup",
            ("repro.core.provisioner", "PIDProvisioningController"),
            ("repro.geo.controller", "PIDGeoProvisioningController"),
        ),
        ControllerInfo(
            "mpc",
            "receding-horizon MPC, exact geo LP inner solve",
            ("repro.core.provisioner", "MPCProvisioningController"),
            ("repro.geo.controller", "MPCGeoProvisioningController"),
        ),
    )
}


def controller_names() -> Tuple[str, ...]:
    """The registered policy keys, registry order (paper first)."""
    return tuple(CONTROLLERS)


def controller_class(name: str, *, geo: bool = False) -> type:
    """Resolve a policy key to its concrete controller class.

    ``geo`` selects the multi-region flavor.  Unknown keys fail fast,
    naming the registered policies (the same style as the predictor
    registry and ``--set`` preflight).
    """
    try:
        info = CONTROLLERS[name]
    except KeyError:
        raise KeyError(
            f"unknown controller {name!r} "
            f"(registered: {', '.join(CONTROLLERS)})"
        ) from None
    module_name, class_name = info.geo if geo else info.single
    return getattr(importlib.import_module(module_name), class_name)
