"""CloudMedia's core: demand estimation, rental optimization, provisioning.

This package implements the paper's primary contribution (Section V):

* :mod:`repro.core.demand` — turns tracker statistics into per-chunk cloud
  capacity demands Delta_i^(c) via the Section IV analysis.
* :mod:`repro.core.storage_rental` — the optimal storage rental problem
  (Eqn (6)): greedy heuristic, exact solver for small instances, and an LP
  relaxation bound.
* :mod:`repro.core.vm_allocation` — the optimal VM configuration problem
  (Eqn (7)): greedy heuristic and the exact LP optimum.
* :mod:`repro.core.packing` — maps fractional VM shares onto concrete VMs,
  co-locating consecutive chunks of a channel on shared VMs.
* :mod:`repro.core.predictor` — demand predictors: the paper's
  last-interval rule plus moving-average and EWMA extensions.
* :mod:`repro.core.controller` — the provisioning-controller protocol,
  the shared observe/predict/analyze skeleton, the rival-policy zoo
  (reactive, Adapt, PID, MPC) and the controller registry.
* :mod:`repro.core.provisioner` — the dynamic cloud provisioning controller
  that closes the loop every interval T.
* :mod:`repro.core.sla` — consumer-side SLA terms, budget accounting and
  the SLA penalty model scored by the controller ablation.
"""

from repro.core.controller import (
    AdaptEstimator,
    Controller,
    PIDLoop,
    ProvisioningControllerBase,
    ReactiveScaler,
    controller_class,
    controller_names,
)
from repro.core.demand import ChannelDemand, DemandEstimator, aggregate_demand
from repro.core.packing import PackedVM, PackingResult, pack_allocations
from repro.core.predictor import (
    EWMAPredictor,
    LastIntervalPredictor,
    MovingAveragePredictor,
)
from repro.core.provisioner import ProvisioningController, ProvisioningDecision
from repro.core.sla import BudgetLedger, SLAPenaltyModel, SLATerms
from repro.core.storage_rental import (
    StoragePlan,
    StorageProblem,
    exhaustive_storage_rental,
    greedy_storage_rental,
    lp_storage_bound,
)
from repro.core.vm_allocation import (
    VMAllocationPlan,
    VMProblem,
    greedy_vm_allocation,
    lp_vm_allocation,
)

__all__ = [
    "AdaptEstimator",
    "Controller",
    "PIDLoop",
    "ProvisioningControllerBase",
    "ReactiveScaler",
    "controller_class",
    "controller_names",
    "ChannelDemand",
    "DemandEstimator",
    "aggregate_demand",
    "PackedVM",
    "PackingResult",
    "pack_allocations",
    "EWMAPredictor",
    "LastIntervalPredictor",
    "MovingAveragePredictor",
    "ProvisioningController",
    "ProvisioningDecision",
    "BudgetLedger",
    "SLAPenaltyModel",
    "SLATerms",
    "StoragePlan",
    "StorageProblem",
    "exhaustive_storage_rental",
    "greedy_storage_rental",
    "lp_storage_bound",
    "VMAllocationPlan",
    "VMProblem",
    "greedy_vm_allocation",
    "lp_vm_allocation",
]
