"""Demand estimation: tracker statistics -> per-chunk cloud demand.

This is the controller's analytical front-end (paper Fig. 3): each interval
it takes the tracker's observed arrival rates and viewing patterns, runs
the Section IV analysis, and emits the per-chunk cloud capacity demands
Delta_i^(c) the optimizers consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.p2p.contribution import cloud_supplement, solve_p2p_channel_capacity
from repro.p2p.coownership import CoOwnershipModel
from repro.queueing.capacity import CapacityModel, solve_channel_capacity
from repro.queueing.transitions import empirical_transition_matrix
from repro.vod.tracker import IntervalStats

__all__ = ["ChannelDemand", "DemandEstimator", "aggregate_demand"]

ChunkKey = Tuple[int, int]  # (channel_id, chunk_index)


@dataclass(frozen=True)
class ChannelDemand:
    """Estimated equilibrium demand for one channel over one interval."""

    channel_id: int
    arrival_rate: float
    servers: np.ndarray = field(repr=False)  # m_i
    cloud_demand: np.ndarray = field(repr=False)  # Delta_i, bytes/second
    peer_bandwidth: np.ndarray = field(repr=False)  # Gamma_i, bytes/second
    expected_in_system: np.ndarray = field(repr=False)  # E[n_i]

    @property
    def total_cloud_demand(self) -> float:
        return float(self.cloud_demand.sum())

    @property
    def total_servers(self) -> int:
        return int(self.servers.sum())

    @property
    def expected_population(self) -> float:
        return float(self.expected_in_system.sum())

    def chunk_demands(self) -> Dict[ChunkKey, float]:
        """``{(channel, chunk): Delta}`` mapping for the optimizers."""
        return {
            (self.channel_id, i): float(d) for i, d in enumerate(self.cloud_demand)
        }


class DemandEstimator:
    """Turns per-interval tracker statistics into channel demands.

    Parameters
    ----------
    model:
        Physical capacity model (r, T0, R), shared by all channels in the
        paper's setup.
    mode:
        ``"client-server"`` or ``"p2p"``.
    prior_matrices:
        Optional per-channel prior transfer matrices used to smooth the
        empirical estimates (defaults to sequential viewing inside
        :func:`empirical_transition_matrix`).
    min_arrival_rate:
        Floor on the arrival rate fed to the analysis; keeps a tiny
        baseline capacity on channels that were idle last interval so a
        first request does not starve.
    """

    def __init__(
        self,
        model: CapacityModel,
        mode: str = "client-server",
        *,
        prior_matrices: Optional[Mapping[int, np.ndarray]] = None,
        default_prior: Optional[np.ndarray] = None,
        min_arrival_rate: float = 0.0,
        coownership: Optional[CoOwnershipModel] = None,
        peer_discount: float = 0.6,
    ) -> None:
        """``peer_discount`` down-weights the equilibrium peer contribution
        Gamma before computing the cloud supplement. The Section IV-C
        analysis assumes every equilibrium owner's upload is dependably
        available; under churn and flash crowds the instantaneous supply
        dips below that, so a provisioner trusting Gamma at face value
        starves exactly the popular channels. The paper's own Fig 4 shows
        the P2P reservation holding a clear margin above usage, which this
        factor reproduces; 0.6 lands the paper-scale P2P run on the paper's
        reported ~0.95 average quality. Set to 1.0 for the undiscounted
        analysis."""
        if mode not in ("client-server", "p2p"):
            raise ValueError(f"unknown mode {mode!r}")
        if min_arrival_rate < 0:
            raise ValueError("min arrival rate must be >= 0")
        if not 0.0 <= peer_discount <= 1.0:
            raise ValueError("peer_discount must be in [0, 1]")
        self.model = model
        self.mode = mode
        self.prior_matrices = dict(prior_matrices or {})
        #: Prior used for channels absent from ``prior_matrices`` — a
        #: catalog of hundreds of identical-behaviour channels shares one
        #: matrix instead of one dict entry per channel.
        self.default_prior = default_prior
        self.min_arrival_rate = min_arrival_rate
        self.coownership = coownership
        self.peer_discount = peer_discount

    # ------------------------------------------------------------------
    def estimate_channel(
        self,
        stats: IntervalStats,
        *,
        arrival_rate: Optional[float] = None,
        peer_upload: Optional[float] = None,
    ) -> ChannelDemand:
        """Estimate one channel's demand from its interval statistics.

        ``arrival_rate`` overrides the measured rate (e.g. a predictor's
        output); ``peer_upload`` overrides the measured mean peer upload
        capacity in P2P mode.
        """
        rate = stats.arrival_rate if arrival_rate is None else arrival_rate
        rate = max(rate, self.min_arrival_rate)
        matrix = empirical_transition_matrix(
            stats.transition_counts,
            stats.departure_counts,
            prior=self.prior_matrices.get(stats.channel_id, self.default_prior),
        )
        alpha = stats.observed_alpha

        if rate <= 0:
            j = matrix.shape[0]
            zeros = np.zeros(j)
            return ChannelDemand(
                channel_id=stats.channel_id,
                arrival_rate=0.0,
                servers=np.zeros(j, dtype=int),
                cloud_demand=zeros,
                peer_bandwidth=zeros.copy(),
                expected_in_system=zeros.copy(),
            )

        if self.mode == "client-server":
            result = solve_channel_capacity(self.model, matrix, rate, alpha=alpha)
            return ChannelDemand(
                channel_id=stats.channel_id,
                arrival_rate=rate,
                servers=result.servers,
                cloud_demand=result.cloud_demand,
                peer_bandwidth=np.zeros_like(result.cloud_demand),
                expected_in_system=result.expected_in_system,
            )

        upload = (
            peer_upload if peer_upload is not None else stats.mean_upload_capacity
        )
        p2p = solve_p2p_channel_capacity(
            self.model,
            matrix,
            rate,
            peer_upload=max(0.0, upload),
            alpha=alpha,
            coownership=self.coownership,
        )
        gamma = self.peer_discount * p2p.peer_bandwidth
        delta = cloud_supplement(
            p2p.servers,
            gamma,
            self.model.vm_bandwidth,
            self.model.streaming_rate,
            in_system=p2p.capacity.little_target,
        )
        return ChannelDemand(
            channel_id=stats.channel_id,
            arrival_rate=rate,
            servers=p2p.servers,
            cloud_demand=delta,
            peer_bandwidth=gamma,
            expected_in_system=p2p.capacity.little_target,
        )

    def estimate_all(
        self,
        interval_stats: Sequence[IntervalStats],
        *,
        arrival_rates: Optional[Mapping[int, float]] = None,
        peer_upload: Optional[float] = None,
    ) -> List[ChannelDemand]:
        """Estimate every channel; ``arrival_rates`` maps channel -> rate."""
        demands = []
        for stats in interval_stats:
            override = (
                arrival_rates.get(stats.channel_id)
                if arrival_rates is not None
                else None
            )
            demands.append(
                self.estimate_channel(
                    stats, arrival_rate=override, peer_upload=peer_upload
                )
            )
        return demands


def aggregate_demand(demands: Sequence[ChannelDemand]) -> Dict[ChunkKey, float]:
    """Merge per-channel demands into one ``{(channel, chunk): Delta}`` map."""
    merged: Dict[ChunkKey, float] = {}
    for demand in demands:
        merged.update(demand.chunk_demands())
    return merged
