"""The dynamic cloud provisioning controller (paper Section V-B, Fig. 3).

Every interval T the controller:

1. closes the tracker's statistics interval (arrival rates, viewing
   patterns, peer upload capacities);
2. feeds the observed rates to its predictor (the paper's last-interval
   rule by default) and runs the Section IV analysis to get per-chunk
   cloud demands Delta_i^(c);
3. solves the VM configuration problem (Eqn (7) heuristic) and, when the
   demand profile shifted enough (or videos were added), the storage
   rental problem (Eqn (6) heuristic);
4. submits the change request to the cloud broker under its SLA terms and
   budget ledger;
5. publishes the granted per-chunk capacities for the VoD system to use
   in the next interval.

The initial deployment (the paper's "based on the application's empirical
user scale and viewing pattern information") is :meth:`bootstrap`, which
runs the same pipeline on operator-supplied expected rates instead of
tracker measurements.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cloud.broker import Broker, NegotiationError, ResourceRequest, SLAAgreement
from repro.core.demand import ChannelDemand, ChunkKey, DemandEstimator, aggregate_demand
from repro.core.packing import PackingResult, pack_allocations
from repro.core.predictor import ArrivalRatePredictor, LastIntervalPredictor
from repro.core.sla import BudgetLedger, SLATerms
from repro.core.storage_rental import StoragePlan, StorageProblem, greedy_storage_rental
from repro.core.vm_allocation import VMAllocationPlan, VMProblem, greedy_vm_allocation
from repro.vod.tracker import IntervalStats, TrackingServer

__all__ = [
    "ProvisioningDecision",
    "ProvisioningController",
    "storage_demand_shifted",
]


def storage_demand_shifted(
    last: Mapping[ChunkKey, float],
    current: Mapping[ChunkKey, float],
    threshold: float,
) -> bool:
    """Has chunk demand shifted enough to replan storage (Section V-B)?

    True when videos were added/removed (key sets differ) or the
    relative L1 change of the demand vector exceeds ``threshold``.
    Shared by the single-region and geo controllers so the replan rule
    cannot silently diverge between them.
    """
    if set(current) != set(last):
        return True  # videos added or removed
    baseline = sum(last.values())
    if baseline <= 0:
        return any(v > 0 for v in current.values())
    shift = sum(abs(current[k] - last.get(k, 0.0)) for k in current)
    return shift / baseline > threshold


@dataclass
class ProvisioningDecision:
    """Everything the controller decided for one interval."""

    time: float
    demands: List[ChannelDemand]
    vm_plan: VMAllocationPlan
    storage_plan: Optional[StoragePlan]
    packing: PackingResult
    agreement: Optional[SLAAgreement]
    per_channel_capacity: Dict[int, np.ndarray] = field(default_factory=dict)
    rejected: Optional[str] = None
    cluster_utilities: Dict[str, float] = field(default_factory=dict)
    nfs_utilities: Dict[str, float] = field(default_factory=dict)

    @property
    def total_cloud_demand(self) -> float:
        return float(sum(d.total_cloud_demand for d in self.demands))

    @property
    def vm_counts(self) -> Dict[str, int]:
        return self.vm_plan.integer_vm_counts()

    @property
    def hourly_vm_cost(self) -> float:
        return self.agreement.hourly_vm_cost if self.agreement else 0.0

    def channel_capacity(self, channel_id: int) -> np.ndarray:
        return self.per_channel_capacity[channel_id]

    def aggregate_vm_utility(self, channel_id: Optional[int] = None) -> float:
        """sum u~_v z_iv, optionally restricted to one channel (Fig 9)."""
        total = 0.0
        for (chunk, cluster), z in self.vm_plan.allocations.items():
            if channel_id is not None and chunk[0] != channel_id:
                continue
            total += self.cluster_utilities[cluster] * z
        return total

    def aggregate_storage_utility(
        self, channel_id: Optional[int] = None
    ) -> float:
        """sum u_f Delta_i x_if over the storage placement (Fig 8).

        Uses this decision's demand vector and its storage plan (or 0.0
        when storage was not replanned this interval).
        """
        if self.storage_plan is None:
            return 0.0
        demand_by_chunk = aggregate_demand(self.demands)
        total = 0.0
        for chunk, cluster in self.storage_plan.placement.items():
            if channel_id is not None and chunk[0] != channel_id:
                continue
            total += self.nfs_utilities[cluster] * demand_by_chunk.get(chunk, 0.0)
        return total


class ProvisioningController:
    """Closes the provisioning loop between tracker, analysis and cloud."""

    def __init__(
        self,
        estimator: DemandEstimator,
        tracker: TrackingServer,
        broker: Broker,
        terms: SLATerms,
        *,
        predictor: Optional[ArrivalRatePredictor] = None,
        storage_replan_threshold: float = 0.25,
        min_capacity_per_chunk: float = 0.0,
    ) -> None:
        """Create a controller.

        Parameters
        ----------
        storage_replan_threshold:
            Relative L1 change in the chunk-demand vector that triggers a
            storage replan ("if the demand for chunks has changed
            significantly since last interval", Section V-B).
        min_capacity_per_chunk:
            Optional floor (bytes/s) on granted capacity for chunks with a
            nonzero expected population; guards the first interval after a
            channel wakes up.
        """
        if storage_replan_threshold < 0:
            raise ValueError("threshold must be >= 0")
        self.estimator = estimator
        self.tracker = tracker
        self.broker = broker
        self.terms = terms
        self.predictor = predictor or LastIntervalPredictor()
        self.storage_replan_threshold = storage_replan_threshold
        self.min_capacity_per_chunk = min_capacity_per_chunk
        self.ledger = BudgetLedger(terms)
        self.decisions: List[ProvisioningDecision] = []
        self._last_chunk_demand: Optional[Dict[ChunkKey, float]] = None
        self._storage_planned = False

    # ------------------------------------------------------------------
    @property
    def vm_bandwidth(self) -> float:
        return self.estimator.model.vm_bandwidth

    @property
    def chunk_size_bytes(self) -> float:
        return self.estimator.model.chunk_size_bytes

    def _should_replan_storage(self, chunk_demand: Mapping[ChunkKey, float]) -> bool:
        if not self._storage_planned:
            return True
        return storage_demand_shifted(
            self._last_chunk_demand or {},
            chunk_demand,
            self.storage_replan_threshold,
        )

    def _grants_to_channel_arrays(
        self,
        demands: Sequence[ChannelDemand],
        grants: Mapping[ChunkKey, float],
    ) -> Dict[int, np.ndarray]:
        arrays: Dict[int, np.ndarray] = {}
        for demand in demands:
            j = demand.cloud_demand.size
            arr = np.zeros(j, dtype=float)
            for i in range(j):
                arr[i] = grants.get((demand.channel_id, i), 0.0)
            if self.min_capacity_per_chunk > 0:
                populated = demand.expected_in_system > 0
                arr[populated] = np.maximum(
                    arr[populated], self.min_capacity_per_chunk
                )
            arrays[demand.channel_id] = arr
        return arrays

    # ------------------------------------------------------------------
    # Decision pipeline (shared by bootstrap and periodic runs)
    # ------------------------------------------------------------------
    def provision(
        self,
        now: float,
        demands: List[ChannelDemand],
    ) -> ProvisioningDecision:
        """Optimize, negotiate and apply a set of channel demands."""
        chunk_demand = aggregate_demand(demands)

        # --- VM configuration (every interval) --------------------------
        vm_specs = list(self.broker.facility.vm_specs.values())
        vm_problem = VMProblem(
            demands=chunk_demand,
            vm_bandwidth=self.vm_bandwidth,
            clusters=vm_specs,
            budget_per_hour=self.terms.vm_budget_per_hour,
        )
        vm_plan = greedy_vm_allocation(vm_problem)
        packing = pack_allocations(vm_plan.allocations)

        # --- Storage rental (on significant change) ----------------------
        storage_plan: Optional[StoragePlan] = None
        nfs_specs = list(self.broker.facility.nfs_specs.values())
        if self._should_replan_storage(chunk_demand):
            storage_problem = StorageProblem(
                demands=chunk_demand,
                chunk_size_bytes=self.chunk_size_bytes,
                clusters=nfs_specs,
                budget_per_hour=self.terms.storage_budget_per_hour,
            )
            storage_plan = greedy_storage_rental(storage_problem)

        # --- Request to the cloud -----------------------------------------
        vm_targets = {spec.name: 0 for spec in vm_specs}
        vm_targets.update(vm_plan.integer_vm_counts())
        placement = (
            storage_plan.to_facility_placement(self.chunk_size_bytes)
            if storage_plan is not None and storage_plan.feasible
            else None
        )
        request = ResourceRequest(
            vm_targets=vm_targets,
            storage_placement=placement,
            max_hourly_budget=self.terms.total_budget_per_hour,
        )
        agreement: Optional[SLAAgreement] = None
        rejected: Optional[str] = None
        try:
            agreement = self.broker.request(request)
        except NegotiationError as exc:
            rejected = str(exc)

        grants = vm_plan.chunk_bandwidth(self.vm_bandwidth)
        decision = ProvisioningDecision(
            time=now,
            demands=demands,
            vm_plan=vm_plan,
            storage_plan=storage_plan,
            packing=packing,
            agreement=agreement,
            per_channel_capacity=self._grants_to_channel_arrays(demands, grants),
            rejected=rejected,
            cluster_utilities={spec.name: spec.utility for spec in vm_specs},
            nfs_utilities={spec.name: spec.utility for spec in nfs_specs},
        )
        self.decisions.append(decision)

        if storage_plan is not None and storage_plan.feasible and agreement:
            self._storage_planned = True
        self._last_chunk_demand = dict(chunk_demand)

        vm_rate = agreement.hourly_vm_cost if agreement else 0.0
        storage_rate = self.broker.facility.billing.current_storage_cost_rate()
        self.ledger.record(
            now,
            vm_rate,
            storage_rate,
            feasible=vm_plan.feasible
            and (storage_plan is None or storage_plan.feasible)
            and rejected is None,
        )
        return decision

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def bootstrap(
        self,
        now: float,
        expected_rates: Mapping[int, float],
        *,
        peer_upload: Optional[float] = None,
    ) -> ProvisioningDecision:
        """Initial deployment from expected per-channel arrival rates.

        Builds synthetic interval statistics (no observations; the
        empirical estimator falls back to the prior viewing pattern) and
        runs the normal decision pipeline. The tracker and predictor are
        untouched.
        """
        synthetic: List[IntervalStats] = [
            self.tracker.empty_stats(channel_id)
            for channel_id in sorted(expected_rates)
        ]
        demands = self.estimator.estimate_all(
            synthetic,
            arrival_rates=dict(expected_rates),
            peer_upload=peer_upload,
        )
        return self.provision(now, demands)

    def run_interval(
        self,
        now: float,
        *,
        peer_upload: Optional[float] = None,
    ) -> ProvisioningDecision:
        """Execute one periodic provisioning round at time ``now``.

        ``peer_upload`` optionally injects the measured mean peer upload
        (e.g. the simulator's live value) instead of the tracker's
        per-interval sample mean.
        """
        interval_stats: List[IntervalStats] = self.tracker.close_interval()

        predicted: Dict[int, float] = {}
        for stats in interval_stats:
            self.predictor.observe(stats.channel_id, stats.arrival_rate)
            predicted[stats.channel_id] = self.predictor.predict(stats.channel_id)

        demands = self.estimator.estimate_all(
            interval_stats, arrival_rates=predicted, peer_upload=peer_upload
        )
        return self.provision(now, demands)
