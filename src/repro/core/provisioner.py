"""The dynamic cloud provisioning controller (paper Section V-B, Fig. 3).

Every interval T the controller:

1. closes the tracker's statistics interval (arrival rates, viewing
   patterns, peer upload capacities);
2. feeds the observed rates to its predictor (the paper's last-interval
   rule by default) and runs the Section IV analysis to get per-chunk
   cloud demands Delta_i^(c);
3. solves the VM configuration problem (Eqn (7) heuristic) and, when the
   demand profile shifted enough (or videos were added), the storage
   rental problem (Eqn (6) heuristic);
4. submits the change request to the cloud broker under its SLA terms and
   budget ledger;
5. publishes the granted per-chunk capacities for the VoD system to use
   in the next interval.

The initial deployment (the paper's "based on the application's empirical
user scale and viewing pattern information") is :meth:`bootstrap`, which
runs the same pipeline on operator-supplied expected rates instead of
tracker measurements.

Steps 1-2 and 5 are the shared skeleton in
:class:`repro.core.controller.ProvisioningControllerBase`; this module
owns the single-region optimization pipeline (steps 3-4) and the
concrete rival-policy controllers obtained by composing the policy
mixins with it (``repro.core.controller`` documents the policies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.cloud.broker import NegotiationError, ResourceRequest, SLAAgreement
from repro.core.controller import (
    AdaptPolicy,
    MPCPolicy,
    PIDPolicy,
    ProvisioningControllerBase,
    ReactivePolicy,
    storage_demand_shifted,
)
from repro.core.demand import ChannelDemand, ChunkKey, aggregate_demand
from repro.core.packing import PackingResult, pack_allocations
from repro.core.storage_rental import StoragePlan, StorageProblem, greedy_storage_rental
from repro.core.vm_allocation import VMAllocationPlan, VMProblem, greedy_vm_allocation

__all__ = [
    "ProvisioningDecision",
    "ProvisioningController",
    "ReactiveProvisioningController",
    "AdaptProvisioningController",
    "PIDProvisioningController",
    "MPCProvisioningController",
    "storage_demand_shifted",
]


@dataclass
class ProvisioningDecision:
    """Everything the controller decided for one interval."""

    time: float
    demands: List[ChannelDemand]
    vm_plan: VMAllocationPlan
    storage_plan: Optional[StoragePlan]
    packing: PackingResult
    agreement: Optional[SLAAgreement]
    per_channel_capacity: Dict[int, np.ndarray] = field(default_factory=dict)
    rejected: Optional[str] = None
    cluster_utilities: Dict[str, float] = field(default_factory=dict)
    nfs_utilities: Dict[str, float] = field(default_factory=dict)

    @property
    def total_cloud_demand(self) -> float:
        return float(sum(d.total_cloud_demand for d in self.demands))

    @property
    def vm_counts(self) -> Dict[str, int]:
        return self.vm_plan.integer_vm_counts()

    @property
    def hourly_vm_cost(self) -> float:
        return self.agreement.hourly_vm_cost if self.agreement else 0.0

    def channel_capacity(self, channel_id: int) -> np.ndarray:
        return self.per_channel_capacity[channel_id]

    def aggregate_vm_utility(self, channel_id: Optional[int] = None) -> float:
        """sum u~_v z_iv, optionally restricted to one channel (Fig 9)."""
        total = 0.0
        for (chunk, cluster), z in self.vm_plan.allocations.items():
            if channel_id is not None and chunk[0] != channel_id:
                continue
            total += self.cluster_utilities[cluster] * z
        return total

    def aggregate_storage_utility(
        self, channel_id: Optional[int] = None
    ) -> float:
        """sum u_f Delta_i x_if over the storage placement (Fig 8).

        Uses this decision's demand vector and its storage plan (or 0.0
        when storage was not replanned this interval).
        """
        if self.storage_plan is None:
            return 0.0
        demand_by_chunk = aggregate_demand(self.demands)
        total = 0.0
        for chunk, cluster in self.storage_plan.placement.items():
            if channel_id is not None and chunk[0] != channel_id:
                continue
            total += self.nfs_utilities[cluster] * demand_by_chunk.get(chunk, 0.0)
        return total


class ProvisioningController(ProvisioningControllerBase):
    """Closes the provisioning loop between tracker, analysis and cloud.

    The observe/predict/analyze skeleton (and the policy hooks) live in
    :class:`~repro.core.controller.ProvisioningControllerBase`; this
    class supplies the single-region optimization pipeline.
    """

    decisions: List[ProvisioningDecision]

    # ------------------------------------------------------------------
    def _grants_to_channel_arrays(
        self,
        demands: Sequence[ChannelDemand],
        grants: Mapping[ChunkKey, float],
    ) -> Dict[int, np.ndarray]:
        arrays: Dict[int, np.ndarray] = {}
        for demand in demands:
            j = demand.cloud_demand.size
            arr = np.zeros(j, dtype=float)
            for i in range(j):
                arr[i] = grants.get((demand.channel_id, i), 0.0)
            if self.min_capacity_per_chunk > 0:
                populated = demand.expected_in_system > 0
                arr[populated] = np.maximum(
                    arr[populated], self.min_capacity_per_chunk
                )
            arrays[demand.channel_id] = arr
        return arrays

    # ------------------------------------------------------------------
    # Decision pipeline (shared by bootstrap and periodic runs)
    # ------------------------------------------------------------------
    def provision(
        self,
        now: float,
        demands: List[ChannelDemand],
    ) -> ProvisioningDecision:
        """Optimize, negotiate and apply a set of channel demands."""
        chunk_demand = aggregate_demand(demands)

        # --- VM configuration (every interval) --------------------------
        vm_specs = list(self.broker.facility.vm_specs.values())
        vm_problem = VMProblem(
            demands=chunk_demand,
            vm_bandwidth=self.vm_bandwidth,
            clusters=vm_specs,
            budget_per_hour=self.terms.vm_budget_per_hour,
        )
        vm_plan = greedy_vm_allocation(vm_problem)
        packing = pack_allocations(vm_plan.allocations)

        # --- Storage rental (on significant change) ----------------------
        storage_plan: Optional[StoragePlan] = None
        nfs_specs = list(self.broker.facility.nfs_specs.values())
        if self._should_replan_storage(chunk_demand):
            storage_problem = StorageProblem(
                demands=chunk_demand,
                chunk_size_bytes=self.chunk_size_bytes,
                clusters=nfs_specs,
                budget_per_hour=self.terms.storage_budget_per_hour,
            )
            storage_plan = greedy_storage_rental(storage_problem)

        # --- Request to the cloud -----------------------------------------
        vm_targets = {spec.name: 0 for spec in vm_specs}
        vm_targets.update(vm_plan.integer_vm_counts())
        placement = (
            storage_plan.to_facility_placement(self.chunk_size_bytes)
            if storage_plan is not None and storage_plan.feasible
            else None
        )
        request = ResourceRequest(
            vm_targets=vm_targets,
            storage_placement=placement,
            max_hourly_budget=self.terms.total_budget_per_hour,
        )
        agreement: Optional[SLAAgreement] = None
        rejected: Optional[str] = None
        try:
            agreement = self.broker.request(request)
        except NegotiationError as exc:
            rejected = str(exc)

        grants = vm_plan.chunk_bandwidth(self.vm_bandwidth)
        decision = ProvisioningDecision(
            time=now,
            demands=demands,
            vm_plan=vm_plan,
            storage_plan=storage_plan,
            packing=packing,
            agreement=agreement,
            per_channel_capacity=self._grants_to_channel_arrays(demands, grants),
            rejected=rejected,
            cluster_utilities={spec.name: spec.utility for spec in vm_specs},
            nfs_utilities={spec.name: spec.utility for spec in nfs_specs},
        )
        self.decisions.append(decision)

        if storage_plan is not None and storage_plan.feasible and agreement:
            self._storage_planned = True
        self._last_chunk_demand = dict(chunk_demand)

        vm_rate = agreement.hourly_vm_cost if agreement else 0.0
        storage_rate = self.broker.facility.billing.current_storage_cost_rate()
        self.ledger.record(
            now,
            vm_rate,
            storage_rate,
            feasible=vm_plan.feasible
            and (storage_plan is None or storage_plan.feasible)
            and rejected is None,
        )
        return decision


class ReactiveProvisioningController(ReactivePolicy, ProvisioningController):
    """Single-region reactive threshold scaling (``controller="reactive"``)."""


class AdaptProvisioningController(AdaptPolicy, ProvisioningController):
    """Single-region Adapt-style proactive estimator (``controller="adapt"``)."""


class PIDProvisioningController(PIDPolicy, ProvisioningController):
    """Single-region PID demand shaping (``controller="pid"``)."""


class MPCProvisioningController(MPCPolicy, ProvisioningController):
    """Single-region receding-horizon MPC (``controller="mpc"``).

    The inner solve runs the exact geo LP over a degenerate one-region
    topology wrapping this facility's VM clusters.
    """

    def _mpc_topology(self):
        topology = getattr(self, "_mpc_cached_topology", None)
        if topology is None:
            # Lazy import: the geo package imports the core one at init.
            from repro.geo.region import GeoTopology, RegionSpec

            topology = GeoTopology(
                [
                    RegionSpec(
                        "local",
                        tuple(self.broker.facility.vm_specs.values()),
                    )
                ],
                {},
                {},
            )
            self._mpc_cached_topology = topology
        return topology

    def _mpc_regional_demands(self, demands):
        return {"local": aggregate_demand(demands)}
