"""Optimal storage rental (paper Eqn (6)) and its solvers.

Decide which NFS cluster each chunk is deployed on, maximizing the
aggregate retrieval performance  sum u_f * Delta_i * x_if  subject to

* exactly one copy of every chunk,
* per-cluster capacity  sum_i x_if <= S_f / (r T0),
* storage budget        sum p_f * (r T0) * x_if <= B_S.

Three solvers:

* :func:`greedy_storage_rental` — the paper's heuristic: chunks by
  decreasing demand, clusters by decreasing marginal utility per dollar.
* :func:`exhaustive_storage_rental` — exact enumeration for tiny instances
  (test oracle).
* :func:`lp_storage_bound` — LP relaxation upper bound via scipy, used by
  the ablation bench to measure the heuristic's optimality gap.

Infeasibility (budget or capacity cannot host all chunks) is reported, not
raised: the paper treats it as a signal that the provider's budget "should
be increased".
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy.optimize import linprog

from repro.cloud.cluster import NFSClusterSpec

__all__ = [
    "StorageProblem",
    "StoragePlan",
    "greedy_storage_rental",
    "exhaustive_storage_rental",
    "lp_storage_bound",
]

ChunkKey = Hashable


@dataclass(frozen=True)
class StorageProblem:
    """One instance of the storage rental problem.

    Attributes
    ----------
    demands:
        ``{chunk_key: Delta_i}`` cloud upload demand per chunk (bytes/s).
        Every chunk in the catalogue must appear (zero-demand chunks too:
        the constraint says one copy of *each* chunk).
    chunk_size_bytes:
        r * T0, identical for all chunks per the paper's model.
    clusters:
        NFS cluster specs, in a stable order.
    budget_per_hour:
        B_S, dollars per hour.
    """

    demands: Mapping[ChunkKey, float]
    chunk_size_bytes: float
    clusters: Sequence[NFSClusterSpec]
    budget_per_hour: float

    def __post_init__(self) -> None:
        if self.chunk_size_bytes <= 0:
            raise ValueError("chunk size must be > 0")
        if self.budget_per_hour < 0:
            raise ValueError("budget must be >= 0")
        if not self.clusters:
            raise ValueError("need at least one NFS cluster")
        names = [c.name for c in self.clusters]
        if len(set(names)) != len(names):
            raise ValueError("cluster names must be unique")
        if any(d < 0 for d in self.demands.values()):
            raise ValueError("demands must be nonnegative")

    def chunk_cost_per_hour(self, cluster: NFSClusterSpec) -> float:
        """Hourly cost of storing one chunk on ``cluster``: p_f * r * T0."""
        return cluster.price_per_byte_hour * self.chunk_size_bytes

    def cluster_slots(self, cluster: NFSClusterSpec) -> int:
        return cluster.chunk_slots(self.chunk_size_bytes)


@dataclass(frozen=True)
class StoragePlan:
    """A (possibly partial) solution to a :class:`StorageProblem`."""

    placement: Dict[ChunkKey, str]  # chunk -> cluster name
    objective: float  # sum u_f * Delta_i over placed chunks
    cost_per_hour: float
    feasible: bool  # True iff every chunk was placed within budget
    unplaced: Tuple[ChunkKey, ...] = field(default_factory=tuple)

    def cluster_loads(self) -> Dict[str, int]:
        loads: Dict[str, int] = {}
        for cluster in self.placement.values():
            loads[cluster] = loads.get(cluster, 0) + 1
        return loads

    def to_facility_placement(
        self, chunk_size_bytes: float
    ) -> Dict[ChunkKey, Tuple[str, float]]:
        """Convert to the ``{chunk: (cluster, bytes)}`` scheduler format."""
        return {
            chunk: (cluster, chunk_size_bytes)
            for chunk, cluster in self.placement.items()
        }


def _sorted_chunks(problem: StorageProblem) -> List[ChunkKey]:
    """Chunks by decreasing demand; key string breaks ties deterministically."""
    return sorted(
        problem.demands.keys(),
        key=lambda k: (-problem.demands[k], repr(k)),
    )


def greedy_storage_rental(problem: StorageProblem) -> StoragePlan:
    """The paper's storage rental heuristic (Section V-A1).

    Chunks in decreasing Delta_i; clusters in decreasing u_f / p_f. Each
    chunk goes to the best cluster with a free slot, provided the running
    budget allows it; otherwise the plan is marked infeasible and the
    remaining chunks stay unplaced.
    """
    clusters = sorted(
        problem.clusters,
        key=lambda c: (-c.marginal_utility_per_dollar, c.name),
    )
    free_slots = {c.name: problem.cluster_slots(c) for c in clusters}
    placement: Dict[ChunkKey, str] = {}
    objective = 0.0
    cost = 0.0
    unplaced: List[ChunkKey] = []

    for chunk in _sorted_chunks(problem):
        placed = False
        for cluster in clusters:
            if free_slots[cluster.name] <= 0:
                continue
            chunk_cost = problem.chunk_cost_per_hour(cluster)
            if cost + chunk_cost > problem.budget_per_hour + 1e-12:
                continue  # try a cheaper cluster before giving up
            free_slots[cluster.name] -= 1
            placement[chunk] = cluster.name
            objective += cluster.utility * problem.demands[chunk]
            cost += chunk_cost
            placed = True
            break
        if not placed:
            unplaced.append(chunk)

    return StoragePlan(
        placement=placement,
        objective=objective,
        cost_per_hour=cost,
        feasible=not unplaced,
        unplaced=tuple(unplaced),
    )


def exhaustive_storage_rental(problem: StorageProblem) -> StoragePlan:
    """Exact optimum by enumeration; only for tiny instances (test oracle).

    Raises ``ValueError`` when the search space exceeds ~2 million
    assignments.
    """
    chunks = list(problem.demands.keys())
    clusters = list(problem.clusters)
    space = len(clusters) ** len(chunks)
    if space > 2_000_000:
        raise ValueError(f"instance too large for enumeration ({space} assignments)")

    slots = [problem.cluster_slots(c) for c in clusters]
    costs = [problem.chunk_cost_per_hour(c) for c in clusters]
    best: Optional[Tuple[float, Dict[ChunkKey, str], float]] = None
    for assignment in itertools.product(range(len(clusters)), repeat=len(chunks)):
        loads = [0] * len(clusters)
        total_cost = 0.0
        objective = 0.0
        ok = True
        for chunk, cluster_idx in zip(chunks, assignment):
            loads[cluster_idx] += 1
            if loads[cluster_idx] > slots[cluster_idx]:
                ok = False
                break
            total_cost += costs[cluster_idx]
            objective += clusters[cluster_idx].utility * problem.demands[chunk]
        if not ok or total_cost > problem.budget_per_hour + 1e-12:
            continue
        if best is None or objective > best[0] + 1e-15:
            best = (
                objective,
                {c: clusters[i].name for c, i in zip(chunks, assignment)},
                total_cost,
            )
    if best is None:
        return StoragePlan(
            placement={},
            objective=0.0,
            cost_per_hour=0.0,
            feasible=False,
            unplaced=tuple(chunks),
        )
    objective, placement, total_cost = best
    return StoragePlan(
        placement=placement,
        objective=objective,
        cost_per_hour=total_cost,
        feasible=True,
    )


def lp_storage_bound(problem: StorageProblem) -> float:
    """LP-relaxation upper bound on the Eqn (6) objective.

    Variables x_if in [0, 1]; equality per chunk, capacity per cluster,
    and the budget row. Returns +inf objective bound as NaN when even the
    relaxation is infeasible.
    """
    chunks = list(problem.demands.keys())
    clusters = list(problem.clusters)
    n, f = len(chunks), len(clusters)
    if n == 0:
        return 0.0

    def var(i: int, j: int) -> int:
        return i * f + j

    c_obj = np.zeros(n * f)
    for i, chunk in enumerate(chunks):
        for j, cluster in enumerate(clusters):
            c_obj[var(i, j)] = -cluster.utility * problem.demands[chunk]

    a_eq = np.zeros((n, n * f))
    for i in range(n):
        for j in range(f):
            a_eq[i, var(i, j)] = 1.0
    b_eq = np.ones(n)

    a_ub = np.zeros((f + 1, n * f))
    b_ub = np.zeros(f + 1)
    for j, cluster in enumerate(clusters):
        for i in range(n):
            a_ub[j, var(i, j)] = 1.0
        b_ub[j] = problem.cluster_slots(cluster)
    for i in range(n):
        for j, cluster in enumerate(clusters):
            a_ub[f, var(i, j)] = problem.chunk_cost_per_hour(cluster)
    b_ub[f] = problem.budget_per_hour

    res = linprog(
        c_obj,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0.0, 1.0)] * (n * f),
        method="highs",
    )
    if not res.success:
        return float("nan")
    return float(-res.fun)
