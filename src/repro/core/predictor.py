"""Demand predictors (paper Section V-B).

The paper's controller uses "user arrival patterns in the previous time
interval... to predict the capacity demand in the next interval" — the
last-interval rule — and explicitly leaves "more accurate prediction
methods based on historical data collected over more intervals" as future
work. We implement that rule and two such extensions (moving average and
EWMA), benchmarked against each other in the predictor ablation.

A predictor maps the per-interval observed arrival-rate history of one
channel to the rate used for the next interval's capacity calculation.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Protocol

__all__ = [
    "ArrivalRatePredictor",
    "LastIntervalPredictor",
    "MovingAveragePredictor",
    "EWMAPredictor",
    "SeasonalPredictor",
]


class ArrivalRatePredictor(Protocol):
    """Predicts the next interval's arrival rate for each channel."""

    def observe(self, channel_id: int, rate: float) -> None:
        """Record the rate measured over the interval that just closed."""
        ...

    def predict(self, channel_id: int) -> float:
        """Rate to provision for in the upcoming interval."""
        ...


class LastIntervalPredictor:
    """The paper's predictor: next interval looks like the last one."""

    def __init__(self, initial_rate: float = 0.0) -> None:
        if initial_rate < 0:
            raise ValueError("initial rate must be >= 0")
        self.initial_rate = initial_rate
        self._last: Dict[int, float] = {}

    def observe(self, channel_id: int, rate: float) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self._last[channel_id] = rate

    def predict(self, channel_id: int) -> float:
        return self._last.get(channel_id, self.initial_rate)


class MovingAveragePredictor:
    """Mean of the last ``window`` observed interval rates."""

    def __init__(self, window: int = 3, initial_rate: float = 0.0) -> None:
        if window <= 0:
            raise ValueError("window must be >= 1")
        if initial_rate < 0:
            raise ValueError("initial rate must be >= 0")
        self.window = window
        self.initial_rate = initial_rate
        self._history: Dict[int, Deque[float]] = {}

    def observe(self, channel_id: int, rate: float) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self._history.setdefault(channel_id, deque(maxlen=self.window)).append(rate)

    def predict(self, channel_id: int) -> float:
        history = self._history.get(channel_id)
        if not history:
            return self.initial_rate
        return sum(history) / len(history)


class SeasonalPredictor:
    """Blend of the last interval and the same slot in the previous period.

    VoD demand is strongly diurnal (two flash crowds a day), so the rate
    observed 24 hours ago is often a better predictor of the *next* hour
    than the rate observed in the last hour — especially on the rising
    edge of a flash crowd, exactly where the last-interval rule
    under-provisions.

        prediction = blend * seasonal + (1 - blend) * last

    where ``seasonal`` is the observation ``period`` intervals ago (falls
    back to ``last`` until a full period of history exists).

    Parameters
    ----------
    period:
        Number of intervals per season (24 for hourly intervals and a
        daily pattern).
    blend:
        Weight of the seasonal component, in [0, 1].
    """

    def __init__(
        self,
        period: int = 24,
        blend: float = 0.5,
        initial_rate: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError("period must be >= 1")
        if not 0.0 <= blend <= 1.0:
            raise ValueError("blend must be in [0, 1]")
        if initial_rate < 0:
            raise ValueError("initial rate must be >= 0")
        self.period = period
        self.blend = blend
        self.initial_rate = initial_rate
        self._history: Dict[int, Deque[float]] = {}

    def observe(self, channel_id: int, rate: float) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        self._history.setdefault(
            channel_id, deque(maxlen=self.period)
        ).append(rate)

    def predict(self, channel_id: int) -> float:
        history = self._history.get(channel_id)
        if not history:
            return self.initial_rate
        last = history[-1]
        if len(history) == self.period:
            # The oldest retained entry is the observation from exactly one
            # period ago relative to the *upcoming* interval.
            seasonal = history[0]
            return self.blend * seasonal + (1.0 - self.blend) * last
        return last


class EWMAPredictor:
    """Exponentially weighted moving average with smoothing ``beta``.

    prediction <- beta * observation + (1 - beta) * prediction.
    ``beta = 1`` degenerates to the last-interval rule.
    """

    def __init__(self, beta: float = 0.5, initial_rate: float = 0.0) -> None:
        if not 0.0 < beta <= 1.0:
            raise ValueError("beta must be in (0, 1]")
        if initial_rate < 0:
            raise ValueError("initial rate must be >= 0")
        self.beta = beta
        self.initial_rate = initial_rate
        self._state: Dict[int, float] = {}

    def observe(self, channel_id: int, rate: float) -> None:
        if rate < 0:
            raise ValueError("rate must be >= 0")
        previous: Optional[float] = self._state.get(channel_id)
        if previous is None:
            self._state[channel_id] = rate
        else:
            self._state[channel_id] = self.beta * rate + (1 - self.beta) * previous

    def predict(self, channel_id: int) -> float:
        return self._state.get(channel_id, self.initial_rate)
