"""`repro.api`: the one session-style surface over every engine.

The closed loop (predict -> provision -> serve -> observe) is an
*online* controller, and this module exposes it that way, uniformly for
all three engines the repo grew — the single-region closed loop
(:mod:`repro.experiments.runner`), the sharded catalog and the
multi-region geo catalog (:mod:`repro.sim.shard`):

* :class:`EngineConfig` — one typed config: the scenario/catalog spec
  plus ``workers`` as a first-class field (the deprecated
  ``REPRO_CATALOG_JOBS`` environment variable remains a warned
  fallback through :func:`resolve_workers`, the single validation
  path).
* :func:`open_run` — returns a :class:`Run` handle.  ``run.epochs()``
  streams one :class:`EpochSnapshot` per provisioning epoch *as it
  completes* (demand, grants, provisioning decision, quality, cost);
  ``run.result()`` drains the remainder and returns the exact
  monolithic artifact the historical entry points produced
  (``ClosedLoopResult`` / ``CatalogResult`` / ``GeoCatalogResult``).
* :meth:`Run.checkpoint` / :func:`resume` — persist a mid-run engine
  and continue it later (or in another process, with a different
  worker count): the continuation is byte-identical to an
  uninterrupted run, for any ``workers`` on either side.

Quickstart::

    from repro.api import EngineConfig, open_run
    from repro.workload.catalog import catalog_config

    cfg = EngineConfig(spec=catalog_config(num_channels=24), workers=4)
    with open_run(cfg) as run:
        for epoch in run.epochs():          # streams as epochs complete
            print(epoch.index, epoch.population, epoch.vm_cost_per_hour)
            if epoch.index == run.epochs_total // 2:
                run.checkpoint("halfway.ckpt")
        result = run.result()               # == the monolithic artifact

    resumed = resume("halfway.ckpt", workers=1)   # byte-identical tail
    tail_result = resumed.result()

Checkpoints are Python pickles of live engine state: load them only
from paths you wrote yourself (the standard pickle trust model).
"""

from __future__ import annotations

import operator
import os
import pickle
import warnings
from dataclasses import dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

import numpy as np

from repro import __version__
from repro.experiments.config import PaperConstants, ScenarioConfig
from repro.workload.catalog import CatalogConfig, GeoCatalogConfig

__all__ = [
    "CHECKPOINT_SCHEMA",
    "EngineConfig",
    "EpochSnapshot",
    "Engine",
    "Run",
    "open_run",
    "resume",
    "resolve_workers",
]

#: Bump when the checkpoint payload layout changes; old checkpoints then
#: fail loudly instead of being misread.  Schema 2 added
#: :attr:`EngineConfig.controller`.
CHECKPOINT_SCHEMA = 2

#: The deprecated environment fallback for :attr:`EngineConfig.workers`.
WORKERS_ENV_VAR = "REPRO_CATALOG_JOBS"


def resolve_workers(workers: Optional[int] = None) -> int:
    """The one shared worker-count validation path.

    ``workers`` (when given) is authoritative: it must be integral and
    is clamped to at least 1 (engine results are worker-invariant, so
    serial is always a correct interpretation of "0 workers").  When
    ``None``, the deprecated ``REPRO_CATALOG_JOBS`` environment variable
    is consulted as a *warned* fallback with the same validation:
    garbage raises a :class:`ValueError` naming the variable, values
    below 1 clamp to 1, unset/blank means serial.
    """
    if workers is not None:
        try:
            # operator.index accepts any integral type but rejects
            # floats, so workers=2.9 errors instead of truncating to 2
            # (strings still parse, matching the env var's semantics).
            count = int(workers) if isinstance(workers, str) \
                else operator.index(workers)
        except (TypeError, ValueError):
            raise ValueError(
                f"workers must be an integer worker count, got {workers!r}"
            ) from None
        return max(1, count)
    raw = os.environ.get(WORKERS_ENV_VAR, "")
    if not raw.strip():
        return 1
    warnings.warn(
        f"the {WORKERS_ENV_VAR} environment variable is deprecated; set "
        f"EngineConfig.workers (or pass --jobs / jobs=) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(
            f"{WORKERS_ENV_VAR} must be an integer worker count, got {raw!r}"
        ) from None
    return max(1, jobs)


#: Any spec the engines understand (GeoCatalogConfig is a CatalogConfig).
EngineSpec = Union[ScenarioConfig, CatalogConfig]

#: ``kind`` tag -> spec class, the discriminator of the JSON wire format
#: (``GeoCatalogConfig`` must be matched before its ``CatalogConfig``
#: base, which :attr:`EngineConfig.kind` already guarantees).
_SPEC_CLASSES = {
    "closed-loop": ScenarioConfig,
    "catalog": CatalogConfig,
    "geo-catalog": GeoCatalogConfig,
}


def _plain(value):
    """Coerce numpy scalars/arrays to plain JSON-serializable values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def _spec_to_dict(spec: EngineSpec) -> Dict[str, Any]:
    """One spec dataclass as a JSON-serializable field dict."""
    out: Dict[str, Any] = {}
    for spec_field in fields(spec):
        value = getattr(spec, spec_field.name)
        if spec_field.name == "constants":
            value = {
                f.name: _plain(getattr(value, f.name))
                for f in fields(PaperConstants)
            }
        out[spec_field.name] = _plain(value)
    return out


def _constants_from_dict(data: Any) -> PaperConstants:
    if not isinstance(data, dict):
        raise ValueError(
            "'constants' must be a dict of PaperConstants fields, "
            f"got {type(data).__name__}"
        )
    allowed = {f.name for f in fields(PaperConstants)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(
            f"unknown PaperConstants keys: {', '.join(unknown)}"
        )
    return PaperConstants(**data)


def _spec_from_dict(kind: str, data: Any) -> EngineSpec:
    """Strictly rebuild the spec a ``kind``-tagged field dict describes."""
    spec_cls = _SPEC_CLASSES[kind]
    if not isinstance(data, dict):
        raise ValueError(
            f"'spec' must be a dict of {spec_cls.__name__} fields, "
            f"got {type(data).__name__}"
        )
    allowed = {f.name for f in fields(spec_cls)}
    unknown = sorted(set(data) - allowed)
    if unknown:
        raise ValueError(
            f"unknown {spec_cls.__name__} keys: {', '.join(unknown)}"
        )
    kwargs = dict(data)
    if kwargs.get("constants") is not None:
        kwargs["constants"] = _constants_from_dict(kwargs["constants"])
    if kwargs.get("behaviour") is not None:
        kwargs["behaviour"] = np.asarray(kwargs["behaviour"], dtype=float)
    return spec_cls(**kwargs)


@dataclass(frozen=True)
class EngineConfig:
    """One typed configuration for :func:`open_run`.

    Attributes
    ----------
    spec:
        What to simulate: a :class:`~repro.experiments.config.
        ScenarioConfig` (single-region closed loop), a
        :class:`~repro.workload.catalog.CatalogConfig` (sharded
        catalog) or a :class:`~repro.workload.catalog.GeoCatalogConfig`
        (multi-region catalog).  The engine is chosen from the spec's
        type — see :attr:`kind`.
    workers:
        Worker processes for the sharded engines; results are
        byte-identical for any value.  ``None`` falls back to the
        deprecated ``REPRO_CATALOG_JOBS`` environment variable (warned),
        else 1.  The closed loop is single-process: ``workers`` > 1
        there is a configuration error.
    predictor:
        Optional arrival-rate predictor registry key (e.g. ``"ewma"``;
        see ``repro.experiments.registry.PREDICTORS``).  ``None`` keeps
        the paper's last-interval rule.
    controller:
        Optional provisioning-policy registry key (e.g. ``"mpc"``; see
        ``repro.core.controller.CONTROLLERS``).  ``None`` keeps the
        paper controller.
    """

    spec: EngineSpec
    workers: Optional[int] = None
    predictor: Optional[str] = None
    controller: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.spec, (ScenarioConfig, CatalogConfig)):
            raise TypeError(
                "EngineConfig.spec must be a ScenarioConfig, CatalogConfig "
                f"or GeoCatalogConfig, got {type(self.spec).__name__}"
            )
        if self.workers is not None:
            count = resolve_workers(self.workers)
            if self.kind == "closed-loop" and count > 1:
                raise ValueError(
                    "the closed-loop engine is single-process; "
                    "workers must be 1 (or None) for a ScenarioConfig spec"
                )
        if self.predictor is not None:
            from repro.experiments.registry import PREDICTORS

            if self.predictor not in PREDICTORS:
                raise ValueError(
                    f"unknown predictor {self.predictor!r} "
                    f"(registered: {', '.join(PREDICTORS)})"
                )
        if self.controller is not None:
            from repro.core.controller import CONTROLLERS

            if self.controller not in CONTROLLERS:
                raise ValueError(
                    f"unknown controller {self.controller!r} "
                    f"(registered: {', '.join(CONTROLLERS)})"
                )

    @property
    def kind(self) -> str:
        """``"closed-loop"``, ``"catalog"`` or ``"geo-catalog"``."""
        if isinstance(self.spec, GeoCatalogConfig):
            return "geo-catalog"
        if isinstance(self.spec, CatalogConfig):
            return "catalog"
        return "closed-loop"

    def resolved_workers(self) -> int:
        """The effective worker count (env fallback applied, validated)."""
        if self.kind == "closed-loop":
            return 1
        return resolve_workers(self.workers)

    # -- JSON wire format (POST /runs and standalone persistence) -------
    def to_dict(self) -> Dict[str, Any]:
        """The config as one JSON-serializable dict.

        The spec class is encoded as the ``kind`` tag; every spec field
        (including ``constants`` and, for scenarios, an optional
        ``behaviour`` matrix as nested lists) is carried so the dict is
        self-contained.  Numpy scalars are coerced to plain Python, and
        :meth:`from_dict` round-trips the result exactly.
        """
        return {
            "kind": self.kind,
            "spec": _spec_to_dict(self.spec),
            "workers": _plain(self.workers),
            "predictor": self.predictor,
            "controller": self.controller,
        }

    @classmethod
    def from_dict(cls, data: Any) -> "EngineConfig":
        """Strictly rebuild a config from :meth:`to_dict` output.

        Unknown keys — at the top level, in ``spec`` and in
        ``constants`` — fail fast with a :class:`ValueError` naming
        them, so a typoed field can never silently fall back to a
        default on the far side of an HTTP submission.
        """
        if not isinstance(data, dict):
            raise TypeError(
                "EngineConfig.from_dict needs a dict, "
                f"got {type(data).__name__}"
            )
        data = dict(data)
        kind = data.pop("kind", None)
        if kind not in _SPEC_CLASSES:
            raise ValueError(
                f"unknown engine kind {kind!r} "
                f"(expected one of: {', '.join(_SPEC_CLASSES)})"
            )
        spec_data = data.pop("spec", None)
        workers = data.pop("workers", None)
        predictor = data.pop("predictor", None)
        controller = data.pop("controller", None)
        if data:
            raise ValueError(
                f"unknown EngineConfig keys: {', '.join(sorted(data))}"
            )
        return cls(
            spec=_spec_from_dict(kind, spec_data),
            workers=workers,
            predictor=predictor,
            controller=controller,
        )


@dataclass(frozen=True)
class EpochSnapshot:
    """One provisioning epoch's report, streamed as the epoch completes.

    Bandwidth figures are means over the epoch's simulation steps, in
    Mbps.  ``vm_cost_per_hour`` is the hourly cost of the plan decided
    *at this epoch's boundary* (0.0 for the final epoch, where no
    further plan is made); ``decision`` is the full
    ``ProvisioningDecision`` / ``GeoProvisioningDecision`` behind it —
    per-chunk capacity grants, VM targets, storage plan, SLA agreement —
    or ``None`` at the final boundary.
    """

    index: int  # 1-based epoch number
    epochs_total: int
    t_end: float  # simulated seconds
    arrivals: int  # this epoch
    departures: int
    population: int  # at the epoch boundary
    peak_population: int  # within the epoch
    used_mbps: float
    peer_mbps: float
    provisioned_mbps: float
    shortfall_mbps: float
    quality: float  # mean streaming quality over the epoch's samples
    vm_cost_per_hour: float
    decision: Optional[object] = field(default=None, compare=False)

    @property
    def is_final(self) -> bool:
        return self.index >= self.epochs_total

    # -- JSON wire format (the SSE event payload) ------------------------
    def to_dict(self) -> Dict[str, Any]:
        """The snapshot as one JSON-serializable dict.

        Every scalar field is carried (numpy scalars coerced to plain
        Python); ``decision`` — the full provisioning-decision object —
        has no JSON form and is dropped.  :meth:`from_dict` round-trips
        the rest exactly.
        """
        return {
            "index": int(self.index),
            "epochs_total": int(self.epochs_total),
            "t_end": float(self.t_end),
            "arrivals": int(self.arrivals),
            "departures": int(self.departures),
            "population": int(self.population),
            "peak_population": int(self.peak_population),
            "used_mbps": float(self.used_mbps),
            "peer_mbps": float(self.peer_mbps),
            "provisioned_mbps": float(self.provisioned_mbps),
            "shortfall_mbps": float(self.shortfall_mbps),
            "quality": float(self.quality),
            "vm_cost_per_hour": float(self.vm_cost_per_hour),
        }

    @classmethod
    def from_dict(cls, data: Any) -> "EpochSnapshot":
        """Strictly rebuild a snapshot from :meth:`to_dict` output
        (``decision`` is ``None``; unknown or missing keys fail fast)."""
        if not isinstance(data, dict):
            raise TypeError(
                "EpochSnapshot.from_dict needs a dict, "
                f"got {type(data).__name__}"
            )
        data = dict(data)
        kwargs = {}
        for snap_field in fields(cls):
            if snap_field.name == "decision":
                continue
            if snap_field.name not in data:
                raise ValueError(
                    f"missing EpochSnapshot key {snap_field.name!r}"
                )
            kwargs[snap_field.name] = data.pop(snap_field.name)
        if data:
            raise ValueError(
                f"unknown EpochSnapshot keys: {', '.join(sorted(data))}"
            )
        return cls(**kwargs)


class Engine:
    """The protocol every engine behind :func:`open_run` satisfies.

    (Documented as a plain base class rather than ``typing.Protocol`` to
    keep the 3.9 floor simple; conformance is structural — the concrete
    engines do not inherit from it.)

    * ``kind`` — ``"closed-loop"`` / ``"catalog"`` / ``"geo-catalog"``.
    * ``epoch`` / ``epochs_total`` / ``done`` — progress.
    * ``start()`` — idempotent bootstrap (initial deployment).
    * ``advance_epoch()`` — run one provisioning epoch, returning the
      flat payload dict :class:`EpochSnapshot` is built from, or
      ``None`` once the horizon is reached.
    * ``result()`` — the monolithic artifact of a drained run.
    * ``snapshot_state()`` / ``restore_state(state)`` — one picklable
      object graph for checkpoint/resume.
    * ``close()`` — release worker processes (idempotent).
    """

    kind: str

    def start(self) -> None:  # pragma: no cover - protocol stub
        raise NotImplementedError

    def advance_epoch(self):  # pragma: no cover - protocol stub
        raise NotImplementedError

    def result(self):  # pragma: no cover - protocol stub
        raise NotImplementedError


def _build_engine(config: EngineConfig):
    """Construct the engine a config describes (no bootstrap yet)."""
    predictor = None
    if config.predictor is not None:
        from repro.experiments.registry import make_predictor

        predictor = make_predictor(config.predictor)
    if config.kind == "closed-loop":
        from repro.experiments.runner import ClosedLoopEngine

        return ClosedLoopEngine(
            config.spec, predictor=predictor, controller=config.controller
        )
    from repro.sim.shard import make_engine

    return make_engine(
        config.spec,
        jobs=config.resolved_workers(),
        predictor=predictor,
        controller=config.controller,
    )


class Run:
    """A session-style handle over one engine run.

    Iterate :meth:`epochs` to stream per-epoch reports; call
    :meth:`result` for the monolithic artifact (draining any epochs not
    yet consumed); :meth:`checkpoint` persists the live state at any
    point between epochs.  The handle is a context manager; closing it
    tears down worker processes.
    """

    def __init__(self, engine, config: EngineConfig) -> None:
        self._engine = engine
        self.config = config

    # -- progress ------------------------------------------------------
    @property
    def kind(self) -> str:
        return self.config.kind

    @property
    def epoch(self) -> int:
        """Completed epochs so far."""
        return self._engine.epoch

    @property
    def epochs_total(self) -> int:
        return self._engine.epochs_total

    @property
    def done(self) -> bool:
        return self._engine.done

    # -- execution -----------------------------------------------------
    def advance(self) -> Optional[EpochSnapshot]:
        """Run exactly one epoch; ``None`` once the horizon is reached.

        The step-wise face of :meth:`epochs`, for callers that need to
        interleave other work between epochs (the service host pushes
        each ``advance()`` through a worker thread so its event loop
        never blocks on a provisioning epoch).
        """
        payload = self._engine.advance_epoch()
        if payload is None:
            return None
        payload = dict(payload)
        index = payload.pop("epoch")
        return EpochSnapshot(
            index=index, epochs_total=self.epochs_total, **payload
        )

    def epochs(self) -> Iterator[EpochSnapshot]:
        """Stream the remaining epochs as they complete.

        The iterator is resumable: breaking out and calling
        :meth:`epochs` again continues from the next unconsumed epoch
        (the cursor lives in the engine, not the iterator).
        """
        while True:
            snapshot = self.advance()
            if snapshot is None:
                return
            yield snapshot

    def result(self):
        """Drain any remaining epochs and return the monolithic artifact.

        Byte-identical to the historical ``run_closed_loop`` /
        ``run_catalog`` results for the same spec, whether or not (and
        however) the run was streamed, checkpointed or resumed.
        """
        while not self._engine.done:
            if self._engine.advance_epoch() is None:
                break
        return self._engine.result()

    # -- checkpointing -------------------------------------------------
    def checkpoint(self, path: Union[str, os.PathLike]) -> Path:
        """Persist the live run to ``path`` (atomically; pickle format).

        Valid at any epoch boundary — including before the first epoch
        (the bootstrap runs first if it has not yet) and after the last.
        The in-memory run is unaffected and can keep going.
        """
        path = Path(path)
        payload = {
            "format": "repro-checkpoint",
            "schema": CHECKPOINT_SCHEMA,
            "repro_version": __version__,
            "kind": self.kind,
            "epoch": self.epoch,
            "config": self.config,
            "state": self._engine.snapshot_state(),
        }
        tmp = path.with_name(path.name + ".tmp")
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
        return path

    def phase_seconds(self) -> dict:
        """Cumulative wall-clock phase breakdown of the run so far.

        For the sharded engines: ``kernel`` (inside the shard step
        kernels), ``merge`` (parent-side epoch merge), ``controller``
        (bootstrap + replans) and ``ipc`` (worker round-trip overhead).
        Engines without instrumentation report ``{}``.
        """
        return dict(getattr(self._engine, "phase_seconds", {}) or {})

    # -- lifecycle -----------------------------------------------------
    def suspend(self) -> None:
        """Park the run between epochs, releasing worker processes.

        The sharded engines gather their live shard state into the
        parent and tear down workers plus the shared-memory epoch
        plane; the next :meth:`advance` transparently respawns them and
        results stay byte-identical.  Engines without worker processes
        (the closed loop) treat this as a no-op.  A host pausing a run
        indefinitely calls this so paused runs hold no processes or
        ``/dev/shm`` blocks.
        """
        suspend = getattr(self._engine, "suspend", None)
        if suspend is not None:
            suspend()

    def shm_segments(self) -> List[str]:
        """Names of live ``/dev/shm`` segments owned by this run.

        Empty for serial, suspended, unstarted or closed engines.  A
        supervising host records these so the segments of a SIGKILLed
        process can be reclaimed on restart
        (:func:`repro.sim.shm.unlink_stale_segment`).
        """
        name = getattr(self._engine, "shm_segment_name", None)
        return [name] if name else []

    def close(self) -> None:
        self._engine.close()

    def __enter__(self) -> "Run":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Run(kind={self.kind!r}, epoch={self.epoch}/"
            f"{self.epochs_total}, done={self.done})"
        )


def open_run(
    config: Union[EngineConfig, EngineSpec],
    *,
    workers: Optional[int] = None,
    predictor: Optional[str] = None,
    controller: Optional[str] = None,
) -> Run:
    """Open a run for a config (the engine is chosen from the spec type).

    A bare :class:`~repro.experiments.config.ScenarioConfig` /
    :class:`~repro.workload.catalog.CatalogConfig` is accepted and
    wrapped, with ``workers`` / ``predictor`` / ``controller`` as the
    remaining :class:`EngineConfig` fields.  The engine bootstraps
    lazily on the first epoch, so opening a run is cheap.
    """
    if not isinstance(config, EngineConfig):
        config = EngineConfig(
            spec=config,
            workers=workers,
            predictor=predictor,
            controller=controller,
        )
    elif workers is not None or predictor is not None \
            or controller is not None:
        raise TypeError(
            "pass workers/predictor/controller inside the EngineConfig, "
            "not alongside it"
        )
    return Run(_build_engine(config), config)


def resume(
    path: Union[str, os.PathLike],
    *,
    workers: Optional[int] = None,
) -> Run:
    """Reopen a checkpointed run and continue it.

    ``workers`` optionally overrides the checkpoint's worker count —
    legal because engine results are byte-identical for any value; a
    checkpoint written under ``workers=4`` resumes identically under
    ``workers=1`` and vice versa.  Checkpoints are pickles: only load
    files you (or something you trust) wrote.
    """
    with open(path, "rb") as handle:
        payload = pickle.load(handle)
    if not isinstance(payload, dict) or \
            payload.get("format") != "repro-checkpoint":
        raise ValueError(f"{path} is not a repro checkpoint")
    if payload.get("schema") != CHECKPOINT_SCHEMA:
        raise ValueError(
            f"checkpoint schema {payload.get('schema')!r} is not "
            f"supported (this version reads schema {CHECKPOINT_SCHEMA})"
        )
    config: EngineConfig = payload["config"]
    if workers is not None:
        config = replace(config, workers=workers)
    engine = _build_engine(config)
    engine.restore_state(payload["state"])
    return Run(engine, config)
