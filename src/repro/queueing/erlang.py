"""M/M/m queue stationary analysis (paper Eqns (2)-(3)).

The paper's Eqn (2) gives the stationary distribution of the number of
users in a chunk queue, and Eqn (3) its expectation, both written with raw
factorials. Raw factorials overflow for the queue sizes that arise in flash
crowds, so this module evaluates the same quantities through the standard
Erlang-B recursion

    B(0, a) = 1,    B(m, a) = a B(m-1, a) / (m + a B(m-1, a)),

which is numerically stable for any offered load ``a``, and the Erlang-C
conversion C = m B / (m - a (1 - B)). All closed forms used here agree with
the paper's expressions; the tests cross-check them against direct summation
for small queues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "erlang_b",
    "erlang_c",
    "mmm_stationary_distribution",
    "mmm_expected_number_in_system",
    "mmm_expected_queue_length",
    "mmm_expected_sojourn_time",
    "mmm_stats",
    "MMmQueueStats",
]


def _validate_load(offered_load: float) -> float:
    if offered_load < 0 or not math.isfinite(offered_load):
        raise ValueError(f"offered load must be finite and >= 0, got {offered_load}")
    return float(offered_load)


def erlang_b(servers: int, offered_load: float) -> float:
    """Erlang-B blocking probability for an M/M/m/m loss system.

    Used here as a numerically stable stepping stone to Erlang C.

    Parameters
    ----------
    servers:
        Number of servers m (>= 0).
    offered_load:
        Offered load a = lambda/mu in Erlangs.
    """
    a = _validate_load(offered_load)
    if servers < 0:
        raise ValueError(f"servers must be >= 0, got {servers}")
    b = 1.0
    for m in range(1, servers + 1):
        b = a * b / (m + a * b)
    return b


def erlang_c(servers: int, offered_load: float, *,
             saturated: bool = False) -> float:
    """Erlang-C probability that an arriving job must wait (M/M/m).

    Requires a stable queue, i.e. ``offered_load < servers``, unless
    ``saturated=True``: a queue at or beyond saturation has no stationary
    distribution, but the wait probability tends to 1 as the load
    approaches ``servers`` from below, so capacity probes that can
    legitimately cross the boundary mid-transient (flash crowds hitting a
    not-yet-scaled channel) opt into the limiting value ``1.0`` instead
    of wrapping every call in try/except.
    """
    a = _validate_load(offered_load)
    m = int(servers)
    if m <= 0:
        raise ValueError("Erlang C needs at least one server")
    if a >= m:
        if saturated:
            return 1.0
        raise ValueError(
            f"unstable queue: offered load {a} >= servers {m} "
            f"(pass saturated=True for the limiting wait probability 1.0)"
        )
    if a == 0.0:
        return 0.0
    b = erlang_b(m, a)
    return m * b / (m - a * (1.0 - b))


def mmm_stationary_distribution(
    servers: int, offered_load: float, max_k: int
) -> np.ndarray:
    """Stationary probabilities p(0..max_k) of an M/M/m queue (paper Eqn (2)).

    Returns the probabilities of having k jobs in system for
    k = 0, ..., ``max_k``. Computed multiplicatively (p(k) from p(k-1)) to
    avoid factorial overflow; the full distribution sums to 1, the returned
    prefix sums to <= 1.
    """
    a = _validate_load(offered_load)
    m = int(servers)
    if m <= 0:
        raise ValueError("need at least one server")
    if a >= m:
        raise ValueError(f"unstable queue: offered load {a} >= servers {m}")
    if max_k < 0:
        raise ValueError("max_k must be >= 0")

    # p0 via the Erlang machinery: p0 = (sum_{k<m} a^k/k! + a^m/(m!(1-W)))^-1.
    # Compute the terms multiplicatively.
    terms = np.empty(m, dtype=float)
    term = 1.0
    for k in range(m):
        terms[k] = term
        term *= a / (k + 1)
    # term now equals a^m / m!
    w = a / m
    tail = term / (1.0 - w)
    p0 = 1.0 / (terms.sum() + tail)

    probs = np.empty(max_k + 1, dtype=float)
    probs[0] = p0
    for k in range(1, max_k + 1):
        rate = a / k if k <= m else w  # birth/death ratio
        probs[k] = probs[k - 1] * rate
    return probs


def mmm_expected_queue_length(servers: int, offered_load: float) -> float:
    """Expected number of *waiting* jobs Lq = C(m,a) * a / (m - a)."""
    a = _validate_load(offered_load)
    m = int(servers)
    if a == 0.0:
        return 0.0
    c = erlang_c(m, a)
    return c * a / (m - a)


def mmm_expected_number_in_system(servers: int, offered_load: float) -> float:
    """Expected number in system E[n] = a + Lq (paper Eqn (3)).

    The paper writes Eqn (3) as an explicit series; this closed form is the
    same quantity (tests verify against direct summation).
    """
    a = _validate_load(offered_load)
    return a + mmm_expected_queue_length(servers, a)


def mmm_expected_sojourn_time(
    servers: int, arrival_rate: float, service_rate: float
) -> float:
    """Expected sojourn time E[T] = E[n] / lambda (Little's law)."""
    if service_rate <= 0:
        raise ValueError(f"service rate must be > 0, got {service_rate}")
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be >= 0, got {arrival_rate}")
    if arrival_rate == 0.0:
        # An arriving test job would only spend its own service time.
        return 1.0 / service_rate
    a = arrival_rate / service_rate
    return mmm_expected_number_in_system(servers, a) / arrival_rate


@dataclass(frozen=True)
class MMmQueueStats:
    """Summary statistics of a stable M/M/m queue."""

    servers: int
    arrival_rate: float
    service_rate: float
    offered_load: float
    utilization: float
    wait_probability: float
    expected_in_system: float
    expected_waiting: float
    expected_sojourn_time: float
    expected_wait_time: float


def mmm_stats(servers: int, arrival_rate: float, service_rate: float) -> MMmQueueStats:
    """Compute the full summary for an M/M/m queue.

    Raises ``ValueError`` if the queue would be unstable.
    """
    if service_rate <= 0:
        raise ValueError(f"service rate must be > 0, got {service_rate}")
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be >= 0, got {arrival_rate}")
    m = int(servers)
    a = arrival_rate / service_rate
    if arrival_rate == 0.0:
        return MMmQueueStats(
            servers=m,
            arrival_rate=0.0,
            service_rate=service_rate,
            offered_load=0.0,
            utilization=0.0,
            wait_probability=0.0,
            expected_in_system=0.0,
            expected_waiting=0.0,
            expected_sojourn_time=1.0 / service_rate,
            expected_wait_time=0.0,
        )
    c = erlang_c(m, a)
    lq = c * a / (m - a)
    ls = a + lq
    return MMmQueueStats(
        servers=m,
        arrival_rate=arrival_rate,
        service_rate=service_rate,
        offered_load=a,
        utilization=a / m,
        wait_probability=c,
        expected_in_system=ls,
        expected_waiting=lq,
        expected_sojourn_time=ls / arrival_rate,
        expected_wait_time=lq / arrival_rate,
    )
