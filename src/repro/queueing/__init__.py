"""Jackson queueing-network analysis (paper Section IV).

The CloudMedia capacity analysis models every chunk of every channel as an
M/M/m queue inside an open Jackson network:

* :mod:`repro.queueing.erlang` — M/M/m stationary quantities (Erlang B/C,
  queue-length and sojourn-time moments), computed with numerically stable
  recursions.
* :mod:`repro.queueing.jackson` — the traffic equations (paper Eqn (1)):
  per-queue arrival rates from external arrivals and the chunk-transfer
  matrix.
* :mod:`repro.queueing.transitions` — builders and validators for
  chunk-transfer probability matrices P^(c) encoding viewing behaviour.
* :mod:`repro.queueing.capacity` — the equilibrium server-count solver:
  the minimal m_i per queue such that the mean sojourn time is at most the
  chunk playback time T0 (Little's law on paper Eqn (3)).
"""

from repro.queueing.capacity import (
    CapacityModel,
    ChannelCapacityResult,
    required_servers,
    solve_channel_capacity,
)
from repro.queueing.erlang import (
    MMmQueueStats,
    erlang_b,
    erlang_c,
    mmm_expected_number_in_system,
    mmm_expected_sojourn_time,
    mmm_stationary_distribution,
    mmm_stats,
)
from repro.queueing.jackson import (
    TrafficSolution,
    external_arrival_vector,
    solve_traffic_equations,
)
from repro.queueing.startup import StartupDelayModel, channel_startup_delay
from repro.queueing.transitions import (
    TransitionModel,
    empirical_transition_matrix,
    leave_probabilities,
    mixture_matrix,
    sequential_matrix,
    uniform_jump_matrix,
    validate_transition_matrix,
)

__all__ = [
    "CapacityModel",
    "ChannelCapacityResult",
    "required_servers",
    "solve_channel_capacity",
    "MMmQueueStats",
    "erlang_b",
    "erlang_c",
    "mmm_expected_number_in_system",
    "mmm_expected_sojourn_time",
    "mmm_stationary_distribution",
    "mmm_stats",
    "TrafficSolution",
    "external_arrival_vector",
    "solve_traffic_equations",
    "StartupDelayModel",
    "channel_startup_delay",
    "TransitionModel",
    "empirical_transition_matrix",
    "leave_probabilities",
    "mixture_matrix",
    "sequential_matrix",
    "uniform_jump_matrix",
    "validate_transition_matrix",
]
