"""Open Jackson network traffic equations (paper Eqn (1)).

Per-queue aggregate arrival rates solve the linear system

    lambda_i = ext_i + sum_j lambda_j P[j, i]        (i = 1..J)

where ``ext`` is the external arrival split: a fraction ``alpha`` of the
channel's Poisson arrivals (rate Lambda) start at chunk 1 and the remaining
``1 - alpha`` start uniformly at the other chunks. Because P is substochastic
with spectral radius < 1 the system has a unique nonnegative solution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.queueing.transitions import validate_transition_matrix

__all__ = ["external_arrival_vector", "solve_traffic_equations", "TrafficSolution"]


def external_arrival_vector(
    num_chunks: int, total_rate: float, alpha: float = 0.8
) -> np.ndarray:
    """External per-chunk arrival rates for a channel (paper Section IV-A).

    Parameters
    ----------
    num_chunks:
        Number of chunks J in the channel.
    total_rate:
        Channel-level external Poisson arrival rate Lambda (users/second).
    alpha:
        Fraction of arrivals that start watching from the first chunk; the
        rest start at one of the remaining chunks uniformly.
    """
    if num_chunks <= 0:
        raise ValueError("need at least one chunk")
    if total_rate < 0:
        raise ValueError(f"arrival rate must be >= 0, got {total_rate}")
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    ext = np.zeros(num_chunks, dtype=float)
    if num_chunks == 1:
        ext[0] = total_rate
        return ext
    ext[0] = alpha * total_rate
    ext[1:] = (1.0 - alpha) * total_rate / (num_chunks - 1)
    return ext


@dataclass(frozen=True)
class TrafficSolution:
    """Solution of the traffic equations for one channel."""

    arrival_rates: np.ndarray  # lambda_i, users/second per chunk queue
    external_rates: np.ndarray  # ext_i
    transition_matrix: np.ndarray  # P

    @property
    def total_external_rate(self) -> float:
        return float(self.external_rates.sum())

    @property
    def visit_ratios(self) -> np.ndarray:
        """Expected number of visits to each queue per external arrival."""
        total = self.total_external_rate
        if total == 0.0:
            return np.zeros_like(self.arrival_rates)
        return self.arrival_rates / total

    @property
    def throughput(self) -> float:
        """Departure rate from the channel; equals external rate at equilibrium."""
        return self.total_external_rate


def solve_traffic_equations(
    transition_matrix: np.ndarray,
    external_rates: np.ndarray,
) -> TrafficSolution:
    """Solve ``lambda = ext + P^T lambda`` for the per-queue arrival rates.

    Raises ``ValueError`` if P is invalid (rows superstochastic or spectral
    radius >= 1) or if external rates are negative.
    """
    p = validate_transition_matrix(transition_matrix)
    ext = np.asarray(external_rates, dtype=float)
    if ext.shape != (p.shape[0],):
        raise ValueError(
            f"external_rates shape {ext.shape} does not match matrix {p.shape}"
        )
    if np.any(ext < 0):
        raise ValueError("external arrival rates must be nonnegative")

    identity = np.eye(p.shape[0])
    # (I - P^T) lambda = ext ; nonsingular because spectral radius(P) < 1.
    rates = np.linalg.solve(identity - p.T, ext)
    # Numerical noise can introduce tiny negatives; clamp them.
    rates = np.where(rates < 0, 0.0, rates)
    return TrafficSolution(
        arrival_rates=rates, external_rates=ext, transition_matrix=p
    )
