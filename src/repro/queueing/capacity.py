"""Equilibrium server-capacity solver (paper Section IV-B).

Given per-queue arrival rates lambda_i (from the traffic equations) and the
service rate mu = R / (r * T0) of one VM-backed queueing server, find the
minimal integer m_i such that

    m_i > lambda_i / mu          (stability), and
    E[n_i] <= lambda_i * T0      (mean sojourn time <= T0, by Little's law).

``E[n]`` is monotonically decreasing in m for fixed load, so a linear /
doubling search terminates; the paper's iterative procedure ("initialize
m to 1, increase until E(n) equals lambda*T0") is the same computation.

The total upload bandwidth to serve chunk i is then s_i = R * m_i, which in
the client-server mode is exactly the cloud capacity Delta_i to provision.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.queueing.erlang import mmm_expected_number_in_system
from repro.queueing.jackson import (
    TrafficSolution,
    external_arrival_vector,
    solve_traffic_equations,
)

__all__ = ["CapacityModel", "ChannelCapacityResult", "required_servers",
           "solve_channel_capacity"]


@dataclass(frozen=True)
class CapacityModel:
    """Physical parameters tying the queueing model to the cloud.

    Attributes
    ----------
    streaming_rate:
        Playback rate r in bytes/second.
    chunk_duration:
        Playback time T0 of one chunk, seconds. Chunk size is r * T0 bytes.
    vm_bandwidth:
        Bandwidth R of one VM in bytes/second; must exceed ``streaming_rate``
        so a chunk can be fetched within its own playback time.
    """

    streaming_rate: float
    chunk_duration: float
    vm_bandwidth: float

    def __post_init__(self) -> None:
        if self.streaming_rate <= 0:
            raise ValueError(f"streaming rate must be > 0, got {self.streaming_rate}")
        if self.chunk_duration <= 0:
            raise ValueError(f"chunk duration must be > 0, got {self.chunk_duration}")
        if self.vm_bandwidth <= self.streaming_rate:
            raise ValueError(
                "VM bandwidth R must exceed the streaming rate r "
                f"(got R={self.vm_bandwidth}, r={self.streaming_rate})"
            )

    @property
    def chunk_size_bytes(self) -> float:
        """Size of one chunk, r * T0 bytes."""
        return self.streaming_rate * self.chunk_duration

    @property
    def service_rate(self) -> float:
        """mu = R / (r * T0): chunk downloads per second per server."""
        return self.vm_bandwidth / self.chunk_size_bytes

    @property
    def mean_download_time(self) -> float:
        """1/mu, strictly less than T0 by the R > r requirement."""
        return 1.0 / self.service_rate


def required_servers(
    arrival_rate: float,
    service_rate: float,
    target_sojourn: float,
    *,
    max_servers: int = 10_000_000,
) -> int:
    """Minimal m with a stable M/M/m queue whose mean sojourn <= target.

    Returns 0 when ``arrival_rate`` is 0 (an idle queue needs no capacity).
    Raises ``ValueError`` when the target is infeasible, i.e. smaller than
    the bare service time 1/mu (no number of servers can beat that), or if
    the search exceeds ``max_servers``.
    """
    if arrival_rate < 0:
        raise ValueError(f"arrival rate must be >= 0, got {arrival_rate}")
    if service_rate <= 0:
        raise ValueError(f"service rate must be > 0, got {service_rate}")
    if target_sojourn <= 0:
        raise ValueError(f"target sojourn must be > 0, got {target_sojourn}")
    if arrival_rate == 0.0:
        return 0
    if target_sojourn < 1.0 / service_rate:
        raise ValueError(
            f"target sojourn {target_sojourn} < service time {1.0 / service_rate}; "
            "no server count can achieve it"
        )

    offered = arrival_rate / service_rate
    target_in_system = arrival_rate * target_sojourn  # Little's law
    m = max(1, math.floor(offered) + 1)  # smallest stable server count
    # With infinitely many servers E[n] -> offered <= target_in_system,
    # so the search below terminates.  The Erlang-B recursion is carried
    # across candidates: B(m, a) extends B(m-1, a) by one step, so the
    # linear search costs O(m) total instead of O(m^2) while producing
    # exactly the floats ``mmm_expected_number_in_system(m, offered)``
    # would (same recursion, same order).
    a = offered
    b = 1.0
    for k in range(1, m):
        b = a * b / (k + a * b)
    while m <= max_servers:
        b = a * b / (m + a * b)  # Erlang-B step: B(m, a) from B(m-1, a)
        c = m * b / (m - a * (1.0 - b))  # Erlang-C conversion
        in_system = a + c * a / (m - a)  # E[n] = a + Lq
        if in_system <= target_in_system + 1e-12:
            return m
        m += 1
    raise ValueError(f"exceeded max_servers={max_servers} searching for capacity")


@dataclass(frozen=True)
class ChannelCapacityResult:
    """Equilibrium capacity demand for one channel (client-server mode)."""

    model: CapacityModel
    traffic: TrafficSolution
    servers: np.ndarray = field(repr=False)  # m_i per chunk queue
    expected_in_system: np.ndarray = field(repr=False)  # E[n_i]

    @property
    def arrival_rates(self) -> np.ndarray:
        return self.traffic.arrival_rates

    @property
    def upload_bandwidth(self) -> np.ndarray:
        """s_i = R * m_i, bytes/second per chunk."""
        return self.model.vm_bandwidth * self.servers

    @property
    def cloud_demand(self) -> np.ndarray:
        """Delta_i for the client-server mode (all demand hits the cloud)."""
        return self.upload_bandwidth

    @property
    def total_servers(self) -> int:
        return int(self.servers.sum())

    @property
    def total_bandwidth(self) -> float:
        return float(self.upload_bandwidth.sum())

    @property
    def expected_population(self) -> float:
        """Expected number of concurrent users in the channel."""
        return float(self.expected_in_system.sum())

    @property
    def little_target(self) -> np.ndarray:
        """Per-queue population target lambda_i * T0 (Little's law at the
        design sojourn). With surplus capacity the *downloading* population
        E[n_i] falls below this, but each viewer still occupies the chunk's
        playback slot — so this is the right per-chunk basis for streaming
        demand and for chunk ownership in the P2P analysis."""
        return self.traffic.arrival_rates * self.model.chunk_duration


def solve_channel_capacity(
    model: CapacityModel,
    transition_matrix: np.ndarray,
    external_rate: float,
    *,
    alpha: float = 0.8,
    external_rates: Optional[np.ndarray] = None,
) -> ChannelCapacityResult:
    """End-to-end capacity analysis of one channel (paper Section IV-B).

    Solves the traffic equations for the channel, then sizes every chunk
    queue for a mean sojourn time of T0.

    Parameters
    ----------
    model:
        Physical parameters (r, T0, R).
    transition_matrix:
        Chunk-transfer matrix P^(c).
    external_rate:
        Channel arrival rate Lambda^(c), users/second. Ignored when
        ``external_rates`` is supplied.
    alpha:
        Fraction of arrivals starting at chunk 1.
    external_rates:
        Optional explicit per-chunk external arrival vector; overrides the
        (``external_rate``, ``alpha``) split.
    """
    p = np.asarray(transition_matrix, dtype=float)
    if external_rates is None:
        ext = external_arrival_vector(p.shape[0], external_rate, alpha)
    else:
        ext = np.asarray(external_rates, dtype=float)
    traffic = solve_traffic_equations(p, ext)

    mu = model.service_rate
    t0 = model.chunk_duration
    servers = np.zeros(p.shape[0], dtype=int)
    in_system = np.zeros(p.shape[0], dtype=float)
    for i, lam in enumerate(traffic.arrival_rates):
        m = required_servers(float(lam), mu, t0)
        servers[i] = m
        if m > 0 and lam > 0:
            in_system[i] = mmm_expected_number_in_system(m, lam / mu)
    return ChannelCapacityResult(
        model=model, traffic=traffic, servers=servers, expected_in_system=in_system
    )
