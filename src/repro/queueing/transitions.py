"""Chunk-transfer probability matrices P^(c) (paper Section IV-A).

Entry ``P[i, j]`` is the probability that a user who just finished
downloading chunk ``i`` moves on to download chunk ``j``; the row deficit
``1 - sum_j P[i, j]`` is the probability of leaving the channel after
chunk ``i``. Rows must therefore be substochastic, and for the open Jackson
network to possess an equilibrium every user must eventually leave (the
spectral radius of P must be < 1).

This module provides parametric builders for the behaviours the evaluation
uses (sequential viewing, VCR jumps, mixtures) and an empirical estimator
that recovers P from observed per-interval transition counts, which is what
the CloudMedia tracker reports to the controller (Section V-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "validate_transition_matrix",
    "leave_probabilities",
    "sequential_matrix",
    "uniform_jump_matrix",
    "skip_forward_matrix",
    "mixture_matrix",
    "empirical_transition_matrix",
    "TransitionModel",
]

_TOL = 1e-9


def validate_transition_matrix(matrix: np.ndarray, *, tol: float = _TOL) -> np.ndarray:
    """Validate and return P as a float ndarray.

    Checks: square, entries in [0, 1], rows substochastic, and spectral
    radius < 1 (every viewer eventually departs).
    """
    p = np.asarray(matrix, dtype=float)
    if p.ndim != 2 or p.shape[0] != p.shape[1]:
        raise ValueError(f"transition matrix must be square, got shape {p.shape}")
    if np.any(p < -tol) or np.any(p > 1 + tol):
        raise ValueError("transition probabilities must lie in [0, 1]")
    row_sums = p.sum(axis=1)
    if np.any(row_sums > 1 + tol):
        bad = int(np.argmax(row_sums))
        raise ValueError(
            f"row {bad} sums to {row_sums[bad]:.6f} > 1; rows must be substochastic"
        )
    if p.size:
        # The spectral radius is bounded by the inf-norm; when every
        # absolute row sum is safely below 1 the eigenvalue solve is
        # conclusive without being computed (the common case: empirical
        # matrices always carry departure mass).
        bound = float(np.max(np.abs(p).sum(axis=1)))
        if bound >= 1 - 1e-12:
            radius = float(np.max(np.abs(np.linalg.eigvals(p))))
            if radius >= 1 - 1e-12:
                raise ValueError(
                    f"spectral radius {radius:.6f} >= 1: users would "
                    "never depart"
                )
    return np.clip(p, 0.0, 1.0)


def leave_probabilities(matrix: np.ndarray) -> np.ndarray:
    """Per-chunk departure probabilities ``1 - sum_j P[i, j]``."""
    p = np.asarray(matrix, dtype=float)
    return np.clip(1.0 - p.sum(axis=1), 0.0, 1.0)


def sequential_matrix(num_chunks: int, continue_prob: float = 0.9) -> np.ndarray:
    """Pure sequential viewing: after chunk i, watch i+1 w.p. ``continue_prob``.

    The last chunk always departs. This is the canonical "no VCR operations"
    behaviour.
    """
    if num_chunks <= 0:
        raise ValueError("need at least one chunk")
    if not 0.0 <= continue_prob < 1.0:
        raise ValueError(f"continue_prob must be in [0, 1), got {continue_prob}")
    p = np.zeros((num_chunks, num_chunks), dtype=float)
    for i in range(num_chunks - 1):
        p[i, i + 1] = continue_prob
    return p


def uniform_jump_matrix(
    num_chunks: int,
    continue_prob: float = 0.8,
    jump_prob: float = 0.1,
) -> np.ndarray:
    """Sequential viewing with uniform VCR jumps.

    After chunk i a user continues to i+1 w.p. ``continue_prob``, jumps to a
    uniformly random *other* chunk w.p. ``jump_prob``, and departs with the
    remaining probability. This matches the paper's arrival model where
    (1 - alpha) of users start at a uniformly random chunk, applied to
    mid-session seeks.
    """
    if num_chunks <= 0:
        raise ValueError("need at least one chunk")
    if continue_prob < 0 or jump_prob < 0 or continue_prob + jump_prob >= 1.0:
        raise ValueError("need continue_prob + jump_prob < 1 for departures to occur")
    p = np.zeros((num_chunks, num_chunks), dtype=float)
    if num_chunks == 1:
        return p
    for i in range(num_chunks):
        others = [j for j in range(num_chunks) if j != i]
        for j in others:
            p[i, j] += jump_prob / len(others)
        if i + 1 < num_chunks:
            p[i, i + 1] += continue_prob
    return p


def skip_forward_matrix(
    num_chunks: int,
    continue_prob: float = 0.75,
    skip_prob: float = 0.15,
    skip_decay: float = 0.5,
) -> np.ndarray:
    """Sequential viewing with geometric forward skips.

    A skipping user lands on chunk i+1+d where d >= 1 has a geometric
    distribution with ratio ``skip_decay`` (truncated at the video end, the
    truncated mass departing). Models impatient forward seeking.
    """
    if num_chunks <= 0:
        raise ValueError("need at least one chunk")
    if continue_prob < 0 or skip_prob < 0 or continue_prob + skip_prob >= 1.0:
        raise ValueError("need continue_prob + skip_prob < 1")
    if not 0.0 < skip_decay < 1.0:
        raise ValueError("skip_decay must be in (0, 1)")
    p = np.zeros((num_chunks, num_chunks), dtype=float)
    for i in range(num_chunks - 1):
        p[i, i + 1] += continue_prob
        # Distribute skip mass geometrically over chunks i+2, ..., end.
        targets = range(i + 2, num_chunks)
        weights = np.array([skip_decay**d for d in range(1, len(list(targets)) + 1)])
        if weights.size:
            weights = weights / weights.sum()
            for j, w in zip(range(i + 2, num_chunks), weights):
                p[i, j] += skip_prob * w
    return p


def mixture_matrix(
    matrices: Sequence[np.ndarray], weights: Sequence[float]
) -> np.ndarray:
    """Convex mixture of behaviour matrices (e.g. 80% sequential, 20% VCR)."""
    if len(matrices) != len(weights) or not matrices:
        raise ValueError("need equally many matrices and weights, at least one")
    w = np.asarray(weights, dtype=float)
    if np.any(w < 0) or not np.isclose(w.sum(), 1.0):
        raise ValueError("weights must be nonnegative and sum to 1")
    shape = np.asarray(matrices[0]).shape
    mixed = np.zeros(shape, dtype=float)
    for mat, weight in zip(matrices, w):
        arr = np.asarray(mat, dtype=float)
        if arr.shape != shape:
            raise ValueError("all matrices in a mixture must share a shape")
        mixed += weight * arr
    return mixed


def empirical_transition_matrix(
    transition_counts: np.ndarray,
    departure_counts: np.ndarray,
    *,
    prior: Optional[np.ndarray] = None,
    prior_strength: float = 1.0,
) -> np.ndarray:
    """Estimate P from observed counts (what the tracker reports hourly).

    ``transition_counts[i, j]`` is the number of users observed moving from
    chunk i to chunk j during the interval; ``departure_counts[i]`` the
    number departing after chunk i. Rows with no observations fall back to
    the ``prior`` matrix (smoothed by ``prior_strength`` pseudo-counts when
    observations exist), so a freshly deployed channel still has a usable
    viewing model.
    """
    counts = np.asarray(transition_counts, dtype=float)
    departures = np.asarray(departure_counts, dtype=float)
    if counts.ndim != 2 or counts.shape[0] != counts.shape[1]:
        raise ValueError("transition_counts must be square")
    if departures.shape != (counts.shape[0],):
        raise ValueError("departure_counts must have one entry per chunk")
    if np.any(counts < 0) or np.any(departures < 0):
        raise ValueError("counts must be nonnegative")

    n = counts.shape[0]
    if prior is None:
        prior = sequential_matrix(n, continue_prob=0.9)
    prior = np.asarray(prior, dtype=float)
    if prior.shape != counts.shape:
        raise ValueError("prior must match transition_counts shape")

    # Blend observed frequencies with the prior row (including its
    # departure mass, which appears as a row deficit); rows with no
    # observations fall back to the prior verbatim.  Vectorized over
    # rows — elementwise-identical to the per-row formula.
    row_totals = counts.sum(axis=1) + departures
    denom = row_totals + prior_strength
    with np.errstate(divide="ignore", invalid="ignore"):
        blended = (counts + prior_strength * prior) / denom[:, None]
    p = np.where((row_totals > 0)[:, None], blended, prior)
    return validate_transition_matrix(p)


@dataclass(frozen=True)
class TransitionModel:
    """A named viewing-behaviour model bundling P with its parameters."""

    name: str
    matrix: np.ndarray

    def __post_init__(self) -> None:
        validate_transition_matrix(self.matrix)

    @property
    def num_chunks(self) -> int:
        return int(self.matrix.shape[0])

    def departure_probs(self) -> np.ndarray:
        return leave_probabilities(self.matrix)

    @classmethod
    def sequential(cls, num_chunks: int, continue_prob: float = 0.9) -> "TransitionModel":
        return cls("sequential", sequential_matrix(num_chunks, continue_prob))

    @classmethod
    def vcr(
        cls,
        num_chunks: int,
        continue_prob: float = 0.8,
        jump_prob: float = 0.1,
    ) -> "TransitionModel":
        return cls("vcr", uniform_jump_matrix(num_chunks, continue_prob, jump_prob))
