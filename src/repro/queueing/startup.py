"""Start-up delay analysis.

The paper's related work (ref [17]) highlights start-up delay as the key
user-facing metric of VoD systems; in the CloudMedia model the start-up
delay of a session is the sojourn time of its *first* chunk retrieval:
wait for a free server plus the download itself. This module derives its
distribution and moments from the same M/M/m machinery as the capacity
solver, so a provider can size capacity against a start-up-delay SLO in
addition to the smooth-playback target.

For an M/M/m queue (FIFO) the waiting time of an arriving job is 0 with
probability 1 - C(m, a) and conditionally Exp(m mu - lambda) otherwise;
the start-up delay adds an independent Exp(mu) service time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.queueing.capacity import CapacityModel, ChannelCapacityResult
from repro.queueing.erlang import erlang_c

__all__ = ["StartupDelayModel", "channel_startup_delay"]


@dataclass(frozen=True)
class StartupDelayModel:
    """Start-up delay distribution for one chunk queue.

    Attributes
    ----------
    servers / arrival_rate / service_rate:
        The M/M/m queue parameters.
    wait_probability:
        Erlang-C probability an arriving viewer must queue for a server.
    """

    servers: int
    arrival_rate: float
    service_rate: float
    wait_probability: float

    @property
    def drain_rate(self) -> float:
        """m mu - lambda: the rate at which the waiting line clears."""
        return self.servers * self.service_rate - self.arrival_rate

    @property
    def mean(self) -> float:
        """E[startup] = C/(m mu - lambda) + 1/mu."""
        wait = (
            self.wait_probability / self.drain_rate if self.drain_rate > 0 else 0.0
        )
        return wait + 1.0 / self.service_rate

    def survival(self, t: float) -> float:
        """P(startup delay > t): numerically integrated W + Exp(mu).

        The waiting time W is a mixture: an atom at 0 with mass
        ``1 - C`` and an exponential tail. The sum with the independent
        Exp(mu) download admits a closed form, handled per case to stay
        stable when the two rates coincide.
        """
        if t < 0:
            return 1.0
        mu = self.service_rate
        c = self.wait_probability
        theta = self.drain_rate
        no_wait = (1.0 - c) * math.exp(-mu * t)
        if c == 0.0:
            return no_wait
        if theta <= 0:
            return 1.0  # unstable queue: delay diverges
        if abs(theta - mu) < 1e-12 * mu:
            # Sum of two iid exponentials: Erlang-2 tail.
            waited = c * math.exp(-mu * t) * (1.0 + mu * t)
        else:
            waited = c * (
                mu * math.exp(-theta * t) - theta * math.exp(-mu * t)
            ) / (mu - theta)
        return no_wait + waited

    def quantile(self, p: float, *, tol: float = 1e-6) -> float:
        """The p-quantile of the start-up delay (bisection on survival)."""
        if not 0.0 < p < 1.0:
            raise ValueError("p must be in (0, 1)")
        target = 1.0 - p
        lo, hi = 0.0, 10.0 / self.service_rate
        while self.survival(hi) > target:
            hi *= 2.0
            if hi > 1e12:
                raise ValueError("quantile did not converge (unstable queue?)")
        while hi - lo > tol * max(1.0, hi):
            mid = 0.5 * (lo + hi)
            if self.survival(mid) > target:
                lo = mid
            else:
                hi = mid
        return 0.5 * (lo + hi)


def channel_startup_delay(
    capacity: ChannelCapacityResult, *, alpha_weighted: bool = True
) -> StartupDelayModel:
    """Start-up delay of a channel under a solved capacity plan.

    By default uses the first chunk's queue (where a fraction alpha of
    sessions start); set ``alpha_weighted=False`` to get the
    population-weighted average queue instead.
    """
    model: CapacityModel = capacity.model
    mu = model.service_rate
    if alpha_weighted:
        lam = float(capacity.traffic.arrival_rates[0])
        m = int(capacity.servers[0])
    else:
        weights = capacity.traffic.arrival_rates
        total = float(weights.sum())
        if total == 0:
            lam, m = 0.0, max(1, int(capacity.servers.max(initial=1)))
        else:
            # Weighted-average parameters; a simple aggregate proxy.
            lam = float((weights * weights).sum() / total)
            m = max(1, int(round(float((weights * capacity.servers).sum() / total))))
    if m <= 0:
        m = 1
    offered = lam / mu
    wait_prob = (
        0.0 if lam == 0 else erlang_c(m, offered, saturated=True)
    )
    return StartupDelayModel(
        servers=m, arrival_rate=lam, service_rate=mu, wait_probability=wait_prob
    )
