"""CloudMedia reproduction: cloud provisioning for Video-on-Demand.

A from-scratch Python implementation of

    Wu, Wu, Li, Qiu, Lau — "CloudMedia: When Cloud on Demand Meets Video
    on Demand", ICDCS 2011.

Packages
--------
``repro.queueing``
    Jackson network / M/M/m capacity analysis (Section IV).
``repro.p2p``
    Chunk ownership propagation and rarest-first peer contribution
    (Section IV-C).
``repro.core``
    Demand estimation, storage/VM rental optimizers, and the dynamic
    provisioning controller (Section V).
``repro.cloud``
    The IaaS cloud substrate: clusters, VM lifecycle, schedulers, broker,
    SLA negotiation, billing (Section III-A).
``repro.vod``
    The multi-channel VoD substrate: users, tracker, overlay, delivery
    models, fluid and event-driven simulators (Sections III-B, VI).
``repro.workload``
    Synthetic workload generation matching the paper's trace (Section
    VI-A).
``repro.sim``
    The deterministic event-driven simulation kernel (clock, event queue,
    seeded RNG streams) under the VoD and cloud substrates.
``repro.geo``
    Geo-distributed extension: regions, latency/egress-priced topology and
    the multi-region allocation optimizers (Section VII future work).
``repro.experiments``
    Paper parameter presets, the closed-loop engine, per-figure series
    generators, the scenario registry and the parallel sweep orchestrator
    (Section VI; ``repro scenarios`` / ``repro sweep``).
``repro.api``
    The one session-style surface over every engine: ``EngineConfig`` ->
    ``open_run`` -> a ``Run`` handle that streams per-epoch reports,
    checkpoints mid-run and resumes byte-identically (docs/api.md).
``repro.service``
    The async multi-run host over ``repro.api``: concurrent runs behind
    one HTTP port with SSE epoch streams, checkpoint persistence, crash
    recovery and a live dashboard (``repro serve`` / ``repro submit``;
    docs/service.md).
``repro.analysis``
    The determinism lint engine behind ``repro lint`` (rule pack +
    baseline gating; docs/static-analysis.md).

Quickstart
----------
>>> from repro.api import open_run
>>> from repro.experiments import small_scenario
>>> with open_run(small_scenario("p2p", horizon_hours=2)) as run:
...     result = run.result()
>>> 0.0 <= result.average_quality <= 1.0
True
"""

__version__ = "1.3.0"

__all__ = ["__version__"]
