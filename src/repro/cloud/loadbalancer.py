"""VM load balancing (paper Section VI-A).

The paper's cloud management system features "real-time performance
monitoring and load balancing among VMs". This module implements the
serving-side counterpart of the packing plan: map incoming chunk-request
load onto the running VMs of a cluster so that

* requests for a chunk go to VMs assigned that chunk (port-forwarding
  path in the paper's Fig 3), and
* load is spread evenly (least-loaded first), with a rebalance operation
  that moves assignments from hot to cold VMs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.vm import VM, VMState

__all__ = ["LoadBalancer", "LoadReport"]

ChunkKey = Hashable


@dataclass(frozen=True)
class LoadReport:
    """Snapshot of per-VM load after a dispatch round."""

    per_vm_load: Dict[int, float]  # vm_id -> bytes/second served
    dropped: float  # demand (bytes/second) that no VM could take

    @property
    def total_load(self) -> float:
        return float(sum(self.per_vm_load.values()))

    @property
    def max_load(self) -> float:
        return max(self.per_vm_load.values(), default=0.0)

    @property
    def imbalance(self) -> float:
        """Coefficient of variation of VM loads (0 = perfectly balanced)."""
        loads = np.asarray(list(self.per_vm_load.values()), dtype=float)
        if loads.size == 0 or loads.mean() == 0:
            return 0.0
        return float(loads.std() / loads.mean())


class LoadBalancer:
    """Dispatches per-chunk bandwidth demand onto running VMs.

    VMs declare which chunks they serve through their ``assignment`` maps
    (fractions of the VM's bandwidth per chunk, as produced by the
    packer). Demand for a chunk is split across its assigned VMs
    least-loaded-first, bounded by each VM's remaining headroom for that
    chunk (fraction x bandwidth).
    """

    def __init__(self, vm_bandwidth: float) -> None:
        if vm_bandwidth <= 0:
            raise ValueError("VM bandwidth must be > 0")
        self.vm_bandwidth = vm_bandwidth

    # ------------------------------------------------------------------
    def dispatch(
        self,
        vms: Sequence[VM],
        demand: Mapping[ChunkKey, float],
    ) -> LoadReport:
        """Split per-chunk demand (bytes/second) across the running VMs.

        Returns the resulting per-VM loads; demand for chunks no running
        VM serves (or beyond assigned headroom) is reported as dropped.
        """
        running = [vm for vm in vms if vm.state is VMState.RUNNING]
        loads: Dict[int, float] = {vm.vm_id: 0.0 for vm in running}
        # Per-VM, per-chunk remaining headroom in bytes/second.
        headroom: Dict[Tuple[int, ChunkKey], float] = {}
        serving: Dict[ChunkKey, List[VM]] = {}
        for vm in running:
            for chunk, fraction in vm.assignment.items():
                headroom[(vm.vm_id, chunk)] = fraction * self.vm_bandwidth
                serving.setdefault(chunk, []).append(vm)

        dropped = 0.0
        for chunk in sorted(demand, key=repr):
            need = float(demand[chunk])
            if need < 0:
                raise ValueError(f"negative demand for chunk {chunk!r}")
            candidates = serving.get(chunk, [])
            # Least-loaded first; stable on vm_id for determinism.
            for vm in sorted(candidates, key=lambda v: (loads[v.vm_id], v.vm_id)):
                if need <= 1e-12:
                    break
                cap = headroom[(vm.vm_id, chunk)]
                spare_vm = self.vm_bandwidth - loads[vm.vm_id]
                take = min(need, cap, max(0.0, spare_vm))
                if take <= 0:
                    continue
                loads[vm.vm_id] += take
                headroom[(vm.vm_id, chunk)] -= take
                need -= take
            dropped += max(0.0, need)
        return LoadReport(per_vm_load=loads, dropped=dropped)

    # ------------------------------------------------------------------
    def rebalance(self, vms: Sequence[VM]) -> int:
        """Even out chunk-share assignments across running VMs.

        Moves shares from over-assigned VMs (total fraction > 1) onto VMs
        with spare assignment capacity, preferring moves that keep a
        chunk's shares on as few VMs as possible. Returns the number of
        share moves performed.
        """
        running = [vm for vm in vms if vm.state is VMState.RUNNING]
        moves = 0
        overloaded = [vm for vm in running if vm.assigned_fraction() > 1.0 + 1e-9]
        for vm in overloaded:
            excess = vm.assigned_fraction() - 1.0
            # Move the smallest shares first (cheapest to relocate).
            for chunk, fraction in sorted(
                vm.assignment.items(), key=lambda kv: kv[1]
            ):
                if excess <= 1e-9:
                    break
                move = min(fraction, excess)
                target = self._find_target(running, vm, move)
                if target is None:
                    break
                target.assignment[chunk] = (
                    target.assignment.get(chunk, 0.0) + move
                )
                if fraction - move <= 1e-12:
                    del vm.assignment[chunk]
                else:
                    vm.assignment[chunk] = fraction - move
                excess -= move
                moves += 1
        return moves

    @staticmethod
    def _find_target(
        running: Sequence[VM], source: VM, needed: float
    ) -> Optional[VM]:
        candidates = [
            vm
            for vm in running
            if vm is not source and vm.assigned_fraction() + needed <= 1.0 + 1e-9
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda v: (v.assigned_fraction(), v.vm_id))
