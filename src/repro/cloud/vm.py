"""VM lifecycle state machine and per-cluster pools (paper Section VI-C).

The paper measures ~25 s to boot a Xen VM and "even less" to shut one down,
with launches proceeding in parallel. VMs here are pre-deployed in the OFF
state (as in the paper) and transition

    OFF -> BOOTING -> RUNNING -> SHUTTING_DOWN -> OFF

under control of the VM scheduler. Pools can run attached to a
:class:`repro.sim.Simulator` (boot latency becomes simulated time) or in
*instant* mode for the analytical experiments that do not care about the
seconds-scale transient.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.cloud.cluster import VirtualClusterSpec
from repro.sim.engine import Simulator

__all__ = ["VMState", "VM", "VMPool", "DEFAULT_BOOT_SECONDS",
           "DEFAULT_SHUTDOWN_SECONDS"]

DEFAULT_BOOT_SECONDS = 25.0  # measured in the paper, Section VI-C
DEFAULT_SHUTDOWN_SECONDS = 10.0  # "even less time to shut it down"


class VMState(enum.Enum):
    """Lifecycle states of a pre-deployed VM."""

    OFF = "off"
    BOOTING = "booting"
    RUNNING = "running"
    SHUTTING_DOWN = "shutting_down"


@dataclass
class VM:
    """One virtual machine instance.

    The ``assignment`` field records which (channel, chunk) demands the VM
    currently serves, as fractional bandwidth shares summing to <= 1; the
    VM packer (:mod:`repro.core.packing`) fills it.
    """

    vm_id: int
    cluster: str
    state: VMState = VMState.OFF
    booted_at: Optional[float] = None
    assignment: Dict[object, float] = field(default_factory=dict)

    @property
    def is_usable(self) -> bool:
        return self.state is VMState.RUNNING

    def clear_assignment(self) -> None:
        self.assignment.clear()

    def assigned_fraction(self) -> float:
        return float(sum(self.assignment.values()))


class VMPool:
    """All VMs of one virtual cluster, with timed state transitions.

    Parameters
    ----------
    spec:
        The cluster description (capacity, bandwidth, price).
    simulator:
        Optional discrete-event simulator; when given, boot/shutdown take
        simulated time, otherwise transitions complete immediately.
    boot_seconds / shutdown_seconds:
        Transition latencies used in simulator mode.
    """

    _ids = itertools.count(1)

    def __init__(
        self,
        spec: VirtualClusterSpec,
        simulator: Optional[Simulator] = None,
        *,
        boot_seconds: float = DEFAULT_BOOT_SECONDS,
        shutdown_seconds: float = DEFAULT_SHUTDOWN_SECONDS,
        boot_failure_rate: float = 0.0,
        rng: Optional["np.random.Generator"] = None,
    ) -> None:
        """``boot_failure_rate`` injects launch failures: with that
        probability a booting VM lands back in OFF instead of RUNNING
        (Xen launches do occasionally fail; the scheduler's next
        ``scale_to`` retries automatically). Requires ``rng`` when > 0
        for deterministic experiments."""
        if boot_seconds < 0 or shutdown_seconds < 0:
            raise ValueError("latencies must be nonnegative")
        if not 0.0 <= boot_failure_rate < 1.0:
            raise ValueError("boot failure rate must be in [0, 1)")
        self.spec = spec
        self.simulator = simulator
        self.boot_seconds = boot_seconds
        self.shutdown_seconds = shutdown_seconds
        self.boot_failure_rate = boot_failure_rate
        self._rng = rng
        self.vms: List[VM] = [
            VM(vm_id=next(self._ids), cluster=spec.name) for _ in range(spec.max_vms)
        ]
        self.launches = 0
        self.shutdowns = 0
        self.boot_failures = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def count(self, state: VMState) -> int:
        return sum(1 for vm in self.vms if vm.state is state)

    @property
    def running(self) -> int:
        return self.count(VMState.RUNNING)

    @property
    def booting(self) -> int:
        return self.count(VMState.BOOTING)

    @property
    def active(self) -> int:
        """VMs that are or will shortly be serving (running + booting)."""
        return self.running + self.booting

    @property
    def available_to_launch(self) -> int:
        return self.count(VMState.OFF)

    def running_vms(self) -> List[VM]:
        return [vm for vm in self.vms if vm.state is VMState.RUNNING]

    def running_bandwidth(self) -> float:
        """Aggregate bandwidth of RUNNING VMs, bytes/second."""
        return self.running * self.spec.vm_bandwidth

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _now(self) -> float:
        return self.simulator.now if self.simulator is not None else 0.0

    def _boot_fails(self) -> bool:
        if self.boot_failure_rate <= 0.0:
            return False
        if self._rng is None:
            raise ValueError("boot_failure_rate > 0 requires an rng")
        return bool(self._rng.random() < self.boot_failure_rate)

    def launch(self, count: int) -> int:
        """Start booting up to ``count`` OFF VMs; returns how many started.

        In instant mode the VMs are RUNNING on return. In simulator mode
        they boot in parallel and become RUNNING after ``boot_seconds``.
        """
        if count < 0:
            raise ValueError(f"launch count must be >= 0, got {count}")
        started = 0
        for vm in self.vms:
            if started >= count:
                break
            if vm.state is not VMState.OFF:
                continue
            started += 1
            self.launches += 1
            if self.simulator is None:
                if self._boot_fails():
                    self.boot_failures += 1
                else:
                    vm.state = VMState.RUNNING
                    vm.booted_at = self._now()
            else:
                vm.state = VMState.BOOTING
                self.simulator.schedule_in(
                    self.boot_seconds,
                    self._make_boot_completion(vm),
                    label=f"vm-boot:{vm.vm_id}",
                )
        return started

    def _make_boot_completion(self, vm: VM):
        def complete() -> None:
            if vm.state is VMState.BOOTING:
                if self._boot_fails():
                    self.boot_failures += 1
                    vm.state = VMState.OFF
                else:
                    vm.state = VMState.RUNNING
                    vm.booted_at = self._now()

        return complete

    def shutdown(self, count: int) -> int:
        """Shut down up to ``count`` VMs, preferring BOOTING over RUNNING.

        (A booting VM has not served anyone yet, so cancelling it first
        minimizes disruption.) Returns how many shutdowns were initiated.
        """
        if count < 0:
            raise ValueError(f"shutdown count must be >= 0, got {count}")
        stopped = 0
        # Booting VMs are cheapest to reclaim.
        for state in (VMState.BOOTING, VMState.RUNNING):
            for vm in self.vms:
                if stopped >= count:
                    return stopped
                if vm.state is not state:
                    continue
                stopped += 1
                self.shutdowns += 1
                vm.clear_assignment()
                if self.simulator is None:
                    vm.state = VMState.OFF
                else:
                    vm.state = VMState.SHUTTING_DOWN
                    self.simulator.schedule_in(
                        self.shutdown_seconds,
                        self._make_shutdown_completion(vm),
                        label=f"vm-stop:{vm.vm_id}",
                    )
        return stopped

    def _make_shutdown_completion(self, vm: VM):
        def complete() -> None:
            if vm.state is VMState.SHUTTING_DOWN:
                vm.state = VMState.OFF
                vm.booted_at = None

        return complete

    def scale_to(self, target: int) -> int:
        """Launch or shut down VMs so that ``active`` approaches ``target``.

        Returns the signed change initiated (positive = launches).
        ``target`` is clamped to the cluster capacity.
        """
        if target < 0:
            raise ValueError(f"target must be >= 0, got {target}")
        target = min(target, self.spec.max_vms)
        diff = target - self.active
        if diff > 0:
            return self.launch(diff)
        if diff < 0:
            return -self.shutdown(-diff)
        return 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VMPool({self.spec.name!r}, running={self.running}, "
            f"booting={self.booting}, off={self.available_to_launch})"
        )
