"""Broker, request monitor and SLA negotiator (paper Section III-A, Fig. 1).

The consumer (the VoD provider's controller) talks to the cloud only through
the broker:

1. the broker forwards a :class:`ResourceRequest` to the request monitor;
2. the request monitor hands it to the SLA negotiator;
3. the negotiator checks prices/availability against the provider's policy
   and either returns an :class:`SLAAgreement` or rejects the request;
4. accepted agreements are applied through the facility's schedulers.

This mirrors the paper's separation between *deciding* an allocation (done
by the consumer, Section V) and *applying* it (done by the provider).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Mapping, Optional, Tuple

from repro.cloud.scheduler import CloudFacility

__all__ = ["ResourceRequest", "SLAAgreement", "SLANegotiator", "RequestMonitor",
           "Broker", "NegotiationError"]

ChunkKey = Hashable


class NegotiationError(RuntimeError):
    """Raised when the SLA negotiator rejects a request."""


@dataclass(frozen=True)
class ResourceRequest:
    """A consumer's change request for the next charging interval.

    Attributes
    ----------
    vm_targets:
        Desired number of active VMs per virtual cluster.
    storage_placement:
        Desired chunk placement ``{chunk: (nfs_cluster, size_bytes)}``;
        ``None`` keeps the current placement.
    max_hourly_budget:
        Optional consumer-side cap; the negotiator rejects agreements whose
        quoted VM price rate exceeds it.
    """

    vm_targets: Mapping[str, int]
    storage_placement: Optional[Mapping[ChunkKey, Tuple[str, float]]] = None
    max_hourly_budget: Optional[float] = None


@dataclass(frozen=True)
class SLAAgreement:
    """A negotiated agreement: the granted allocation and its price rate."""

    request_id: int
    vm_grants: Dict[str, int]
    hourly_vm_cost: float
    hourly_storage_cost: float
    storage_accepted: bool

    @property
    def hourly_cost(self) -> float:
        return self.hourly_vm_cost + self.hourly_storage_cost


class SLANegotiator:
    """Validates requests against prices and availability."""

    def __init__(self, facility: CloudFacility) -> None:
        self.facility = facility

    def quote(self, request: ResourceRequest) -> Tuple[Dict[str, int], float, float]:
        """Clamp the request to availability and price it.

        Returns (granted VM counts, hourly VM cost, hourly storage cost).
        Unknown clusters raise ``NegotiationError``.
        """
        grants: Dict[str, int] = {}
        vm_cost = 0.0
        for name, target in request.vm_targets.items():
            spec = self.facility.vm_specs.get(name)
            if spec is None:
                raise NegotiationError(f"no such virtual cluster: {name!r}")
            if target < 0:
                raise NegotiationError(f"negative VM target for {name!r}")
            granted = min(int(target), spec.max_vms)
            grants[name] = granted
            vm_cost += granted * spec.price_per_hour

        storage_cost = 0.0
        if request.storage_placement is not None:
            usage: Dict[str, float] = {}
            for chunk, (cluster, size) in request.storage_placement.items():
                spec = self.facility.nfs_specs.get(cluster)
                if spec is None:
                    raise NegotiationError(f"no such NFS cluster: {cluster!r}")
                if size < 0:
                    raise NegotiationError(f"negative size for chunk {chunk!r}")
                usage[cluster] = usage.get(cluster, 0.0) + size
            for cluster, total in usage.items():
                spec = self.facility.nfs_specs[cluster]
                if total > spec.capacity_bytes + 1e-6:
                    raise NegotiationError(
                        f"placement exceeds capacity of {cluster!r}"
                    )
                storage_cost += total * spec.price_per_byte_hour
        return grants, vm_cost, storage_cost

    def negotiate(self, request_id: int, request: ResourceRequest) -> SLAAgreement:
        """Produce an agreement or raise :class:`NegotiationError`."""
        grants, vm_cost, storage_cost = self.quote(request)
        if (
            request.max_hourly_budget is not None
            and vm_cost + storage_cost > request.max_hourly_budget + 1e-9
        ):
            raise NegotiationError(
                f"quoted rate ${vm_cost + storage_cost:.2f}/h exceeds consumer "
                f"budget ${request.max_hourly_budget:.2f}/h"
            )
        return SLAAgreement(
            request_id=request_id,
            vm_grants=grants,
            hourly_vm_cost=vm_cost,
            hourly_storage_cost=storage_cost,
            storage_accepted=request.storage_placement is not None,
        )


class RequestMonitor:
    """Listens for consumer requests and forwards them to the negotiator."""

    def __init__(self, negotiator: SLANegotiator) -> None:
        self.negotiator = negotiator
        self._ids = itertools.count(1)
        self.log: List[Tuple[int, bool, str]] = []  # (id, accepted, detail)

    def submit(self, request: ResourceRequest) -> SLAAgreement:
        request_id = next(self._ids)
        try:
            agreement = self.negotiator.negotiate(request_id, request)
        except NegotiationError as exc:
            self.log.append((request_id, False, str(exc)))
            raise
        self.log.append((request_id, True, f"${agreement.hourly_cost:.4f}/h"))
        return agreement


@dataclass
class Broker:
    """The consumer-facing interface: submit a request, get it applied.

    On acceptance the broker immediately applies the granted allocation via
    the facility's schedulers (VM targets and, when present, the storage
    placement), and returns the agreement.
    """

    facility: CloudFacility
    monitor: RequestMonitor = field(init=False)
    agreements: List[SLAAgreement] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.monitor = RequestMonitor(SLANegotiator(self.facility))

    def request(self, request: ResourceRequest) -> SLAAgreement:
        """Submit, negotiate and apply a resource request."""
        agreement = self.monitor.submit(request)
        self.facility.apply_vm_targets(agreement.vm_grants)
        if request.storage_placement is not None:
            self.facility.apply_storage_placement(dict(request.storage_placement))
        self.agreements.append(agreement)
        return agreement

    @property
    def last_agreement(self) -> Optional[SLAAgreement]:
        return self.agreements[-1] if self.agreements else None
