"""Cluster descriptions (paper Tables II and III).

A *virtual cluster* groups VMs of one configuration level; an *NFS cluster*
groups storage servers of one performance level. Utilities are the
performance factors u~_v / u_f the optimizers maximize; prices follow the
per-time-unit charging model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["VirtualClusterSpec", "NFSClusterSpec"]


@dataclass(frozen=True)
class VirtualClusterSpec:
    """One virtual (VM) cluster.

    Attributes
    ----------
    name:
        Human-readable cluster label, e.g. ``"standard"``.
    utility:
        Performance factor u~_v (larger is better).
    price_per_hour:
        Rental price p~_v of one VM for one hour, dollars.
    max_vms:
        Maximal number of VMs N_v the cluster can provision.
    vm_bandwidth:
        Guaranteed bandwidth R per VM, bytes/second.
    memory_mb, cpu_mhz, disk_gb:
        Descriptive hardware attributes (Table II); not used by the
        optimizers but reported by the monitor.
    """

    name: str
    utility: float
    price_per_hour: float
    max_vms: int
    vm_bandwidth: float
    memory_mb: int = 128
    cpu_mhz: int = 500
    disk_gb: int = 5

    def __post_init__(self) -> None:
        if self.utility <= 0:
            raise ValueError(f"utility must be > 0, got {self.utility}")
        if self.price_per_hour <= 0:
            raise ValueError(f"price must be > 0, got {self.price_per_hour}")
        if self.max_vms < 0:
            raise ValueError(f"max_vms must be >= 0, got {self.max_vms}")
        if self.vm_bandwidth <= 0:
            raise ValueError(f"vm_bandwidth must be > 0, got {self.vm_bandwidth}")

    @property
    def marginal_utility_per_dollar(self) -> float:
        """u~_v / p~_v, the greedy heuristic's sort key."""
        return self.utility / self.price_per_hour


@dataclass(frozen=True)
class NFSClusterSpec:
    """One NFS storage cluster.

    Attributes
    ----------
    name:
        Human-readable cluster label.
    utility:
        Performance factor u_f (larger is better, e.g. faster disks).
    price_per_gb_hour:
        Storage price per gigabyte per hour, dollars (Table III pricing).
    capacity_bytes:
        Total storage capacity S_f in bytes.
    rotation_rpm:
        Descriptive disk speed (Table III).
    """

    name: str
    utility: float
    price_per_gb_hour: float
    capacity_bytes: float
    rotation_rpm: int = 7200

    def __post_init__(self) -> None:
        if self.utility <= 0:
            raise ValueError(f"utility must be > 0, got {self.utility}")
        if self.price_per_gb_hour <= 0:
            raise ValueError(f"price must be > 0, got {self.price_per_gb_hour}")
        if self.capacity_bytes < 0:
            raise ValueError(f"capacity must be >= 0, got {self.capacity_bytes}")

    @property
    def price_per_byte_hour(self) -> float:
        """p_f converted to dollars per byte per hour."""
        return self.price_per_gb_hour / float(1024**3)

    @property
    def marginal_utility_per_dollar(self) -> float:
        """u_f / p_f, the greedy heuristic's sort key."""
        return self.utility / self.price_per_gb_hour

    def chunk_slots(self, chunk_size_bytes: float) -> int:
        """How many chunks of the given size fit: floor(S_f / (r*T0))."""
        if chunk_size_bytes <= 0:
            raise ValueError("chunk size must be > 0")
        return int(self.capacity_bytes // chunk_size_bytes)
