"""Usage metering and cost accounting (paper Section III-A charging model).

Three charges are levied on the consumer, all per unit time:

* VM rental — each active VM of cluster v costs p~_v per hour;
* NFS storage — each stored byte on cluster f costs p_f per hour;
* cross-region egress — the geo extension's per-GB transfer pricing,
  metered as a piecewise-constant dollars-per-hour rate (each remote
  VM-allocation streams at the VM bandwidth, so the controller reports
  the plan's aggregate egress rate; intra-region traffic is free).

The meter integrates piecewise-constant usage over simulated time, so
changing the allocation mid-hour bills each sub-interval at its own level,
matching the fine-grained usage-time charging the paper assumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.cloud.cluster import NFSClusterSpec, VirtualClusterSpec

__all__ = ["BillingMeter", "CostReport"]

_SECONDS_PER_HOUR = 3600.0


@dataclass(frozen=True)
class CostReport:
    """Aggregated charges over a metering window."""

    window_seconds: float
    vm_cost: float
    storage_cost: float
    vm_hours: Mapping[str, float]
    stored_byte_hours: Mapping[str, float]
    egress_cost: float = 0.0

    @property
    def total_cost(self) -> float:
        return self.vm_cost + self.storage_cost + self.egress_cost

    @property
    def hourly_vm_cost(self) -> float:
        """Average VM cost per hour over the window (Fig 10's y-axis)."""
        hours = self.window_seconds / _SECONDS_PER_HOUR
        return self.vm_cost / hours if hours > 0 else 0.0

    @property
    def hourly_storage_cost(self) -> float:
        hours = self.window_seconds / _SECONDS_PER_HOUR
        return self.storage_cost / hours if hours > 0 else 0.0

    @property
    def hourly_egress_cost(self) -> float:
        hours = self.window_seconds / _SECONDS_PER_HOUR
        return self.egress_cost / hours if hours > 0 else 0.0


class BillingMeter:
    """Integrates VM counts and stored bytes into dollar charges.

    Usage is reported through :meth:`record_vm_usage` /
    :meth:`record_storage_usage` as *levels* effective from the given time
    onward; the meter accrues cost between consecutive reports.
    """

    def __init__(
        self,
        vm_clusters: Mapping[str, VirtualClusterSpec],
        nfs_clusters: Mapping[str, NFSClusterSpec],
        start_time: float = 0.0,
    ) -> None:
        self.vm_clusters = dict(vm_clusters)
        self.nfs_clusters = dict(nfs_clusters)
        self._vm_levels: Dict[str, float] = {name: 0.0 for name in vm_clusters}
        self._storage_levels: Dict[str, float] = {name: 0.0 for name in nfs_clusters}
        self._last_time = float(start_time)
        self._start_time = float(start_time)
        self._vm_hours: Dict[str, float] = {name: 0.0 for name in vm_clusters}
        self._byte_hours: Dict[str, float] = {name: 0.0 for name in nfs_clusters}
        self._egress_rate = 0.0  # $/hour, piecewise constant
        self._egress_cost = 0.0  # accrued dollars
        # (time, hourly_vm_cost_rate) samples for time series reporting.
        self._rate_history: List[Tuple[float, float]] = []

    # ------------------------------------------------------------------
    # Level updates
    # ------------------------------------------------------------------
    def _accrue(self, now: float) -> None:
        if now < self._last_time:
            raise ValueError(
                f"billing time went backwards: {now} < {self._last_time}"
            )
        hours = (now - self._last_time) / _SECONDS_PER_HOUR
        if hours > 0:
            for name, level in self._vm_levels.items():
                self._vm_hours[name] += level * hours
            for name, level in self._storage_levels.items():
                self._byte_hours[name] += level * hours
            self._egress_cost += self._egress_rate * hours
        self._last_time = now

    def record_vm_usage(self, now: float, active_vms: Mapping[str, int]) -> None:
        """Set the number of billable VMs per cluster, effective at ``now``.

        Booting VMs bill like running ones (the instance is reserved), which
        mirrors commercial per-usage-time charging.
        """
        self._accrue(now)
        for name, count in active_vms.items():
            if name not in self._vm_levels:
                raise KeyError(f"unknown VM cluster {name!r}")
            if count < 0:
                raise ValueError(f"negative VM count for {name!r}")
            self._vm_levels[name] = float(count)
        self._rate_history.append((now, self.current_vm_cost_rate()))

    def record_storage_usage(self, now: float, stored_bytes: Mapping[str, float]) -> None:
        """Set the stored bytes per NFS cluster, effective at ``now``."""
        self._accrue(now)
        for name, level in stored_bytes.items():
            if name not in self._storage_levels:
                raise KeyError(f"unknown NFS cluster {name!r}")
            if level < 0:
                raise ValueError(f"negative storage level for {name!r}")
            self._storage_levels[name] = float(level)

    def record_egress_rate(self, now: float, dollars_per_hour: float) -> None:
        """Set the cross-region egress spend rate, effective at ``now``.

        The geo controller derives the rate from its allocation plan
        (each remote fractional VM streams at the VM bandwidth across a
        priced link); the meter integrates it exactly like the VM and
        storage levels.
        """
        if dollars_per_hour < 0:
            raise ValueError("egress rate must be >= 0")
        self._accrue(now)
        self._egress_rate = float(dollars_per_hour)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def current_vm_cost_rate(self) -> float:
        """Instantaneous VM spend in dollars/hour at current levels."""
        return sum(
            level * self.vm_clusters[name].price_per_hour
            for name, level in self._vm_levels.items()
        )

    def current_storage_cost_rate(self) -> float:
        """Instantaneous storage spend in dollars/hour at current levels."""
        return sum(
            level * self.nfs_clusters[name].price_per_byte_hour
            for name, level in self._storage_levels.items()
        )

    def current_egress_cost_rate(self) -> float:
        """Instantaneous cross-region egress spend, dollars/hour."""
        return self._egress_rate

    def vm_cost_rate_history(self) -> List[Tuple[float, float]]:
        """(time, $/hour) samples recorded at each VM level change."""
        return list(self._rate_history)

    def report(self, now: float) -> CostReport:
        """Close the books through ``now`` and return aggregate charges."""
        self._accrue(now)
        vm_cost = sum(
            hours * self.vm_clusters[name].price_per_hour
            for name, hours in self._vm_hours.items()
        )
        storage_cost = sum(
            byte_hours * self.nfs_clusters[name].price_per_byte_hour
            for name, byte_hours in self._byte_hours.items()
        )
        return CostReport(
            window_seconds=now - self._start_time,
            vm_cost=vm_cost,
            storage_cost=storage_cost,
            vm_hours=dict(self._vm_hours),
            stored_byte_hours=dict(self._byte_hours),
            egress_cost=self._egress_cost,
        )
