"""VM monitor: tracks provisioned instances and utilization (paper Fig. 1).

The monitor samples pool states over time so experiments can report VM
counts, launch/shutdown activity, and bandwidth-utilization series without
coupling reporting code to pool internals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.cloud.vm import VMPool

__all__ = ["VMMonitor", "MonitorSample"]


@dataclass(frozen=True)
class MonitorSample:
    """One point-in-time snapshot of the VM fleet."""

    time: float
    running: Dict[str, int]
    booting: Dict[str, int]
    running_bandwidth: float
    used_bandwidth: float

    @property
    def total_running(self) -> int:
        return sum(self.running.values())

    @property
    def utilization(self) -> float:
        """Used / provisioned bandwidth, in [0, 1] (0 when nothing runs)."""
        if self.running_bandwidth <= 0:
            return 0.0
        return min(1.0, self.used_bandwidth / self.running_bandwidth)


class VMMonitor:
    """Collects :class:`MonitorSample` snapshots of the VM pools."""

    def __init__(self, pools: Mapping[str, VMPool]) -> None:
        self.pools = dict(pools)
        self.samples: List[MonitorSample] = []

    def sample(self, time: float, used_bandwidth: float = 0.0) -> MonitorSample:
        """Record and return a snapshot at ``time``.

        ``used_bandwidth`` is the instantaneous bandwidth actually consumed
        by the application (reported by the VoD simulator), enabling the
        provisioned-vs-used comparison of Fig 4.
        """
        snap = MonitorSample(
            time=float(time),
            running={name: pool.running for name, pool in self.pools.items()},
            booting={name: pool.booting for name, pool in self.pools.items()},
            running_bandwidth=sum(
                pool.running_bandwidth() for pool in self.pools.values()
            ),
            used_bandwidth=float(used_bandwidth),
        )
        self.samples.append(snap)
        return snap

    def launch_counts(self) -> Dict[str, int]:
        return {name: pool.launches for name, pool in self.pools.items()}

    def shutdown_counts(self) -> Dict[str, int]:
        return {name: pool.shutdowns for name, pool in self.pools.items()}

    def provisioned_series(self) -> List[float]:
        """Provisioned bandwidth at each sample (bytes/second)."""
        return [s.running_bandwidth for s in self.samples]

    def used_series(self) -> List[float]:
        """Used bandwidth at each sample (bytes/second)."""
        return [s.used_bandwidth for s in self.samples]
