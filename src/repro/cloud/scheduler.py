"""VM and NFS schedulers, and the assembled cloud facility (paper Fig. 1).

The schedulers receive allocation decisions (per-cluster VM counts, chunk ->
NFS-cluster placements) from the request path and apply them to the pools.
:class:`CloudFacility` wires the pools, schedulers, billing meter and
monitor into one object that plays the role of the paper's cloud provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Mapping, Optional, Sequence, Tuple

from repro.cloud.billing import BillingMeter
from repro.cloud.cluster import NFSClusterSpec, VirtualClusterSpec
from repro.cloud.monitor import VMMonitor
from repro.cloud.vm import VMPool
from repro.sim.engine import Simulator

__all__ = ["VMScheduler", "NFSScheduler", "CloudFacility"]

ChunkKey = Hashable  # typically a (channel_id, chunk_index) tuple


class VMScheduler:
    """Applies per-cluster VM count targets to the VM pools."""

    def __init__(self, pools: Mapping[str, VMPool]) -> None:
        self.pools = dict(pools)

    def apply(self, targets: Mapping[str, int]) -> Dict[str, int]:
        """Scale each named pool toward its target active count.

        Unknown cluster names raise; clusters absent from ``targets`` are
        left untouched. Returns the signed change per cluster.
        """
        changes: Dict[str, int] = {}
        for name, target in targets.items():
            if name not in self.pools:
                raise KeyError(f"unknown virtual cluster {name!r}")
            changes[name] = self.pools[name].scale_to(int(target))
        return changes

    def active_counts(self) -> Dict[str, int]:
        return {name: pool.active for name, pool in self.pools.items()}

    def running_counts(self) -> Dict[str, int]:
        return {name: pool.running for name, pool in self.pools.items()}

    def total_running_bandwidth(self) -> float:
        return sum(pool.running_bandwidth() for pool in self.pools.values())


@dataclass
class _Placement:
    """Current storage placement state for one NFS cluster."""

    spec: NFSClusterSpec
    chunks: Dict[ChunkKey, float] = field(default_factory=dict)  # key -> bytes

    @property
    def used_bytes(self) -> float:
        return float(sum(self.chunks.values()))

    @property
    def free_bytes(self) -> float:
        return self.spec.capacity_bytes - self.used_bytes


class NFSScheduler:
    """Carries out chunk placement onto the NFS clusters."""

    def __init__(self, clusters: Mapping[str, NFSClusterSpec]) -> None:
        self._placements: Dict[str, _Placement] = {
            name: _Placement(spec) for name, spec in clusters.items()
        }

    def apply(
        self, placement: Mapping[ChunkKey, Tuple[str, float]]
    ) -> None:
        """Replace the current placement with ``{chunk: (cluster, bytes)}``.

        Raises if any cluster would exceed capacity; in that case no change
        is applied (placements are transactional).
        """
        staged: Dict[str, Dict[ChunkKey, float]] = {
            name: {} for name in self._placements
        }
        for chunk, (cluster, size) in placement.items():
            if cluster not in staged:
                raise KeyError(f"unknown NFS cluster {cluster!r}")
            if size < 0:
                raise ValueError(f"negative chunk size for {chunk!r}")
            staged[cluster][chunk] = float(size)
        for name, chunks in staged.items():
            total = sum(chunks.values())
            capacity = self._placements[name].spec.capacity_bytes
            if total > capacity + 1e-6:
                raise ValueError(
                    f"placement exceeds capacity of {name!r}: "
                    f"{total:.0f} > {capacity:.0f} bytes"
                )
        for name, chunks in staged.items():
            self._placements[name].chunks = chunks

    def stored_bytes(self) -> Dict[str, float]:
        return {name: p.used_bytes for name, p in self._placements.items()}

    def location_of(self, chunk: ChunkKey) -> Optional[str]:
        for name, p in self._placements.items():
            if chunk in p.chunks:
                return name
        return None

    def placement_utility(self, demand: Mapping[ChunkKey, float]) -> float:
        """Aggregate storage utility sum_f u_f * Delta_i over placed chunks.

        This is the paper's Eqn (6) objective evaluated on the *current*
        placement, used for the Fig 8 series.
        """
        utility = 0.0
        for name, p in self._placements.items():
            for chunk in p.chunks:
                utility += p.spec.utility * float(demand.get(chunk, 0.0))
        return utility


class CloudFacility:
    """The assembled cloud provider: pools + schedulers + billing + monitor.

    Parameters
    ----------
    vm_clusters / nfs_clusters:
        Cluster descriptions in declaration order (order matters only for
        deterministic reporting).
    simulator:
        Optional shared simulator; enables timed VM boot latency and
        simulated-time billing.
    """

    def __init__(
        self,
        vm_clusters: Sequence[VirtualClusterSpec],
        nfs_clusters: Sequence[NFSClusterSpec],
        simulator: Optional[Simulator] = None,
        *,
        boot_seconds: float = 25.0,
        shutdown_seconds: float = 10.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        """``clock`` supplies the current time when no event simulator is
        attached (e.g. the fluid VoD simulator's clock), so billing still
        accrues over simulated time while VM transitions stay instant."""
        names = [spec.name for spec in vm_clusters]
        if len(set(names)) != len(names):
            raise ValueError("virtual cluster names must be unique")
        nfs_names = [spec.name for spec in nfs_clusters]
        if len(set(nfs_names)) != len(nfs_names):
            raise ValueError("NFS cluster names must be unique")

        self.simulator = simulator
        self.clock = clock
        self.vm_specs: Dict[str, VirtualClusterSpec] = {
            spec.name: spec for spec in vm_clusters
        }
        self.nfs_specs: Dict[str, NFSClusterSpec] = {
            spec.name: spec for spec in nfs_clusters
        }
        self.pools: Dict[str, VMPool] = {
            spec.name: VMPool(
                spec,
                simulator,
                boot_seconds=boot_seconds,
                shutdown_seconds=shutdown_seconds,
            )
            for spec in vm_clusters
        }
        self.vm_scheduler = VMScheduler(self.pools)
        self.nfs_scheduler = NFSScheduler(self.nfs_specs)
        self.billing = BillingMeter(
            self.vm_specs, self.nfs_specs, start_time=self.now()
        )
        self.monitor = VMMonitor(self.pools)

    # ------------------------------------------------------------------
    def now(self) -> float:
        if self.simulator is not None:
            return self.simulator.now
        if self.clock is not None:
            return float(self.clock())
        return 0.0

    def apply_vm_targets(self, targets: Mapping[str, int]) -> Dict[str, int]:
        """Scale pools and record the new billing levels."""
        changes = self.vm_scheduler.apply(targets)
        self.billing.record_vm_usage(self.now(), self.vm_scheduler.active_counts())
        return changes

    def apply_storage_placement(
        self, placement: Mapping[ChunkKey, Tuple[str, float]]
    ) -> None:
        """Place chunks and record the new storage billing levels."""
        self.nfs_scheduler.apply(placement)
        self.billing.record_storage_usage(self.now(), self.nfs_scheduler.stored_bytes())

    def running_bandwidth(self) -> float:
        """Total bandwidth of RUNNING VMs, bytes/second."""
        return self.vm_scheduler.total_running_bandwidth()

    def total_active_vms(self) -> int:
        return sum(pool.active for pool in self.pools.values())
