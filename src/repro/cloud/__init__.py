"""IaaS cloud substrate (paper Section III-A, Fig. 1).

The paper evaluates on a home-built cloud of 100+ machines; this package is
the simulated equivalent, with the same functional modules:

* :mod:`repro.cloud.cluster` — virtual-cluster and NFS-cluster descriptions
  (Tables II and III).
* :mod:`repro.cloud.vm` — VM lifecycle state machine (OFF -> BOOTING ->
  RUNNING -> SHUTTING_DOWN -> OFF) with the measured ~25 s boot latency,
  and per-cluster VM pools.
* :mod:`repro.cloud.scheduler` — the VM scheduler and NFS scheduler that
  apply allocation decisions.
* :mod:`repro.cloud.broker` — broker, request monitor and SLA negotiator:
  the consumer-facing request path.
* :mod:`repro.cloud.billing` — usage metering and cost accounting under the
  per-time-unit charging model.
* :mod:`repro.cloud.monitor` — VM monitor collecting utilization samples.
"""

from repro.cloud.billing import BillingMeter, CostReport
from repro.cloud.broker import (
    Broker,
    RequestMonitor,
    ResourceRequest,
    SLAAgreement,
    SLANegotiator,
)
from repro.cloud.cluster import NFSClusterSpec, VirtualClusterSpec
from repro.cloud.loadbalancer import LoadBalancer, LoadReport
from repro.cloud.monitor import VMMonitor
from repro.cloud.scheduler import CloudFacility, NFSScheduler, VMScheduler
from repro.cloud.vm import VM, VMPool, VMState

__all__ = [
    "BillingMeter",
    "CostReport",
    "Broker",
    "RequestMonitor",
    "ResourceRequest",
    "SLAAgreement",
    "SLANegotiator",
    "NFSClusterSpec",
    "VirtualClusterSpec",
    "LoadBalancer",
    "LoadReport",
    "VMMonitor",
    "CloudFacility",
    "NFSScheduler",
    "VMScheduler",
    "VM",
    "VMPool",
    "VMState",
]
