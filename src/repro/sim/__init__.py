"""Discrete-event simulation substrate.

This package provides the minimal, dependency-free event-driven machinery
used by the stochastic validation simulators (:mod:`repro.vod.queue_sim`)
and by the cloud substrate for timed VM lifecycle transitions:

* :mod:`repro.sim.rng` — deterministic, per-component random streams.
* :mod:`repro.sim.events` — event records and the event priority queue.
* :mod:`repro.sim.engine` — the simulation clock and run loop.
* :mod:`repro.sim.shard` — sharded multi-channel catalog execution:
  channel shards advanced in lock-step epochs across worker processes
  under one provisioning loop, byte-deterministic for any worker count.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams, make_rng

#: Lazily re-exported from :mod:`repro.sim.shard`. The shard engine
#: depends on the cloud/core layers, which themselves import
#: :mod:`repro.sim.engine` — importing it eagerly here would close an
#: import cycle, so resolution is deferred to first attribute access.
_SHARD_EXPORTS = (
    "CatalogResult",
    "ChannelShard",
    "EpochClock",
    "EpochReport",
    "GeoCatalogResult",
    "GeoShardedSimulator",
    "MergedEpoch",
    "ShardedSimulator",
    "ShardEngineError",
    "make_engine",
    "merge_epoch_reports",
    "summarize_catalog",
)


def __getattr__(name: str):
    if name in _SHARD_EXPORTS:
        from repro.sim import shard

        return getattr(shard, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "Simulator",
    "Event",
    "EventQueue",
    "RandomStreams",
    "make_rng",
    "CatalogResult",
    "ChannelShard",
    "EpochClock",
    "EpochReport",
    "GeoCatalogResult",
    "GeoShardedSimulator",
    "MergedEpoch",
    "ShardedSimulator",
    "ShardEngineError",
    "make_engine",
    "merge_epoch_reports",
    "summarize_catalog",
]
