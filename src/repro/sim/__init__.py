"""Discrete-event simulation substrate.

This package provides the minimal, dependency-free event-driven machinery
used by the stochastic validation simulators (:mod:`repro.vod.queue_sim`)
and by the cloud substrate for timed VM lifecycle transitions:

* :mod:`repro.sim.rng` — deterministic, per-component random streams.
* :mod:`repro.sim.events` — event records and the event priority queue.
* :mod:`repro.sim.engine` — the simulation clock and run loop.
"""

from repro.sim.engine import Simulator
from repro.sim.events import Event, EventQueue
from repro.sim.rng import RandomStreams, make_rng

__all__ = ["Simulator", "Event", "EventQueue", "RandomStreams", "make_rng"]
