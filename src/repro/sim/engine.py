"""The simulation clock and run loop."""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.events import Event, EventQueue

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised on clock violations (scheduling in the past, etc.)."""


class Simulator:
    """A deterministic discrete-event simulation engine.

    The engine owns the clock and the event queue. Components schedule
    callbacks with :meth:`schedule` (absolute time) or :meth:`schedule_in`
    (relative delay) and the engine executes them in timestamp order.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0) -> None:
        self.now = float(start_time)
        self.queue = EventQueue()
        self.events_processed = 0
        self._running = False
        self._stop_requested = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        time: float,
        action: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at absolute simulated ``time``."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before now={self.now}"
            )
        return self.queue.push(time, action, priority=priority, label=label)

    def schedule_in(
        self,
        delay: float,
        action: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` after a non-negative ``delay``."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.schedule(self.now + delay, action, priority=priority, label=label)

    def cancel(self, event: Event) -> None:
        """Cancel a pending event."""
        self.queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the earliest pending event. Return False when empty."""
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError("event queue returned an event from the past")
        self.now = event.time
        self.events_processed += 1
        event.action()
        return True

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> None:
        """Run until the queue drains, ``until`` is reached, or ``max_events``.

        When ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fires earlier, so periodic observers can rely
        on the final clock value.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        self._stop_requested = False
        processed = 0
        try:
            while not self._stop_requested:
                next_time = self.queue.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and processed >= max_events:
                    break
                self.step()
                processed += 1
        finally:
            self._running = False
        if until is not None and self.now < until and not self._stop_requested:
            self.now = until

    def stop(self) -> None:
        """Request the run loop to halt after the current event."""
        self._stop_requested = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={self.now:.3f}, pending={len(self.queue)}, "
            f"processed={self.events_processed})"
        )
