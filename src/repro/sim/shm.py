"""Fixed-layout shared-memory epoch blocks for the sharded engine.

The parent allocates ONE :mod:`multiprocessing.shared_memory` segment
per engine, divided into per-shard epoch blocks at fixed offsets.  Each
epoch every worker writes its shards' blocks in place (step series,
quality samples, per-channel interval statistics, scalar counters) and
acks over the control pipe with a tiny ``("ok", None)``; the parent then
maps every block back as numpy views in **shard-index order** and merges
them — no report pickling on the data path.  Pickle remains for control
messages and the checkpoint/snapshot path only.

Layout
------
A block is a flat sequence of 8-byte-aligned scalars and arrays (all
``int64``/``float64``, so alignment is structural):

* i64 scalars: ``n_steps``, ``n_quality``, ``arrivals``, ``departures``,
  ``retrievals``, ``unsmooth``, ``upload_count``, ``peak_step_events``;
* f64 scalars: ``t_end``, ``sojourn_sum``, ``upload_sum``,
  ``kernel_seconds`` (the worker's wall time inside the shard kernel,
  feeding the engine's phase breakdown);
* f64 step series sized for the worst-case epoch (``step_times``,
  ``cloud_used``, ``peer_used``, ``provisioned``, ``shortfall``) plus
  i64 ``populations``; the valid prefix length is ``n_steps``;
* quality sample arrays (f64 times, i64 smooth/user counts), valid
  prefix ``n_quality``;
* per-owned-channel interval statistics, indexed in the shard's
  ascending channel-id order (``stat_arrivals``, ``stat_upload_sum``,
  ``stat_upload_samples``, ``stat_transitions`` ``(n, J, J)``,
  ``stat_departures``/``stat_starts`` ``(n, J)``) and the final
  ``channel_populations``.

Channel ids are never shipped: both sides derive each shard's owned-id
list from the :class:`~repro.workload.catalog.CatalogConfig`, so the
block is pure numbers and every value round-trips bit-exactly (the
engine's byte-determinism does not depend on the transport).

Lifecycle
---------
The parent creates the segment (:class:`ParentSegment`) before spawning
workers and is the only unlinker — :meth:`ParentSegment.close` is
idempotent and runs inside ``ShardedSimulator.close()``, so crashed
workers cannot leak ``/dev/shm`` blocks.  Workers attach by name with
:func:`attach_segment`, which immediately detaches the mapping from the
worker's ``resource_tracker`` (the parent owns the lifecycle; without
this, worker exits spew leaked-segment warnings and double-unlink).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Dict, List, Tuple

import numpy as np

from repro.vod.simulator import VoDSystemConfig
from repro.workload.catalog import CatalogConfig, shard_channel_ids

__all__ = [
    "EpochShmLayout",
    "ParentSegment",
    "attach_segment",
    "unlink_stale_segment",
    "SCALAR_I64",
    "SCALAR_F64",
    "STEP_SERIES_F64",
]

_I64 = np.dtype(np.int64)
_F64 = np.dtype(np.float64)

SCALAR_I64 = (
    "n_steps",
    "n_quality",
    "arrivals",
    "departures",
    "retrievals",
    "unsmooth",
    "upload_count",
    "peak_step_events",
)
SCALAR_F64 = ("t_end", "sojourn_sum", "upload_sum", "kernel_seconds")
STEP_SERIES_F64 = (
    "step_times",
    "cloud_used",
    "peer_used",
    "provisioned",
    "shortfall",
)


@dataclass(frozen=True)
class _Field:
    """One named array at a fixed offset within a shard block."""

    name: str
    offset: int  # bytes from the start of the block
    shape: Tuple[int, ...]
    dtype: np.dtype


def _block_fields(
    n_owned: int, chunks: int, max_steps: int, max_quality: int
) -> Tuple[List[_Field], int]:
    fields: List[_Field] = []
    offset = 0

    def add(name: str, shape: Tuple[int, ...], dtype: np.dtype) -> None:
        nonlocal offset
        fields.append(_Field(name, offset, shape, dtype))
        offset += int(np.prod(shape, dtype=np.int64)) * dtype.itemsize

    for name in SCALAR_I64:
        add(name, (1,), _I64)
    for name in SCALAR_F64:
        add(name, (1,), _F64)
    for name in STEP_SERIES_F64:
        add(name, (max_steps,), _F64)
    add("populations", (max_steps,), _I64)
    add("quality_times", (max_quality,), _F64)
    add("quality_smooth", (max_quality,), _I64)
    add("quality_users", (max_quality,), _I64)
    add("stat_arrivals", (n_owned,), _I64)
    add("stat_upload_sum", (n_owned,), _F64)
    add("stat_upload_samples", (n_owned,), _I64)
    add("stat_transitions", (n_owned, chunks, chunks), _F64)
    add("stat_departures", (n_owned, chunks), _F64)
    add("stat_starts", (n_owned, chunks), _F64)
    add("channel_populations", (n_owned,), _I64)
    return fields, offset


class EpochShmLayout:
    """The segment's field table, derived deterministically from config.

    Parent and workers construct this independently from the same
    :class:`CatalogConfig` and land on identical offsets — nothing about
    the layout crosses the process boundary.
    """

    def __init__(self, config: CatalogConfig) -> None:
        interval = float(config.interval_seconds)
        dt = float(config.dt)
        # The shard kernels sample quality on the VoDSystemConfig grid;
        # build it exactly like ChannelShard does to read the interval.
        sim_config = VoDSystemConfig(
            mode=config.mode,
            dt=config.dt,
            user_rate_cap=config.constants.vm_bandwidth,
            seed=config.seed,
        )
        # +2: one for a possible boundary step, one for safety against
        # the epsilon comparisons at epoch edges.
        self.max_steps = int(math.ceil(interval / dt)) + 2
        self.max_quality = (
            int(math.ceil(interval / float(sim_config.quality_sample_interval)))
            + 2
        )
        self.chunks = int(config.chunks_per_channel)
        self.interval_seconds = interval
        self.num_shards = int(config.effective_shards)
        self.owned_ids: List[List[int]] = [
            list(shard_channel_ids(config, i)) for i in range(self.num_shards)
        ]
        self._fields: List[List[_Field]] = []
        self.block_offsets: List[int] = []
        self.block_sizes: List[int] = []
        total = 0
        for owned in self.owned_ids:
            fields, size = _block_fields(
                len(owned), self.chunks, self.max_steps, self.max_quality
            )
            self._fields.append(fields)
            self.block_offsets.append(total)
            self.block_sizes.append(size)
            total += size
        self.total_size = total

    def views(self, buf, shard_index: int) -> Dict[str, np.ndarray]:
        """Numpy views of one shard's block inside ``buf`` (zero-copy)."""
        base = self.block_offsets[shard_index]
        return {
            field.name: np.ndarray(
                field.shape,
                dtype=field.dtype,
                buffer=buf,
                offset=base + field.offset,
            )
            for field in self._fields[shard_index]
        }


class ParentSegment:
    """The parent-owned shared segment (create → share name → unlink).

    ``close()`` is idempotent and unconditionally unlinks: the parent is
    the segment's only owner, so teardown never depends on workers
    having exited cleanly.  A ``BufferError`` from live numpy views
    (e.g. after an engine error mid-merge) downgrades the unmap but
    never skips the unlink — the ``/dev/shm`` entry always goes away.
    """

    def __init__(self, layout: EpochShmLayout) -> None:
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(1, layout.total_size)
        )
        self._closed = False

    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def buf(self):
        return self.shm.buf

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self.shm.close()
        except BufferError:  # views still alive; unlink below still frees
            pass
        try:
            self.shm.unlink()
        except FileNotFoundError:
            pass

    def __del__(self) -> None:  # pragma: no cover - backstop only
        try:
            self.close()
        except Exception:
            pass


def unlink_stale_segment(name: str) -> bool:
    """Reclaim a segment orphaned by a SIGKILLed parent process.

    ``ParentSegment.close()`` covers every in-process teardown path,
    but nothing can run inside a parent that got SIGKILLed — its
    ``/dev/shm`` entry survives until someone unlinks it.  The service
    host records its runs' segment names in the state dir exactly so
    its restart can call this janitor; by then the workers are gone
    too (their control pipes hit EOF when the parent died), so the
    unlink here is the segment's last reference.

    Returns ``True`` if a segment by that name existed and was
    unlinked, ``False`` if it was already gone.
    """
    try:
        # lint: allow[RES001] crash-recovery janitor: successor runs the parent-owned unlink
        stale = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    stale.close()
    stale.unlink()
    return True


def attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to the parent's segment from a worker process.

    Attaching must NOT touch the resource tracker: on this interpreter
    attach-only mappings are untracked, and forked workers share the
    parent's tracker process — an unregister here would strip the
    parent's own registration (its crash-safety net) and make sibling
    workers' unregisters error inside the tracker.  The parent owns
    create/unlink; the worker only ever ``close()``\\ s its mapping.
    """
    return shared_memory.SharedMemory(name=name)
