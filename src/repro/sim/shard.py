"""Sharded multi-channel execution: the catalog engine.

A catalog of hundreds of channels is partitioned into
:class:`ChannelShard`\\ s — each shard owns a fixed subset of channels and
runs them in its own :class:`~repro.vod.simulator.VoDSimulator`.  Shards
advance in **lock-step epochs** of one provisioning interval T: the
parent broadcasts the current per-channel cloud capacities, every shard
simulates its channels up to the epoch boundary, and returns an
:class:`EpochReport` (tracker statistics, per-step bandwidth and
population series, quality samples).  The parent merges the reports,
runs the shared predictor → provisioner → allocator loop
(:mod:`repro.core` + :mod:`repro.cloud`) on the merged demand, and
broadcasts the new capacities for the next epoch.

Determinism contract
--------------------
For a fixed :class:`~repro.workload.catalog.CatalogConfig` (which
includes the shard count), results are **byte-identical regardless of
the worker count**:

* every channel's trace and behaviour stream is keyed by its global
  channel id (stable spawn keys), so a channel simulates identically in
  whichever process its shard lands;
* channels only interact through the controller, which runs in the
  parent on merged statistics;
* reports are merged in **shard-index order** no matter the order in
  which workers finish, so every float reduction has a fixed order
  (:func:`merge_epoch_reports` is a pure function of the report *set*).

``tests/test_catalog_engine.py`` pins this down with a jobs-1-vs-4
byte-identity test and a merge-permutation property test.

The engine runs one epoch at a time (:meth:`ShardedSimulator.
advance_epoch`), which :mod:`repro.api` streams as ``EpochSnapshot``\\ s
and checkpoints between (:meth:`ShardedSimulator.snapshot_state` /
``restore_state`` — worker shard state is gathered/reinjected over the
process boundary); ``run()`` is the drain-everything convenience and
byte-identical to the historical monolithic loop.
``tests/test_api.py`` pins the streamed-vs-monolithic and
checkpoint/resume byte-parity.
"""

from __future__ import annotations

import math
import multiprocessing as mp
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cloud.billing import CostReport
from repro.cloud.broker import Broker
from repro.cloud.scheduler import CloudFacility
from repro.core.controller import controller_class
from repro.core.demand import DemandEstimator
from repro.core.predictor import ArrivalRatePredictor
from repro.core.provisioner import ProvisioningController, ProvisioningDecision
from repro.geo.controller import GeoProvisioningController
from repro.sim.shm import EpochShmLayout, ParentSegment, attach_segment
from repro.vod.metrics import latency_adjusted_quality
from repro.vod.multi import MultiChannelSimulator, channels_are_uniform
from repro.vod.simulator import VoDSimulator, VoDSystemConfig
from repro.vod.tracker import IntervalStats, TrackingServer
from repro.workload.catalog import (
    CatalogConfig,
    GeoCatalogConfig,
    build_shard_trace,
    build_shard_trace_arrays,
    channel_shapes,
    shard_channel_ids,
)

__all__ = [
    "ChannelShard",
    "EpochClock",
    "EpochReport",
    "MergedEpoch",
    "CatalogResult",
    "GeoCatalogResult",
    "ShardedSimulator",
    "GeoShardedSimulator",
    "ShardEngineError",
    "merge_epoch_reports",
    "report_to_views",
    "report_from_views",
    "make_engine",
    "summarize_catalog",
]


class EpochClock:
    """Picklable simulated-time source shared with the billing meter.

    The engine advances ``now`` at every epoch boundary; the cloud
    facility reads it through ``__call__``.  A plain attribute-holding
    callable (rather than a closure over the engine) keeps the whole
    control-plane state graph picklable for checkpointing.
    """

    __slots__ = ("now",)

    def __init__(self, now: float = 0.0) -> None:
        self.now = float(now)

    def __call__(self) -> float:
        return self.now

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EpochClock({self.now})"


# ----------------------------------------------------------------------
# One shard
# ----------------------------------------------------------------------

class ChannelShard:
    """A fixed subset of the catalog's channels in one simulator.

    Client-server catalogs with a uniform channel set (every family
    :func:`make_uniform_channels` builds) run on the fused
    :class:`~repro.vod.multi.MultiChannelSimulator` kernel — one
    vectorized pass per phase over the whole channel set.  P2P mode and
    heterogeneous channels keep one :class:`VoDSimulator` over the
    shard's channels (the historical per-channel kernel); both kernels
    are byte-identical for any configuration both accept, and
    checkpoints restored from either keep their original kernel.
    """

    def __init__(
        self,
        config: CatalogConfig,
        shard_index: int,
        *,
        shapes: Optional[list] = None,
        all_channels: Optional[list] = None,
    ) -> None:
        self.config = config
        self.shard_index = shard_index
        self.channel_ids = shard_channel_ids(config, shard_index)
        # ``shapes``/``all_channels`` let a caller building several
        # shards of the same catalog compute the (identical) full-catalog
        # lists once instead of once per shard.
        if shapes is None:
            shapes = channel_shapes(config)
        owned_shapes = [shapes[c] for c in self.channel_ids]
        if all_channels is None:
            all_channels = config.channels()
        channels = [all_channels[c] for c in self.channel_ids]
        sim_config = VoDSystemConfig(
            mode=config.mode,
            dt=config.dt,
            user_rate_cap=config.constants.vm_bandwidth,
            seed=config.seed,
        )
        if config.mode == "client-server" and channels_are_uniform(channels):
            trace_arrays = build_shard_trace_arrays(
                config, self.channel_ids, shapes=owned_shapes
            )
            self.sim = MultiChannelSimulator(
                channels,
                trace_arrays,
                sim_config,
                interval_seconds=config.interval_seconds,
            )
        else:
            trace = build_shard_trace(
                config, self.channel_ids, shapes=owned_shapes
            )
            # The tracker is sized for the whole catalog's slot space so
            # global channel ids index it directly; only owned channels
            # ever receive observations, and reports carry only the
            # owned slice.  History is disabled: the owned slice ships
            # to the control plane every epoch, so retaining closed
            # intervals here would only grow memory linearly with the
            # horizon.
            tracker = TrackingServer(
                num_channels=config.channel_slots,
                chunks_per_channel=(
                    [config.chunks_per_channel] * config.channel_slots
                ),
                interval_seconds=config.interval_seconds,
                keep_history=False,
            )
            self.sim = VoDSimulator(
                channels, trace, sim_config, tracker=tracker
            )
        self._quality_cursor = 0
        self._retrievals = 0
        self._unsmooth = 0
        self._sojourn_sum = 0.0
        self._arrivals = 0
        self._departures = 0

    def set_capacities(self, capacities: Dict[int, np.ndarray]) -> None:
        """Install the owned channels' slice of a capacity broadcast."""
        for channel_id in self.channel_ids:
            capacity = capacities.get(channel_id)
            if capacity is not None:
                self.sim.set_cloud_capacity(channel_id, capacity)

    def advance_epoch(self, t_end: float) -> EpochReport:
        """Run lock-step to ``t_end`` and report this epoch's deltas."""
        sim = self.sim
        log_start = len(sim.bandwidth)
        populations: List[int] = []
        while sim.now + 1e-9 < t_end:
            sim.step()
            populations.append(sim.population())
        log = sim.bandwidth
        window = slice(log_start, len(log))

        quality = sim.quality
        samples = [
            (s.time, int(s.total_smooth), int(s.total_users))
            for s in quality.samples[self._quality_cursor:]
        ]
        self._quality_cursor = len(quality.samples)
        retrievals = quality.total_retrievals - self._retrievals
        unsmooth = quality.unsmooth_retrievals - self._unsmooth
        sojourn_sum = quality.sojourn_sum - self._sojourn_sum
        arrivals = sim.arrivals - self._arrivals
        departures = sim.departures - self._departures
        self._retrievals = quality.total_retrievals
        self._unsmooth = quality.unsmooth_retrievals
        self._sojourn_sum = quality.sojourn_sum
        self._arrivals = sim.arrivals
        self._departures = sim.departures

        if isinstance(sim, MultiChannelSimulator):
            stats = sim.close_interval()
        else:
            stats_all = sim.tracker.close_interval()
            stats = [stats_all[c] for c in self.channel_ids]
        upload_sum, upload_count = sim.peer_upload_totals()
        return EpochReport(
            shard_index=self.shard_index,
            t_end=t_end,
            stats=stats,
            step_times=log.time[window].copy(),
            cloud_used=log.cloud_used[window].copy(),
            peer_used=log.peer_used[window].copy(),
            provisioned=log.provisioned[window].copy(),
            shortfall=log.shortfall[window].copy(),
            populations=np.asarray(populations, dtype=np.int64),
            quality_samples=samples,
            arrivals=arrivals,
            departures=departures,
            retrievals=retrievals,
            unsmooth=unsmooth,
            sojourn_sum=sojourn_sum,
            upload_sum=upload_sum,
            upload_count=upload_count,
            peak_step_events=sim.peak_step_events,
            channel_populations=dict(sim.channel_populations()),
        )


@dataclass
class _EpochData:
    """The accumulator schema one epoch produces.

    Shared by :class:`EpochReport` (one shard's deltas) and
    :class:`MergedEpoch` (the catalog-wide merge) so a statistic added
    to one cannot silently go missing from the other — only
    :func:`merge_epoch_reports` then needs the matching accumulation.
    Everything is picklable (reports cross the worker boundary).
    """

    t_end: float
    stats: List[IntervalStats]
    step_times: np.ndarray
    cloud_used: np.ndarray
    peer_used: np.ndarray
    provisioned: np.ndarray
    shortfall: np.ndarray
    populations: np.ndarray
    quality_samples: List[Tuple[float, int, int]]
    arrivals: int
    departures: int
    retrievals: int
    unsmooth: int
    sojourn_sum: float
    upload_sum: float
    upload_count: int
    peak_step_events: int
    channel_populations: Dict[int, int]


@dataclass
class EpochReport(_EpochData):
    """One shard's deltas over one lock-step epoch (owned channels only)."""

    shard_index: int = -1


@dataclass
class MergedEpoch(_EpochData):
    """The whole catalog's view of one epoch, merged in shard order
    (``stats`` covers all channels, channel-id order)."""


def merge_epoch_reports(reports: Sequence[EpochReport]) -> MergedEpoch:
    """Merge one epoch's shard reports, independent of arrival order.

    Reports are first sorted by shard index, so every float reduction
    (bandwidth sums, upload accumulators) happens in a fixed order even
    when workers complete out of order — the property the engine's
    byte-determinism rests on.
    """
    if not reports:
        raise ValueError("need at least one shard report")
    ordered = sorted(reports, key=lambda r: r.shard_index)
    indices = [r.shard_index for r in ordered]
    if len(set(indices)) != len(indices):
        raise ValueError(f"duplicate shard reports: {indices}")
    first = ordered[0]
    steps = first.step_times.size
    for report in ordered[1:]:
        if report.step_times.size != steps or not np.array_equal(
            report.step_times, first.step_times
        ):
            raise ValueError(
                f"shard {report.shard_index} fell out of lock-step with "
                f"shard {first.shard_index}"
            )
        if len(report.quality_samples) != len(first.quality_samples):
            raise ValueError(
                f"shard {report.shard_index} quality sampling diverged"
            )

    cloud = np.zeros(steps)
    peer = np.zeros(steps)
    provisioned = np.zeros(steps)
    shortfall = np.zeros(steps)
    populations = np.zeros(steps, dtype=np.int64)
    quality = [
        [t, 0, 0] for (t, _, _) in first.quality_samples
    ]
    stats: List[IntervalStats] = []
    channel_populations: Dict[int, int] = {}
    arrivals = departures = retrievals = unsmooth = 0
    sojourn_sum = upload_sum = 0.0
    upload_count = 0
    peak_step_events = 0
    for report in ordered:
        cloud += report.cloud_used
        peer += report.peer_used
        provisioned += report.provisioned
        shortfall += report.shortfall
        populations += report.populations
        for i, (t, smooth, users) in enumerate(report.quality_samples):
            if t != quality[i][0]:
                raise ValueError(
                    f"shard {report.shard_index} sampled quality at {t}, "
                    f"expected {quality[i][0]}"
                )
            quality[i][1] += smooth
            quality[i][2] += users
        stats.extend(report.stats)
        channel_populations.update(report.channel_populations)
        arrivals += report.arrivals
        departures += report.departures
        retrievals += report.retrievals
        unsmooth += report.unsmooth
        sojourn_sum += report.sojourn_sum
        upload_sum += report.upload_sum
        upload_count += report.upload_count
        peak_step_events = max(peak_step_events, report.peak_step_events)
    stats.sort(key=lambda s: s.channel_id)
    return MergedEpoch(
        t_end=first.t_end,
        stats=stats,
        step_times=first.step_times.copy(),
        cloud_used=cloud,
        peer_used=peer,
        provisioned=provisioned,
        shortfall=shortfall,
        populations=populations,
        quality_samples=[(t, s, u) for t, s, u in quality],
        arrivals=arrivals,
        departures=departures,
        retrievals=retrievals,
        unsmooth=unsmooth,
        sojourn_sum=sojourn_sum,
        upload_sum=upload_sum,
        upload_count=upload_count,
        peak_step_events=peak_step_events,
        channel_populations=dict(sorted(channel_populations.items())),
    )


# ----------------------------------------------------------------------
# Shared-memory epoch blocks (see repro.sim.shm for the layout)
# ----------------------------------------------------------------------

def report_to_views(
    views: Dict[str, np.ndarray],
    report: EpochReport,
    owned_ids: Sequence[int],
    kernel_seconds: float,
) -> None:
    """Serialize one shard's epoch report into its shm block (in place).

    Every value is a plain int64/float64 store, so the block round-trips
    bit-exactly — the transport sits outside the determinism contract.
    """
    n = int(report.step_times.size)
    views["n_steps"][0] = n
    views["t_end"][0] = report.t_end
    views["arrivals"][0] = report.arrivals
    views["departures"][0] = report.departures
    views["retrievals"][0] = report.retrievals
    views["unsmooth"][0] = report.unsmooth
    views["sojourn_sum"][0] = report.sojourn_sum
    views["upload_sum"][0] = report.upload_sum
    views["upload_count"][0] = report.upload_count
    views["peak_step_events"][0] = report.peak_step_events
    views["kernel_seconds"][0] = kernel_seconds
    views["step_times"][:n] = report.step_times
    views["cloud_used"][:n] = report.cloud_used
    views["peer_used"][:n] = report.peer_used
    views["provisioned"][:n] = report.provisioned
    views["shortfall"][:n] = report.shortfall
    views["populations"][:n] = report.populations
    nq = len(report.quality_samples)
    views["n_quality"][0] = nq
    if nq:
        q_times, q_smooth, q_users = zip(*report.quality_samples)
        views["quality_times"][:nq] = q_times
        views["quality_smooth"][:nq] = q_smooth
        views["quality_users"][:nq] = q_users
    for k, stats in enumerate(report.stats):
        views["stat_arrivals"][k] = stats.arrivals
        views["stat_upload_sum"][k] = stats.upload_capacity_sum
        views["stat_upload_samples"][k] = stats.upload_capacity_samples
        views["stat_transitions"][k] = stats.transition_counts
        views["stat_departures"][k] = stats.departure_counts
        views["stat_starts"][k] = stats.start_chunk_counts
    views["channel_populations"][:] = [
        report.channel_populations[cid] for cid in owned_ids
    ]


def report_from_views(
    views: Dict[str, np.ndarray],
    shard_index: int,
    owned_ids: Sequence[int],
    interval_seconds: float,
) -> EpochReport:
    """Rebuild a shard's :class:`EpochReport` from its shm block.

    The step series are zero-copy numpy views — valid until the next
    epoch overwrites the block, which is fine because
    :func:`merge_epoch_reports` reduces them into fresh arrays right
    away.  The per-channel statistics arrays ARE copied: the merged
    epoch retains them (the control plane absorbs them after the merge).
    """
    n = int(views["n_steps"][0])
    nq = int(views["n_quality"][0])
    stats = [
        IntervalStats(
            channel_id=int(cid),
            interval_seconds=interval_seconds,
            arrivals=int(views["stat_arrivals"][k]),
            transition_counts=views["stat_transitions"][k].copy(),
            departure_counts=views["stat_departures"][k].copy(),
            upload_capacity_sum=float(views["stat_upload_sum"][k]),
            upload_capacity_samples=int(views["stat_upload_samples"][k]),
            start_chunk_counts=views["stat_starts"][k].copy(),
        )
        for k, cid in enumerate(owned_ids)
    ]
    quality_samples = list(
        zip(
            views["quality_times"][:nq].tolist(),
            views["quality_smooth"][:nq].tolist(),
            views["quality_users"][:nq].tolist(),
        )
    )
    return EpochReport(
        shard_index=shard_index,
        t_end=float(views["t_end"][0]),
        stats=stats,
        step_times=views["step_times"][:n],
        cloud_used=views["cloud_used"][:n],
        peer_used=views["peer_used"][:n],
        provisioned=views["provisioned"][:n],
        shortfall=views["shortfall"][:n],
        populations=views["populations"][:n],
        quality_samples=quality_samples,
        arrivals=int(views["arrivals"][0]),
        departures=int(views["departures"][0]),
        retrievals=int(views["retrievals"][0]),
        unsmooth=int(views["unsmooth"][0]),
        sojourn_sum=float(views["sojourn_sum"][0]),
        upload_sum=float(views["upload_sum"][0]),
        upload_count=int(views["upload_count"][0]),
        peak_step_events=int(views["peak_step_events"][0]),
        channel_populations={
            int(cid): int(views["channel_populations"][k])
            for k, cid in enumerate(owned_ids)
        },
    )


# ----------------------------------------------------------------------
# Worker processes
# ----------------------------------------------------------------------

def _worker_main(conn, config: CatalogConfig, shard_indices: List[int],
                 shard_states: Optional[List[ChannelShard]] = None,
                 shm_name: Optional[str] = None) -> None:
    """Long-lived worker: build (or adopt) the owned shards, serve epochs.

    ``shard_states`` carries checkpointed :class:`ChannelShard` objects
    into the worker on resume (they arrive pickled through the process
    spawn), skipping the trace rebuild.  Besides epochs, the worker
    answers ``("snapshot",)`` with its current shards — the parent-side
    checkpoint gathers them without interrupting the run.

    With ``shm_name`` the worker writes each epoch's reports into its
    shards' shared-memory blocks and acks ``("ok", None)``; without it
    (legacy/fallback) reports travel pickled over the pipe.  Either way
    the attachment is closed in ``finally`` — the parent owns the
    segment's unlink, so no worker exit path can leak ``/dev/shm``
    blocks or trip the resource tracker.
    """
    segment = None
    try:
        if shard_states is not None:
            shards = shard_states
        else:
            # The full-catalog shape/spec lists are identical across
            # shards; compute them once per worker.
            shapes = channel_shapes(config)
            all_channels = config.channels()
            shards = [
                ChannelShard(
                    config, i, shapes=shapes, all_channels=all_channels
                )
                for i in shard_indices
            ]
        layout = None
        if shm_name is not None:
            layout = EpochShmLayout(config)
            segment = attach_segment(shm_name)
        conn.send(("ready", shard_indices))
        while True:
            message = conn.recv()
            if message[0] == "stop":
                break
            if message[0] == "snapshot":
                conn.send(("ok", shards))
                continue
            _, t_end, capacities = message
            if segment is not None:
                for shard in shards:
                    shard.set_capacities(capacities)
                    # CPU time, not wall: time-sliced workers sharing
                    # cores would otherwise count each other's compute.
                    started = time.process_time()
                    report = shard.advance_epoch(t_end)
                    kernel_seconds = time.process_time() - started
                    report_to_views(
                        layout.views(segment.buf, shard.shard_index),
                        report,
                        layout.owned_ids[shard.shard_index],
                        kernel_seconds,
                    )
                conn.send(("ok", None))
            else:
                reports = []
                for shard in shards:
                    shard.set_capacities(capacities)
                    reports.append(shard.advance_epoch(t_end))
                conn.send(("ok", reports))
    except EOFError:
        pass
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (OSError, EOFError, BrokenPipeError):
            pass
    finally:
        if segment is not None:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - defensive
                pass
        conn.close()


class ShardEngineError(RuntimeError):
    """A shard worker died or reported an exception."""


# ----------------------------------------------------------------------
# Results
# ----------------------------------------------------------------------

@dataclass
class CatalogResult:
    """Everything measured over one sharded catalog run."""

    config: CatalogConfig
    times: np.ndarray  # per step
    cloud_used: np.ndarray
    peer_used: np.ndarray
    provisioned: np.ndarray
    shortfall: np.ndarray
    populations: np.ndarray
    quality_times: np.ndarray
    quality: np.ndarray
    epoch_times: List[float]
    arrivals: int
    departures: int
    final_population: int
    peak_population: int
    total_retrievals: int
    unsmooth_retrievals: int
    mean_sojourn: float
    decisions: List[ProvisioningDecision] = field(default_factory=list)
    vm_cost_series: List[float] = field(default_factory=list)
    cost_report: Optional[CostReport] = None
    channel_populations: Dict[int, int] = field(default_factory=dict)
    steps: int = 0
    peak_step_events: int = 0

    @property
    def average_quality(self) -> float:
        if self.quality.size == 0:
            return 1.0
        return float(np.mean(self.quality))

    @property
    def smooth_retrieval_fraction(self) -> float:
        if self.total_retrievals == 0:
            return 1.0
        return 1.0 - self.unsmooth_retrievals / self.total_retrievals


@dataclass
class GeoCatalogResult(CatalogResult):
    """A multi-region catalog run: everything in :class:`CatalogResult`
    plus the geo layer's per-epoch allocation telemetry.

    ``epoch_discounts``/``epoch_remote_fractions`` align with
    ``epoch_times``: entry ``k`` describes the plan that was *in effect*
    during epoch ``k`` (the bootstrap plan for the first epoch, then
    each periodic decision for the epoch it capacitates).
    """

    region_names: List[str] = field(default_factory=list)
    epoch_discounts: List[float] = field(default_factory=list)
    epoch_remote_fractions: List[float] = field(default_factory=list)
    epoch_egress_rates: List[float] = field(default_factory=list)

    @property
    def mean_latency_discount(self) -> float:
        if not self.epoch_discounts:
            return 1.0
        return float(np.mean(self.epoch_discounts))

    def latency_adjusted_quality_series(self) -> np.ndarray:
        """Quality samples scaled by their epoch's utility discount."""
        return latency_adjusted_quality(
            self.quality_times,
            self.quality,
            np.asarray(self.epoch_times),
            np.asarray(self.epoch_discounts),
        )

    @property
    def latency_adjusted_quality(self) -> float:
        series = self.latency_adjusted_quality_series()
        if series.size == 0:
            return self.mean_latency_discount
        return float(np.mean(series))


def summarize_catalog(result: CatalogResult) -> Dict[str, float]:
    """Flatten a catalog run into the sweep's JSON metrics schema."""
    reserved = result.provisioned * 8.0 / 1e6
    used = result.cloud_used * 8.0 / 1e6
    peer = result.peer_used * 8.0 / 1e6
    coverage = (
        float(np.mean(result.provisioned >= result.cloud_used))
        if result.provisioned.size else 0.0
    )
    # Same basis as the closed-loop schema (`mean_vm_cost_per_hour`):
    # the billing meter's hourly rate, which covers the bootstrap
    # deployment too — `vm_cost_series` only has the periodic decisions
    # and is empty for single-epoch runs.
    vm_cost = (
        float(result.cost_report.hourly_vm_cost)
        if result.cost_report is not None else 0.0
    )
    metrics = {
        "arrivals": int(result.arrivals),
        "departures": int(result.departures),
        "final_population": int(result.final_population),
        "peak_population": int(result.peak_population),
        "average_quality": float(result.average_quality),
        "smooth_retrieval_fraction": float(result.smooth_retrieval_fraction),
        "mean_sojourn": float(result.mean_sojourn),
        "mean_reserved_mbps": float(reserved.mean()) if reserved.size else 0.0,
        "mean_used_mbps": float(used.mean()) if used.size else 0.0,
        "mean_peer_mbps": float(peer.mean()) if peer.size else 0.0,
        "mean_shortfall_mbps": (
            float(result.shortfall.mean()) * 8.0 / 1e6
            if result.shortfall.size else 0.0
        ),
        "coverage_fraction": coverage,
        "vm_cost_per_hour": vm_cost,
        "storage_cost_per_day": (
            float(result.cost_report.hourly_storage_cost * 24.0)
            if result.cost_report is not None else 0.0
        ),
        "epochs": int(len(result.epoch_times)),
        "steps": int(result.steps),
        "peak_step_events": int(result.peak_step_events),
        "num_channels": int(result.config.num_channels),
        "num_shards": int(result.config.effective_shards),
    }
    if isinstance(result, GeoCatalogResult):
        metrics.update({
            "num_regions": int(len(result.region_names)),
            "mean_latency_discount": float(result.mean_latency_discount),
            "latency_adjusted_quality": float(
                result.latency_adjusted_quality
            ),
            "mean_remote_fraction": (
                float(np.mean(result.epoch_remote_fractions))
                if result.epoch_remote_fractions else 0.0
            ),
            "egress_cost_per_hour": (
                float(result.cost_report.hourly_egress_cost)
                if result.cost_report is not None else 0.0
            ),
        })
    return metrics


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------

@dataclass
class _CatalogRunState:
    """Everything one in-flight catalog run has accumulated so far.

    Kept as one picklable object so a checkpoint is exactly this state
    plus the control-plane objects and the shard simulators.
    """

    capacities: Dict[int, np.ndarray]
    num_epochs: int
    epoch: int = 0
    done: bool = False
    epoch_times: List[float] = field(default_factory=list)
    step_chunks: List[MergedEpoch] = field(default_factory=list)
    arrivals: int = 0
    departures: int = 0
    retrievals: int = 0
    unsmooth: int = 0
    sojourn_sum: float = 0.0
    peak_step_events: int = 0
    channel_populations: Dict[int, int] = field(default_factory=dict)


class ShardedSimulator:
    """Lock-step epochs over channel shards + one provisioning loop.

    The engine advances one provisioning epoch at a time
    (:meth:`advance_epoch`), which is what :mod:`repro.api` streams;
    :meth:`run` is the drain-everything convenience and produces results
    byte-identical to the historical monolithic loop.

    Parameters
    ----------
    config:
        The catalog (including its fixed shard count).
    jobs:
        Worker processes; ``1`` runs every shard in-process.  Results are
        byte-identical for any value.
    predictor:
        Optional arrival-rate predictor override for the controller.
    controller:
        Registered provisioning-policy key
        (:func:`repro.core.controller.controller_names`); ``None`` means
        the paper controller.
    """

    kind = "catalog"

    def __init__(
        self,
        config: CatalogConfig,
        *,
        jobs: int = 1,
        predictor: Optional[ArrivalRatePredictor] = None,
        controller: Optional[str] = None,
    ) -> None:
        self.config = config
        self.jobs = max(1, min(int(jobs), config.effective_shards))
        self._controller_key = controller or "paper"
        self._clock = EpochClock(0.0)
        self._peer_upload: Optional[float] = None
        self.vm_cost_series: List[float] = []
        self._run_state: Optional[_CatalogRunState] = None
        self._restored_shards: Optional[List[ChannelShard]] = None

        self.tracker = TrackingServer(
            num_channels=config.channel_slots,
            chunks_per_channel=[config.chunks_per_channel]
            * config.channel_slots,
            interval_seconds=config.interval_seconds,
        )
        self.facility = CloudFacility(
            config.vm_clusters(),
            config.nfs_clusters(),
            clock=self._clock,
        )
        self.broker = Broker(self.facility)
        self._estimator = DemandEstimator(
            config.capacity_model(),
            mode=config.mode,
            default_prior=config.behaviour_matrix(),
        )
        self.controller = self._build_controller(predictor)

        self._shards: Optional[List[ChannelShard]] = None  # jobs == 1
        self._workers: List[mp.Process] = []
        self._conns: List = []
        self._started = False
        self._closed = False
        self._layout: Optional[EpochShmLayout] = None
        self._segment: Optional[ParentSegment] = None
        #: Cumulative phase breakdown of the run.  ``kernel`` is CPU
        #: seconds inside the shard kernels (summed across workers);
        #: ``merge`` and ``controller`` are parent wall clock; ``ipc``
        #: is the epoch round-trip's wall clock minus kernel CPU —
        #: serialization, pipe acks and scheduling (0 when workers
        #: genuinely overlap on spare cores).
        self.phase_seconds: Dict[str, float] = {
            "kernel": 0.0, "merge": 0.0, "controller": 0.0, "ipc": 0.0,
        }

    def _build_controller(
        self, predictor: Optional[ArrivalRatePredictor]
    ) -> ProvisioningController:
        """The control plane: single-region Eqn (6)/(7) provisioning,
        under the selected policy (the paper's by default)."""
        cls = controller_class(self._controller_key)
        return cls(
            self._estimator,
            self.tracker,
            self.broker,
            self.config.sla_terms(),
            predictor=predictor,
            min_capacity_per_chunk=self.config.constants.streaming_rate,
        )

    @property
    def _now(self) -> float:
        """Current control-plane time (the epoch clock's reading)."""
        return self._clock.now

    # ------------------------------------------------------------------
    def __enter__(self) -> "ShardedSimulator":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Tear down worker processes and the shm segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop_workers()

    def _stop_workers(self) -> None:
        """Stop workers, close pipes and unlink the shm segment."""
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (OSError, BrokenPipeError):
                pass
        for worker in self._workers:
            worker.join(timeout=10.0)
            if worker.is_alive():  # pragma: no cover - defensive
                worker.terminate()
                worker.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._conns = []
        self._workers = []
        if self._segment is not None:
            self._segment.close()
            self._segment = None

    def suspend(self) -> None:
        """Park the run between epochs (idempotent; no-op when closed
        or not yet started).

        Gathers the live shard simulators into the parent and releases
        the worker processes and the shared-memory epoch plane — a
        paused run then holds no OS resources beyond its own heap.  The
        next :meth:`advance_epoch` (or :meth:`snapshot_state`)
        transparently respawns workers from the parked shards; results
        are byte-identical either way, exactly like a checkpoint/resume
        round-trip through :mod:`repro.api`.
        """
        if self._closed or not self._started:
            return
        shards = self._gather_shards()
        self._stop_workers()
        self._shards = None
        self._layout = None
        self._restored_shards = shards
        self._started = False

    @property
    def shm_segment_name(self) -> Optional[str]:
        """Name of the live ``/dev/shm`` epoch segment (``None`` when
        serial, suspended, unstarted or closed).

        A supervising host records this so the segment of a SIGKILLed
        parent — the one teardown ``close()`` cannot cover — can be
        reclaimed on restart via
        :func:`repro.sim.shm.unlink_stale_segment`.
        """
        return self._segment.name if self._segment is not None else None

    # ------------------------------------------------------------------
    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        shards = self.config.effective_shards
        restored = self._restored_shards
        self._restored_shards = None
        # Build every shard in the parent, once: the catalog-wide
        # shape/spec lists are shared across all of them, and worker
        # processes inherit their shards through the fork (or adopt the
        # pickled copies under a spawn start method) instead of each
        # rebuilding the full channel list.
        if restored is not None:
            built = restored
        else:
            shapes = channel_shapes(self.config)
            all_channels = self.config.channels()
            built = [
                ChannelShard(
                    self.config, i,
                    shapes=shapes, all_channels=all_channels,
                )
                for i in range(shards)
            ]
        if self.jobs <= 1:
            self._shards = built
            return
        self._layout = EpochShmLayout(self.config)
        self._segment = ParentSegment(self._layout)
        assignments = [
            [i for i in range(shards) if i % self.jobs == w]
            for w in range(self.jobs)
        ]
        for owned in assignments:
            parent_conn, child_conn = mp.Pipe()
            owned_states = [built[i] for i in owned]
            worker = mp.Process(
                target=_worker_main,
                args=(
                    child_conn, self.config, owned, owned_states,
                    self._segment.name,
                ),
                daemon=False,
            )
            worker.start()
            child_conn.close()
            self._workers.append(worker)
            self._conns.append(parent_conn)
        for conn in self._conns:
            self._expect(conn, "ready")

    @staticmethod
    def _send(conn, message) -> None:
        """Send a control message; a dead worker is an engine error, not
        a raw ``BrokenPipeError`` (close() still tears everything down)."""
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):
            raise ShardEngineError("shard worker died unexpectedly") from None

    def _expect(self, conn, kind: str):
        try:
            message = conn.recv()
        except EOFError:
            raise ShardEngineError("shard worker died unexpectedly") from None
        if message[0] == "error":
            raise ShardEngineError(f"shard worker failed:\n{message[1]}")
        if message[0] != kind:
            raise ShardEngineError(f"unexpected worker message {message[0]!r}")
        return message[1]

    def _advance_all(
        self, t_end: float, capacities: Dict[int, np.ndarray]
    ) -> List[EpochReport]:
        self._start()
        started = time.perf_counter()  # lint: allow[DET002] phase timing
        kernel_seconds = 0.0
        if self._shards is not None:
            reports = []
            for shard in self._shards:
                shard.set_capacities(capacities)
                k0 = time.process_time()  # lint: allow[DET002] phase timing
                reports.append(shard.advance_epoch(t_end))
                # lint: allow[DET002] phase timing
                kernel_seconds += time.process_time() - k0
        else:
            for conn in self._conns:
                self._send(conn, ("epoch", t_end, capacities))
            for conn in self._conns:
                self._expect(conn, "ok")
            # Every worker has acked; map the blocks back in fixed shard
            # order (the merge's reduction-order contract).
            reports = []
            buf = self._segment.buf
            interval = self.config.interval_seconds
            for index in range(self.config.effective_shards):
                views = self._layout.views(buf, index)
                kernel_seconds += float(views["kernel_seconds"][0])
                reports.append(
                    report_from_views(
                        views, index, self._layout.owned_ids[index], interval
                    )
                )
        wall = time.perf_counter() - started  # lint: allow[DET002] phase timing
        self.phase_seconds["kernel"] += kernel_seconds
        self.phase_seconds["ipc"] += max(0.0, wall - kernel_seconds)
        return reports

    @staticmethod
    def _sorted_capacities(
        decision: ProvisioningDecision,
    ) -> Dict[int, np.ndarray]:
        return {
            channel_id: decision.per_channel_capacity[channel_id]
            for channel_id in sorted(decision.per_channel_capacity)
        }

    # ------------------------------------------------------------------
    # Control-plane hooks (the geo engine overrides these three)
    # ------------------------------------------------------------------
    def _bootstrap_capacities(self) -> Dict[int, np.ndarray]:
        """Initial deployment: expected per-slot rates -> capacities."""
        config = self.config
        rates = config.channel_rates()
        expected = {c: float(r) for c, r in enumerate(rates)}
        self._peer_upload = (
            config.upload_distribution().mean()
            if config.mode == "p2p" else None
        )
        decision = self.controller.bootstrap(
            0.0, expected, peer_upload=self._peer_upload
        )
        return self._sorted_capacities(decision)

    def _reprovision(
        self, t_end: float, merged: MergedEpoch
    ) -> Dict[int, np.ndarray]:
        """One periodic provisioning round on the merged statistics."""
        config = self.config
        live_upload = (
            merged.upload_sum / merged.upload_count
            if config.mode == "p2p" and merged.upload_count
            else self._peer_upload
        )
        decision = self.controller.run_interval(
            t_end,
            peer_upload=live_upload if config.mode == "p2p" else None,
        )
        self.vm_cost_series.append(decision.hourly_vm_cost)
        return self._sorted_capacities(decision)

    def _make_result(self, **kwargs) -> CatalogResult:
        return CatalogResult(**kwargs)

    # ------------------------------------------------------------------
    # Epoch-wise execution (the repro.api streaming protocol)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Bootstrap the run (idempotent): initial deployment + state."""
        if self._run_state is not None:
            return
        config = self.config
        started = time.perf_counter()  # lint: allow[DET002] phase timing
        capacities = self._bootstrap_capacities()
        # lint: allow[DET002] phase timing
        self.phase_seconds["controller"] += time.perf_counter() - started
        self._run_state = _CatalogRunState(
            capacities=capacities,
            num_epochs=int(
                math.ceil(config.horizon_seconds / config.interval_seconds)
            ),
        )

    @property
    def epoch(self) -> int:
        """Completed epochs so far (0 before the first)."""
        return self._run_state.epoch if self._run_state is not None else 0

    @property
    def epochs_total(self) -> int:
        config = self.config
        return int(math.ceil(config.horizon_seconds / config.interval_seconds))

    @property
    def done(self) -> bool:
        return self._run_state is not None and self._run_state.done

    def advance_epoch(self) -> Optional[Dict[str, Any]]:
        """Run one lock-step epoch; ``None`` once the horizon is reached.

        Returns the epoch's streaming payload (the flat summary
        :mod:`repro.api` wraps into an ``EpochSnapshot``).  The sequence
        of operations is exactly the historical monolithic loop's, so a
        fully drained engine yields byte-identical results.
        """
        self.start()
        state = self._run_state
        config = self.config
        if state.done:
            return None
        interval = config.interval_seconds
        horizon = config.horizon_seconds
        k = state.epoch + 1
        t_end = min(k * interval, horizon)
        reports = self._advance_all(t_end, state.capacities)
        merge_started = time.perf_counter()  # lint: allow[DET002] phase timing
        merged = merge_epoch_reports(reports)
        # lint: allow[DET002] phase timing
        self.phase_seconds["merge"] += time.perf_counter() - merge_started
        self._clock.now = t_end
        state.epoch = k
        state.epoch_times.append(t_end)
        state.step_chunks.append(merged)
        for stats in merged.stats:
            self.tracker.absorb(stats)
        state.arrivals += merged.arrivals
        state.departures += merged.departures
        state.retrievals += merged.retrievals
        state.unsmooth += merged.unsmooth
        state.sojourn_sum += merged.sojourn_sum
        state.peak_step_events = max(
            state.peak_step_events, merged.peak_step_events
        )
        state.channel_populations = merged.channel_populations

        decision = None
        if t_end + 1e-9 >= horizon or k >= state.num_epochs:
            state.done = True
        else:
            controller_started = time.perf_counter()  # lint: allow[DET002] phase timing
            state.capacities = self._reprovision(t_end, merged)
            self.phase_seconds["controller"] += (
                time.perf_counter() - controller_started  # lint: allow[DET002] phase timing
            )
            decision = self.controller.decisions[-1]
        return self._epoch_payload(k, t_end, merged, decision)

    def _epoch_payload(
        self, k: int, t_end: float, merged: MergedEpoch, decision,
    ) -> Dict[str, Any]:
        """Flat per-epoch summary for streaming consumers."""
        def mean_mbps(series: np.ndarray) -> float:
            return float(series.mean()) * 8.0 / 1e6 if series.size else 0.0

        ratios = [
            1.0 if users == 0 else smooth / users
            for _, smooth, users in merged.quality_samples
        ]
        return {
            "epoch": k,
            "t_end": float(t_end),
            "arrivals": int(merged.arrivals),
            "departures": int(merged.departures),
            "population": (
                int(merged.populations[-1]) if merged.populations.size else 0
            ),
            "peak_population": (
                int(merged.populations.max()) if merged.populations.size else 0
            ),
            "used_mbps": mean_mbps(merged.cloud_used),
            "peer_mbps": mean_mbps(merged.peer_used),
            "provisioned_mbps": mean_mbps(merged.provisioned),
            "shortfall_mbps": mean_mbps(merged.shortfall),
            "quality": float(np.mean(ratios)) if ratios else 1.0,
            "vm_cost_per_hour": (
                float(decision.hourly_vm_cost) if decision is not None else 0.0
            ),
            "decision": decision,
        }

    def result(self) -> CatalogResult:
        """The merged result of the (fully drained) run."""
        if self._run_state is None or not self._run_state.done:
            raise RuntimeError(
                "the run is not finished; drain advance_epoch() (or use "
                "run()) before asking for the result"
            )
        state = self._run_state
        step_chunks = state.step_chunks
        times = np.concatenate([m.step_times for m in step_chunks]) \
            if step_chunks else np.empty(0)
        populations = np.concatenate([m.populations for m in step_chunks]) \
            if step_chunks else np.empty(0, dtype=np.int64)
        quality_samples = [s for m in step_chunks for s in m.quality_samples]
        quality_times = np.asarray([t for t, _, _ in quality_samples])
        quality = np.asarray([
            1.0 if users == 0 else smooth / users
            for _, smooth, users in quality_samples
        ])
        return self._make_result(
            config=self.config,
            times=times,
            cloud_used=np.concatenate([m.cloud_used for m in step_chunks])
            if step_chunks else np.empty(0),
            peer_used=np.concatenate([m.peer_used for m in step_chunks])
            if step_chunks else np.empty(0),
            provisioned=np.concatenate([m.provisioned for m in step_chunks])
            if step_chunks else np.empty(0),
            shortfall=np.concatenate([m.shortfall for m in step_chunks])
            if step_chunks else np.empty(0),
            populations=populations,
            quality_times=quality_times,
            quality=quality,
            epoch_times=list(state.epoch_times),
            arrivals=state.arrivals,
            departures=state.departures,
            final_population=int(populations[-1]) if populations.size else 0,
            peak_population=int(populations.max()) if populations.size else 0,
            total_retrievals=state.retrievals,
            unsmooth_retrievals=state.unsmooth,
            mean_sojourn=(
                state.sojourn_sum / state.retrievals
                if state.retrievals else 0.0
            ),
            decisions=list(self.controller.decisions),
            vm_cost_series=list(self.vm_cost_series),
            cost_report=self.facility.billing.report(self._now),
            channel_populations=state.channel_populations,
            steps=int(times.size),
            peak_step_events=state.peak_step_events,
        )

    def run(self) -> CatalogResult:
        """Execute the whole horizon and return the merged result."""
        while self.advance_epoch() is not None:
            pass
        return self.result()

    # ------------------------------------------------------------------
    # Checkpoint support (repro.api's checkpoint()/resume())
    # ------------------------------------------------------------------
    def _gather_shards(self) -> List[ChannelShard]:
        """The current shard simulators, in shard-index order."""
        if self._closed:
            # Workers (and their shard state) are gone; writing a
            # checkpoint now would silently produce an unresumable file.
            raise RuntimeError(
                "cannot snapshot a closed engine (checkpoint before "
                "close()/the end of the `with` block)"
            )
        self._start()
        if self._shards is not None:
            return list(self._shards)
        for conn in self._conns:
            self._send(conn, ("snapshot",))
        shards: List[ChannelShard] = []
        for conn in self._conns:
            shards.extend(self._expect(conn, "ok"))
        shards.sort(key=lambda shard: shard.shard_index)
        return shards

    def snapshot_state(self) -> Dict[str, Any]:
        """One picklable object graph capturing the whole run.

        The control-plane objects go in together so shared references
        (controller -> tracker/broker -> facility) survive a pickle
        round-trip as one consistent graph.
        """
        self.start()
        return {
            "run": self._run_state,
            "clock": self._clock,
            "tracker": self.tracker,
            "facility": self.facility,
            "broker": self.broker,
            "estimator": self._estimator,
            "controller": self.controller,
            "vm_cost_series": self.vm_cost_series,
            "peer_upload": self._peer_upload,
            "shards": self._gather_shards(),
        }

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Adopt a :meth:`snapshot_state` graph (before any epoch ran)."""
        if self._started or self._run_state is not None:
            raise RuntimeError("can only restore into a fresh engine")
        self._run_state = state["run"]
        self._clock = state["clock"]
        self.tracker = state["tracker"]
        self.facility = state["facility"]
        self.broker = state["broker"]
        self._estimator = state["estimator"]
        self.controller = state["controller"]
        self.vm_cost_series = state["vm_cost_series"]
        self._peer_upload = state["peer_upload"]
        self._restored_shards = list(state["shards"])


class GeoShardedSimulator(ShardedSimulator):
    """The multi-region catalog engine.

    Shards and the epoch loop are inherited unchanged — a
    :class:`~repro.workload.catalog.GeoCatalogConfig` presents its
    (region, channel) pairs as channel *slots*, so every worker-side
    mechanism (stable traces, lock-step epochs, shard-order merge)
    applies verbatim, and slot ids are region-major: the merged stats'
    channel-id sort IS the fixed region-then-channel reduction order.

    Only the control plane differs: each epoch the merged per-slot
    statistics are grouped by viewer region and fed to the multi-region
    VM configuration problem (:mod:`repro.geo.allocation`), any region's
    clusters may serve any region's viewers, the plan's cross-region
    egress is metered into billing, and its capacity-weighted latency
    discounts flow into the quality metrics.
    """

    def __init__(
        self,
        config: GeoCatalogConfig,
        *,
        jobs: int = 1,
        predictor: Optional[ArrivalRatePredictor] = None,
        controller: Optional[str] = None,
    ) -> None:
        if not isinstance(config, GeoCatalogConfig):
            raise TypeError(
                "GeoShardedSimulator needs a GeoCatalogConfig "
                "(use geo_catalog_config(...))"
            )
        super().__init__(
            config, jobs=jobs, predictor=predictor, controller=controller
        )

    def _build_controller(
        self, predictor: Optional[ArrivalRatePredictor]
    ) -> GeoProvisioningController:
        config = self.config
        cls = controller_class(self._controller_key, geo=True)
        return cls(
            self._estimator,
            self.tracker,
            self.broker,
            config.geo_topology(),
            config.sla_terms(),
            config.slot_region,
            config.slot_channel,
            predictor=predictor,
            exact=config.exact,
            min_capacity_per_chunk=config.constants.streaming_rate,
        )

    def _make_result(self, **kwargs) -> GeoCatalogResult:
        # Decision k capacitates epoch k+1 (the bootstrap capacitates
        # epoch 1), so the decision list truncated to the epoch count is
        # exactly the per-epoch in-effect telemetry.
        decisions = self.controller.decisions
        epochs = len(kwargs["epoch_times"])
        telemetry = [d.epoch_telemetry() for d in decisions[:epochs]]
        return GeoCatalogResult(
            **kwargs,
            region_names=list(self.config.region_names),
            epoch_discounts=[t["discount"] for t in telemetry],
            epoch_remote_fractions=[t["remote_fraction"] for t in telemetry],
            epoch_egress_rates=[
                t["egress_rate_per_hour"] for t in telemetry
            ],
        )


def make_engine(
    config: CatalogConfig,
    *,
    jobs: int = 1,
    predictor: Optional[ArrivalRatePredictor] = None,
    controller: Optional[str] = None,
) -> ShardedSimulator:
    """The right engine for the config: geo configs get the multi-region
    control plane, plain catalogs the single-region one."""
    cls = (
        GeoShardedSimulator if isinstance(config, GeoCatalogConfig)
        else ShardedSimulator
    )
    return cls(config, jobs=jobs, predictor=predictor, controller=controller)
