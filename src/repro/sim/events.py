"""Event records and the event priority queue.

Events are ordered by ``(time, priority, sequence)``. The monotonically
increasing sequence number makes ordering total and deterministic even when
many events share a timestamp, which matters for reproducibility.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Attributes
    ----------
    time:
        Simulated time (seconds) at which the event fires.
    priority:
        Tie-breaker among events at the same time; lower fires first.
    seq:
        Insertion order; makes the ordering total.
    action:
        Zero-argument callable executed when the event fires.
    label:
        Human-readable tag for tracing and tests.
    """

    time: float
    priority: int
    seq: int
    action: Callable[[], Any] = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True


class EventQueue:
    """A binary-heap priority queue of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._counter = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(
        self,
        time: float,
        action: Callable[[], Any],
        *,
        priority: int = 0,
        label: str = "",
    ) -> Event:
        """Schedule ``action`` at ``time`` and return the event handle."""
        if time != time:  # NaN guard
            raise ValueError("event time must not be NaN")
        event = Event(time, priority, next(self._counter), action, label)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest non-cancelled event, or ``None``."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._live -= 1
            return event
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the earliest pending event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def cancel(self, event: Event) -> None:
        """Cancel a previously scheduled event (lazy removal)."""
        if not event.cancelled:
            event.cancel()
            self._live = max(0, self._live - 1)

    def clear(self) -> None:
        """Drop all pending events."""
        self._heap.clear()
        self._live = 0

    def snapshot(self) -> Tuple[Tuple[float, str], ...]:
        """Sorted (time, label) pairs of pending events, for diagnostics."""
        pending = [e for e in self._heap if not e.cancelled]
        return tuple((e.time, e.label) for e in sorted(pending))
