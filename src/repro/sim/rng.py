"""Deterministic random-number streams.

Every stochastic component in the reproduction draws from its own named
``numpy.random.Generator`` stream, derived from a single experiment seed.
This makes whole experiments bit-reproducible while keeping components
statistically independent: changing how many samples one component draws
does not perturb any other component.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

__all__ = ["make_rng", "RandomStreams", "ENTROPY"]


class _Entropy:
    """Singleton sentinel: explicitly request an OS-entropy generator."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "repro.sim.rng.ENTROPY"


#: Pass as ``seed`` to opt *in* to an irreproducible OS-entropy stream
#: (interactive exploration only).  ``seed=None`` is no longer an
#: implicit entropy source: it deterministically falls back to seed 0,
#: so a forgotten seed can never silently break bit-reproducibility —
#: irreproducibility now requires spelling ``ENTROPY`` at the call site.
ENTROPY = _Entropy()


def make_rng(seed: Optional[int], *names: str) -> np.random.Generator:
    """Create a generator for the stream identified by ``names``.

    The stream key is hashed together with ``seed`` through numpy's
    ``SeedSequence.spawn_key`` mechanism so that distinct names yield
    independent streams.

    Parameters
    ----------
    seed:
        Experiment master seed.  ``None`` deterministically falls back
        to seed 0 (``make_rng(None, *n) == make_rng(0, *n)``); OS
        entropy is an explicit opt-in via the :data:`ENTROPY` sentinel.
    names:
        Arbitrary string labels identifying the component, e.g.
        ``make_rng(7, "workload", "arrivals")``.
    """
    if seed is ENTROPY:
        return np.random.default_rng()
    if seed is None:
        seed = 0
    label = "/".join(names)
    # Derive a stable 64-bit entropy word from the label.
    digest = np.uint64(14695981039346656037)  # FNV-1a offset basis
    prime = np.uint64(1099511628211)
    for byte in label.encode("utf-8"):
        digest = np.uint64((int(digest) ^ byte) * int(prime) % (1 << 64))
    return np.random.default_rng(np.random.SeedSequence([seed, int(digest)]))


class RandomStreams:
    """A registry of named random streams sharing one master seed.

    Streams are created lazily and cached, so repeated lookups return the
    *same* generator object (continuing its sequence), which is what a
    long-running simulation needs.

    >>> streams = RandomStreams(seed=42)
    >>> a = streams.get("arrivals")
    >>> a is streams.get("arrivals")
    True
    """

    def __init__(self, seed: Optional[int] = 0):
        self.seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, *names: str) -> np.random.Generator:
        """Return the (cached) generator for the given stream label."""
        key = "/".join(names)
        if key not in self._streams:
            self._streams[key] = make_rng(self.seed, key)
        return self._streams[key]

    def batch(self, n: int, *names: str) -> np.ndarray:
        """Draw ``n`` uniforms in ``[0, 1)`` from the named stream at once.

        Stream-compatible with scalar draws: numpy's bit generators
        consume the underlying stream identically whether doubles are
        requested one at a time or as a block, so
        ``streams.batch(n, "x")`` yields exactly the values ``n``
        successive ``streams.get("x").random()`` calls would have — the
        invariant the vectorized step kernel's golden parity rests on
        (and that ``tests/test_kernel_parity.py`` pins down).
        """
        if n < 0:
            raise ValueError("batch size must be >= 0")
        return self.get(*names).random(n)

    def spawn(self, *names: str) -> "RandomStreams":
        """Create a child registry with an independent derived seed."""
        child_seed = int(make_rng(self.seed, "spawn", *names).integers(0, 2**31 - 1))
        return RandomStreams(child_seed)

    def labels(self) -> Iterable[str]:
        """Labels of streams created so far (for diagnostics)."""
        return tuple(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RandomStreams(seed={self.seed}, streams={len(self._streams)})"
