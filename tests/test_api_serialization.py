"""Tests for the JSON faces of :mod:`repro.api`.

``EngineConfig.to_dict()/from_dict()`` is the service's wire format for
``POST /runs`` and the host's ``meta.json``; ``EpochSnapshot.to_dict()``
is the SSE event body.  The contract pinned here:

* every engine kind round-trips exactly (spec, constants, workers,
  predictor, controller — and reconstructed configs open identical
  runs);
* the documents are strict: unknown keys fail fast at every level
  (top, spec, constants) instead of being silently dropped;
* everything in the output is plain JSON scalars — numpy never leaks.
"""

import json

import numpy as np
import pytest

from repro.api import EngineConfig, EpochSnapshot, open_run
from repro.experiments.config import small_scenario
from repro.workload.catalog import catalog_config, geo_catalog_config


def small_catalog(**overrides):
    knobs = dict(
        num_channels=6, chunks_per_channel=4, horizon_hours=0.5,
        arrival_rate=0.5, num_shards=4, dt=60.0, interval_minutes=10.0,
    )
    knobs.update(overrides)
    return catalog_config(**knobs)


CONFIGS = {
    "closed-loop": lambda: EngineConfig(
        spec=small_scenario("p2p", horizon_hours=0.5), controller="reactive"
    ),
    "catalog": lambda: EngineConfig(spec=small_catalog(), workers=2),
    "geo-catalog": lambda: EngineConfig(
        spec=geo_catalog_config(
            topology="us-eu", num_channels=4, chunks_per_channel=3,
            horizon_hours=0.5, arrival_rate=0.4, num_shards=4, dt=60.0,
            interval_minutes=10.0,
        ),
        predictor="seasonal",
    ),
}


# ----------------------------------------------------------------------
# EngineConfig round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kind", sorted(CONFIGS))
def test_engine_config_round_trip(kind):
    config = CONFIGS[kind]()
    document = config.to_dict()
    assert document["kind"] == kind
    # The document must survive an actual JSON wire crossing.
    rebuilt = EngineConfig.from_dict(json.loads(json.dumps(document)))
    assert rebuilt.kind == config.kind
    assert rebuilt.workers == config.workers
    assert rebuilt.predictor == config.predictor
    assert rebuilt.controller == config.controller
    assert rebuilt.to_dict() == document


def test_round_trip_config_opens_identical_run():
    config = CONFIGS["catalog"]()
    rebuilt = EngineConfig.from_dict(config.to_dict())
    with open_run(config) as a, open_run(rebuilt) as b:
        ra, rb = a.result(), b.result()
    assert ra.times.tobytes() == rb.times.tobytes()
    assert ra.quality.tobytes() == rb.quality.tobytes()
    assert ra.channel_populations == rb.channel_populations


def test_to_dict_is_json_plain():
    config = CONFIGS["closed-loop"]()
    document = config.to_dict()
    json.dumps(document)  # would raise on any numpy scalar/array

    def walk(value):
        if isinstance(value, dict):
            for inner in value.values():
                walk(inner)
        elif isinstance(value, list):
            for inner in value:
                walk(inner)
        else:
            assert not isinstance(value, (np.generic, np.ndarray))

    walk(document)


def test_closed_loop_behaviour_matrix_round_trips():
    spec = small_scenario("p2p", horizon_hours=0.5)
    config = EngineConfig(spec=spec)
    rebuilt = EngineConfig.from_dict(config.to_dict())
    if spec.behaviour is None:
        assert rebuilt.spec.behaviour is None
    else:
        assert isinstance(rebuilt.spec.behaviour, np.ndarray)
        np.testing.assert_array_equal(rebuilt.spec.behaviour, spec.behaviour)


# ----------------------------------------------------------------------
# Strictness: unknown keys fail fast at every level
# ----------------------------------------------------------------------
def test_unknown_top_level_key_rejected():
    document = CONFIGS["catalog"]().to_dict()
    document["retries"] = 3
    with pytest.raises(ValueError, match="retries"):
        EngineConfig.from_dict(document)


def test_unknown_spec_key_rejected():
    document = CONFIGS["catalog"]().to_dict()
    document["spec"]["num_chanels"] = 12  # the typo must not pass
    with pytest.raises(ValueError, match="num_chanels"):
        EngineConfig.from_dict(document)


def test_unknown_constants_key_rejected():
    document = CONFIGS["catalog"]().to_dict()
    document["spec"]["constants"]["vm_bandwith"] = 1.0
    with pytest.raises(ValueError, match="vm_bandwith"):
        EngineConfig.from_dict(document)


def test_unknown_kind_rejected():
    document = CONFIGS["catalog"]().to_dict()
    document["kind"] = "batch"
    with pytest.raises(ValueError, match="batch"):
        EngineConfig.from_dict(document)


def test_missing_spec_rejected():
    document = CONFIGS["catalog"]().to_dict()
    del document["spec"]
    with pytest.raises(ValueError):
        EngineConfig.from_dict(document)


# ----------------------------------------------------------------------
# EpochSnapshot
# ----------------------------------------------------------------------
def make_snapshot(**overrides):
    values = dict(
        index=2, epochs_total=3, t_end=np.float64(1200.0),
        arrivals=np.int64(41), departures=7, population=34,
        peak_population=36, used_mbps=410.5, peer_mbps=0.0,
        provisioned_mbps=500.0, shortfall_mbps=0.0,
        quality=np.float64(0.93), vm_cost_per_hour=12.5,
    )
    values.update(overrides)
    return EpochSnapshot(**values)


def test_epoch_snapshot_round_trip_coerces_numpy():
    snapshot = make_snapshot()
    document = snapshot.to_dict()
    json.dumps(document)  # plain scalars only
    assert isinstance(document["t_end"], float)
    assert isinstance(document["arrivals"], int)
    rebuilt = EpochSnapshot.from_dict(document)
    assert rebuilt.index == snapshot.index
    assert rebuilt.quality == pytest.approx(float(snapshot.quality))
    assert rebuilt.to_dict() == document


def test_epoch_snapshot_decision_not_serialized():
    snapshot = make_snapshot(decision={"plan": object()})
    document = snapshot.to_dict()
    assert "decision" not in document
    assert EpochSnapshot.from_dict(document).decision is None


def test_epoch_snapshot_unknown_key_rejected():
    document = make_snapshot().to_dict()
    document["jitter"] = 1.0
    with pytest.raises(ValueError, match="jitter"):
        EpochSnapshot.from_dict(document)


def test_epoch_snapshot_missing_key_rejected():
    document = make_snapshot().to_dict()
    del document["quality"]
    with pytest.raises(ValueError, match="quality"):
        EpochSnapshot.from_dict(document)
