"""Tests for repro.p2p.ownership (Proposition 1) and coownership models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p2p.coownership import empirical_coownership, independent_coownership
from repro.p2p.ownership import solve_ownership
from repro.queueing.transitions import sequential_matrix, uniform_jump_matrix


class TestOwnership:
    def test_fixed_point_property(self):
        """The solution must satisfy Proposition 1's balance equations."""
        p = uniform_jump_matrix(5, 0.6, 0.2)
        n = np.array([4.0, 3.0, 2.0, 2.0, 1.0])
        result = solve_ownership(p, n)
        nu = result.per_queue
        for i in range(5):
            for j in range(5):
                if j == i:
                    assert nu[i, i] == pytest.approx(n[i])
                    continue
                expected = sum(nu[i, k] * p[k, j] for k in range(5))
                assert nu[i, j] == pytest.approx(expected, abs=1e-9)

    def test_sequential_chain_ownership(self):
        """With pure sequential viewing, owners of chunk i are exactly the
        users now in chunks i+1.. weighted by survival probabilities."""
        q = 0.8
        p = sequential_matrix(4, continue_prob=q)
        n = np.array([1.0, q, q**2, q**3])  # equilibrium with Lambda=1, T0=1
        result = solve_ownership(p, n)
        # A peer in queue j > i owns chunk i iff it passed through i; in a
        # pure chain everyone passed through all earlier chunks.
        for i in range(4):
            for j in range(i + 1, 4):
                assert result.per_queue[i, j] == pytest.approx(n[j], rel=1e-9)
        # Nobody "later" owns a chunk ahead of them.
        for i in range(1, 4):
            for j in range(i):
                assert result.per_queue[i, j] == pytest.approx(0.0, abs=1e-12)

    def test_owners_exclude_current_downloaders(self):
        p = sequential_matrix(3, 0.5)
        n = np.array([2.0, 1.0, 0.5])
        result = solve_ownership(p, n)
        # owners_i = sum over other queues only.
        expected = result.per_queue.sum(axis=1) - np.diag(result.per_queue)
        assert result.owners == pytest.approx(expected)

    def test_population(self):
        p = sequential_matrix(3, 0.5)
        n = np.array([2.0, 1.0, 0.5])
        assert solve_ownership(p, n).population == pytest.approx(3.5)

    def test_zero_population(self):
        p = uniform_jump_matrix(4, 0.5, 0.2)
        result = solve_ownership(p, np.zeros(4))
        assert np.all(result.owners == 0.0)
        assert result.population == 0.0

    def test_rarest_order_sorted(self):
        p = uniform_jump_matrix(5, 0.6, 0.2)
        n = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        result = solve_ownership(p, n)
        order = result.rarest_order()
        owners_sorted = result.owners[order]
        assert np.all(np.diff(owners_sorted) >= -1e-12)

    def test_ownership_nonnegative(self):
        p = uniform_jump_matrix(6, 0.5, 0.3)
        n = np.linspace(1.0, 6.0, 6)
        result = solve_ownership(p, n)
        assert np.all(result.per_queue >= 0.0)
        assert np.all(result.owners >= 0.0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            solve_ownership(sequential_matrix(3, 0.5), np.zeros(4))

    def test_negative_population_rejected(self):
        with pytest.raises(ValueError):
            solve_ownership(sequential_matrix(2, 0.5), np.array([1.0, -1.0]))

    @given(
        n_chunks=st.integers(min_value=2, max_value=8),
        cont=st.floats(min_value=0.0, max_value=0.6),
        jump=st.floats(min_value=0.0, max_value=0.3),
    )
    @settings(max_examples=40, deadline=None)
    def test_owner_count_bounded_by_total_downloads(self, n_chunks, cont, jump):
        """Owners of chunk i cannot exceed the channel population (every
        owner is a peer in some other queue)."""
        if cont + jump >= 1.0:
            return
        p = uniform_jump_matrix(n_chunks, cont, jump)
        rng = np.random.default_rng(n_chunks)
        n = rng.uniform(0.0, 5.0, size=n_chunks)
        result = solve_ownership(p, n)
        population = n.sum()
        assert np.all(result.owners <= population + 1e-6)


class TestIndependentCoownership:
    def test_product_form(self):
        psi = independent_coownership(np.array([2.0, 4.0]), population=8.0)
        assert psi(0, 1) == pytest.approx(0.25 * 0.5)

    def test_diagonal_is_marginal(self):
        psi = independent_coownership(np.array([2.0, 4.0]), population=8.0)
        assert psi(1, 1) == pytest.approx(0.5)

    def test_fraction_clipped_at_one(self):
        psi = independent_coownership(np.array([12.0]), population=8.0)
        assert psi(0, 0) == pytest.approx(1.0)

    def test_zero_population(self):
        psi = independent_coownership(np.array([1.0, 2.0]), population=0.0)
        assert psi(0, 1) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            independent_coownership(np.array([-1.0]), population=2.0)


class TestEmpiricalCoownership:
    def test_exact_joint_frequencies(self):
        buffers = np.array(
            [
                [1, 1, 0],
                [1, 0, 0],
                [0, 1, 1],
                [1, 1, 1],
            ],
            dtype=bool,
        )
        psi = empirical_coownership(buffers)
        assert psi(0, 1) == pytest.approx(2 / 4)  # peers 0 and 3
        assert psi(0, 2) == pytest.approx(1 / 4)  # peer 3
        assert psi(2, 2) == pytest.approx(2 / 4)

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        buffers = rng.random((20, 5)) < 0.4
        psi = empirical_coownership(buffers)
        for a in range(5):
            for b in range(5):
                assert psi(a, b) == pytest.approx(psi(b, a))

    def test_empty_peers(self):
        psi = empirical_coownership(np.zeros((0, 4), dtype=bool))
        assert psi(0, 3) == 0.0

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            empirical_coownership(np.zeros(5))

    def test_joint_bounded_by_marginals(self):
        rng = np.random.default_rng(2)
        buffers = rng.random((50, 6)) < 0.5
        psi = empirical_coownership(buffers)
        for a in range(6):
            for b in range(6):
                assert psi(a, b) <= min(psi(a, a), psi(b, b)) + 1e-12
