"""Tests for repro.vod.tracker and repro.vod.metrics."""

import pytest

from repro.vod.metrics import QualityTracker
from repro.vod.tracker import TrackingServer


@pytest.fixture
def tracker():
    return TrackingServer(
        num_channels=2, chunks_per_channel=[3, 4], interval_seconds=3600.0
    )


class TestTracker:
    def test_arrival_rate(self, tracker):
        for _ in range(36):
            tracker.record_arrival(0, 0, 100.0)
        stats = tracker.close_interval()
        assert stats[0].arrivals == 36
        assert stats[0].arrival_rate == pytest.approx(0.01)
        assert stats[1].arrivals == 0

    def test_transition_counts(self, tracker):
        tracker.record_transition(0, 0, 1)
        tracker.record_transition(0, 0, 1)
        tracker.record_transition(0, 1, 2)
        tracker.record_departure(0, 2)
        stats = tracker.close_interval()[0]
        assert stats.transition_counts[0, 1] == 2
        assert stats.transition_counts[1, 2] == 1
        assert stats.departure_counts[2] == 1

    def test_interval_reset(self, tracker):
        tracker.record_arrival(0, 0, 1.0)
        tracker.close_interval()
        stats = tracker.close_interval()[0]
        assert stats.arrivals == 0

    def test_history_kept(self, tracker):
        tracker.record_arrival(1, 2, 5.0)
        tracker.close_interval()
        tracker.close_interval()
        assert len(tracker.history[1]) == 2
        assert tracker.last_closed(1).arrivals == 0

    def test_mean_upload_capacity(self, tracker):
        tracker.record_arrival(0, 0, 100.0)
        tracker.record_arrival(0, 1, 300.0)
        stats = tracker.close_interval()[0]
        assert stats.mean_upload_capacity == pytest.approx(200.0)

    def test_observed_alpha(self, tracker):
        for _ in range(8):
            tracker.record_arrival(0, 0, 1.0)
        for _ in range(2):
            tracker.record_arrival(0, 2, 1.0)
        stats = tracker.close_interval()[0]
        assert stats.observed_alpha == pytest.approx(0.8)

    def test_empty_stats_has_zero_observations(self, tracker):
        stats = tracker.empty_stats(1)
        assert stats.arrivals == 0
        assert stats.transition_counts.shape == (4, 4)
        assert stats.observed_alpha == 1.0

    def test_cloud_tickets_unique(self, tracker):
        a = tracker.issue_cloud_ticket()
        b = tracker.issue_cloud_ticket()
        assert a.ticket != b.ticket
        assert tracker.tickets_issued == 2
        assert a.entry_ip == "10.0.0.1"
        assert a.ports

    def test_validation(self):
        with pytest.raises(ValueError):
            TrackingServer(0, [], 3600.0)
        with pytest.raises(ValueError):
            TrackingServer(2, [3], 3600.0)
        with pytest.raises(ValueError):
            TrackingServer(1, [3], 0.0)


class TestQualityTracker:
    def test_sample_quality(self):
        q = QualityTracker()
        sample = q.record_sample(300.0, {0: 8, 1: 9}, {0: 10, 1: 10})
        assert sample.quality == pytest.approx(17 / 20)
        assert sample.per_channel[0] == pytest.approx(0.8)
        assert sample.total_users == 20

    def test_empty_channel_counts_as_smooth(self):
        q = QualityTracker()
        sample = q.record_sample(300.0, {0: 0}, {0: 0})
        assert sample.quality == 1.0
        assert sample.per_channel[0] == 1.0

    def test_average_quality(self):
        q = QualityTracker()
        q.record_sample(300.0, {0: 10}, {0: 10})
        q.record_sample(600.0, {0: 5}, {0: 10})
        assert q.average_quality == pytest.approx(0.75)

    def test_retrieval_aggregates(self):
        q = QualityTracker()
        q.record_retrieval(10.0, 0, 1, sojourn=100.0, smooth=True)
        q.record_retrieval(20.0, 0, 2, sojourn=400.0, smooth=False)
        assert q.total_retrievals == 2
        assert q.smooth_retrieval_fraction == pytest.approx(0.5)
        assert q.mean_sojourn == pytest.approx(250.0)
        assert q.channel_retrieval_summary(0) == (2, 1)

    def test_quality_series(self):
        q = QualityTracker()
        q.record_sample(300.0, {0: 1}, {0: 1})
        q.record_sample(600.0, {0: 1}, {0: 2})
        times, quality = q.quality_series()
        assert list(times) == [300.0, 600.0]
        assert quality == pytest.approx([1.0, 0.5])

    def test_channel_size_quality_points(self):
        q = QualityTracker()
        q.record_sample(300.0, {0: 4, 1: 0}, {0: 5, 1: 0})
        points = q.channel_size_quality_points(min_users=1)
        assert points == [(5, 0.8)]

    def test_no_samples_defaults(self):
        q = QualityTracker()
        assert q.average_quality == 1.0
        assert q.smooth_retrieval_fraction == 1.0
        assert q.mean_sojourn == 0.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            QualityTracker(window_seconds=0.0)
