"""Tests for repro.queueing.jackson: the traffic equations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing.jackson import (
    external_arrival_vector,
    solve_traffic_equations,
)
from repro.queueing.transitions import sequential_matrix, uniform_jump_matrix


class TestExternalArrivals:
    def test_alpha_split(self):
        ext = external_arrival_vector(5, 10.0, alpha=0.8)
        assert ext[0] == pytest.approx(8.0)
        assert ext[1:] == pytest.approx(np.full(4, 0.5))
        assert ext.sum() == pytest.approx(10.0)

    def test_single_chunk_gets_everything(self):
        ext = external_arrival_vector(1, 3.0, alpha=0.2)
        assert ext[0] == pytest.approx(3.0)

    def test_alpha_one(self):
        ext = external_arrival_vector(4, 2.0, alpha=1.0)
        assert ext[0] == pytest.approx(2.0)
        assert np.all(ext[1:] == 0.0)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            external_arrival_vector(3, 1.0, alpha=1.5)

    def test_rejects_negative_rate(self):
        with pytest.raises(ValueError):
            external_arrival_vector(3, -1.0)


class TestTrafficEquations:
    def test_sequential_chain_decays_geometrically(self):
        # Pure sequential viewing: lambda_i = alpha * Lambda * q^(i-1) when
        # all arrivals start at chunk 1.
        q = 0.8
        p = sequential_matrix(5, continue_prob=q)
        ext = external_arrival_vector(5, 1.0, alpha=1.0)
        sol = solve_traffic_equations(p, ext)
        expected = np.array([q**i for i in range(5)])
        assert sol.arrival_rates == pytest.approx(expected)

    def test_flow_conservation(self):
        # lambda must satisfy lambda = ext + P^T lambda exactly.
        p = uniform_jump_matrix(6, 0.6, 0.2)
        ext = external_arrival_vector(6, 2.5, alpha=0.8)
        sol = solve_traffic_equations(p, ext)
        recomputed = ext + p.T @ sol.arrival_rates
        assert sol.arrival_rates == pytest.approx(recomputed)

    def test_rates_nonnegative(self):
        p = uniform_jump_matrix(8, 0.5, 0.3)
        ext = external_arrival_vector(8, 1.0)
        sol = solve_traffic_equations(p, ext)
        assert np.all(sol.arrival_rates >= 0)

    def test_zero_external_gives_zero(self):
        p = uniform_jump_matrix(4, 0.5, 0.2)
        sol = solve_traffic_equations(p, np.zeros(4))
        assert np.all(sol.arrival_rates == 0.0)

    def test_visit_ratios_scale_free(self):
        p = uniform_jump_matrix(5, 0.6, 0.1)
        a = solve_traffic_equations(p, external_arrival_vector(5, 1.0))
        b = solve_traffic_equations(p, external_arrival_vector(5, 7.0))
        assert a.visit_ratios == pytest.approx(b.visit_ratios)

    def test_total_visits_exceed_one(self):
        # Every user downloads at least one chunk.
        p = uniform_jump_matrix(5, 0.6, 0.1)
        sol = solve_traffic_equations(p, external_arrival_vector(5, 1.0))
        assert sol.arrival_rates.sum() >= 1.0

    def test_rate_linearity(self):
        p = uniform_jump_matrix(5, 0.5, 0.2)
        one = solve_traffic_equations(p, external_arrival_vector(5, 1.0))
        three = solve_traffic_equations(p, external_arrival_vector(5, 3.0))
        assert three.arrival_rates == pytest.approx(3.0 * one.arrival_rates)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            solve_traffic_equations(sequential_matrix(3, 0.5), np.zeros(4))

    def test_negative_external_rejected(self):
        with pytest.raises(ValueError):
            solve_traffic_equations(
                sequential_matrix(3, 0.5), np.array([1.0, -0.5, 0.0])
            )

    @given(
        n=st.integers(min_value=2, max_value=10),
        cont=st.floats(min_value=0.0, max_value=0.6),
        jump=st.floats(min_value=0.0, max_value=0.3),
        rate=st.floats(min_value=0.0, max_value=50.0),
        alpha=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_throughput_equals_external_rate(self, n, cont, jump, rate, alpha):
        """Departure flow equals arrival flow in equilibrium."""
        if cont + jump >= 1.0:
            return
        p = uniform_jump_matrix(n, cont, jump)
        ext = external_arrival_vector(n, rate, alpha)
        sol = solve_traffic_equations(p, ext)
        # Departure rate: sum_i lambda_i * (1 - sum_j P_ij).
        leave = 1.0 - p.sum(axis=1)
        departure_rate = float(sol.arrival_rates @ leave)
        assert departure_rate == pytest.approx(rate, rel=1e-6, abs=1e-9)
