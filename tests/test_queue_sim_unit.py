"""Unit tests for the event-driven Jackson simulator and the VM monitor.

(The statistical validation against the closed forms lives in
``test_queue_sim_validation.py``; these tests pin mechanical behaviour:
determinism, warmup accounting, replay semantics, monitor series.)
"""

import numpy as np
import pytest

from repro.cloud.cluster import VirtualClusterSpec
from repro.cloud.monitor import VMMonitor
from repro.cloud.vm import VMPool
from repro.queueing.transitions import sequential_matrix, uniform_jump_matrix
from repro.vod.queue_sim import JacksonChannelSimulator

MU = 1.0 / 12.0


def make_sim(**kwargs):
    defaults = dict(
        transition_matrix=uniform_jump_matrix(3, 0.5, 0.2),
        external_rate=0.05,
        service_rate=MU,
        servers=np.full(3, 10),
        alpha=0.8,
        seed=1,
    )
    defaults.update(kwargs)
    return JacksonChannelSimulator(**defaults)


class TestQueueSimMechanics:
    def test_deterministic_given_seed(self):
        a = make_sim(seed=7).run(horizon=20_000.0)
        b = make_sim(seed=7).run(horizon=20_000.0)
        assert a.arrivals == b.arrivals
        assert a.departures == b.departures
        assert np.allclose(a.mean_in_system, b.mean_in_system)

    def test_seeds_differ(self):
        a = make_sim(seed=1).run(horizon=20_000.0)
        b = make_sim(seed=2).run(horizon=20_000.0)
        assert a.arrivals != b.arrivals

    def test_warmup_discarded(self):
        """Statistics with warmup must cover only the post-warmup window."""
        result = make_sim(seed=3).run(horizon=50_000.0, warmup=10_000.0)
        assert result.horizon == pytest.approx(40_000.0)
        assert np.all(result.mean_in_system >= 0)

    def test_warmup_must_precede_horizon(self):
        with pytest.raises(ValueError):
            make_sim().run(horizon=10.0, warmup=10.0)

    def test_zero_rate_channel_stays_empty(self):
        result = make_sim(external_rate=0.0).run(horizon=5_000.0)
        assert result.arrivals == 0
        assert np.all(result.mean_in_system == 0.0)

    def test_visits_exceed_external_arrivals(self):
        """Users download multiple chunks, so total completed visits must
        exceed the number of sessions (in a stable run)."""
        result = make_sim(seed=5).run(horizon=100_000.0)
        assert result.completed_visits.sum() > result.arrivals

    def test_replay_buffered_reduces_visits(self):
        """With instant replay of buffered chunks, revisits skip service, so
        fewer downloads complete for the same behaviour."""
        # A matrix with frequent revisits (jump-heavy).
        p = uniform_jump_matrix(3, 0.3, 0.5)
        base = JacksonChannelSimulator(
            p, 0.05, MU, np.full(3, 20), alpha=0.8, seed=11,
            replay_buffered=False,
        ).run(horizon=100_000.0)
        replay = JacksonChannelSimulator(
            p, 0.05, MU, np.full(3, 20), alpha=0.8, seed=11,
            replay_buffered=True,
        ).run(horizon=100_000.0)
        assert replay.completed_visits.sum() < base.completed_visits.sum()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            make_sim(external_rate=-1.0)
        with pytest.raises(ValueError):
            make_sim(service_rate=0.0)
        with pytest.raises(ValueError):
            make_sim(servers=np.full(2, 5))  # wrong length
        with pytest.raises(ValueError):
            make_sim(servers=np.array([1, -1, 1]))

    def test_sequential_chain_decaying_visits(self):
        p = sequential_matrix(4, continue_prob=0.7)
        result = JacksonChannelSimulator(
            p, 0.05, MU, np.full(4, 20), alpha=1.0, seed=13
        ).run(horizon=100_000.0)
        visits = result.completed_visits
        assert visits[0] > visits[1] > visits[2] > visits[3]


class TestVMMonitor:
    def make_pool(self):
        spec = VirtualClusterSpec("standard", 0.6, 0.45, 10, 1.25e6)
        return VMPool(spec)

    def test_sample_series(self):
        pool = self.make_pool()
        monitor = VMMonitor({"standard": pool})
        pool.launch(4)
        monitor.sample(0.0, used_bandwidth=2e6)
        pool.shutdown(2)
        monitor.sample(3600.0, used_bandwidth=1e6)
        assert monitor.provisioned_series() == [4 * 1.25e6, 2 * 1.25e6]
        assert monitor.used_series() == [2e6, 1e6]

    def test_utilization_bounds(self):
        pool = self.make_pool()
        monitor = VMMonitor({"standard": pool})
        snap = monitor.sample(0.0, used_bandwidth=5e6)
        assert snap.utilization == 0.0  # nothing running
        pool.launch(1)
        snap = monitor.sample(1.0, used_bandwidth=5e6)
        assert snap.utilization == 1.0  # clamped

    def test_launch_shutdown_counters_exposed(self):
        pool = self.make_pool()
        monitor = VMMonitor({"standard": pool})
        pool.launch(3)
        pool.shutdown(1)
        assert monitor.launch_counts() == {"standard": 3}
        assert monitor.shutdown_counts() == {"standard": 1}
