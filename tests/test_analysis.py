"""Tests for repro.analysis — the determinism lint engine.

The fixture files under ``tests/analysis_fixtures/`` are scanned, never
imported; each planted violation carries a trailing ``EXPECT[RULE]``
marker, and the tests below require the linter's findings to match the
marker table *exactly* — every planted bug caught, nothing flagged on
the clean/sanctioned fixtures.

The meta-test at the bottom runs the full pack over the real ``src/``
tree against the committed ``lint_baseline.json``: tier-1 fails on any
non-baselined finding even without CI.
"""

import json
import re
from pathlib import Path

import pytest

from repro.analysis import run_lint, update_baseline
from repro.analysis.baseline import BASELINE_NAME, Baseline, find_baseline
from repro.analysis.engine import all_rules, default_target
from repro.analysis.model import pragma_allows
from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "analysis_fixtures"
REPO_ROOT = Path(__file__).resolve().parent.parent
EXPECT = re.compile(r"EXPECT\[([A-Z0-9]+)\]")

RULE_IDS = tuple(rule.rule_id for rule in all_rules())


def _expected_findings():
    """(relpath, line, rule) per EXPECT marker, as a sorted multiset."""
    expected = []
    for path in sorted(FIXTURES.rglob("*.py")):
        relpath = path.relative_to(FIXTURES).as_posix()
        for lineno, line in enumerate(path.read_text().splitlines(), start=1):
            for rule_id in EXPECT.findall(line):
                expected.append((relpath, lineno, rule_id))
    return sorted(expected)


@pytest.fixture(scope="module")
def fixture_result():
    # baseline=False: never let the repo's own lint_baseline.json (found
    # by walking up from tests/) absorb or stale-flag fixture findings
    return run_lint([FIXTURES], baseline=False)


class TestRulePack:
    def test_rule_pack_is_complete(self):
        assert RULE_IDS == (
            "CKP001", "DET001", "DET002", "DET003", "DET004", "RES001",
        )

    def test_fixture_findings_match_markers_exactly(self, fixture_result):
        actual = sorted(
            (f.path, f.line, f.rule) for f in fixture_result.findings
        )
        assert actual == _expected_findings()

    @pytest.mark.parametrize("rule_id", RULE_IDS)
    def test_each_rule_catches_its_planted_fixtures(
        self, rule_id, fixture_result
    ):
        expected = [e for e in _expected_findings() if e[2] == rule_id]
        assert expected, f"no planted fixture for {rule_id}"
        actual = sorted(
            (f.path, f.line, f.rule)
            for f in fixture_result.findings
            if f.rule == rule_id
        )
        assert actual == expected

    def test_findings_carry_location_and_hint(self, fixture_result):
        for finding in fixture_result.findings:
            assert re.match(r".+\.py:\d+$", finding.location())
            assert finding.hint
            assert finding.snippet

    def test_clean_fixture_is_silent(self, fixture_result):
        assert not [
            f for f in fixture_result.findings if f.path == "clean.py"
        ]

    def test_sanctioned_rng_module_is_exempt(self, fixture_result):
        # path suffix sim/rng.py is the one sanctioned RNG home
        assert not [
            f for f in fixture_result.findings if f.path == "sim/rng.py"
        ]

    def test_sanctioned_resolve_workers_is_exempt(self, fixture_result):
        api_findings = [
            f for f in fixture_result.findings if f.path == "api.py"
        ]
        assert all(f.context == "other_function" for f in api_findings)


class TestPragmas:
    def test_pragma_parses(self):
        assert pragma_allows("t = time.time()  # lint: allow[DET002] why") \
            == frozenset({"DET002"})
        assert pragma_allows("# lint: allow[DET001, DET004]") \
            == frozenset({"DET001", "DET004"})
        assert pragma_allows("# lint: allow[*] escape hatch") \
            == frozenset({"*"})
        assert pragma_allows("x = 1  # a normal comment") == frozenset()

    def test_fixture_pragma_suppresses(self, fixture_result):
        # det002_wallclock.py sanctions one perf_counter read inline
        assert fixture_result.suppressed >= 1
        sanctioned_line = [
            line
            for line in (FIXTURES / "det002_wallclock.py").read_text().splitlines()
            if "lint: allow[DET002]" in line
        ]
        assert len(sanctioned_line) == 1

    def test_pragma_on_line_above(self, tmp_path):
        bad = tmp_path / "mod.py"
        bad.write_text(
            "import numpy as np\n"
            "\n"
            "def draw():\n"
            "    # lint: allow[DET001] reviewed\n"
            "    return np.random.default_rng()\n"
        )
        result = run_lint([bad], baseline=False)
        assert result.findings == []
        assert result.suppressed == 1


BAD_MODULE = (
    "import numpy as np\n"
    "\n"
    "def draw():\n"
    "    return np.random.default_rng()\n"
)


class TestBaseline:
    def test_round_trip(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(BAD_MODULE)
        baseline_path = tmp_path / BASELINE_NAME

        refreshed, recorded = update_baseline(
            [mod], baseline_path=baseline_path
        )
        assert baseline_path.exists()
        assert len(recorded.findings) == 1

        # same findings, now absorbed
        result = run_lint([mod], baseline=baseline_path)
        assert result.new == []
        assert len(result.baselined) == 1
        assert result.stale == {}
        assert result.gate_failures() == 0

    def test_fingerprints_survive_line_moves(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(BAD_MODULE)
        baseline_path = tmp_path / BASELINE_NAME
        update_baseline([mod], baseline_path=baseline_path)

        # shift the violation down: the baseline entry must still match
        mod.write_text("# a new leading comment\n\n" + BAD_MODULE)
        result = run_lint([mod], baseline=baseline_path)
        assert result.new == []
        assert len(result.baselined) == 1

    def test_new_finding_gates(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(BAD_MODULE)
        baseline_path = tmp_path / BASELINE_NAME
        update_baseline([mod], baseline_path=baseline_path)

        mod.write_text(BAD_MODULE + "\ndef extra():\n    return np.random.normal()\n")
        result = run_lint([mod], baseline=baseline_path)
        assert len(result.new) == 1
        assert result.new[0].context == "extra"
        assert result.gate_failures() == 1

    def test_fixed_finding_goes_stale(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(BAD_MODULE)
        baseline_path = tmp_path / BASELINE_NAME
        update_baseline([mod], baseline_path=baseline_path)

        mod.write_text("def draw(rng):\n    return rng.random()\n")
        result = run_lint([mod], baseline=baseline_path)
        assert result.new == []
        assert len(result.stale) == 1
        # lenient gate passes; --check (strict) forces the burn-down
        assert result.gate_failures(strict=False) == 0
        assert result.gate_failures(strict=True) == 1

    def test_find_baseline_walks_up(self, tmp_path):
        (tmp_path / BASELINE_NAME).write_text(json.dumps({
            "_comment": "test", "schema": 1, "entries": {},
        }))
        nested = tmp_path / "a" / "b"
        nested.mkdir(parents=True)
        assert find_baseline(nested) == tmp_path / BASELINE_NAME
        assert find_baseline(tmp_path / "a" / "mod.py") \
            == tmp_path / BASELINE_NAME

    def test_baseline_save_is_sorted_and_stable(self, tmp_path):
        path = tmp_path / BASELINE_NAME
        Baseline(entries={"b::X": 1, "a::Y": 2}, path=path).save()
        first = path.read_text()
        Baseline(entries={"a::Y": 2, "b::X": 1}, path=path).save()
        assert path.read_text() == first
        keys = list(json.loads(first)["entries"])
        assert keys == sorted(keys)


class TestCli:
    def test_lint_clean_exit_zero(self, capsys):
        rc = main(["lint", str(FIXTURES / "clean.py"), "--no-baseline"])
        assert rc == 0
        assert "0 new" in capsys.readouterr().out

    def test_lint_findings_exit_one(self, capsys):
        rc = main(
            ["lint", str(FIXTURES / "det001_raw_rng.py"), "--no-baseline"]
        )
        assert rc == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "det001_raw_rng.py:" in out
        assert "fix:" in out

    def test_lint_parse_error_exit_two(self, tmp_path, capsys):
        bad = tmp_path / "broken.py"
        bad.write_text("def oops(:\n")
        assert main(["lint", str(bad), "--no-baseline"]) == 2
        assert "parse error" in capsys.readouterr().out

    def test_lint_json_report(self, tmp_path, capsys):
        report = tmp_path / "lint-report.json"
        main([
            "lint", str(FIXTURES / "det004_env.py"),
            "--no-baseline", "--json", str(report),
        ])
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["schema"] == 1
        assert payload["rule_counts"] == {"DET004": len(payload["new"])}
        assert all(f["rule"] == "DET004" for f in payload["new"])
        assert payload["stale_baseline_entries"] == {}

    def test_lint_rules_catalog(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_check_fails_on_stale_baseline(self, tmp_path, capsys):
        mod = tmp_path / "mod.py"
        mod.write_text("def fine():\n    return 1\n")
        baseline_path = tmp_path / BASELINE_NAME
        Baseline(entries={"gone::DET001::f::x": 1}, path=baseline_path).save()
        args = ["lint", str(mod), "--baseline", str(baseline_path)]
        assert main(args) == 0  # lenient: stale debt only warns
        capsys.readouterr()
        assert main(args + ["--check"]) == 1  # CI mode forces burn-down
        assert "stale" in capsys.readouterr().out


class TestRealSource:
    """The acceptance gate, mirrored into tier-1."""

    def test_src_is_clean_or_baselined(self):
        result = run_lint(
            [REPO_ROOT / "src" / "repro"],
            baseline=REPO_ROOT / BASELINE_NAME,
        )
        assert result.parse_errors == []
        new = [f"{f.location()} {f.rule} {f.snippet}" for f in result.new]
        assert new == [], (
            "non-baselined lint findings (fix them, sanction with "
            "# lint: allow[RULE], or record debt via "
            "scripts/lint_baseline.py --update):\n" + "\n".join(new)
        )
        # --check (CI) also fails on stale entries; keep tier-1 aligned
        assert result.stale == {}, (
            f"stale baseline entries (run scripts/lint_baseline.py "
            f"--update): {sorted(result.stale)}"
        )

    def test_full_pack_is_fast(self):
        result = run_lint(
            [REPO_ROOT / "src" / "repro"], baseline=False
        )
        assert result.files > 50
        assert result.duration_seconds < 10.0

    def test_default_target_is_the_package(self):
        assert default_target().name == "repro"
        assert (default_target() / "analysis" / "engine.py").exists()
