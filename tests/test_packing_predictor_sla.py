"""Tests for repro.core.packing, predictor and sla."""

import pytest

from repro.core.packing import pack_allocations
from repro.core.predictor import (
    EWMAPredictor,
    LastIntervalPredictor,
    MovingAveragePredictor,
)
from repro.core.sla import BudgetLedger, SLATerms


class TestPacking:
    def test_whole_units_get_dedicated_vms(self):
        result = pack_allocations({((0, 0), "standard"): 2.0})
        assert result.total_vms == 2
        assert all(vm.load == pytest.approx(1.0) for vm in result.vms)

    def test_fraction_opens_shared_vm(self):
        result = pack_allocations(
            {((0, 0), "standard"): 0.4, ((0, 1), "standard"): 0.5}
        )
        assert result.total_vms == 1
        assert result.shared_vms == 1
        vm = result.vms[0]
        assert vm.load == pytest.approx(0.9)
        assert vm.serves_consecutive_run()

    def test_consecutive_chunks_colocated(self):
        """Footnote 3: a shared VM should carry consecutive chunks of one
        channel to minimize VM switching during playback."""
        allocations = {
            ((0, 0), "standard"): 0.3,
            ((0, 1), "standard"): 0.3,
            ((0, 2), "standard"): 0.3,
        }
        result = pack_allocations(allocations)
        assert result.total_vms == 1
        assert result.vms[0].serves_consecutive_run()

    def test_overflow_opens_new_vm(self):
        allocations = {
            ((0, 0), "standard"): 0.7,
            ((0, 1), "standard"): 0.7,
        }
        result = pack_allocations(allocations)
        assert result.total_vms == 2
        assert result.cross_channel_vms == 0

    def test_mixed_whole_and_fraction(self):
        result = pack_allocations({((0, 0), "standard"): 2.3})
        assert result.total_vms == 3
        loads = sorted(vm.load for vm in result.vms)
        assert loads == pytest.approx([0.3, 1.0, 1.0])

    def test_clusters_kept_separate(self):
        result = pack_allocations(
            {((0, 0), "standard"): 0.4, ((0, 1), "advanced"): 0.4}
        )
        assert result.total_vms == 2
        assert result.vm_counts() == {"standard": 1, "advanced": 1}

    def test_cross_channel_sharing_counted(self):
        allocations = {
            ((0, 5), "standard"): 0.4,
            ((1, 0), "standard"): 0.4,
        }
        result = pack_allocations(allocations)
        assert result.total_vms == 1
        assert result.cross_channel_vms == 1

    def test_zero_allocations_dropped(self):
        result = pack_allocations({((0, 0), "standard"): 0.0})
        assert result.total_vms == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            pack_allocations({((0, 0), "standard"): -0.1})

    def test_packed_count_matches_ceil_of_totals(self):
        allocations = {
            ((0, 0), "standard"): 1.4,
            ((0, 1), "standard"): 0.9,
            ((0, 2), "standard"): 0.4,
        }
        result = pack_allocations(allocations)
        # total = 2.7 -> at least 3 VMs; first-fit may use at most 4 here.
        assert 3 <= result.total_vms <= 4


class TestPredictors:
    def test_last_interval(self):
        p = LastIntervalPredictor(initial_rate=0.5)
        assert p.predict(0) == 0.5
        p.observe(0, 2.0)
        assert p.predict(0) == 2.0
        p.observe(0, 3.0)
        assert p.predict(0) == 3.0

    def test_last_interval_per_channel(self):
        p = LastIntervalPredictor()
        p.observe(0, 1.0)
        p.observe(1, 9.0)
        assert p.predict(0) == 1.0
        assert p.predict(1) == 9.0

    def test_moving_average(self):
        p = MovingAveragePredictor(window=3)
        for rate in (1.0, 2.0, 3.0, 4.0):
            p.observe(0, rate)
        assert p.predict(0) == pytest.approx(3.0)  # mean of last 3

    def test_moving_average_partial_history(self):
        p = MovingAveragePredictor(window=5)
        p.observe(0, 2.0)
        assert p.predict(0) == 2.0

    def test_ewma(self):
        p = EWMAPredictor(beta=0.5)
        p.observe(0, 4.0)
        p.observe(0, 0.0)
        assert p.predict(0) == pytest.approx(2.0)

    def test_ewma_beta_one_is_last_interval(self):
        p = EWMAPredictor(beta=1.0)
        p.observe(0, 1.0)
        p.observe(0, 7.0)
        assert p.predict(0) == 7.0

    def test_smoothing_dampens_spikes(self):
        """EWMA should react less to one flash crowd than last-interval."""
        last = LastIntervalPredictor()
        ewma = EWMAPredictor(beta=0.3)
        for rate in (1.0, 1.0, 10.0):
            last.observe(0, rate)
            ewma.observe(0, rate)
        assert ewma.predict(0) < last.predict(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingAveragePredictor(window=0)
        with pytest.raises(ValueError):
            EWMAPredictor(beta=0.0)
        with pytest.raises(ValueError):
            LastIntervalPredictor(initial_rate=-1.0)
        p = LastIntervalPredictor()
        with pytest.raises(ValueError):
            p.observe(0, -1.0)


class TestSLA:
    def test_paper_defaults(self):
        terms = SLATerms()
        assert terms.vm_budget_per_hour == 100.0
        assert terms.storage_budget_per_hour == 1.0
        assert terms.interval_seconds == 3600.0
        assert terms.total_budget_per_hour == 101.0

    def test_ledger_means(self):
        ledger = BudgetLedger(SLATerms())
        ledger.record(0.0, 40.0, 0.1)
        ledger.record(3600.0, 60.0, 0.1)
        assert ledger.mean_vm_rate() == pytest.approx(50.0)
        assert ledger.mean_storage_rate() == pytest.approx(0.1)
        assert ledger.peak_vm_rate() == 60.0
        assert ledger.intervals == 2

    def test_violations_counted(self):
        ledger = BudgetLedger(SLATerms(vm_budget_per_hour=50.0))
        ledger.record(0.0, 49.0, 0.0)
        ledger.record(3600.0, 51.0, 0.0)
        assert ledger.vm_budget_violations() == 1

    def test_infeasible_intervals(self):
        ledger = BudgetLedger(SLATerms())
        ledger.record(0.0, 10.0, 0.0, feasible=False)
        ledger.record(3600.0, 10.0, 0.0)
        assert ledger.infeasible_intervals == 1

    def test_series(self):
        ledger = BudgetLedger(SLATerms())
        ledger.record(0.0, 1.0, 0.5)
        assert ledger.series() == [(0.0, 1.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            SLATerms(vm_budget_per_hour=-1.0)
        with pytest.raises(ValueError):
            SLATerms(interval_seconds=0.0)
        ledger = BudgetLedger(SLATerms())
        with pytest.raises(ValueError):
            ledger.record(0.0, -1.0, 0.0)
