"""Tests for repro.experiments.config and reporting."""

import pytest

from repro.experiments.config import (
    PAPER,
    arrival_rate_for_population,
    paper_capacity_model,
    paper_nfs_clusters,
    paper_scenario,
    paper_sla_terms,
    paper_vm_clusters,
    scenario_from_env,
    small_scenario,
)
from repro.experiments.reporting import downsample, format_table, mbps, series_summary
from repro.queueing.jackson import external_arrival_vector, solve_traffic_equations


class TestPaperConstants:
    def test_section_vi_values(self):
        assert PAPER.streaming_rate == 50_000.0  # 400 kbps
        assert PAPER.chunk_duration == 300.0  # 5 minutes
        assert PAPER.chunk_size_bytes == pytest.approx(15e6)  # 15 MB
        assert PAPER.chunks_per_channel == 20  # 100-minute video
        assert PAPER.vm_bandwidth == pytest.approx(1.25e6)  # 10 Mbps
        assert PAPER.num_channels == 20
        assert PAPER.target_population == 2500

    def test_capacity_model(self):
        model = paper_capacity_model()
        assert model.mean_download_time == pytest.approx(12.0)

    def test_table2_virtual_clusters(self):
        clusters = paper_vm_clusters()
        by_name = {c.name: c for c in clusters}
        assert by_name["standard"].utility == 0.6
        assert by_name["standard"].price_per_hour == 0.450
        assert by_name["standard"].max_vms == 75
        assert by_name["medium"].price_per_hour == 0.700
        assert by_name["medium"].max_vms == 30
        assert by_name["advanced"].utility == 1.0
        assert by_name["advanced"].max_vms == 45

    def test_table3_nfs_clusters(self):
        clusters = paper_nfs_clusters()
        by_name = {c.name: c for c in clusters}
        assert by_name["standard"].price_per_gb_hour == pytest.approx(1.11e-4)
        assert by_name["high"].price_per_gb_hour == pytest.approx(2.08e-4)
        assert by_name["standard"].capacity_bytes == pytest.approx(20 * 1024**3)
        assert by_name["high"].rotation_rpm == 10800

    def test_sla_budgets(self):
        terms = paper_sla_terms()
        assert terms.vm_budget_per_hour == 100.0
        assert terms.storage_budget_per_hour == 1.0

    def test_whole_catalogue_fits_in_nfs(self):
        """20 channels x 20 chunks x 15 MB = 6 GB < 40 GB total."""
        total_chunks = PAPER.num_channels * PAPER.chunks_per_channel
        total_bytes = total_chunks * PAPER.chunk_size_bytes
        capacity = sum(c.capacity_bytes for c in paper_nfs_clusters())
        assert total_bytes < capacity

    def test_storage_budget_covers_catalogue(self):
        """B_S = $1/h comfortably covers storing every chunk."""
        total_chunks = PAPER.num_channels * PAPER.chunks_per_channel
        worst = max(c.price_per_byte_hour for c in paper_nfs_clusters())
        assert total_chunks * PAPER.chunk_size_bytes * worst < 1.0


class TestArrivalRateCalibration:
    def test_population_recovered(self):
        """The calibrated rate must reproduce the target population via
        Little's law on the traffic equations."""
        scenario = small_scenario()
        behaviour = scenario.behaviour_matrix()
        rate = arrival_rate_for_population(
            240.0, behaviour, PAPER.chunk_duration, alpha=0.8
        )
        traffic = solve_traffic_equations(
            behaviour, external_arrival_vector(behaviour.shape[0], rate, 0.8)
        )
        population = traffic.arrival_rates.sum() * PAPER.chunk_duration
        assert population == pytest.approx(240.0, rel=1e-9)

    def test_invalid_population(self):
        scenario = small_scenario()
        with pytest.raises(ValueError):
            arrival_rate_for_population(
                0.0, scenario.behaviour_matrix(), 300.0
            )


class TestScenarios:
    def test_small_scenario_consistent(self):
        sc = small_scenario("p2p")
        assert sc.mode == "p2p"
        assert len(sc.channels()) == sc.num_channels
        trace_config = sc.trace_config()
        assert trace_config.num_channels == sc.num_channels
        assert trace_config.mean_total_arrival_rate > 0

    def test_scenario_upload_scaling(self):
        base = small_scenario("p2p")
        scaled = small_scenario("p2p", peer_upload_mean=60_000.0)
        assert scaled.upload_distribution().mean() == pytest.approx(60_000.0)
        assert base.upload_distribution().mean() != pytest.approx(60_000.0)

    def test_paper_scenario_scale(self):
        sc = paper_scenario("client-server")
        assert sc.num_channels == 20
        assert sc.chunks_per_channel == 20
        assert sc.target_population == 2500
        # x3: Table II's 150 VMs cannot host the >=400 VM-equivalents the
        # paper's own client-server analysis requires (see config docstring).
        assert sc.cluster_scale == 3.0

    def test_env_selection(self, monkeypatch):
        monkeypatch.delenv("REPRO_FULL", raising=False)
        assert scenario_from_env().name == "small"
        monkeypatch.setenv("REPRO_FULL", "1")
        assert scenario_from_env().name == "paper"

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            small_scenario("multicast")


class TestReporting:
    def test_format_table(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["bb", 2.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "1.500" in text and "2.250" in text

    def test_downsample(self):
        assert downsample([1, 2, 3], max_points=5) == [1, 2, 3]
        sampled = downsample(list(range(100)), max_points=5)
        assert len(sampled) == 5
        assert sampled[0] == 0 and sampled[-1] == 99

    def test_series_summary(self):
        text = series_summary([1.0, 2.0, 3.0])
        assert "mean=2.000" in text
        assert series_summary([]) == "(empty)"

    def test_mbps(self):
        assert mbps(1.25e6) == pytest.approx(10.0)
