"""Tests for :mod:`repro.api` — the session-style engine surface.

The redesign's contract, pinned down here:

* streaming (``Run.epochs()``) and the monolithic ``Run.result()`` are
  the *same* run — results byte-identical to the historical entry
  points, for every engine kind;
* checkpoint-at-midpoint + resume is byte-identical to an uninterrupted
  run, including across different worker counts on either side;
* ``EngineConfig.workers`` is authoritative; ``REPRO_CATALOG_JOBS`` is
  a warned, validated fallback (the one shared path);
* the historical ``run_closed_loop``/``run_catalog`` shims are gone —
  ``open_run`` is the only entry point.
"""

import pickle
import warnings

import numpy as np
import pytest

from repro.api import CHECKPOINT_SCHEMA, EngineConfig, Run, open_run, resolve_workers, resume
from repro.experiments.config import small_scenario
from repro.experiments.runner import ClosedLoopEngine
from repro.sim.shard import summarize_catalog
from repro.workload.catalog import catalog_config, geo_catalog_config

RESULT_ARRAYS = (
    "times", "cloud_used", "peer_used", "provisioned", "shortfall",
    "populations", "quality_times", "quality",
)


def small_catalog(**overrides):
    knobs = dict(
        num_channels=6, chunks_per_channel=4, horizon_hours=0.5,
        arrival_rate=0.5, num_shards=4, dt=60.0, interval_minutes=10.0,
    )
    knobs.update(overrides)
    return catalog_config(**knobs)


def small_geo_catalog(**overrides):
    knobs = dict(
        topology="us-eu", num_channels=4, chunks_per_channel=3,
        horizon_hours=0.5, arrival_rate=0.4, num_shards=4, dt=60.0,
        interval_minutes=10.0,
    )
    knobs.update(overrides)
    return geo_catalog_config(**knobs)


def assert_catalog_identical(a, b):
    assert summarize_catalog(a) == summarize_catalog(b)
    for name in RESULT_ARRAYS:
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes(), name
    assert a.channel_populations == b.channel_populations
    assert a.vm_cost_series == b.vm_cost_series
    assert a.epoch_times == b.epoch_times


def assert_closed_loop_identical(a, b):
    assert a.interval_times == b.interval_times
    assert a.provisioned_series == b.provisioned_series
    assert a.used_series == b.used_series
    assert a.peer_series == b.peer_series
    assert a.population_series == b.population_series
    assert a.vm_cost_series == b.vm_cost_series
    assert a.average_quality == b.average_quality
    assert a.mean_vm_cost_per_hour == b.mean_vm_cost_per_hour
    sa, sb = a.simulation, b.simulation
    assert sa.arrivals == sb.arrivals and sa.departures == sb.departures
    for field in ("time", "cloud_used", "peer_used", "provisioned",
                  "shortfall"):
        assert getattr(sa.bandwidth, field).tobytes() == \
            getattr(sb.bandwidth, field).tobytes(), field


# ----------------------------------------------------------------------
# EngineConfig
# ----------------------------------------------------------------------

class TestEngineConfig:
    def test_kind_dispatch(self):
        assert EngineConfig(spec=small_scenario("p2p")).kind == "closed-loop"
        assert EngineConfig(spec=small_catalog()).kind == "catalog"
        assert EngineConfig(spec=small_geo_catalog()).kind == "geo-catalog"

    def test_rejects_non_spec(self):
        with pytest.raises(TypeError, match="EngineConfig.spec"):
            EngineConfig(spec={"mode": "p2p"})

    def test_closed_loop_is_single_process(self):
        with pytest.raises(ValueError, match="single-process"):
            EngineConfig(spec=small_scenario("p2p"), workers=4)
        # workers=1 and None are fine.
        EngineConfig(spec=small_scenario("p2p"), workers=1)
        assert EngineConfig(spec=small_scenario("p2p")).resolved_workers() == 1

    def test_workers_validated(self):
        with pytest.raises(ValueError, match="workers"):
            EngineConfig(spec=small_catalog(), workers="auto")
        assert EngineConfig(
            spec=small_catalog(), workers=0
        ).resolved_workers() == 1

    def test_closed_loop_ignores_env(self, monkeypatch):
        """A worker env fallback must never leak into the closed loop."""
        monkeypatch.setenv("REPRO_CATALOG_JOBS", "4")
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # no deprecation warning either
            assert EngineConfig(
                spec=small_scenario("p2p")
            ).resolved_workers() == 1


class TestResolveWorkers:
    def test_explicit_is_authoritative_and_unwarned(self, monkeypatch):
        monkeypatch.setenv("REPRO_CATALOG_JOBS", "7")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(3) == 3

    def test_env_fallback_warns(self, monkeypatch):
        monkeypatch.setenv("REPRO_CATALOG_JOBS", "2")
        with pytest.warns(DeprecationWarning, match="REPRO_CATALOG_JOBS"):
            assert resolve_workers(None) == 2

    def test_env_garbage_named_in_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_CATALOG_JOBS", "auto")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="REPRO_CATALOG_JOBS"):
                resolve_workers(None)

    @pytest.mark.parametrize("raw", ["0", "-3"])
    def test_env_clamped_to_serial(self, raw, monkeypatch):
        monkeypatch.setenv("REPRO_CATALOG_JOBS", raw)
        with pytest.warns(DeprecationWarning):
            assert resolve_workers(None) == 1

    def test_blank_env_is_serial_and_silent(self, monkeypatch):
        monkeypatch.setenv("REPRO_CATALOG_JOBS", "  ")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_workers(None) == 1

    def test_explicit_clamped(self):
        assert resolve_workers(-2) == 1
        with pytest.raises(ValueError, match="workers"):
            resolve_workers("many")

    def test_non_integral_workers_raise_not_truncate(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(2.9)
        with pytest.raises(ValueError, match="workers"):
            EngineConfig(spec=small_catalog(), workers=0.5)
        assert resolve_workers("3") == 3  # env-style strings still parse
        assert resolve_workers(np.int64(3)) == 3


# ----------------------------------------------------------------------
# Streaming == monolithic
# ----------------------------------------------------------------------

class TestStreamingParity:
    def test_catalog_stream_matches_monolithic(self):
        config = small_catalog()
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            mono = run.result()
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            snaps = list(run.epochs())
            streamed = run.result()
        assert_catalog_identical(mono, streamed)
        assert [s.index for s in snaps] == list(range(1, len(snaps) + 1))
        assert snaps[-1].is_final
        assert sum(s.arrivals for s in snaps) == mono.arrivals
        assert sum(s.departures for s in snaps) == mono.departures
        assert snaps[-1].population == mono.final_population
        assert max(s.peak_population for s in snaps) == mono.peak_population
        # Every non-final boundary carries its full provisioning decision.
        assert all(s.decision is not None for s in snaps[:-1])
        assert snaps[-1].decision is None
        assert [s.vm_cost_per_hour for s in snaps[:-1]] == mono.vm_cost_series

    def test_closed_loop_stream_matches_monolithic(self):
        scenario = small_scenario("p2p", horizon_hours=3.0)
        with open_run(scenario) as run:
            mono = run.result()
        with open_run(scenario) as run:
            snaps = list(run.epochs())
            streamed = run.result()
        assert_closed_loop_identical(mono, streamed)
        assert len(snaps) == run.epochs_total
        assert sum(s.arrivals for s in snaps) == mono.simulation.arrivals
        assert [s.vm_cost_per_hour for s in snaps[:-1]] == mono.vm_cost_series

    def test_geo_stream_matches_monolithic(self):
        config = small_geo_catalog()
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            mono = run.result()
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            for _ in run.epochs():
                pass
            streamed = run.result()
        assert_catalog_identical(mono, streamed)
        assert mono.epoch_discounts == streamed.epoch_discounts
        assert mono.epoch_remote_fractions == streamed.epoch_remote_fractions
        assert mono.epoch_egress_rates == streamed.epoch_egress_rates

    def test_epochs_iterator_is_resumable(self):
        config = small_catalog()
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            first = next(run.epochs())
            rest = list(run.epochs())  # a NEW iterator continues, not restarts
            assert first.index == 1
            assert [s.index for s in rest] == \
                list(range(2, len(rest) + 2))
            run.result()

    def test_result_is_repeatable(self):
        with open_run(EngineConfig(spec=small_catalog(), workers=1)) as run:
            assert_catalog_identical(run.result(), run.result())

    def test_predictor_key_round_trip(self):
        scenario = small_scenario("client-server", horizon_hours=2.0)
        with open_run(EngineConfig(spec=scenario, predictor="ewma")) as run:
            via_key = run.result()
        from repro.experiments.registry import make_predictor

        direct = ClosedLoopEngine(
            scenario, predictor=make_predictor("ewma")
        ).run()
        assert_closed_loop_identical(via_key, direct)

    def test_unknown_predictor_fails_fast(self):
        # Validation moved up into EngineConfig itself: the bad key is
        # rejected at construction, before any engine work.
        with pytest.raises(ValueError, match="unknown predictor"):
            EngineConfig(spec=small_scenario("p2p"), predictor="oracle")

    def test_unknown_controller_fails_fast(self):
        with pytest.raises(ValueError, match="unknown controller"):
            EngineConfig(spec=small_scenario("p2p"), controller="oracle")

    def test_open_run_rejects_conflicting_kwargs(self):
        with pytest.raises(TypeError, match="inside the EngineConfig"):
            open_run(EngineConfig(spec=small_catalog()), workers=2)


# ----------------------------------------------------------------------
# Checkpoint / resume
# ----------------------------------------------------------------------

def checkpoint_at(config_api, stop_after, path):
    """Run until ``stop_after`` epochs completed, checkpoint, close."""
    with open_run(config_api) as run:
        for snap in run.epochs():
            if snap.index == stop_after:
                break
        return run.checkpoint(path)


class TestCheckpointResume:
    @pytest.mark.parametrize("ckpt_workers,resume_workers", [
        (1, 1), (1, 4), (4, 1), (4, 4),
    ])
    def test_catalog_midpoint_resume_identical(self, tmp_path,
                                               ckpt_workers, resume_workers):
        config = small_catalog()
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            reference = run.result()
        path = tmp_path / "mid.ckpt"
        checkpoint_at(
            EngineConfig(spec=config, workers=ckpt_workers), 1, path
        )
        with resume(path, workers=resume_workers) as tail:
            assert tail.epoch == 1
            resumed = tail.result()
        assert_catalog_identical(reference, resumed)

    @pytest.mark.parametrize("ckpt_workers,resume_workers", [(1, 4), (4, 1)])
    def test_geo_midpoint_resume_identical(self, tmp_path,
                                           ckpt_workers, resume_workers):
        config = small_geo_catalog()
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            reference = run.result()
        path = tmp_path / "geo.ckpt"
        checkpoint_at(
            EngineConfig(spec=config, workers=ckpt_workers), 1, path
        )
        with resume(path, workers=resume_workers) as tail:
            resumed = tail.result()
        assert_catalog_identical(reference, resumed)
        assert reference.epoch_discounts == resumed.epoch_discounts
        assert reference.epoch_egress_rates == resumed.epoch_egress_rates

    def test_closed_loop_midpoint_resume_identical(self, tmp_path):
        scenario = small_scenario("p2p", horizon_hours=3.0)
        with open_run(scenario) as run:
            reference = run.result()
        path = tmp_path / "cl.ckpt"
        checkpoint_at(EngineConfig(spec=scenario), 1, path)
        with resume(path) as tail:
            resumed = tail.result()
        assert_closed_loop_identical(reference, resumed)

    def test_checkpoint_before_first_epoch(self, tmp_path):
        config = small_catalog()
        path = tmp_path / "zero.ckpt"
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            run.checkpoint(path)  # bootstraps, zero epochs completed
            reference = run.result()
        with resume(path) as tail:
            assert tail.epoch == 0
            assert_catalog_identical(reference, tail.result())

    def test_checkpoint_after_done(self, tmp_path):
        config = small_catalog()
        path = tmp_path / "done.ckpt"
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            reference = run.result()
            run.checkpoint(path)
        with resume(path) as tail:
            assert tail.done
            assert list(tail.epochs()) == []
            assert_catalog_identical(reference, tail.result())

    def test_checkpointed_run_keeps_going(self, tmp_path):
        """checkpoint() must not disturb the in-memory run."""
        config = small_catalog()
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            reference = run.result()
        with open_run(EngineConfig(spec=config, workers=4)) as run:
            for snap in run.epochs():
                run.checkpoint(tmp_path / f"e{snap.index}.ckpt")
            assert_catalog_identical(reference, run.result())

    def test_checkpoint_after_close_raises(self, tmp_path):
        """A closed engine's workers (and shard state) are gone;
        checkpointing then must raise, not write an unresumable file."""
        run = open_run(EngineConfig(spec=small_catalog(), workers=2))
        next(run.epochs())
        run.close()
        with pytest.raises(RuntimeError, match="closed engine"):
            run.checkpoint(tmp_path / "late.ckpt")
        assert not (tmp_path / "late.ckpt").exists()

    def test_resume_rejects_non_checkpoints(self, tmp_path):
        path = tmp_path / "junk.ckpt"
        path.write_bytes(pickle.dumps({"hello": "world"}))
        with pytest.raises(ValueError, match="not a repro checkpoint"):
            resume(path)

    def test_resume_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "future.ckpt"
        path.write_bytes(pickle.dumps({
            "format": "repro-checkpoint",
            "schema": CHECKPOINT_SCHEMA + 1,
        }))
        with pytest.raises(ValueError, match="schema"):
            resume(path)


# ----------------------------------------------------------------------
# Removed shims
# ----------------------------------------------------------------------

class TestRemovedShims:
    def test_shims_are_gone(self):
        with pytest.raises(ImportError):
            from repro.experiments.runner import run_closed_loop  # noqa: F401
        with pytest.raises(ImportError):
            from repro.sim.shard import run_catalog  # noqa: F401
        import repro.experiments
        import repro.sim
        assert "run_closed_loop" not in repro.experiments.__all__
        assert "run_catalog" not in repro.sim.__all__
        with pytest.raises(AttributeError):
            repro.sim.run_catalog

    def test_env_fallback_still_flows_through_open_run(self, monkeypatch):
        """With the shims gone, the warned REPRO_CATALOG_JOBS fallback
        still applies when EngineConfig.workers is None."""
        config = small_catalog(horizon_hours=0.25)
        monkeypatch.setenv("REPRO_CATALOG_JOBS", "2")
        with pytest.warns(DeprecationWarning, match="REPRO_CATALOG_JOBS"):
            with open_run(EngineConfig(spec=config)) as run:
                from_env = summarize_catalog(run.result())
        monkeypatch.delenv("REPRO_CATALOG_JOBS")
        with open_run(EngineConfig(spec=config, workers=1)) as run:
            serial = summarize_catalog(run.result())
        assert from_env == serial
