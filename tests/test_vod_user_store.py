"""Tests for repro.vod.user: the struct-of-arrays user store."""

import numpy as np
import pytest

from repro.vod.user import HOLDING, UserStore


@pytest.fixture
def store():
    return UserStore(num_chunks=4, capacity=2)  # tiny capacity forces growth


class TestLifecycle:
    def test_add_user(self, store):
        uid = store.add_user(now=10.0, start_chunk=1, upload_capacity=100.0)
        assert store.active[uid]
        assert store.chunk[uid] == 1
        assert store.enter_time[uid] == 10.0
        assert store.num_active == 1

    def test_growth_preserves_state(self, store):
        ids = [store.add_user(float(i), 0, 10.0) for i in range(10)]
        assert store.num_active == 10
        assert all(store.active[i] for i in ids)
        assert store.arrival_time[ids[7]] == 7.0

    def test_depart(self, store):
        uid = store.add_user(0.0, 0, 10.0)
        store.depart(uid)
        assert not store.active[uid]
        assert store.num_active == 0

    def test_complete_chunk_records_ownership(self, store):
        uid = store.add_user(0.0, 2, 10.0)
        finished = store.complete_chunk(uid, now=5.0, smooth=True)
        assert finished == 2
        assert store.owned[uid, 2]
        assert store.retrievals[uid] == 1
        assert store.unsmooth_retrievals[uid] == 0

    def test_unsmooth_retrieval_tracked(self, store):
        uid = store.add_user(0.0, 0, 10.0)
        store.complete_chunk(uid, now=500.0, smooth=False)
        assert store.unsmooth_retrievals[uid] == 1
        assert store.last_unsmooth[uid] == 500.0

    def test_invalid_inputs(self, store):
        with pytest.raises(ValueError):
            store.add_user(0.0, 9, 10.0)
        with pytest.raises(ValueError):
            store.add_user(0.0, 0, -1.0)


class TestHolding:
    def test_begin_and_release_hold(self, store):
        uid = store.add_user(0.0, 0, 10.0)
        store.complete_chunk(uid, 50.0, smooth=True)
        store.begin_hold(uid, until=300.0, next_chunk=1, from_chunk=0)
        assert store.chunk[uid] == HOLDING
        assert store.due_holds(299.0).size == 0
        due = store.due_holds(300.0)
        assert list(due) == [uid]
        assert store.hold_next[uid] == 1
        assert store.hold_from[uid] == 0

    def test_holding_users_not_downloaders(self, store):
        a = store.add_user(0.0, 0, 10.0)
        b = store.add_user(0.0, 0, 10.0)
        store.begin_hold(a, 100.0, 1, 0)
        assert store.downloaders_per_chunk()[0] == 1
        assert list(store.downloading_indices()) == [b]
        # Holding users still count as active.
        assert store.num_active == 2

    def test_holding_users_keep_ownership_visible(self, store):
        uid = store.add_user(0.0, 0, 10.0)
        store.complete_chunk(uid, 10.0, smooth=True)
        store.begin_hold(uid, 100.0, 1, 0)
        assert store.owners_per_chunk()[0] == 1


class TestVectorizedQueries:
    def test_downloaders_per_chunk(self, store):
        store.add_user(0.0, 0, 1.0)
        store.add_user(0.0, 0, 1.0)
        store.add_user(0.0, 3, 1.0)
        counts = store.downloaders_per_chunk()
        assert list(counts) == [2, 0, 0, 1]

    def test_advance_and_complete(self, store):
        a = store.add_user(0.0, 0, 1.0)
        b = store.add_user(0.0, 1, 1.0)
        rates = np.array([10.0, 1.0, 0.0, 0.0])
        store.advance_downloads(rates, dt=5.0)
        assert store.received[a] == pytest.approx(50.0)
        assert store.received[b] == pytest.approx(5.0)
        done = store.completed(chunk_size=50.0)
        assert list(done) == [a]

    def test_ownership_matrix_active_only(self, store):
        a = store.add_user(0.0, 0, 1.0)
        b = store.add_user(0.0, 1, 1.0)
        store.complete_chunk(a, 1.0, True)
        store.complete_chunk(b, 1.0, True)
        store.depart(b)
        matrix = store.ownership_matrix()
        assert matrix.shape == (1, 4)
        assert matrix[0, 0]

    def test_smooth_users_window(self, store):
        a = store.add_user(0.0, 0, 1.0)
        b = store.add_user(0.0, 1, 1.0)
        store.complete_chunk(a, 100.0, smooth=False)
        store.start_chunk_download(a, 1, 100.0)
        # At t=150 with window 300, user a is unsmooth.
        smooth, total = store.smooth_users(now=150.0, window=300.0)
        assert (smooth, total) == (1, 2)
        # Much later the stall has aged out of the window.
        smooth, total = store.smooth_users(now=500.0, window=300.0)
        assert (smooth, total) == (2, 2)

    def test_total_upload_capacity(self, store):
        store.add_user(0.0, 0, 10.0)
        uid = store.add_user(0.0, 0, 30.0)
        assert store.total_upload_capacity() == 40.0
        store.depart(uid)
        assert store.total_upload_capacity() == 10.0

    def test_empty_store_queries(self):
        store = UserStore(3)
        assert store.downloaders_per_chunk().sum() == 0
        assert store.owners_per_chunk().sum() == 0
        assert store.smooth_users(0.0, 300.0) == (0, 0)
        assert store.completed(1.0).size == 0
        assert store.due_holds(0.0).size == 0
