"""End-to-end integration tests: the full closed loop at small scale.

These are the reproduction's system tests: trace -> simulator -> tracker ->
controller -> cloud -> simulator, asserting the paper's headline
*qualitative* results on a CI-sized scenario.
"""

import numpy as np
import pytest

from repro.core.predictor import MovingAveragePredictor
from repro.experiments.config import small_scenario
from repro.experiments.figures import (
    fig10_vm_cost,
    fig4_capacity_provisioning,
    fig5_streaming_quality,
    fig6_quality_vs_channel_size,
    fig7_bandwidth_vs_channel_size,
    fig8_storage_utility,
    fig9_vm_utility,
)
from repro.experiments.runner import ClosedLoopEngine


def run_closed_loop(scenario, **engine_kwargs):
    """Run a scenario's whole horizon through the epoch engine."""
    engine = ClosedLoopEngine(scenario, **engine_kwargs)
    try:
        return engine.run()
    finally:
        engine.close()


@pytest.fixture(scope="module")
def cs_result():
    return run_closed_loop(small_scenario("client-server", horizon_hours=6))


@pytest.fixture(scope="module")
def p2p_result():
    return run_closed_loop(small_scenario("p2p", horizon_hours=6))


class TestClosedLoopBasics:
    def test_simulation_progressed(self, cs_result):
        assert cs_result.simulation.arrivals > 100
        assert cs_result.simulation.departures > 0
        assert len(cs_result.interval_times) == 6

    def test_quality_high_with_provisioning(self, cs_result):
        """Paper Fig 5: C/S average quality ~0.97."""
        assert cs_result.average_quality >= 0.9

    def test_provisioned_covers_used(self, cs_result):
        """Paper Fig 4: 'in the majority of time, provisioned bandwidth is
        larger than the used'."""
        provisioned = np.asarray(cs_result.provisioned_series)
        used = np.asarray(cs_result.used_series)
        covered = (provisioned >= used).mean()
        assert covered >= 0.8

    def test_budget_never_violated(self, cs_result):
        ledger_entries = cs_result.decisions
        budget = cs_result.scenario.sla_terms().vm_budget_per_hour
        for decision in ledger_entries:
            assert decision.hourly_vm_cost <= budget + 1e-9

    def test_costs_accrued(self, cs_result):
        assert cs_result.cost_report.vm_cost > 0.0
        assert cs_result.cost_report.storage_cost > 0.0

    def test_storage_cost_negligible_vs_vm(self, cs_result):
        """Paper Section VI-C: storage ~ $0.018/day vs VM ~ $48/h."""
        assert (
            cs_result.cost_report.storage_cost
            < 0.01 * cs_result.cost_report.vm_cost
        )

    def test_determinism(self):
        a = run_closed_loop(small_scenario("p2p", horizon_hours=2))
        b = run_closed_loop(small_scenario("p2p", horizon_hours=2))
        assert a.used_series == b.used_series
        assert a.mean_vm_cost_per_hour == b.mean_vm_cost_per_hour


class TestPaperHeadlines:
    def test_p2p_cheaper_than_client_server(self, cs_result, p2p_result):
        """Paper Fig 10: P2P VM cost is a fraction of client-server."""
        assert (
            p2p_result.mean_vm_cost_per_hour
            < cs_result.mean_vm_cost_per_hour
        )

    def test_p2p_uses_less_cloud_bandwidth(self, cs_result, p2p_result):
        """Paper Fig 4: P2P's cloud usage is far below client-server's."""
        assert np.mean(p2p_result.used_series) < np.mean(cs_result.used_series)

    def test_p2p_quality_slightly_lower_but_good(self, cs_result, p2p_result):
        """Paper Fig 5: P2P ~0.95 vs C/S ~0.97."""
        assert p2p_result.average_quality >= 0.85
        assert p2p_result.average_quality <= cs_result.average_quality + 0.05

    def test_peers_contribute_bandwidth(self, p2p_result):
        assert max(p2p_result.peer_series) > 0.0


class TestFigureGenerators:
    def test_fig4(self, cs_result, p2p_result):
        data = fig4_capacity_provisioning(cs_result, p2p_result)
        assert data["hours"].shape == data["cs_reserved_mbps"].shape
        assert np.all(data["cs_reserved_mbps"] >= 0)

    def test_fig5(self, cs_result, p2p_result):
        data = fig5_streaming_quality(cs_result, p2p_result)
        assert 0.0 <= float(data["cs_average"]) <= 1.0
        assert data["p2p_quality"].size > 0

    def test_fig6(self, cs_result):
        data = fig6_quality_vs_channel_size(cs_result)
        assert data["channel_size"].shape == data["quality"].shape
        assert np.all((data["quality"] >= 0) & (data["quality"] <= 1))

    def test_fig7_scaling_shapes(self, cs_result, p2p_result):
        cs = fig7_bandwidth_vs_channel_size(cs_result)
        p2p = fig7_bandwidth_vs_channel_size(p2p_result)
        assert cs["channel_size"].size > 0
        # C/S bandwidth grows (weakly) with channel size: the top-size
        # tercile must draw at least as much as the bottom tercile. (At CI
        # scale the integer-VM floor flattens the curve, so we assert the
        # ordering rather than a slope; the paper-scale bench shows the
        # linear trend.)
        order = np.argsort(cs["channel_size"])
        k = max(1, order.size // 3)
        low = cs["bandwidth_mbps"][order[:k]].mean()
        high = cs["bandwidth_mbps"][order[-k:]].mean()
        assert high >= low - 1e-9
        # For the same sizes, P2P provisions less on average.
        assert p2p["bandwidth_mbps"].mean() <= cs["bandwidth_mbps"].mean()

    def test_fig8_fig9(self, cs_result, p2p_result):
        channel_ids = [0, 1]
        storage = fig8_storage_utility(p2p_result, channel_ids)
        vm = fig9_vm_utility(p2p_result, channel_ids)
        assert storage["hours"].size == len(p2p_result.decisions)
        for cid in channel_ids:
            assert np.all(storage[f"channel_{cid}"] >= 0)
            assert np.all(vm[f"channel_{cid}"] >= 0)
        # In client-server mode (no peer offload muddying the picture) the
        # most popular channel (0, Zipf) draws more VM utility.
        cs_vm = fig9_vm_utility(cs_result, channel_ids)
        assert cs_vm["channel_0"].mean() >= cs_vm["channel_1"].mean()

    def test_fig10(self, cs_result, p2p_result):
        data = fig10_vm_cost(cs_result, p2p_result)
        assert data["p2p_average"] < data["cs_average"]
        assert data["cs_storage_cost_per_day"] < 1.0


class TestPredictorSwap:
    def test_moving_average_predictor_runs(self):
        result = run_closed_loop(
            small_scenario("client-server", horizon_hours=3),
            predictor=MovingAveragePredictor(window=2),
        )
        assert result.average_quality > 0.5

    def test_seasonal_predictor_runs(self):
        from repro.core.predictor import SeasonalPredictor

        result = run_closed_loop(
            small_scenario("client-server", horizon_hours=4),
            predictor=SeasonalPredictor(period=24, blend=0.5),
        )
        assert result.average_quality > 0.5


class TestControlPlaneBehaviour:
    def test_storage_replanned_sparingly(self, cs_result):
        """Storage placement should persist across stable-demand intervals
        (the paper replans only 'if the demand ... changed significantly')."""
        replans = sum(
            1 for d in cs_result.decisions if d.storage_plan is not None
        )
        assert 1 <= replans < len(cs_result.decisions)

    def test_vm_targets_follow_population(self, cs_result):
        """Hour-over-hour, VM counts and populations move together."""
        pops = np.asarray(cs_result.population_series[:-1], dtype=float)
        costs = np.asarray(
            [d.hourly_vm_cost for d in cs_result.decisions[1:]]
        )
        if pops.std() > 0 and costs.std() > 0:
            corr = np.corrcoef(pops, costs)[0, 1]
            assert corr > -0.2  # never strongly anti-correlated

    def test_peer_upload_monotonically_cuts_cost(self):
        """More peer upload -> cheaper P2P operation (Fig 11 cost side)."""
        costs = []
        for ratio in (0.5, 1.5):
            result = run_closed_loop(
                small_scenario(
                    "p2p", horizon_hours=4, peer_upload_mean=ratio * 50_000.0
                )
            )
            costs.append(result.mean_vm_cost_per_hour)
        assert costs[1] <= costs[0] + 1e-9

    def test_bootstrap_decision_covers_all_channels(self, cs_result):
        bootstrap = cs_result.decisions[0]
        assert bootstrap.time == 0.0
        assert set(bootstrap.per_channel_capacity) == set(
            range(cs_result.scenario.num_channels)
        )
        # The initial deployment actually rents VMs before any user shows.
        assert bootstrap.hourly_vm_cost > 0.0
