"""Failure-injection tests: the system must degrade gracefully.

Covers the paper's explicit failure signal ("the optimization problem is
not feasible, and the VoD provider should increase the budget") and the
surrounding machinery: SLA rejections, starved channels, infeasible
storage, and empty systems.
"""

import numpy as np
import pytest

from repro.cloud.broker import Broker, NegotiationError, ResourceRequest
from repro.cloud.cluster import NFSClusterSpec, VirtualClusterSpec
from repro.cloud.scheduler import CloudFacility
from repro.core.demand import DemandEstimator
from repro.core.provisioner import ProvisioningController
from repro.core.sla import SLATerms
from repro.queueing.capacity import CapacityModel
from repro.vod.channel import make_uniform_channels
from repro.vod.simulator import VoDSimulator, VoDSystemConfig
from repro.vod.tracker import TrackingServer
from repro.workload.trace import Session, Trace

R = 10e6 / 8.0
r = 50_000.0
T0 = 300.0


def tiny_facility(vms=2, storage_chunks=3):
    return CloudFacility(
        [VirtualClusterSpec("only", 1.0, 1.0, vms, R)],
        [NFSClusterSpec("only", 1.0, 1e-4, storage_chunks * r * T0)],
    )


def make_controller(facility, vm_budget=100.0, storage_budget=1.0):
    model = CapacityModel(streaming_rate=r, chunk_duration=T0, vm_bandwidth=R)
    tracker = TrackingServer(1, [4], interval_seconds=3600.0)
    controller = ProvisioningController(
        DemandEstimator(model, "client-server"),
        tracker,
        Broker(facility),
        SLATerms(
            vm_budget_per_hour=vm_budget,
            storage_budget_per_hour=storage_budget,
        ),
    )
    return controller, tracker


class TestInfeasibleVMBudget:
    def test_partial_plan_and_ledger_flag(self):
        facility = tiny_facility(vms=50)
        controller, tracker = make_controller(facility, vm_budget=2.0)
        for _ in range(7200):  # a flood of arrivals
            tracker.record_arrival(0, 0, r)
        decision = controller.run_interval(3600.0)
        assert not decision.vm_plan.feasible
        assert decision.vm_plan.unserved_vms > 0
        # Whatever was affordable got provisioned.
        assert decision.hourly_vm_cost <= 2.0 + 1e-9
        assert controller.ledger.infeasible_intervals == 1

    def test_capacity_infeasibility(self):
        facility = tiny_facility(vms=1)
        controller, tracker = make_controller(facility)
        for _ in range(7200):
            tracker.record_arrival(0, 0, r)
        decision = controller.run_interval(3600.0)
        assert not decision.vm_plan.feasible
        assert facility.total_active_vms() == 1  # used all it had


class TestInfeasibleStorage:
    def test_unplaced_chunks_flagged_and_not_applied(self):
        facility = tiny_facility(storage_chunks=2)  # 4 chunks won't fit
        controller, tracker = make_controller(facility)
        for _ in range(360):
            tracker.record_arrival(0, 0, r)
        decision = controller.run_interval(3600.0)
        assert decision.storage_plan is not None
        assert not decision.storage_plan.feasible
        assert len(decision.storage_plan.unplaced) == 2
        # Infeasible placements are not pushed to the cloud.
        assert sum(facility.nfs_scheduler.stored_bytes().values()) == 0.0
        assert controller.ledger.infeasible_intervals == 1


class TestSLARejection:
    def test_over_budget_request_rejected_and_recorded(self):
        facility = tiny_facility(vms=10)
        broker = Broker(facility)
        with pytest.raises(NegotiationError):
            broker.request(
                ResourceRequest(vm_targets={"only": 10}, max_hourly_budget=0.5)
            )
        assert facility.total_active_vms() == 0
        assert broker.monitor.log[-1][1] is False

    def test_controller_survives_rejection(self):
        """If the negotiator rejects (e.g. operator misconfigured the SLA
        budget below the optimizer's budget), the controller records the
        rejection and keeps running."""
        facility = tiny_facility(vms=50)
        controller, tracker = make_controller(facility, vm_budget=30.0)
        # Sabotage: consumer-side SLA cap below what the optimizer spends.
        controller.terms = SLATerms(
            vm_budget_per_hour=30.0, storage_budget_per_hour=1e-9
        )
        object.__setattr__(controller.terms, "vm_budget_per_hour", 30.0)
        for _ in range(3600):
            tracker.record_arrival(0, 0, r)
        decision = controller.run_interval(3600.0)
        # Either accepted within the tighter budget or rejected-but-alive.
        assert decision in controller.decisions
        assert controller.ledger.intervals == 1


class TestStarvedSimulator:
    def test_zero_capacity_channel_degrades_not_crashes(self):
        channels = make_uniform_channels(1, 4, r, T0)
        trace = Trace(
            config_summary={},
            sessions=[Session(float(i), 0, 0, 0.0) for i in range(10)],
        )
        sim = VoDSimulator(
            channels, trace,
            VoDSystemConfig(mode="client-server", dt=10.0, user_rate_cap=R),
        )
        sim.advance_to(1200.0)
        # Nobody is served, everybody is stuck and unsmooth.
        assert sim.quality.total_retrievals == 0
        assert sim.population() == 10
        assert sim.quality.samples[-1].quality == 0.0

    def test_recovery_after_capacity_restored(self):
        channels = make_uniform_channels(1, 4, r, T0)
        trace = Trace(
            config_summary={},
            sessions=[Session(0.0, 0, 0, 0.0)],
        )
        sim = VoDSimulator(
            channels, trace,
            VoDSystemConfig(mode="client-server", dt=10.0, user_rate_cap=R),
        )
        sim.advance_to(600.0)  # starved
        sim.set_cloud_capacity(0, np.full(4, R))
        sim.advance_to(700.0)
        # The backlogged download finishes once capacity appears.
        assert sim.quality.total_retrievals == 1
        # ... but is rightly recorded as unsmooth (sojourn > T0).
        assert sim.quality.smooth_retrieval_fraction == 0.0


class TestEmptySystem:
    def test_controller_on_empty_interval(self):
        facility = tiny_facility()
        controller, _tracker = make_controller(facility)
        decision = controller.run_interval(3600.0)
        assert decision.vm_plan.feasible
        assert decision.total_cloud_demand == 0.0
        assert facility.total_active_vms() == 0

    def test_simulator_with_no_sessions(self):
        channels = make_uniform_channels(2, 3, r, T0)
        sim = VoDSimulator(
            channels, Trace(config_summary={}, sessions=[]),
            VoDSystemConfig(mode="p2p", dt=30.0, user_rate_cap=R),
        )
        sim.advance_to(3600.0)
        assert sim.population() == 0
        assert sim.quality.average_quality == 1.0
