"""Byte-identity of the fused structure-of-arrays catalog kernel.

``ChannelShard`` routes uniform client-server catalogs onto
:class:`~repro.vod.multi.MultiChannelSimulator` — one structure-of-arrays
pass per phase over every user of every channel in the shard — while P2P
and heterogeneous catalogs keep the per-channel ``VoDSimulator``.  The
contract (docs/performance.md) is that the two kernels are byte-identical
for any configuration both accept: identical per-channel RNG stream
consumption order and identical float-reduction orders, hence identical
engine results bit for bit.

These tests force the per-channel kernel through the routing predicate
(``channels_are_uniform``) and compare whole engine runs bitwise against
the fused kernel, across the workload variants that stress different
code paths (zipf skew, pure diurnal, flash crowds, the geo control
plane), plus the kernel's internal row-table invariants.
"""

import numpy as np
import pytest

import repro.sim.shard as shard_mod
from repro.sim.shard import make_engine
from repro.vod.multi import MultiChannelSimulator
from repro.workload.catalog import catalog_config, geo_catalog_config

RESULT_ARRAYS = (
    "times", "cloud_used", "peer_used", "provisioned", "shortfall",
    "populations", "quality_times", "quality",
)
RESULT_SCALARS = (
    "arrivals", "departures", "final_population", "peak_population",
    "total_retrievals", "unsmooth_retrievals", "mean_sojourn",
    "steps", "peak_step_events",
)


def small_config(**overrides):
    params = dict(
        num_channels=8,
        chunks_per_channel=4,
        horizon_hours=0.5,
        arrival_rate=3.0,
        num_shards=4,
        dt=60.0,
        interval_minutes=10.0,
        phase_jitter_hours=6.0,
        flash_fraction=0.5,
        flash_hour=0.25,
        flash_width_hours=0.25,
        flash_amplitude=4.0,
    )
    params.update(overrides)
    return catalog_config(**params)


def run_engine(config, jobs=1, force_per_channel=False):
    """Run the catalog once; optionally pin the per-channel kernel.

    The routing predicate is patched in :mod:`repro.sim.shard`'s
    namespace, where ``ChannelShard`` looks it up; shards are built in
    the parent process, so the patch holds for any worker count.
    """
    original = shard_mod.channels_are_uniform
    if force_per_channel:
        shard_mod.channels_are_uniform = lambda channels: False
    try:
        with make_engine(config, jobs=jobs) as engine:
            return engine.run()
    finally:
        shard_mod.channels_are_uniform = original


def assert_results_identical(a, b):
    for name in RESULT_ARRAYS:
        assert getattr(a, name).tobytes() == getattr(b, name).tobytes(), name
    for name in RESULT_SCALARS:
        assert getattr(a, name) == getattr(b, name), name
    assert a.channel_populations == b.channel_populations
    assert a.epoch_times == b.epoch_times
    assert a.vm_cost_series == b.vm_cost_series
    assert len(a.decisions) == len(b.decisions)
    for k, (da, db) in enumerate(zip(a.decisions, b.decisions)):
        assert da.per_channel_capacity.keys() == db.per_channel_capacity.keys()
        for cid, cap in da.per_channel_capacity.items():
            assert cap.tobytes() == \
                db.per_channel_capacity[cid].tobytes(), (k, cid)


class TestFusedKernelParity:
    """Fused SoA kernel vs the per-channel kernel, bit for bit."""

    @pytest.mark.parametrize("variant,overrides", [
        ("zipf", {}),
        ("diurnal", dict(phase_jitter_hours=9.0, flash_fraction=0.0)),
        ("flash", dict(flash_fraction=0.4, flash_amplitude=6.0)),
    ])
    def test_catalog_variants(self, variant, overrides):
        config = small_config(**overrides)
        reference = run_engine(config, force_per_channel=True)
        fused = run_engine(config)
        assert_results_identical(reference, fused)

    def test_geo_catalog(self):
        config = geo_catalog_config(
            num_channels=4, chunks_per_channel=4, horizon_hours=0.5,
            arrival_rate=3.0, num_shards=4, dt=60.0, interval_minutes=10.0,
            topology="us-eu",
        )
        reference = run_engine(config, force_per_channel=True)
        fused = run_engine(config)
        assert_results_identical(reference, fused)
        assert reference.epoch_discounts == fused.epoch_discounts
        assert reference.epoch_remote_fractions == fused.epoch_remote_fractions

    def test_fused_kernel_actually_selected(self):
        """Guard the routing: the parity above must compare two kernels."""
        config = small_config()
        shard = shard_mod.ChannelShard(config, 0)
        assert isinstance(shard.sim, MultiChannelSimulator)

    def test_workers_do_not_change_fused_results(self):
        """jobs=1 vs an uneven jobs=3 split over the shm epoch path."""
        config = small_config()
        assert_results_identical(
            run_engine(config, jobs=1), run_engine(config, jobs=3)
        )


class TestRowTableInvariants:
    """The kernel's dense row table under churn (docs/performance.md)."""

    def _stepped(self, steps=40):
        config = small_config()
        shard = shard_mod.ChannelShard(config, 0)
        sim = shard.sim
        assert isinstance(sim, MultiChannelSimulator)
        for _ in range(steps):
            sim.step()
        return sim

    def test_live_rows_match_population(self):
        sim = self._stepped()
        n = sim._n
        alive = int(np.count_nonzero(sim._row_alive[:n]))
        assert alive == sim.population()
        assert n >= alive  # dead rows linger until the lazy compaction

    def test_compaction_preserves_order_and_drops_dead(self):
        sim = self._stepped()
        n = sim._n
        live_before = [
            (int(sim._row_chan[i]), float(sim._row_enter[i]),
             float(sim._row_received[i]))
            for i in range(n) if sim._row_alive[i]
        ]
        count = sim._compact()
        assert count == len(live_before)
        assert bool(sim._row_alive[:count].all())
        live_after = [
            (int(sim._row_chan[i]), float(sim._row_enter[i]),
             float(sim._row_received[i]))
            for i in range(count)
        ]
        assert live_after == live_before  # stable gather, admission order

    def test_dead_rows_never_look_held(self):
        """Departed rows must not re-enter the hold-release scan."""
        from repro.vod.multi import HOLDING

        sim = self._stepped()
        n = sim._n
        dead = ~sim._row_alive[:n]
        assert not np.any(sim._row_chunk[:n][dead] == HOLDING)
